//! Sharded, lazily materialized client storage.
//!
//! A dense protocol run keeps every participant's full model resident — at
//! 10⁶ users × 10⁵ items that is terabytes, while a participation-sampled
//! FedAvg round only ever *trains* ~1% of clients and only ever *reads* the
//! rest through the global aggregate. [`ClientStore`] makes that asymmetry a
//! storage contract:
//!
//! * **Dense** mode wraps the existing `Vec<P>` unchanged — every protocol
//!   keeps working exactly as before.
//! * **Sharded** mode holds no participants at all. Clients are rebuilt on
//!   demand from a deterministic factory (seed + training data), trained
//!   against the round's shared workspace via
//!   [`Participant::fed_round_shared`], and retired back to a compact
//!   per-client descriptor ([`Participant::private_state`] — for GMF just
//!   the `d`-float user embedding). Descriptors are stored in fixed-size
//!   shards allocated only once a shard sees its first sampled client, so a
//!   1%-participation round materializes only the sampled shards' rows.
//!
//! The store reports its metering into a [`cia_obs::Recorder`]: every byte
//! of client model state brought into residence counts into
//! [`Counter::BytesMaterialized`] and every descriptor block allocation into
//! [`Counter::ShardAllocations`]. Protocols derive their per-round
//! `bytes_materialized` stat from the recorder's counter delta, so the
//! ad-hoc internal meter this store used to carry is gone — one sink, no
//! double counting.

use crate::Participant;
use cia_obs::{Counter, Recorder};

/// Rebuilds participant `i` from scratch (same spec, same constructor seed —
/// the deterministic part of its state).
pub type ClientFactory<P> = Box<dyn Fn(usize) -> P + Send + Sync>;

/// One shard's retired descriptors: a slot per client in the shard, `None`
/// until that client is first retired.
type DescriptorBlock = Vec<Option<Box<[f32]>>>;

/// Participant storage for a protocol: dense (all resident) or sharded
/// (lazily materialized). See the module docs.
pub struct ClientStore<P> {
    inner: Inner<P>,
}

enum Inner<P> {
    Dense(Vec<P>),
    Sharded(Sharded<P>),
}

struct Sharded<P> {
    n: usize,
    shard_size: usize,
    factory: ClientFactory<P>,
    /// FedAvg example counts, indexed by client (weighting must not require
    /// materialization).
    examples: Vec<u32>,
    /// Per-shard descriptor blocks, allocated on first retire into the shard.
    shards: Vec<Option<DescriptorBlock>>,
    recorder: Recorder,
}

impl<P: Participant> ClientStore<P> {
    /// Wraps an existing dense participant vector.
    pub fn dense(clients: Vec<P>) -> Self {
        ClientStore { inner: Inner::Dense(clients) }
    }

    /// Creates an empty sharded store of `examples.len()` clients, rebuilt on
    /// demand by `factory`. `examples[i]` is client `i`'s local example count
    /// (FedAvg weighting reads it without materializing the client).
    ///
    /// # Panics
    ///
    /// Panics if `shard_size == 0`.
    pub fn sharded(shard_size: usize, examples: Vec<u32>, factory: ClientFactory<P>) -> Self {
        assert!(shard_size > 0, "shard size must be positive");
        let n = examples.len();
        let shards = (0..n.div_ceil(shard_size)).map(|_| None).collect();
        ClientStore {
            inner: Inner::Sharded(Sharded {
                n,
                shard_size,
                factory,
                examples,
                shards,
                recorder: Recorder::new(),
            }),
        }
    }

    /// Installs the metrics sink this store reports into (sharded mode; a
    /// no-op for dense stores, which never materialize anything). Protocols
    /// share their own recorder with the store so materialization bytes and
    /// shard allocations land in the round's counter deltas.
    pub fn set_recorder(&mut self, recorder: Recorder) {
        if let Inner::Sharded(s) = &mut self.inner {
            s.recorder = recorder;
        }
    }

    /// The metrics sink this store reports into (sharded mode).
    pub fn recorder(&self) -> Option<&Recorder> {
        match &self.inner {
            Inner::Dense(_) => None,
            Inner::Sharded(s) => Some(&s.recorder),
        }
    }

    /// Number of clients.
    pub fn len(&self) -> usize {
        match &self.inner {
            Inner::Dense(c) => c.len(),
            Inner::Sharded(s) => s.n,
        }
    }

    /// Whether the store holds no clients.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Whether this store materializes lazily.
    pub fn is_sharded(&self) -> bool {
        matches!(self.inner, Inner::Sharded(_))
    }

    /// The resident participant slice (dense mode only).
    pub fn as_dense(&self) -> Option<&[P]> {
        match &self.inner {
            Inner::Dense(c) => Some(c),
            Inner::Sharded(_) => None,
        }
    }

    /// Mutable access to the resident participants (dense mode only).
    pub fn as_dense_mut(&mut self) -> Option<&mut Vec<P>> {
        match &mut self.inner {
            Inner::Dense(c) => Some(c),
            Inner::Sharded(_) => None,
        }
    }

    /// Client `i`'s local example count, without materializing it.
    pub fn num_examples_of(&self, i: usize) -> usize {
        match &self.inner {
            Inner::Dense(c) => c[i].num_examples(),
            Inner::Sharded(s) => s.examples[i] as usize,
        }
    }

    /// Rebuilds client `i` (sharded mode): factory construction plus the
    /// retired descriptor, if the client was ever sampled before.
    ///
    /// # Panics
    ///
    /// Panics in dense mode (the resident slice is the client).
    pub fn materialize(&mut self, i: usize) -> P {
        let Inner::Sharded(s) = &mut self.inner else {
            panic!("materialize is a sharded-store operation; dense stores are resident");
        };
        let mut client = (s.factory)(i);
        let mut bytes = 0u64;
        if let Some(Some(state)) = s.shards[i / s.shard_size].as_ref().map(|b| &b[i % s.shard_size])
        {
            client.restore_private_state(state);
            bytes += 4 * state.len() as u64;
        }
        // The resident footprint of the rebuilt client itself: its
        // aggregatable buffer (empty for shell clients — they borrow the
        // round workspace) plus its private factors.
        bytes += 4 * (client.agg().len() + client.owner_emb().map_or(0, <[f32]>::len)) as u64;
        s.recorder.add(Counter::BytesMaterialized, bytes);
        client
    }

    /// Retires a client materialized by [`ClientStore::materialize`],
    /// persisting only its compact private descriptor. The shard's
    /// descriptor block is allocated on first use.
    pub fn retire(&mut self, i: usize, client: P) {
        let Inner::Sharded(s) = &mut self.inner else {
            panic!("retire is a sharded-store operation; dense stores are resident");
        };
        let shard = i / s.shard_size;
        let len = s.shard_size.min(s.n - shard * s.shard_size);
        if s.shards[shard].is_none() {
            s.recorder.inc(Counter::ShardAllocations);
        }
        let block = s.shards[shard].get_or_insert_with(|| (0..len).map(|_| None).collect());
        block[i % s.shard_size] = Some(client.private_state().into_boxed_slice());
    }

    /// Number of shards holding at least one retired descriptor.
    pub fn resident_shards(&self) -> usize {
        match &self.inner {
            Inner::Dense(_) => usize::from(!self.is_empty()),
            Inner::Sharded(s) => s.shards.iter().filter(|b| b.is_some()).count(),
        }
    }

    /// Total bytes of retired per-client descriptors currently persisted.
    pub fn descriptor_bytes(&self) -> u64 {
        match &self.inner {
            Inner::Dense(_) => 0,
            Inner::Sharded(s) => s
                .shards
                .iter()
                .flatten()
                .flat_map(|b| b.iter().flatten())
                .map(|d| 4 * d.len() as u64)
                .sum(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{GmfHyper, GmfSpec, SharingPolicy};
    use cia_data::UserId;

    fn sharded_gmf(n: usize, shard_size: usize) -> ClientStore<crate::GmfClient> {
        let spec = GmfSpec::new(20, 4, GmfHyper::default());
        let examples = vec![3u32; n];
        ClientStore::sharded(
            shard_size,
            examples,
            Box::new(move |i| {
                spec.build_shell(
                    // cia-lint: allow(D05, ids and indices are bounded by the validated population/catalog size, which fits u32)
                    UserId::new(i as u32),
                    vec![1, 2, 5],
                    SharingPolicy::Full,
                    1000 + i as u64,
                )
            }),
        )
    }

    #[test]
    fn sharded_store_reports_shape_without_materializing() {
        let store = sharded_gmf(10, 4);
        assert_eq!(store.len(), 10);
        assert!(store.is_sharded());
        assert!(store.as_dense().is_none());
        assert_eq!(store.num_examples_of(7), 3);
        assert_eq!(store.resident_shards(), 0);
        assert_eq!(store.descriptor_bytes(), 0);
    }

    #[test]
    fn materialize_retire_roundtrips_private_state() {
        let mut store = sharded_gmf(10, 4);
        let mut c = store.materialize(5);
        let marked: Vec<f32> = (0..4).map(|k| 0.25 * k as f32).collect();
        c.restore_private_state(&marked);
        store.retire(5, c);
        // Only client 5's shard (the middle one) holds a descriptor.
        assert_eq!(store.resident_shards(), 1);
        assert_eq!(store.descriptor_bytes(), 16);
        let again = store.materialize(5);
        assert_eq!(again.private_state(), marked);
        // A never-retired neighbor comes back factory-fresh.
        let fresh = store.materialize(6);
        assert_eq!(fresh.private_state().len(), 4);
        assert_ne!(fresh.private_state(), marked);
    }

    #[test]
    fn materialization_and_allocations_report_into_the_recorder() {
        let mut store = sharded_gmf(6, 2);
        let rec = Recorder::new();
        store.set_recorder(rec.clone());
        let c = store.materialize(0);
        store.retire(0, c);
        assert!(rec.counter(Counter::BytesMaterialized) > 0);
        assert_eq!(rec.counter(Counter::ShardAllocations), 1);
        // Retiring into an already-allocated shard allocates nothing new.
        let c = store.materialize(1);
        store.retire(1, c);
        assert_eq!(rec.counter(Counter::ShardAllocations), 1);
        // A drain resets the delta but not the lifetime total.
        let chunk = rec.drain();
        assert!(chunk.counter(Counter::BytesMaterialized) > 0);
        assert_eq!(rec.drain().counter(Counter::BytesMaterialized), 0);
    }

    #[test]
    fn dense_store_wraps_resident_clients() {
        let spec = GmfSpec::new(20, 4, GmfHyper::default());
        let clients: Vec<_> = (0..3)
            .map(|i| spec.build_client(UserId::new(i), vec![1, 2], SharingPolicy::Full, i as u64))
            .collect();
        let mut store = ClientStore::dense(clients);
        assert!(!store.is_sharded());
        assert_eq!(store.len(), 3);
        assert_eq!(store.as_dense().unwrap().len(), 3);
        assert_eq!(store.num_examples_of(0), 2);
        assert!(store.recorder().is_none(), "dense stores meter nothing");
        assert_eq!(store.resident_shards(), 1);
        store.as_dense_mut().unwrap().truncate(2);
        assert_eq!(store.len(), 2);
    }
}
