//! Shared dataset/ground-truth setup for one (preset, scale, seed) — the
//! common substrate every scenario run (and every `cia-experiments` table)
//! builds on.

use crate::spec::ScaleParams;
use cia_data::presets::{Preset, Scale};
use cia_data::{Dataset, GroundTruth, LeaveOneOut, UserId};

/// Dataset, split, ground truth and scale parameters for one scenario.
pub struct RecsysSetup {
    /// The generated dataset.
    pub data: Dataset,
    /// The train/test split.
    pub split: LeaveOneOut,
    /// Community size used for ground truth.
    pub k: usize,
    /// Ground-truth communities for per-user targets.
    pub truth: GroundTruth,
    /// Scale parameters in effect.
    pub params: ScaleParams,
}

impl RecsysSetup {
    /// Truth table aligned with per-user targets.
    pub fn truth_table(&self) -> Vec<Vec<UserId>> {
        (0..self.data.num_users())
            .map(|u| self.truth.community_of(UserId::new(u as u32)).to_vec())
            .collect()
    }

    /// Owner table (each per-user target excludes its donor).
    pub fn owner_table(&self) -> Vec<Option<UserId>> {
        (0..self.data.num_users()).map(|u| Some(UserId::new(u as u32))).collect()
    }
}

/// Builds the dataset, split and ground truth for a preset at a scale.
///
/// # Panics
///
/// Panics if the generated dataset cannot be split (internal invariant).
pub fn build_setup(
    preset: Preset,
    scale: Scale,
    k_override: Option<usize>,
    seed: u64,
) -> RecsysSetup {
    let params = ScaleParams::of(scale);
    let data = preset.generate(scale, seed);
    let holdout = if preset.has_sequences() { params.poi_holdout } else { 1 };
    let split = LeaveOneOut::with_holdout(&data, holdout, params.eval_negatives, seed ^ 0x5EED)
        .expect("presets generate splittable data");
    let k = k_override.unwrap_or(params.k).min(data.num_users().saturating_sub(2)).max(1);
    let truth = GroundTruth::from_train_sets(split.train_sets(), k);
    RecsysSetup { data, split, k, truth, params }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn setup_tables_are_aligned() {
        let s = build_setup(Preset::MovieLens, Scale::Smoke, None, 1);
        assert_eq!(s.truth_table().len(), s.data.num_users());
        assert_eq!(s.owner_table().len(), s.data.num_users());
        assert_eq!(s.k, 5);
    }
}
