//! Property-based tests for the flat parameter algebra — the code path every
//! aggregation, momentum, clipping and noising operation flows through.

use cia_models::params::{axpy, clip_l2, ema, l2_norm, scale, weighted_mean};
use proptest::prelude::*;

fn vec32(len: usize) -> impl Strategy<Value = Vec<f32>> {
    proptest::collection::vec(-100.0f32..100.0, len..=len)
}

proptest! {
    #[test]
    fn axpy_zero_is_identity(mut y in vec32(16), x in vec32(16)) {
        let before = y.clone();
        axpy(&mut y, 0.0, &x);
        prop_assert_eq!(y, before);
    }

    #[test]
    fn scale_one_is_identity(mut y in vec32(16)) {
        let before = y.clone();
        scale(&mut y, 1.0);
        prop_assert_eq!(y, before);
    }

    #[test]
    fn ema_beta_zero_replaces(mut v in vec32(16), theta in vec32(16)) {
        ema(&mut v, 0.0, &theta);
        prop_assert_eq!(v, theta);
    }

    #[test]
    fn ema_beta_one_keeps(mut v in vec32(16), theta in vec32(16)) {
        let before = v.clone();
        ema(&mut v, 1.0, &theta);
        for (a, b) in v.iter().zip(&before) {
            prop_assert!((a - b).abs() < 1e-4);
        }
    }

    #[test]
    fn ema_stays_within_bounds(mut v in vec32(8), theta in vec32(8), beta in 0.0f32..1.0) {
        // Each coordinate of the EMA lies between the two inputs.
        let before = v.clone();
        ema(&mut v, beta, &theta);
        for ((a, b), r) in before.iter().zip(&theta).zip(&v) {
            let (lo, hi) = if a < b { (a, b) } else { (b, a) };
            prop_assert!(*r >= lo - 1e-3 && *r <= hi + 1e-3);
        }
    }

    #[test]
    fn clip_never_increases_norm(mut x in vec32(16), c in 0.01f32..50.0) {
        let before = l2_norm(&x);
        clip_l2(&mut x, c);
        let after = l2_norm(&x);
        prop_assert!(after <= before + 1e-3);
        prop_assert!(after <= c + c * 1e-4);
    }

    #[test]
    fn clip_below_threshold_is_identity(mut x in vec32(8)) {
        let c = l2_norm(&x) + 1.0;
        let before = x.clone();
        let f = clip_l2(&mut x, c);
        prop_assert_eq!(f, 1.0);
        prop_assert_eq!(x, before);
    }

    #[test]
    fn weighted_mean_of_identical_rows_is_the_row(row in vec32(12), w1 in 0.1f32..10.0, w2 in 0.1f32..10.0) {
        let mut out = vec![0.0f32; 12];
        weighted_mean(&mut out, &[&row, &row], &[w1, w2]);
        for (o, r) in out.iter().zip(&row) {
            prop_assert!((o - r).abs() < 1e-3, "o={o} r={r}");
        }
    }

    #[test]
    fn weighted_mean_is_convex_combination(a in vec32(8), b in vec32(8), w in 0.01f32..0.99) {
        let mut out = vec![0.0f32; 8];
        weighted_mean(&mut out, &[&a, &b], &[w, 1.0 - w]);
        for ((x, y), o) in a.iter().zip(&b).zip(&out) {
            let (lo, hi) = if x < y { (x, y) } else { (y, x) };
            prop_assert!(*o >= lo - 1e-3 && *o <= hi + 1e-3);
        }
    }
}
