//! Synthetic MNIST-style image data for the universality experiment (§VIII-E).
//!
//! The paper simulates communities on MNIST by giving each of 100 clients
//! samples of a single digit class; a community is the set of clients holding
//! the same class. Since MNIST itself is not shipped here, we generate ten
//! visually distinct 28×28 "digit prototypes" (fixed random images) and draw
//! samples as `clamp(prototype + gaussian noise)` — preserving exactly what
//! the experiment needs: ten separable classes and strongly non-iid clients.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// Flattened image dimensionality (28 × 28).
pub const IMAGE_DIM: usize = 28 * 28;

/// Number of digit classes.
pub const NUM_CLASSES: usize = 10;

/// Configuration of the synthetic image generator.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ImageGenConfig {
    /// Samples generated per class.
    pub samples_per_class: usize,
    /// Standard deviation of the per-pixel Gaussian noise.
    pub noise_std: f32,
    /// Generator seed.
    pub seed: u64,
}

impl Default for ImageGenConfig {
    fn default() -> Self {
        ImageGenConfig { samples_per_class: 60, noise_std: 0.35, seed: 0 }
    }
}

/// A labelled image dataset stored as flat `f32` pixels in `[0, 1]`.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ImageDataset {
    pixels: Vec<f32>,
    labels: Vec<u8>,
}

impl ImageDataset {
    /// Generates the dataset described by `cfg`.
    pub fn generate(cfg: &ImageGenConfig) -> Self {
        let mut rng = StdRng::seed_from_u64(cfg.seed);
        // Fixed random prototypes: coarse 4x4 blocks give them MNIST-like
        // low-frequency structure so a small MLP separates them but single
        // pixels do not.
        let mut prototypes = vec![0.0f32; NUM_CLASSES * IMAGE_DIM];
        for c in 0..NUM_CLASSES {
            let mut blocks = [0.0f32; 49]; // 7x7 blocks of 4x4 pixels
            for b in &mut blocks {
                *b = rng.gen::<f32>();
            }
            for y in 0..28 {
                for x in 0..28 {
                    prototypes[c * IMAGE_DIM + y * 28 + x] = blocks[(y / 4) * 7 + x / 4];
                }
            }
        }

        let n = cfg.samples_per_class * NUM_CLASSES;
        let mut pixels = Vec::with_capacity(n * IMAGE_DIM);
        let mut labels = Vec::with_capacity(n);
        for c in 0..NUM_CLASSES {
            for _ in 0..cfg.samples_per_class {
                for p in 0..IMAGE_DIM {
                    let noise = gaussian(&mut rng) * cfg.noise_std;
                    pixels.push((prototypes[c * IMAGE_DIM + p] + noise).clamp(0.0, 1.0));
                }
                // cia-lint: allow(D05, MNIST class labels are 0..=9)
                labels.push(c as u8);
            }
        }
        ImageDataset { pixels, labels }
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.labels.len()
    }

    /// Whether the dataset is empty.
    pub fn is_empty(&self) -> bool {
        self.labels.is_empty()
    }

    /// Pixels of sample `i` (length [`IMAGE_DIM`]).
    pub fn image(&self, i: usize) -> &[f32] {
        &self.pixels[i * IMAGE_DIM..(i + 1) * IMAGE_DIM]
    }

    /// Label of sample `i`.
    pub fn label(&self, i: usize) -> u8 {
        self.labels[i]
    }

    /// Indices of all samples of `class`.
    pub fn indices_of_class(&self, class: u8) -> Vec<usize> {
        (0..self.len()).filter(|&i| self.labels[i] == class).collect()
    }

    /// Splits samples across `clients_per_class * NUM_CLASSES` clients, each
    /// client holding samples of exactly one class (the paper's strongly
    /// non-iid partition: 100 clients, one class each).
    pub fn one_class_partition(&self, clients_per_class: usize) -> Vec<Vec<usize>> {
        let mut clients = vec![Vec::new(); clients_per_class * NUM_CLASSES];
        // cia-lint: allow(D05, NUM_CLASSES is 10; class ids fit u8)
        for c in 0..NUM_CLASSES as u8 {
            let idx = self.indices_of_class(c);
            for (pos, &sample) in idx.iter().enumerate() {
                let client = c as usize * clients_per_class + (pos % clients_per_class);
                clients[client].push(sample);
            }
        }
        clients
    }
}

/// One draw from the standard normal distribution (Box–Muller; see
/// `DESIGN.md` §5 for why we avoid an extra dependency).
fn gaussian(rng: &mut StdRng) -> f32 {
    let u1: f32 = rng.gen::<f32>().max(f32::MIN_POSITIVE);
    let u2: f32 = rng.gen();
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f32::consts::PI * u2).cos()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> ImageDataset {
        ImageDataset::generate(&ImageGenConfig { samples_per_class: 10, noise_std: 0.2, seed: 4 })
    }

    #[test]
    fn generates_requested_counts() {
        let d = small();
        assert_eq!(d.len(), 100);
        // cia-lint: allow(D05, NUM_CLASSES is 10; class ids fit u8)
        for c in 0..NUM_CLASSES as u8 {
            assert_eq!(d.indices_of_class(c).len(), 10);
        }
    }

    #[test]
    fn pixels_in_unit_interval() {
        let d = small();
        for i in 0..d.len() {
            for &p in d.image(i) {
                assert!((0.0..=1.0).contains(&p));
            }
        }
    }

    #[test]
    fn same_class_closer_than_cross_class() {
        let d = small();
        let dist =
            |a: &[f32], b: &[f32]| -> f32 { a.iter().zip(b).map(|(x, y)| (x - y) * (x - y)).sum() };
        let a0 = d.indices_of_class(0);
        let a1 = d.indices_of_class(1);
        let same = dist(d.image(a0[0]), d.image(a0[1]));
        let cross = dist(d.image(a0[0]), d.image(a1[0]));
        assert!(same < cross, "same {same} !< cross {cross}");
    }

    #[test]
    fn one_class_partition_is_pure_and_covers_all() {
        let d = small();
        let clients = d.one_class_partition(10); // 100 clients
        assert_eq!(clients.len(), 100);
        let mut seen = 0;
        for (cid, samples) in clients.iter().enumerate() {
            assert!(!samples.is_empty(), "client {cid} empty");
            let class = d.label(samples[0]);
            assert!(samples.iter().all(|&s| d.label(s) == class));
            assert_eq!(class as usize, cid / 10, "client {cid} holds wrong class");
            seen += samples.len();
        }
        assert_eq!(seen, d.len());
    }

    #[test]
    fn deterministic_given_seed() {
        let a = small();
        let b = small();
        assert_eq!(a.image(3), b.image(3));
        assert_eq!(a.label(7), b.label(7));
    }
}
