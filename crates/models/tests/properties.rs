//! Property-based tests for the flat parameter algebra — the code path every
//! aggregation, momentum, clipping and noising operation flows through — and
//! for the chunked kernels, proving the vectorized paths are drop-in for a
//! straightforward scalar reference.

use cia_models::kernel;
use cia_models::params::{axpy, clip_l2, ema, l2_norm, scale, weighted_mean};
use proptest::prelude::*;

fn vec32(len: usize) -> impl Strategy<Value = Vec<f32>> {
    proptest::collection::vec(-100.0f32..100.0, len..=len)
}

fn anyvec(max_len: usize) -> impl Strategy<Value = Vec<f32>> {
    // Unit-scale values over lengths straddling the 8-lane chunk boundary.
    proptest::collection::vec(-1.0f32..1.0, 0..max_len)
}

/// Tolerance for comparing a chunked f32 reduction against an f64 scalar
/// reference: 1e-5, scaled by the sum of absolute terms (f32 rounding is
/// proportional to the magnitudes summed, not to the final value).
fn reduction_tol(abs_terms: f64) -> f64 {
    1e-5 * (1.0 + abs_terms)
}

proptest! {
    #[test]
    fn axpy_zero_is_identity(mut y in vec32(16), x in vec32(16)) {
        let before = y.clone();
        axpy(&mut y, 0.0, &x);
        prop_assert_eq!(y, before);
    }

    #[test]
    fn scale_one_is_identity(mut y in vec32(16)) {
        let before = y.clone();
        scale(&mut y, 1.0);
        prop_assert_eq!(y, before);
    }

    #[test]
    fn ema_beta_zero_replaces(mut v in vec32(16), theta in vec32(16)) {
        ema(&mut v, 0.0, &theta);
        prop_assert_eq!(v, theta);
    }

    #[test]
    fn ema_beta_one_keeps(mut v in vec32(16), theta in vec32(16)) {
        let before = v.clone();
        ema(&mut v, 1.0, &theta);
        for (a, b) in v.iter().zip(&before) {
            prop_assert!((a - b).abs() < 1e-4);
        }
    }

    #[test]
    fn ema_stays_within_bounds(mut v in vec32(8), theta in vec32(8), beta in 0.0f32..1.0) {
        // Each coordinate of the EMA lies between the two inputs.
        let before = v.clone();
        ema(&mut v, beta, &theta);
        for ((a, b), r) in before.iter().zip(&theta).zip(&v) {
            let (lo, hi) = if a < b { (a, b) } else { (b, a) };
            prop_assert!(*r >= lo - 1e-3 && *r <= hi + 1e-3);
        }
    }

    #[test]
    fn clip_never_increases_norm(mut x in vec32(16), c in 0.01f32..50.0) {
        let before = l2_norm(&x);
        clip_l2(&mut x, c);
        let after = l2_norm(&x);
        prop_assert!(after <= before + 1e-3);
        prop_assert!(after <= c + c * 1e-4);
    }

    #[test]
    fn clip_below_threshold_is_identity(mut x in vec32(8)) {
        let c = l2_norm(&x) + 1.0;
        let before = x.clone();
        let f = clip_l2(&mut x, c);
        prop_assert_eq!(f, 1.0);
        prop_assert_eq!(x, before);
    }

    #[test]
    fn weighted_mean_of_identical_rows_is_the_row(row in vec32(12), w1 in 0.1f32..10.0, w2 in 0.1f32..10.0) {
        let mut out = vec![0.0f32; 12];
        weighted_mean(&mut out, &[&row, &row], &[w1, w2]);
        for (o, r) in out.iter().zip(&row) {
            prop_assert!((o - r).abs() < 1e-3, "o={o} r={r}");
        }
    }

    #[test]
    fn weighted_mean_is_convex_combination(a in vec32(8), b in vec32(8), w in 0.01f32..0.99) {
        let mut out = vec![0.0f32; 8];
        weighted_mean(&mut out, &[&a, &b], &[w, 1.0 - w]);
        for ((x, y), o) in a.iter().zip(&b).zip(&out) {
            let (lo, hi) = if x < y { (x, y) } else { (y, x) };
            prop_assert!(*o >= lo - 1e-3 && *o <= hi + 1e-3);
        }
    }

    // ---- kernel equivalence: chunked kernels vs scalar references ----

    #[test]
    fn kernel_dot_matches_scalar_reference(a in anyvec(67)) {
        let b: Vec<f32> = a.iter().map(|v| 1.0 - v).collect();
        let reference: f64 = a.iter().zip(&b).map(|(x, y)| *x as f64 * *y as f64).sum();
        let abs_terms: f64 = a.iter().zip(&b).map(|(x, y)| (*x as f64 * *y as f64).abs()).sum();
        let got = kernel::dot(&a, &b) as f64;
        prop_assert!(
            (got - reference).abs() <= reduction_tol(abs_terms),
            "dot {got} vs scalar {reference} (len {})", a.len()
        );
    }

    #[test]
    fn kernel_dot3_matches_scalar_reference(a in anyvec(67)) {
        let b: Vec<f32> = a.iter().map(|v| v * 0.5 + 0.1).collect();
        let c: Vec<f32> = a.iter().map(|v| 0.9 - v).collect();
        let reference: f64 = a
            .iter().zip(&b).zip(&c)
            .map(|((x, y), z)| *x as f64 * *y as f64 * *z as f64)
            .sum();
        let abs_terms: f64 = a
            .iter().zip(&b).zip(&c)
            .map(|((x, y), z)| (*x as f64 * *y as f64 * *z as f64).abs())
            .sum();
        let got = kernel::dot3(&a, &b, &c) as f64;
        prop_assert!(
            (got - reference).abs() <= reduction_tol(abs_terms),
            "dot3 {got} vs scalar {reference} (len {})", a.len()
        );
    }

    #[test]
    fn kernel_ema_matches_scalar_reference(mut v in anyvec(67), beta in 0.0f32..=1.0) {
        let theta: Vec<f32> = v.iter().map(|x| x * -0.7 + 0.2).collect();
        // Elementwise map: same operations in the same order, so equality is
        // exact, not approximate.
        let omb = 1.0 - beta;
        let expected: Vec<f32> =
            v.iter().zip(&theta).map(|(a, t)| beta * a + omb * t).collect();
        kernel::ema(&mut v, beta, &theta);
        prop_assert_eq!(v, expected);
    }

    #[test]
    fn kernel_gemv_matches_scalar_reference(
        x in anyvec(33),
        n_out in 1usize..9,
        relu in any::<bool>(),
    ) {
        prop_assume!(!x.is_empty());
        let n_in = x.len();
        let w: Vec<f32> = (0..n_in * n_out)
            .map(|i| ((i as f32 * 0.613).sin()) * 0.8)
            .collect();
        let bias: Vec<f32> = (0..n_out).map(|o| (o as f32 * 0.37).cos()).collect();
        let mut out = vec![0.0f32; n_out];
        kernel::gemv(&mut out, &w, &x, Some(&bias), relu);
        for o in 0..n_out {
            let mut z = bias[o] as f64;
            let mut abs_terms = 0.0f64;
            for i in 0..n_in {
                let term = w[o * n_in + i] as f64 * x[i] as f64;
                z += term;
                abs_terms += term.abs();
            }
            if relu && z < 0.0 {
                z = 0.0;
            }
            prop_assert!(
                (out[o] as f64 - z).abs() <= reduction_tol(abs_terms),
                "gemv row {o}: {} vs scalar {z}", out[o]
            );
        }
    }
}
