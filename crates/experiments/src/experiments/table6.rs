//! Table VI — impact of the momentum on the colluding setting
//! (β ∈ {0, 0.5, 0.99}).
//!
//! Note (see `EXPERIMENTS.md`): with cleanly-separated synthetic communities
//! a single model snapshot already ranks near the coverage ceiling, so the
//! paper's large momentum gain does not reproduce; a moderate β shows a mild
//! gain while β = 0.99 over-anchors on early, under-trained snapshots.

use crate::runner::{build_setup, run_recsys, ModelKind, ProtocolKind, RunSpec};
use crate::tables::{pct, Table};
use cia_data::presets::{Preset, Scale};

/// Regenerates Table VI.
pub fn run(scale: Scale, seed: u64) -> Vec<Table> {
    let n = build_setup(Preset::MovieLens, scale, None, seed).data.num_users();
    let mut t = Table::new(
        format!("Table VI — Max AAC with/without momentum, colluding GL (GMF, MovieLens, {scale} scale)"),
        &["Setting", "5% colluders", "10% colluders", "20% colluders"],
    );
    for beta in [0.0f32, 0.5, 0.99] {
        let mut cells = vec![format!("beta = {beta}")];
        for frac in [0.05f64, 0.10, 0.20] {
            let mut spec =
                RunSpec::new(Preset::MovieLens, ModelKind::Gmf, ProtocolKind::RandGossip, scale);
            spec.seed = seed;
            spec.beta = beta;
            spec.colluders = ((n as f64 * frac).round() as usize).max(2);
            let r = run_recsys(&spec);
            cells.push(pct(r.attack.max_aac));
        }
        t.row(cells);
    }
    vec![t]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_momentum_sweep_completes() {
        let tables = run(Scale::Smoke, 9);
        assert_eq!(tables[0].rows.len(), 3);
        assert!(tables[0].rows[0][0].contains("beta = 0"));
        assert!(tables[0].rows[2][0].contains("0.99"));
    }
}
