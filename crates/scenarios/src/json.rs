//! A small, dependency-free JSON codec.
//!
//! The build environment has no `serde_json` (the vendored `serde` is a
//! no-op marker — see `vendor/README.md`), so the scenario engine carries its
//! own codec: a recursive-descent parser for spec files and a *deterministic*
//! writer for the JSONL result stream. Objects preserve insertion order and
//! floats render through Rust's shortest-roundtrip `Display`, so the same
//! run always produces byte-identical output.

use std::fmt::Write as _;

/// A parsed JSON value. Objects keep their key order.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number (parsed as `f64`).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, as ordered key/value pairs.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Looks up a key in an object.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as a float, if numeric.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(x) => Some(*x),
            _ => None,
        }
    }

    /// The value as a non-negative integer, if numeric and integral. Values
    /// at or above 2^53 are rejected: distinct integers up there collide in
    /// the `f64` parse, and silently running with a corrupted seed is worse
    /// than a load-time error.
    pub fn as_u64(&self) -> Option<u64> {
        const MAX_EXACT: f64 = 9_007_199_254_740_992.0; // 2^53
        match self {
            Json::Num(x) if *x >= 0.0 && x.fract() == 0.0 && *x < MAX_EXACT => Some(*x as u64),
            _ => None,
        }
    }

    /// The value as a string slice.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as a bool.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The value as an array slice.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(v) => Some(v),
            _ => None,
        }
    }

    /// The value as an object's key/value pairs (insertion order).
    pub fn as_obj(&self) -> Option<&[(String, Json)]> {
        match self {
            Json::Obj(pairs) => Some(pairs),
            _ => None,
        }
    }

    /// Whether the value is `null`.
    pub fn is_null(&self) -> bool {
        matches!(self, Json::Null)
    }

    /// Parses a JSON document.
    ///
    /// # Errors
    ///
    /// Returns a message with the byte offset of the first syntax error.
    pub fn parse(input: &str) -> Result<Json, String> {
        let mut p = Parser { bytes: input.as_bytes(), pos: 0 };
        p.skip_ws();
        let v = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(format!("trailing data at byte {}", p.pos));
        }
        Ok(v)
    }

    /// Renders the value compactly (no whitespace), deterministically.
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.render_into(&mut out);
        out
    }

    fn render_into(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(true) => out.push_str("true"),
            Json::Bool(false) => out.push_str("false"),
            Json::Num(x) => out.push_str(&fmt_f64(*x)),
            Json::Str(s) => render_str(s, out),
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.render_into(out);
                }
                out.push(']');
            }
            Json::Obj(pairs) => {
                out.push('{');
                for (i, (k, v)) in pairs.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    render_str(k, out);
                    out.push(':');
                    v.render_into(out);
                }
                out.push('}');
            }
        }
    }
}

/// Formats a float deterministically: integral values drop the fraction
/// (`3` not `3.0` — matching hand-written specs), non-finite values become
/// `null` (JSON has no NaN/Inf).
pub fn fmt_f64(x: f64) -> String {
    if !x.is_finite() {
        return "null".to_string();
    }
    if x.fract() == 0.0 && x.abs() < 1e15 {
        let mut s = String::new();
        let _ = write!(s, "{}", x as i64);
        s
    } else {
        let mut s = String::new();
        let _ = write!(s, "{x}");
        s
    }
}

fn render_str(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            // cia-lint: allow(D05, char scalar values are at most 21 bits; u32 holds every codepoint)
            c if (c as u32) < 0x20 => {
                // cia-lint: allow(D05, char scalar values are at most 21 bits; u32 holds every codepoint)
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected `{}` at byte {}", b as char, self.pos))
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'n') => self.literal("null", Json::Null),
            Some(b) if b == b'-' || b.is_ascii_digit() => self.number(),
            _ => Err(format!("unexpected input at byte {}", self.pos)),
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(format!("invalid literal at byte {}", self.pos))
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        while let Some(b) = self.peek() {
            if b.is_ascii_digit() || matches!(b, b'-' | b'+' | b'.' | b'e' | b'E') {
                self.pos += 1;
            } else {
                break;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| format!("invalid number at byte {start}"))?;
        text.parse::<f64>()
            .map(Json::Num)
            .map_err(|_| format!("invalid number `{text}` at byte {start}"))
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let Some(b) = self.peek() else {
                return Err("unterminated string".to_string());
            };
            self.pos += 1;
            match b {
                b'"' => return Ok(out),
                b'\\' => {
                    let Some(esc) = self.peek() else {
                        return Err("unterminated escape".to_string());
                    };
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'u' => {
                            let end = self.pos + 4;
                            let hex = self
                                .bytes
                                .get(self.pos..end)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .ok_or_else(|| format!("bad \\u escape at byte {}", self.pos))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| format!("bad \\u escape at byte {}", self.pos))?;
                            // Surrogate pairs are out of scope for spec files.
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                            self.pos = end;
                        }
                        other => return Err(format!("bad escape `\\{}`", other as char)),
                    }
                }
                b if b < 0x80 => out.push(b as char),
                _ => {
                    // Multi-byte UTF-8: re-decode from the byte before.
                    let rest = &self.bytes[self.pos - 1..];
                    let s = std::str::from_utf8(rest)
                        .map_err(|_| format!("invalid UTF-8 at byte {}", self.pos - 1))?;
                    let c = s.chars().next().expect("non-empty");
                    out.push(c);
                    self.pos += c.len_utf8() - 1;
                }
            }
        }
    }

    fn array(&mut self) -> Result<Json, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(format!("expected `,` or `]` at byte {}", self.pos)),
            }
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.expect(b'{')?;
        let mut pairs = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            pairs.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(pairs));
                }
                _ => return Err(format!("expected `,` or `}}` at byte {}", self.pos)),
            }
        }
    }
}

/// Convenience builder for ordered JSON objects (the JSONL records).
#[derive(Debug, Default)]
pub struct ObjBuilder {
    pairs: Vec<(String, Json)>,
}

impl ObjBuilder {
    /// An empty object builder.
    pub fn new() -> Self {
        ObjBuilder::default()
    }

    /// Appends a string field.
    pub fn str(mut self, key: &str, value: &str) -> Self {
        self.pairs.push((key.to_string(), Json::Str(value.to_string())));
        self
    }

    /// Appends a numeric field.
    pub fn num(mut self, key: &str, value: f64) -> Self {
        self.pairs.push((key.to_string(), Json::Num(value)));
        self
    }

    /// Appends a boolean field.
    pub fn bool(mut self, key: &str, value: bool) -> Self {
        self.pairs.push((key.to_string(), Json::Bool(value)));
        self
    }

    /// Appends an already-built value.
    pub fn value(mut self, key: &str, value: Json) -> Self {
        self.pairs.push((key.to_string(), value));
        self
    }

    /// Finishes the object.
    pub fn build(self) -> Json {
        Json::Obj(self.pairs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrips_a_nested_document() {
        let src = r#"{"a": [1, 2.5, -3e2], "b": {"c": null, "d": true}, "e": "x\"y\n"}"#;
        let v = Json::parse(src).unwrap();
        assert_eq!(v.get("a").unwrap().as_arr().unwrap().len(), 3);
        assert_eq!(v.get("b").unwrap().get("d").unwrap().as_bool(), Some(true));
        assert_eq!(v.get("e").unwrap().as_str(), Some("x\"y\n"));
        // Render → parse → render is a fixed point.
        let rendered = v.render();
        let reparsed = Json::parse(&rendered).unwrap();
        assert_eq!(reparsed.render(), rendered);
    }

    #[test]
    fn rejects_malformed_input() {
        assert!(Json::parse("{").is_err());
        assert!(Json::parse("[1,]").is_err());
        assert!(Json::parse("{\"a\" 1}").is_err());
        assert!(Json::parse("nul").is_err());
        assert!(Json::parse("1 2").is_err());
    }

    #[test]
    fn u64_beyond_f64_precision_is_rejected() {
        // 2^53 + 1 collides with 2^53 in the f64 parse; refusing the whole
        // ambiguous range beats silently running a different seed than the
        // spec states.
        assert_eq!(Json::parse("9007199254740993").unwrap().as_u64(), None);
        assert_eq!(Json::parse("9007199254740992").unwrap().as_u64(), None);
        assert_eq!(Json::parse("9007199254740991").unwrap().as_u64(), Some((1 << 53) - 1));
        assert_eq!(Json::parse("42").unwrap().as_u64(), Some(42));
    }

    #[test]
    fn float_formatting_is_integral_when_possible() {
        assert_eq!(fmt_f64(3.0), "3");
        assert_eq!(fmt_f64(0.25), "0.25");
        assert_eq!(fmt_f64(-2.0), "-2");
        assert_eq!(fmt_f64(f64::NAN), "null");
    }

    #[test]
    fn builder_preserves_order() {
        let obj = ObjBuilder::new().str("z", "1").num("a", 2.0).bool("m", false).build();
        assert_eq!(obj.render(), r#"{"z":"1","a":2,"m":false}"#);
    }

    #[test]
    fn unicode_strings_survive() {
        let v = Json::parse(r#""héllo ☂""#).unwrap();
        assert_eq!(v.as_str(), Some("héllo ☂"));
        assert_eq!(Json::parse(r#""A""#).unwrap().as_str(), Some("A"));
    }
}
