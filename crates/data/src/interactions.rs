//! Implicit-feedback interaction data.
//!
//! Following the paper (§V-A), all observed interactions are binarized: a
//! user/item pair is either observed (`1`) or unobserved (`0`). A [`Dataset`]
//! stores, per user, the *set* of observed items (sorted, deduplicated) and —
//! for point-of-interest data — the chronological *sequence* of check-ins used
//! to train the sequential PRME model.

use crate::categories::CategoryMap;
use crate::{DataError, ItemId, UserId};
use serde::{Deserialize, Serialize};

/// Interactions of a single user.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct UserRecord {
    /// Sorted, deduplicated observed item ids.
    items: Vec<u32>,
    /// Chronological check-in sequence (may contain repeats). Empty for
    /// rating-style data such as MovieLens.
    sequence: Vec<u32>,
}

impl UserRecord {
    /// Builds a record from raw interactions; items are sorted and deduplicated.
    pub fn new(mut items: Vec<u32>, sequence: Vec<u32>) -> Self {
        items.sort_unstable();
        items.dedup();
        UserRecord { items, sequence }
    }

    /// The user's observed item set (sorted, unique).
    pub fn items(&self) -> &[u32] {
        &self.items
    }

    /// The chronological check-in sequence (empty for rating data).
    pub fn sequence(&self) -> &[u32] {
        &self.sequence
    }

    /// Number of distinct observed items.
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// Whether the user has no interactions.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// Whether the user has observed `item` (binary search).
    pub fn contains(&self, item: u32) -> bool {
        self.items.binary_search(&item).is_ok()
    }
}

/// An implicit-feedback dataset: one [`UserRecord`] per user plus catalog
/// metadata.
///
/// ```
/// use cia_data::{Dataset, UserRecord};
///
/// let users = vec![
///     UserRecord::new(vec![0, 2, 1], vec![]),
///     UserRecord::new(vec![3], vec![]),
/// ];
/// let data = Dataset::new("toy", 4, users).unwrap();
/// assert_eq!(data.num_users(), 2);
/// assert_eq!(data.user(cia_data::UserId::new(0)).items(), &[0, 1, 2]);
/// ```
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Dataset {
    name: String,
    num_items: u32,
    users: Vec<UserRecord>,
    categories: Option<CategoryMap>,
    /// Planted community label per user (generator diagnostics only; the
    /// attack never reads this — ground truth is recomputed via Jaccard).
    planted: Option<Vec<u32>>,
}

impl Dataset {
    /// Creates a dataset, validating that every referenced item is in range.
    ///
    /// # Errors
    ///
    /// Returns [`DataError::ItemOutOfRange`] if any interaction references an
    /// item `>= num_items`.
    pub fn new(
        name: impl Into<String>,
        num_items: u32,
        users: Vec<UserRecord>,
    ) -> Result<Self, DataError> {
        for rec in &users {
            for &it in rec.items().iter().chain(rec.sequence().iter()) {
                if it >= num_items {
                    return Err(DataError::ItemOutOfRange { item: it, num_items });
                }
            }
        }
        Ok(Dataset { name: name.into(), num_items, users, categories: None, planted: None })
    }

    /// Attaches a semantic category map (see [`crate::CategoryMap`]).
    ///
    /// # Panics
    ///
    /// Panics if the map does not cover exactly `num_items` items.
    pub fn with_categories(mut self, categories: CategoryMap) -> Self {
        assert_eq!(
            categories.num_items(),
            self.num_items as usize,
            "category map must cover the catalog"
        );
        self.categories = Some(categories);
        self
    }

    /// Attaches planted community labels (generator diagnostics).
    ///
    /// # Panics
    ///
    /// Panics if `labels.len() != num_users()`.
    pub fn with_planted_communities(mut self, labels: Vec<u32>) -> Self {
        assert_eq!(labels.len(), self.users.len(), "one label per user");
        self.planted = Some(labels);
        self
    }

    /// Human-readable dataset name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of users.
    pub fn num_users(&self) -> usize {
        self.users.len()
    }

    /// Catalog size.
    pub fn num_items(&self) -> u32 {
        self.num_items
    }

    /// The record of user `u`.
    ///
    /// # Panics
    ///
    /// Panics if `u` is out of range.
    pub fn user(&self, u: UserId) -> &UserRecord {
        &self.users[u.index()]
    }

    /// Iterates over `(UserId, &UserRecord)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (UserId, &UserRecord)> {
        // cia-lint: allow(D05, ids and indices are bounded by the validated population/catalog size, which fits u32)
        self.users.iter().enumerate().map(|(i, r)| (UserId::new(i as u32), r))
    }

    /// All user records, indexed by user id.
    pub fn records(&self) -> &[UserRecord] {
        &self.users
    }

    /// Semantic categories, if attached.
    pub fn categories(&self) -> Option<&CategoryMap> {
        self.categories.as_ref()
    }

    /// Planted community labels, if attached.
    pub fn planted_communities(&self) -> Option<&[u32]> {
        self.planted.as_deref()
    }

    /// Total number of observed (user, item) interactions.
    pub fn num_interactions(&self) -> usize {
        self.users.iter().map(UserRecord::len).sum()
    }

    /// Summary statistics (the paper's Table I row for this dataset).
    pub fn stats(&self) -> DatasetStats {
        let n = self.num_users();
        let total = self.num_interactions();
        let min = self.users.iter().map(UserRecord::len).min().unwrap_or(0);
        let max = self.users.iter().map(UserRecord::len).max().unwrap_or(0);
        let density = if n == 0 || self.num_items == 0 {
            0.0
        } else {
            total as f64 / (n as f64 * self.num_items as f64)
        };
        DatasetStats {
            name: self.name.clone(),
            users: n,
            items: self.num_items as usize,
            interactions: total,
            min_per_user: min,
            max_per_user: max,
            mean_per_user: if n == 0 { 0.0 } else { total as f64 / n as f64 },
            density,
        }
    }

    /// Items of user `u` as typed ids.
    pub fn items_of(&self, u: UserId) -> impl Iterator<Item = ItemId> + '_ {
        self.users[u.index()].items().iter().map(|&i| ItemId::new(i))
    }
}

/// Summary statistics of a dataset (one row of the paper's Table I).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DatasetStats {
    /// Dataset name.
    pub name: String,
    /// Number of users.
    pub users: usize,
    /// Catalog size.
    pub items: usize,
    /// Total observed interactions.
    pub interactions: usize,
    /// Minimum interactions per user.
    pub min_per_user: usize,
    /// Maximum interactions per user.
    pub max_per_user: usize,
    /// Mean interactions per user.
    pub mean_per_user: f64,
    /// Fraction of the user x item matrix that is observed.
    pub density: f64,
}

impl std::fmt::Display for DatasetStats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{}: {} users, {} items, {} interactions ({:.1}/user, density {:.4})",
            self.name, self.users, self.items, self.interactions, self.mean_per_user, self.density
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toy() -> Dataset {
        Dataset::new(
            "toy",
            5,
            vec![
                UserRecord::new(vec![4, 0, 0, 2], vec![0, 2, 4]),
                UserRecord::new(vec![1, 3], vec![]),
                UserRecord::new(vec![], vec![]),
            ],
        )
        .unwrap()
    }

    #[test]
    fn dedups_and_sorts_items() {
        let d = toy();
        assert_eq!(d.user(UserId::new(0)).items(), &[0, 2, 4]);
        assert_eq!(d.user(UserId::new(0)).sequence(), &[0, 2, 4]);
    }

    #[test]
    fn rejects_out_of_range_items() {
        let err = Dataset::new("bad", 2, vec![UserRecord::new(vec![5], vec![])]).unwrap_err();
        assert_eq!(err, DataError::ItemOutOfRange { item: 5, num_items: 2 });
    }

    #[test]
    fn rejects_out_of_range_sequence_items() {
        let err = Dataset::new("bad", 2, vec![UserRecord::new(vec![0], vec![7])]).unwrap_err();
        assert!(matches!(err, DataError::ItemOutOfRange { item: 7, .. }));
    }

    #[test]
    fn stats_are_consistent() {
        let d = toy();
        let s = d.stats();
        assert_eq!(s.users, 3);
        assert_eq!(s.items, 5);
        assert_eq!(s.interactions, 5);
        assert_eq!(s.min_per_user, 0);
        assert_eq!(s.max_per_user, 3);
        assert!((s.mean_per_user - 5.0 / 3.0).abs() < 1e-12);
        assert!((s.density - 5.0 / 15.0).abs() < 1e-12);
        assert!(s.to_string().contains("toy"));
    }

    #[test]
    fn contains_uses_binary_search() {
        let d = toy();
        assert!(d.user(UserId::new(0)).contains(2));
        assert!(!d.user(UserId::new(0)).contains(3));
    }

    #[test]
    fn iter_yields_all_users_in_order() {
        let d = toy();
        let ids: Vec<u32> = d.iter().map(|(u, _)| u.raw()).collect();
        assert_eq!(ids, vec![0, 1, 2]);
    }
}
