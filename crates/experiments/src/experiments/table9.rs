//! Table IX — temporal complexity of CIA vs the MIA/AIA proxies:
//! the analytic cost model instantiated with unit costs *measured on this
//! machine*.

use crate::runner::{build_setup, ScaleParams};
use crate::tables::Table;
use cia_core::complexity::CostModel;
use cia_data::presets::{Preset, Scale};
use cia_models::{GmfHyper, GmfSpec, Mlp, MlpHyper, MlpSpec, RelevanceScorer};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::time::Instant;

/// Regenerates Table IX with measured unit costs.
pub fn run(scale: Scale, seed: u64) -> Vec<Table> {
    let setup = build_setup(Preset::MovieLens, scale, None, seed);
    let params = ScaleParams::of(scale);
    let spec = GmfSpec::new(setup.data.num_items(), params.dim, GmfHyper::default());
    let mut rng = StdRng::seed_from_u64(seed);
    let agg = spec.init_agg(&mut rng);
    let target = setup.split.train_sets()[0].clone();

    // T_M: training one fictive user embedding against public parameters.
    // cia-lint: allow(D02, Table 9 *is* a wall-clock measurement of attack cost; timing is the payload here)
    let start = Instant::now();
    let emb = spec
        .train_adversary_embedding(&agg, &target, None, &mut rng)
        .expect("GMF has user factors");
    let t_model = start.elapsed().as_secs_f64();

    // I_M: one relevance inference over the target set.
    // cia-lint: allow(D02, Table 9 *is* a wall-clock measurement of attack cost; timing is the payload here)
    let start = Instant::now();
    let iters = 100;
    for _ in 0..iters {
        std::hint::black_box(spec.mean_relevance(Some(&emb), &agg, &target));
    }
    let i_model = start.elapsed().as_secs_f64() / iters as f64;

    // T_C / I_C: the AIA gradient classifier on agg-sized inputs.
    let clf_spec = MlpSpec::new(vec![spec.agg_len(), 32, 16, 1]);
    let mut clf = Mlp::new(clf_spec.clone(), MlpHyper::default(), seed);
    let sample = vec![0.5f32; spec.agg_len()];
    // cia-lint: allow(D02, Table 9 *is* a wall-clock measurement of attack cost; timing is the payload here)
    let start = Instant::now();
    for _ in 0..10 {
        clf.train_binary(&[&sample], &[1.0]);
    }
    let t_classifier = start.elapsed().as_secs_f64() / 10.0 * 40.0; // ~40 samples x epochs
                                                                    // cia-lint: allow(D02, Table 9 *is* a wall-clock measurement of attack cost; timing is the payload here)
    let start = Instant::now();
    for _ in 0..iters {
        std::hint::black_box(clf.prob_binary(&sample));
    }
    let i_classifier = start.elapsed().as_secs_f64() / iters as f64;

    let d_max = setup.split.train_sets().iter().map(Vec::len).max().unwrap_or(0) as f64;
    let model = CostModel {
        t_model,
        i_model,
        t_classifier,
        i_classifier,
        users: setup.data.num_users() as f64,
        target_size: target.len() as f64,
        d_max,
        n_member: 20.0,
        m_nonmember: 20.0,
    };

    let mut units = Table::new(
        format!("Table IX (a) — measured unit costs ({scale} scale, this machine)"),
        &["Unit", "Seconds"],
    );
    units.row(vec!["T_M (train fictive embedding)".into(), format!("{t_model:.6}")]);
    units.row(vec!["I_M (one relevance inference)".into(), format!("{i_model:.9}")]);
    units.row(vec!["T_C (train AIA classifier)".into(), format!("{t_classifier:.6}")]);
    units.row(vec!["I_C (one classifier inference)".into(), format!("{i_classifier:.9}")]);

    let mut totals = Table::new(
        "Table IX (b) — composed attack costs (formulas of the paper)",
        &["Attack", "Temporal complexity", "Estimated seconds"],
    );
    totals.row(vec![
        "CIA".into(),
        "O(T_M) + O(I_M * |U| * |V_target|)".into(),
        format!("{:.4}", model.cia()),
    ]);
    totals.row(vec![
        "MIA".into(),
        "O(T_M) + O(I_M * |U| * D_max)".into(),
        format!("{:.4}", model.mia()),
    ]);
    totals.row(vec![
        "AIA".into(),
        "O(T_M * (N+M)) + O(T_C) + O(I_C * |U|)".into(),
        format!("{:.4}", model.aia()),
    ]);
    vec![units, totals]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_complexity_is_measured_and_ordered() {
        let tables = run(Scale::Smoke, 3);
        assert_eq!(tables.len(), 2);
        let secs: Vec<f64> = tables[1].rows.iter().map(|r| r[2].parse::<f64>().unwrap()).collect();
        // CIA <= MIA always (|V_target| <= D_max by construction).
        assert!(secs[0] <= secs[1] + 1e-9, "cia {} > mia {}", secs[0], secs[1]);
        assert!(secs.iter().all(|s| *s >= 0.0));
    }
}
