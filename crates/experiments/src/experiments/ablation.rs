//! Ablations beyond the paper: how the attack responds to (a) the hardness
//! of the community structure and (b) the momentum coefficient.
//!
//! (a) sweeps the generator's topic affinity — the probability that a user's
//! interaction comes from their community's topic cluster. At 0.0 there are
//! no communities to find and CIA must collapse to the random bound; the
//! paper's real datasets sit somewhere on this curve.
//!
//! (b) sweeps β of Eq. 4 in the federated setting, quantifying the
//! anchor-on-early-models effect discussed in `EXPERIMENTS.md` (Table VI).

use crate::runner::ScaleParams;
use crate::tables::{pct, Table};
use cia_core::{CiaConfig, FlCia, ItemSetEvaluator};
use cia_data::presets::Scale;
use cia_data::{GroundTruth, LeaveOneOut, SyntheticConfig, UserId};
use cia_federated::{FedAvg, FedAvgConfig};
use cia_models::{GmfHyper, GmfSpec, SharingPolicy};

fn fl_max_aac(scale: Scale, seed: u64, affinity: f64, beta: f32) -> (f64, f64) {
    let params = ScaleParams::of(scale);
    let (users, items, ipu) = match scale {
        Scale::Smoke => (48, 160, 12),
        Scale::Small => (200, 400, 30),
        // Experiments cap at the paper shape; `Scale::Million` is bench-only.
        Scale::Paper | Scale::Million => (943, 1682, 106),
    };
    let data = SyntheticConfig::builder()
        .name(format!("ablation affinity={affinity}"))
        .users(users)
        .items(items)
        .communities((users / 20).clamp(4, 48))
        .interactions_per_user(ipu)
        .topic_affinity(affinity)
        .seed(seed)
        .build()
        .generate();
    let split = LeaveOneOut::new(&data, params.eval_negatives, seed ^ 0x5EED).unwrap();
    let k = params.k.min(users - 2);
    let truth = GroundTruth::from_train_sets(split.train_sets(), k);
    let spec =
        GmfSpec::new(data.num_items(), params.dim, GmfHyper { lr: 0.1, ..GmfHyper::default() });
    let clients: Vec<_> = split
        .train_sets()
        .iter()
        .enumerate()
        .map(|(u, its)| {
            spec.build_client(
                // cia-lint: allow(D05, ids and indices are bounded by the validated population/catalog size, which fits u32)
                UserId::new(u as u32),
                its.clone(),
                SharingPolicy::Full,
                seed ^ (u as u64).wrapping_mul(0xD6E8_FEB8),
            )
        })
        .collect();
    let evaluator = ItemSetEvaluator::new(spec, split.train_sets().to_vec(), false);
    let truths: Vec<_> =
        // cia-lint: allow(D05, ids and indices are bounded by the validated population/catalog size, which fits u32)
        (0..users as u32).map(|u| truth.community_of(UserId::new(u)).to_vec()).collect();
    // cia-lint: allow(D05, ids and indices are bounded by the validated population/catalog size, which fits u32)
    let owners: Vec<_> = (0..users as u32).map(|u| Some(UserId::new(u))).collect();
    let mut attack = FlCia::new(
        CiaConfig { k, beta, eval_every: params.fl_eval_every, seed },
        evaluator,
        users,
        truths,
        owners,
    );
    let mut sim = FedAvg::new(
        clients,
        FedAvgConfig {
            rounds: params.fl_rounds,
            local_epochs: params.local_epochs,
            seed,
            ..Default::default()
        },
    );
    sim.run(&mut attack);
    let out = attack.outcome();
    (out.max_aac, out.random_bound)
}

/// Regenerates both ablation tables.
pub fn run(scale: Scale, seed: u64) -> Vec<Table> {
    let mut hardness = Table::new(
        format!("Ablation (a) — community hardness vs CIA (FL, GMF, {scale} scale)"),
        &["Topic affinity", "Max AAC %", "Random bound %", "Advantage"],
    );
    for affinity in [0.0, 0.3, 0.5, 0.7, 0.8, 0.9] {
        let (aac, random) = fl_max_aac(scale, seed, affinity, 0.99);
        hardness.row(vec![
            format!("{affinity:.1}"),
            pct(aac),
            pct(random),
            format!("{:.1}x", if random > 0.0 { aac / random } else { 0.0 }),
        ]);
    }

    let mut momentum = Table::new(
        format!("Ablation (b) — momentum coefficient vs CIA (FL, GMF, {scale} scale)"),
        &["beta", "Max AAC %"],
    );
    for beta in [0.0f32, 0.5, 0.9, 0.99, 0.999] {
        let (aac, _) = fl_max_aac(scale, seed, 0.8, beta);
        momentum.row(vec![format!("{beta}"), pct(aac)]);
    }
    vec![hardness, momentum]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_no_structure_means_no_attack() {
        // Statistical smoke check; the seed picks a draw where the
        // flat-vs-strong margin is comfortably away from the pass threshold.
        let tables = run(Scale::Smoke, 1);
        let rows = &tables[0].rows;
        let aac_flat: f64 = rows[0][1].parse().unwrap();
        let aac_strong: f64 = rows[5][1].parse().unwrap();
        let random: f64 = rows[0][2].parse().unwrap();
        // With no planted structure CIA only finds the residual
        // popularity-driven overlap (the ground truth is itself Jaccard
        // similarity, so some signal always exists); with strong structure
        // it is clearly higher.
        assert!(aac_flat < 3.0 * random, "flat {aac_flat} vs random {random}");
        assert!(aac_strong > 1.3 * aac_flat, "strong {aac_strong} !> flat {aac_flat}");
    }

    #[test]
    fn smoke_momentum_sweep_has_five_rows() {
        let tables = run(Scale::Smoke, 3);
        assert_eq!(tables[1].rows.len(), 5);
    }
}
