//! CIA in the gossip setting (Algorithm 2): adversaries attack with the
//! models delivered to the node(s) they control.
//!
//! Two engines are provided:
//!
//! * [`GlCiaCoalition`] — paper-exact parameter momentum for a single
//!   adversary or a colluding coalition. Colluders multicast received models
//!   to each other (line 14 of Algorithm 2), modeled as one momentum table
//!   shared by the coalition.
//! * [`GlCiaAllPlacements`] — every node simultaneously plays the adversary
//!   with its own train set as the target (the paper's Table III protocol).
//!   To avoid O(N²) model copies the momentum (Eq. 4) is applied to
//!   relevance *scores* instead of parameters; `DESIGN.md` §3 documents the
//!   substitution and the test below checks the two engines agree.

use crate::evaluator::RelevanceEvaluator;
use crate::fl::{CiaAttackState, CiaConfig};
use crate::metrics::{community_accuracy, AttackOutcome, AttackTracker, RoundPoint};
use crate::momentum::MomentumState;
use cia_data::UserId;
use cia_gossip::{GossipObserver, GossipRoundStats};
use cia_models::parallel::{par_chunks_mut, par_map};
use cia_models::SharedModel;
use cia_obs::Recorder;
use cia_runtime::{Checkpointable, LivenessEvent};

/// Algorithm 2 with parameter momentum, for one adversary node or a coalition
/// of colluders.
pub struct GlCiaCoalition<E: RelevanceEvaluator> {
    cfg: CiaConfig,
    evaluator: E,
    truths: Vec<Vec<UserId>>,
    owners: Vec<Option<UserId>>,
    members: Vec<bool>,
    /// Shared momentum table, a dense slab indexed by sender id (`None` =
    /// sender never observed). The coalition multicasts received models, so
    /// all colluders share one view.
    momentum: Vec<Option<MomentumState>>,
    /// Flat `num_users × num_targets` relevance matrix reused across
    /// evaluation rounds; rows of unseen senders stay untouched.
    rel: Vec<f32>,
    /// The most recent wake mask delivered through
    /// [`GossipObserver::on_liveness`] — the dynamics layer's live set,
    /// feeding the per-round online upper bound. All-true until a mask
    /// arrives.
    live: Vec<bool>,
    tracker: AttackTracker,
    last_agg: Option<Vec<f32>>,
    prepared: bool,
    /// Metrics sink for the attack-phase spans (prepare/score/rank/update);
    /// a detached default until the runner wires in the shared recorder.
    obs: Recorder,
}

impl<E: RelevanceEvaluator> GlCiaCoalition<E> {
    /// Creates the attack. `members` lists the node ids the adversary
    /// controls (a single id for the lone-adversary setting).
    ///
    /// # Panics
    ///
    /// Panics on empty coalitions, misaligned truth tables, or `k == 0`.
    pub fn new(
        cfg: CiaConfig,
        evaluator: E,
        num_users: usize,
        members: &[u32],
        truths: Vec<Vec<UserId>>,
        owners: Vec<Option<UserId>>,
    ) -> Self {
        assert!(cfg.k > 0, "community size must be positive");
        assert!(cfg.eval_every > 0, "eval_every must be positive");
        assert!(!members.is_empty(), "coalition needs at least one member");
        assert_eq!(truths.len(), evaluator.num_targets(), "one truth per target");
        assert_eq!(owners.len(), evaluator.num_targets(), "one owner entry per target");
        let mut mask = vec![false; num_users];
        for &m in members {
            mask[m as usize] = true;
        }
        let candidates = num_users.saturating_sub(usize::from(owners.iter().any(Option::is_some)));
        GlCiaCoalition {
            tracker: AttackTracker::new(cfg.k, candidates),
            rel: vec![0.0; num_users * evaluator.num_targets()],
            live: vec![true; num_users],
            cfg,
            evaluator,
            truths,
            owners,
            members: mask,
            momentum: (0..num_users).map(|_| None).collect(),
            last_agg: None,
            prepared: false,
            obs: Recorder::new(),
        }
    }

    /// Routes the attack's spans into a shared recorder (the default sink is
    /// detached). Clones are cheap; all clones share one registry.
    pub fn set_recorder(&mut self, obs: Recorder) {
        self.obs = obs;
    }

    /// The attack summary.
    pub fn outcome(&self) -> AttackOutcome {
        self.tracker.outcome()
    }

    /// The evaluated per-round history so far.
    pub fn history(&self) -> &[RoundPoint] {
        self.tracker.history()
    }

    /// The relevance evaluator (checkpoint access to evaluator-side state).
    pub fn evaluator(&self) -> &E {
        &self.evaluator
    }

    /// Mutable access to the relevance evaluator (checkpoint resume).
    pub fn evaluator_mut(&mut self) -> &mut E {
        &mut self.evaluator
    }

    /// Number of distinct senders observed so far.
    pub fn senders_seen(&self) -> usize {
        self.momentum.iter().flatten().count()
    }

    /// The node ids the coalition currently controls, ascending.
    pub fn members(&self) -> Vec<u32> {
        // cia-lint: allow(D05, ids and indices are bounded by the validated population/catalog size, which fits u32)
        self.members.iter().enumerate().filter_map(|(i, &m)| m.then_some(i as u32)).collect()
    }

    /// Reassigns the coalition's controlled node ids mid-run (adaptive sybil
    /// placement). Only the delivery filter changes: the sender-keyed
    /// momentum table, the tracker history and the evaluator state all
    /// survive, so members retained across the relocation keep every
    /// observation and the score EMAs never reset.
    ///
    /// # Panics
    ///
    /// Panics on an empty membership or an out-of-range node id.
    pub fn set_members(&mut self, members: &[u32]) {
        assert!(!members.is_empty(), "coalition needs at least one member");
        self.members.iter_mut().for_each(|m| *m = false);
        for &m in members {
            self.members[m as usize] = true;
        }
    }

    fn evaluate(&mut self, round: u64) {
        if self.momentum.iter().all(Option::is_none) {
            self.tracker.record(round, &[0.0], &[0.0]);
            return;
        }
        let obs = self.obs.clone();
        let live = &self.live;
        if let Some(agg) = &self.last_agg {
            if !self.prepared || round.is_multiple_of((self.cfg.eval_every * 4).max(1)) {
                let _prepare = obs.span("attack_prepare");
                self.evaluator.prepare(agg, self.cfg.seed ^ round);
                self.prepared = true;
            }
        }
        let num_targets = self.evaluator.num_targets();
        if num_targets > 0 {
            let _score = obs.span("attack_score");
            let (rel, momentum, evaluator) = (&mut self.rel, &self.momentum, &self.evaluator);
            par_chunks_mut(rel, num_targets, |sender, row| {
                if let Some(m) = &momentum[sender] {
                    evaluator.relevance_all(m.emb(), m.agg(), row);
                }
            });
        }
        let _rank = obs.span("attack_rank");
        let mut accs = Vec::with_capacity(num_targets);
        let mut uppers = Vec::with_capacity(num_targets);
        let mut uppers_online = Vec::with_capacity(num_targets);
        for t in 0..num_targets {
            let mut scored: Vec<(f32, u32)> = self
                .momentum
                .iter()
                .enumerate()
                .filter_map(|(sender, m)| {
                    // cia-lint: allow(D05, ids and indices are bounded by the validated population/catalog size, which fits u32)
                    if m.is_none() || self.owners[t] == Some(UserId::new(sender as u32)) {
                        None
                    } else {
                        // cia-lint: allow(D05, ids and indices are bounded by the validated population/catalog size, which fits u32)
                        Some((self.rel[sender * num_targets + t], sender as u32))
                    }
                })
                .collect();
            scored.sort_by(crate::metrics::rank_desc);
            let predicted: Vec<UserId> =
                scored.into_iter().take(self.cfg.k).map(|(_, u)| UserId::new(u)).collect();
            accs.push(community_accuracy(&predicted, &self.truths[t], self.cfg.k));
            let seen = self.truths[t].iter().filter(|u| self.momentum[u.index()].is_some()).count();
            let seen_live = self.truths[t]
                .iter()
                .filter(|u| self.momentum[u.index()].is_some() && live[u.index()])
                .count();
            uppers.push(seen as f64 / self.cfg.k as f64);
            uppers_online.push(seen_live as f64 / self.cfg.k as f64);
        }
        self.tracker.record_with_online(round, &accs, &uppers, &uppers_online);
    }
}

/// Snapshot/restore of the coalition's mutable state for checkpoint/resume
/// (`last_global` carries the last observed delivery's parameters). Restoring
/// panics if the momentum table is not aligned with the participants.
impl<E: RelevanceEvaluator> Checkpointable for GlCiaCoalition<E> {
    type State = CiaAttackState;

    fn export_state(&self) -> CiaAttackState {
        CiaAttackState {
            momentum: self.momentum.clone(),
            history: self.tracker.history().to_vec(),
            last_global: self.last_agg.clone(),
            prepared: self.prepared,
        }
    }

    fn restore_state(&mut self, state: CiaAttackState) {
        assert_eq!(state.momentum.len(), self.momentum.len(), "momentum table size");
        self.momentum = state.momentum;
        self.tracker.restore_history(state.history);
        self.last_agg = state.last_global;
        self.prepared = state.prepared;
    }
}

impl<E: RelevanceEvaluator> GossipObserver for GlCiaCoalition<E> {
    fn on_liveness(&mut self, event: LivenessEvent<'_>) {
        if let LivenessEvent::ActingSet { mask, .. } = event {
            // One entry per node; mismatches must panic, not truncate.
            self.live.copy_from_slice(mask);
        }
    }

    fn on_delivery(&mut self, _round: u64, receiver: UserId, model: &SharedModel) {
        if !self.members[receiver.index()] {
            return;
        }
        let _update = self.obs.span("attack_update");
        // Colluders never rank themselves... but they do observe each other's
        // honest models; keep those (they are genuine participants).
        self.last_agg = Some(model.agg.clone());
        match &mut self.momentum[model.owner.index()] {
            Some(state) => state.update(self.cfg.beta, model),
            slot @ None => *slot = Some(MomentumState::from_snapshot(model)),
        }
    }

    fn on_round_end(&mut self, stats: &GossipRoundStats) {
        if (stats.round + 1).is_multiple_of(self.cfg.eval_every) {
            self.evaluate(stats.round);
        }
    }
}

/// Serializable snapshot of an all-placements sweep's mutable state
/// (checkpoint/resume counterpart of [`CiaAttackState`]).
#[derive(Debug, Clone)]
pub struct PlacementsState {
    /// Dense score EMAs (`NaN` = never seen).
    pub s_ema: Vec<f32>,
    /// Evaluated history recorded so far.
    pub history: Vec<RoundPoint>,
    /// Whether the evaluator has been prepared at least once.
    pub prepared: bool,
}

/// The all-placements sweep: node `u` attacks with its own train set as
/// `V_target`, for every `u` simultaneously, applying the momentum to
/// relevance scores (score-EMA; see the module docs).
pub struct GlCiaAllPlacements<E: RelevanceEvaluator> {
    cfg: CiaConfig,
    evaluator: E,
    truths: Vec<Vec<UserId>>,
    /// Dense score EMAs: `s[observer * n + sender]`, NaN = never seen.
    s_ema: Vec<f32>,
    num_users: usize,
    /// Latest wake mask (see [`GlCiaCoalition`]'s `live` field).
    live: Vec<bool>,
    tracker: AttackTracker,
    prepared: bool,
    /// Metrics sink for the attack-phase spans (prepare/rank/update); a
    /// detached default until the runner wires in the shared recorder.
    obs: Recorder,
}

impl<E: RelevanceEvaluator> GlCiaAllPlacements<E> {
    /// Creates the sweep; the evaluator must register exactly one target per
    /// node (node `u`'s target is its own train set).
    ///
    /// # Panics
    ///
    /// Panics if the evaluator's target count differs from `num_users` or
    /// the truth table is misaligned.
    pub fn new(cfg: CiaConfig, evaluator: E, num_users: usize, truths: Vec<Vec<UserId>>) -> Self {
        assert!(cfg.k > 0, "community size must be positive");
        assert!(cfg.eval_every > 0, "eval_every must be positive");
        assert_eq!(evaluator.num_targets(), num_users, "one target per node");
        assert_eq!(truths.len(), num_users, "one truth per node");
        GlCiaAllPlacements {
            tracker: AttackTracker::new(cfg.k, num_users.saturating_sub(1)),
            cfg,
            evaluator,
            truths,
            s_ema: vec![f32::NAN; num_users * num_users],
            num_users,
            live: vec![true; num_users],
            prepared: false,
            obs: Recorder::new(),
        }
    }

    /// Routes the sweep's spans into a shared recorder (the default sink is
    /// detached). Clones are cheap; all clones share one registry.
    pub fn set_recorder(&mut self, obs: Recorder) {
        self.obs = obs;
    }

    /// The attack summary (AAC averaged over all adversary placements).
    pub fn outcome(&self) -> AttackOutcome {
        self.tracker.outcome()
    }

    /// The evaluated per-round history so far.
    pub fn history(&self) -> &[RoundPoint] {
        self.tracker.history()
    }

    /// The relevance evaluator (checkpoint access to evaluator-side state).
    pub fn evaluator(&self) -> &E {
        &self.evaluator
    }

    /// Mutable access to the relevance evaluator (checkpoint resume).
    pub fn evaluator_mut(&mut self) -> &mut E {
        &mut self.evaluator
    }

    fn evaluate(&mut self, round: u64) {
        let _rank = self.obs.span("attack_rank");
        let n = self.num_users;
        let k = self.cfg.k;
        // Accuracy covers every placement (the paper's AAC); the coverage
        // bounds cover only observers with at least one observation — an
        // observer that never heard anything (offline the whole window under
        // churn, say) has no vantage point, and averaging its zero into the
        // bound would conflate "offline" with "zero coverage".
        let results: Vec<(f64, Option<(f64, f64)>)> = par_map(n, |obs| {
            let row = &self.s_ema[obs * n..(obs + 1) * n];
            let mut scored: Vec<(f32, u32)> = row
                .iter()
                .enumerate()
                .filter(|(_, s)| !s.is_nan())
                // cia-lint: allow(D05, ids and indices are bounded by the validated population/catalog size, which fits u32)
                .map(|(u, &s)| (s, u as u32))
                .collect();
            if scored.is_empty() {
                return (0.0, None);
            }
            scored.sort_by(crate::metrics::rank_desc);
            let predicted: Vec<UserId> =
                scored.into_iter().take(k).map(|(_, u)| UserId::new(u)).collect();
            let acc = community_accuracy(&predicted, &self.truths[obs], k);
            let seen = self.truths[obs].iter().filter(|u| !row[u.index()].is_nan()).count();
            let seen_live = self.truths[obs]
                .iter()
                .filter(|u| !row[u.index()].is_nan() && self.live[u.index()])
                .count();
            (acc, Some((seen as f64 / k as f64, seen_live as f64 / k as f64)))
        });
        let accs: Vec<f64> = results.iter().map(|r| r.0).collect();
        let uppers: Vec<f64> = results.iter().filter_map(|r| r.1.map(|b| b.0)).collect();
        let uppers_online: Vec<f64> = results.iter().filter_map(|r| r.1.map(|b| b.1)).collect();
        self.tracker.record_with_online(round, &accs, &uppers, &uppers_online);
    }
}

/// Snapshot/restore of the sweep's mutable state for checkpoint/resume.
/// Restoring panics if the score table is not aligned with the participants.
impl<E: RelevanceEvaluator> Checkpointable for GlCiaAllPlacements<E> {
    type State = PlacementsState;

    fn export_state(&self) -> PlacementsState {
        PlacementsState {
            s_ema: self.s_ema.clone(),
            history: self.tracker.history().to_vec(),
            prepared: self.prepared,
        }
    }

    fn restore_state(&mut self, state: PlacementsState) {
        assert_eq!(state.s_ema.len(), self.s_ema.len(), "score table size");
        self.s_ema = state.s_ema;
        self.tracker.restore_history(state.history);
        self.prepared = state.prepared;
    }
}

impl<E: RelevanceEvaluator> GossipObserver for GlCiaAllPlacements<E> {
    fn on_liveness(&mut self, event: LivenessEvent<'_>) {
        if let LivenessEvent::ActingSet { mask, .. } = event {
            // One entry per node; mismatches must panic, not truncate.
            self.live.copy_from_slice(mask);
        }
    }

    fn on_delivery(&mut self, _round: u64, receiver: UserId, model: &SharedModel) {
        let _update = self.obs.span("attack_update");
        if !self.prepared {
            // Share-less fictive embeddings need public parameters; the first
            // delivered model provides them (refreshed lazily afterwards).
            self.evaluator.prepare(&model.agg, self.cfg.seed);
            self.prepared = true;
        }
        let obs = receiver.index();
        let y = self.evaluator.relevance_one(model.owner_emb.as_deref(), &model.agg, obs);
        let slot = &mut self.s_ema[obs * self.num_users + model.owner.index()];
        if slot.is_nan() {
            *slot = y;
        } else {
            *slot = self.cfg.beta * *slot + (1.0 - self.cfg.beta) * y;
        }
    }

    fn on_round_end(&mut self, stats: &GossipRoundStats) {
        if (stats.round + 1).is_multiple_of(self.cfg.eval_every) {
            self.evaluate(stats.round);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::evaluator::ItemSetEvaluator;
    use cia_data::{GroundTruth, LeaveOneOut, SyntheticConfig};
    use cia_gossip::{GossipConfig, GossipSim};
    use cia_models::{GmfClient, GmfHyper, GmfSpec, SharingPolicy};

    struct Setup {
        clients: Vec<GmfClient>,
        spec: GmfSpec,
        train_sets: Vec<Vec<u32>>,
        truths: Vec<Vec<UserId>>,
        users: usize,
        k: usize,
    }

    fn setup(users: usize, k: usize, seed: u64) -> Setup {
        let data = SyntheticConfig::builder()
            .users(users)
            .items(120)
            .communities(6)
            .interactions_per_user(14)
            .seed(seed)
            .build()
            .generate();
        let split = LeaveOneOut::new(&data, 10, 3).unwrap();
        let gt = GroundTruth::from_train_sets(split.train_sets(), k);
        let spec = GmfSpec::new(120, 8, GmfHyper::default());
        let clients: Vec<_> = split
            .train_sets()
            .iter()
            .enumerate()
            .map(|(u, items)| {
                spec.build_client(
                    // cia-lint: allow(D05, ids and indices are bounded by the validated population/catalog size, which fits u32)
                    UserId::new(u as u32),
                    items.clone(),
                    SharingPolicy::Full,
                    u as u64,
                )
            })
            .collect();
        let truths: Vec<Vec<UserId>> =
            // cia-lint: allow(D05, ids and indices are bounded by the validated population/catalog size, which fits u32)
            (0..users).map(|u| gt.community_of(UserId::new(u as u32)).to_vec()).collect();
        Setup { clients, spec, train_sets: split.train_sets().to_vec(), truths, users, k }
    }

    #[test]
    fn all_placements_beats_random_on_planted_communities() {
        let s = setup(36, 5, 11);
        let evaluator = ItemSetEvaluator::new(s.spec.clone(), s.train_sets.clone(), false);
        let mut attack = GlCiaAllPlacements::new(
            CiaConfig { k: s.k, beta: 0.9, eval_every: 5, seed: 0 },
            evaluator,
            s.users,
            s.truths.clone(),
        );
        let mut sim =
            GossipSim::new(s.clients, GossipConfig { rounds: 40, seed: 3, ..Default::default() });
        sim.run(&mut attack);
        let out = attack.outcome();
        assert!(
            out.max_aac > 1.5 * out.random_bound,
            "GL attack did not beat random: {} vs {}",
            out.max_aac,
            out.random_bound
        );
        // Gossip adversaries see only part of the network early on.
        assert!(out.upper_bound <= 1.0);
    }

    #[test]
    fn coalition_sees_more_senders_than_lone_adversary() {
        let s = setup(30, 4, 5);
        let make = |members: Vec<u32>, clients: Vec<GmfClient>| {
            let evaluator = ItemSetEvaluator::new(s.spec.clone(), s.train_sets.clone(), false);
            let owners: Vec<Option<UserId>> =
                // cia-lint: allow(D05, ids and indices are bounded by the validated population/catalog size, which fits u32)
                (0..s.users).map(|u| Some(UserId::new(u as u32))).collect();
            let mut attack = GlCiaCoalition::new(
                CiaConfig { k: s.k, beta: 0.9, eval_every: 5, seed: 0 },
                evaluator,
                s.users,
                &members,
                s.truths.clone(),
                owners,
            );
            let mut sim =
                GossipSim::new(clients, GossipConfig { rounds: 25, seed: 7, ..Default::default() });
            sim.run(&mut attack);
            (attack.senders_seen(), attack.outcome())
        };
        let (seen_single, out_single) = make(vec![0], setup(30, 4, 5).clients);
        let (seen_coal, out_coal) = make(vec![0, 7, 14, 21, 28], s.clients);
        assert!(
            seen_coal > seen_single,
            "coalition saw {seen_coal} senders vs single {seen_single}"
        );
        assert!(out_coal.upper_bound >= out_single.upper_bound);
    }

    #[test]
    fn score_and_param_momentum_agree_on_rankings() {
        // With beta = 0 both engines rank by the latest delivered model, so
        // a lone adversary's coalition ranking must match the all-placements
        // row for that observer.
        let s = setup(24, 4, 9);
        let adversary = 3u32;

        let eval_all = ItemSetEvaluator::new(s.spec.clone(), s.train_sets.clone(), false);
        let mut all = GlCiaAllPlacements::new(
            CiaConfig { k: s.k, beta: 0.0, eval_every: 1000, seed: 0 },
            eval_all,
            s.users,
            s.truths.clone(),
        );
        let eval_coal = ItemSetEvaluator::new(s.spec.clone(), s.train_sets.clone(), false);
        let owners: Vec<Option<UserId>> =
            // cia-lint: allow(D05, ids and indices are bounded by the validated population/catalog size, which fits u32)
            (0..s.users).map(|u| Some(UserId::new(u as u32))).collect();
        let mut coal = GlCiaCoalition::new(
            CiaConfig { k: s.k, beta: 0.0, eval_every: 1000, seed: 0 },
            eval_coal,
            s.users,
            &[adversary],
            s.truths.clone(),
            owners,
        );

        // Drive both with the same simulated run.
        struct Tee<'a, A: GossipObserver, B: GossipObserver>(&'a mut A, &'a mut B);
        impl<A: GossipObserver, B: GossipObserver> GossipObserver for Tee<'_, A, B> {
            fn on_delivery(&mut self, round: u64, receiver: UserId, model: &SharedModel) {
                self.0.on_delivery(round, receiver, model);
                self.1.on_delivery(round, receiver, model);
            }
            fn on_round_end(&mut self, stats: &GossipRoundStats) {
                self.0.on_round_end(stats);
                self.1.on_round_end(stats);
            }
        }
        let mut sim =
            GossipSim::new(s.clients, GossipConfig { rounds: 12, seed: 13, ..Default::default() });
        {
            let mut tee = Tee(&mut all, &mut coal);
            sim.run(&mut tee);
        }

        // Compare the adversary's own-target ranking from both engines.
        let n = s.users;
        let row = &all.s_ema[adversary as usize * n..(adversary as usize + 1) * n];
        let mut from_scores: Vec<(f32, u32)> = row
            .iter()
            .enumerate()
            .filter(|(_, v)| !v.is_nan())
            // cia-lint: allow(D05, ids and indices are bounded by the validated population/catalog size, which fits u32)
            .map(|(u, &v)| (v, u as u32))
            .collect();
        from_scores.sort_by(crate::metrics::rank_desc);
        let pred_scores: Vec<u32> = from_scores.into_iter().take(s.k).map(|(_, u)| u).collect();

        let mut from_params: Vec<(f32, u32)> = coal
            .momentum
            .iter()
            .enumerate()
            // cia-lint: allow(D05, ids and indices are bounded by the validated population/catalog size, which fits u32)
            .filter_map(|(u, m)| m.as_ref().map(|m| (u as u32, m)))
            .filter(|(u, _)| *u != adversary)
            .map(|(u, m)| (coal.evaluator.relevance_one(m.emb(), m.agg(), adversary as usize), u))
            .collect();
        from_params.sort_by(crate::metrics::rank_desc);
        let pred_params: Vec<u32> = from_params.into_iter().take(s.k).map(|(_, u)| u).collect();

        assert_eq!(pred_scores, pred_params);
    }

    #[test]
    fn bound_excludes_observers_that_saw_nothing() {
        // Regression: the coverage bound used to average in a zero for every
        // observer with an empty row, so one active adversary among n nodes
        // reported a bound deflated by a factor of n under churn. Only
        // observers with at least one observation may contribute.
        use cia_models::Participant;
        let s = setup(12, 2, 3);
        let evaluator = ItemSetEvaluator::new(s.spec.clone(), s.train_sets.clone(), false);
        let mut all = GlCiaAllPlacements::new(
            CiaConfig { k: 2, beta: 0.9, eval_every: 1, seed: 0 },
            evaluator,
            s.users,
            s.truths.clone(),
        );
        // Observer 0 hears from every node; everyone else hears nothing.
        for sender in 1..s.users {
            let snap = s.clients[sender].snapshot(0);
            all.on_delivery(0, UserId::new(0), &snap);
        }
        all.on_round_end(&GossipRoundStats {
            round: 0,
            awake: 12,
            deliveries: 11,
            mean_loss: None,
            bytes_materialized: 0,
        });
        let p = &all.history()[0];
        // Observer 0 has seen 11 of 12 users — its own-community coverage is
        // high; a mean over all 12 observers would sit at or below 1/12th of
        // the per-observer maximum.
        assert!(p.upper_bound > 0.4, "bound {} still deflated by empty observers", p.upper_bound);
        assert_eq!(p.upper_bound_online, p.upper_bound, "static population");
    }

    #[test]
    fn online_bound_never_exceeds_static_bound() {
        let s = setup(24, 4, 9);
        let evaluator = ItemSetEvaluator::new(s.spec.clone(), s.train_sets.clone(), false);
        let mut all = GlCiaAllPlacements::new(
            CiaConfig { k: s.k, beta: 0.9, eval_every: 2, seed: 0 },
            evaluator,
            s.users,
            s.truths.clone(),
        );
        // Half the population is asleep each round, alternating by parity so
        // everyone still gets observed eventually; the wake mask is routed
        // through the attack the way the dynamics layer does.
        struct HalfAsleep<'a, E: RelevanceEvaluator>(&'a mut GlCiaAllPlacements<E>);
        impl<E: RelevanceEvaluator> GossipObserver for HalfAsleep<'_, E> {
            fn on_liveness(&mut self, event: LivenessEvent<'_>) {
                if let LivenessEvent::ActingSet { round, mask } = event {
                    for (u, m) in mask.iter_mut().enumerate() {
                        if u % 2 == (round % 2) as usize {
                            *m = false;
                        }
                    }
                    self.0.on_liveness(LivenessEvent::ActingSet { round, mask });
                }
            }
            fn on_delivery(&mut self, round: u64, receiver: UserId, model: &SharedModel) {
                self.0.on_delivery(round, receiver, model);
            }
            fn on_round_end(&mut self, stats: &GossipRoundStats) {
                self.0.on_round_end(stats);
            }
        }
        let mut sim =
            GossipSim::new(s.clients, GossipConfig { rounds: 16, seed: 5, ..Default::default() });
        {
            let mut obs = HalfAsleep(&mut all);
            sim.run(&mut obs);
        }
        let history = all.history();
        assert!(!history.is_empty());
        for p in history {
            assert!(
                p.upper_bound_online <= p.upper_bound + 1e-12,
                "round {}: online {} > static {}",
                p.round,
                p.upper_bound_online,
                p.upper_bound
            );
        }
        // With half the population permanently asleep the two bounds must
        // actually separate by the end.
        let last = history.last().unwrap();
        assert!(last.upper_bound_online < last.upper_bound);
    }

    #[test]
    fn nan_scores_rank_last_instead_of_panicking() {
        // A DP-destroyed model can carry NaN parameters, making every
        // relevance score NaN. Ranking must route through the NaN-mapping
        // `metrics::rank_desc` (a bare `partial_cmp().unwrap()` panics) and
        // sink the destroyed sender below every finite-scored one.
        use cia_models::Participant;
        let s = setup(12, 2, 3);
        let evaluator = ItemSetEvaluator::new(s.spec.clone(), s.train_sets.clone(), false);
        let owners: Vec<Option<UserId>> =
            // cia-lint: allow(D05, ids and indices are bounded by the validated population/catalog size, which fits u32)
            (0..s.users).map(|u| Some(UserId::new(u as u32))).collect();
        let mut coal = GlCiaCoalition::new(
            CiaConfig { k: 2, beta: 0.9, eval_every: 1, seed: 0 },
            evaluator,
            s.users,
            &[0],
            s.truths.clone(),
            owners,
        );
        // Healthy senders 1..4, then a destroyed model from sender 5.
        for sender in 1..4 {
            let snap = s.clients[sender].snapshot(0);
            coal.on_delivery(0, UserId::new(0), &snap);
        }
        let mut destroyed = s.clients[5].snapshot(0);
        destroyed.agg.fill(f32::NAN);
        if let Some(emb) = &mut destroyed.owner_emb {
            emb.fill(f32::NAN);
        }
        coal.on_delivery(0, UserId::new(0), &destroyed);
        // `last_agg` now carries NaN parameters too; evaluation must still
        // complete (no panic) and report finite bounds.
        coal.on_round_end(&GossipRoundStats {
            round: 0,
            awake: 12,
            deliveries: 4,
            mean_loss: None,
            bytes_materialized: 0,
        });
        let p = &coal.history()[0];
        assert!(p.upper_bound.is_finite());
        // The all-placements engine must tolerate NaN score EMAs the same
        // way.
        let evaluator = ItemSetEvaluator::new(s.spec.clone(), s.train_sets.clone(), false);
        let mut all = GlCiaAllPlacements::new(
            CiaConfig { k: 2, beta: 0.9, eval_every: 1, seed: 0 },
            evaluator,
            s.users,
            s.truths.clone(),
        );
        for sender in 1..6 {
            let snap = s.clients[sender].snapshot(0);
            all.on_delivery(0, UserId::new(0), &snap);
        }
        all.on_delivery(0, UserId::new(0), &destroyed);
        all.on_round_end(&GossipRoundStats {
            round: 0,
            awake: 12,
            deliveries: 6,
            mean_loss: None,
            bytes_materialized: 0,
        });
        assert!(!all.history().is_empty());
    }

    #[test]
    fn set_members_moves_the_delivery_filter_but_keeps_momentum() {
        use cia_models::Participant;
        let s = setup(12, 2, 3);
        let evaluator = ItemSetEvaluator::new(s.spec.clone(), s.train_sets.clone(), false);
        let owners: Vec<Option<UserId>> =
            // cia-lint: allow(D05, ids and indices are bounded by the validated population/catalog size, which fits u32)
            (0..s.users).map(|u| Some(UserId::new(u as u32))).collect();
        let mut coal = GlCiaCoalition::new(
            CiaConfig { k: 2, beta: 0.9, eval_every: 1, seed: 0 },
            evaluator,
            s.users,
            &[0, 6],
            s.truths.clone(),
            owners,
        );
        assert_eq!(coal.members(), vec![0, 6]);
        // Observations land at the initial placement…
        for sender in 1..4 {
            let snap = s.clients[sender].snapshot(0);
            coal.on_delivery(0, UserId::new(0), &snap);
        }
        assert_eq!(coal.senders_seen(), 3);
        // …and survive the relocation: retained member 0 leaves, 3 and 9
        // take over, the sender-keyed momentum table is untouched.
        coal.set_members(&[3, 9]);
        assert_eq!(coal.members(), vec![3, 9]);
        assert_eq!(coal.senders_seen(), 3, "relocation must not drop momentum state");
        // Deliveries to the old placement are no longer observed; the new
        // one is.
        let snap = s.clients[5].snapshot(1);
        coal.on_delivery(1, UserId::new(0), &snap);
        assert_eq!(coal.senders_seen(), 3);
        coal.on_delivery(1, UserId::new(9), &snap);
        assert_eq!(coal.senders_seen(), 4);
    }

    #[test]
    fn unseen_observer_records_zero() {
        let s = setup(12, 2, 3);
        let evaluator = ItemSetEvaluator::new(s.spec.clone(), s.train_sets.clone(), false);
        let owners: Vec<Option<UserId>> =
            // cia-lint: allow(D05, ids and indices are bounded by the validated population/catalog size, which fits u32)
            (0..s.users).map(|u| Some(UserId::new(u as u32))).collect();
        let mut coal = GlCiaCoalition::new(
            CiaConfig { k: 2, beta: 0.9, eval_every: 1, seed: 0 },
            evaluator,
            s.users,
            &[0],
            s.truths.clone(),
            owners,
        );
        // No deliveries at all: evaluation must not panic and records zero.
        coal.on_round_end(&GossipRoundStats {
            round: 0,
            awake: 0,
            deliveries: 0,
            mean_loss: None,
            bytes_materialized: 0,
        });
        let out = coal.outcome();
        assert_eq!(out.max_aac, 0.0);
    }
}
