//! Aggregates run JSONL into per-phase / per-round summary tables.
//!
//! `scenario report FILE...` feeds the JSONL streams `scenario run`
//! produces (with timing on) through [`summarize`] and prints, per
//! `(suite, scenario, seed)` group:
//!
//! * a phase table — total / mean / p50 / p99 µs per phase across the
//!   traced rounds, plus each phase's share of total round time;
//! * counter totals (clients trained, bytes on the wire, bytes
//!   materialized, …) summed over the run;
//! * the RSS trajectory — first / last `peak_rss_bytes` seen in the
//!   `round_eval` stream (the value is the OS's monotone high-water mark,
//!   so "last" is also the peak).
//!
//! Quantiles are exact rank statistics over the per-round phase values
//! (rounds per scenario number in the tens to hundreds — no need for the
//! histogram sketch the recorder uses for per-client latencies).

use crate::json::Json;
use cia_core::obs::nearest_rank;

/// Aggregate statistics for one phase across a scenario's traced rounds.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PhaseStat {
    /// Phase name (span name, or `other` for unattributed round time).
    pub name: String,
    /// Sum of the phase's µs over all traced rounds.
    pub total_us: u64,
    /// Mean µs per traced round.
    pub mean_us: u64,
    /// Median µs (rank statistic over rounds).
    pub p50_us: u64,
    /// 99th percentile µs (rank statistic over rounds).
    pub p99_us: u64,
}

/// The report for one `(suite, scenario, seed)` group.
#[derive(Debug, Clone, PartialEq)]
pub struct ScenarioReport {
    /// Suite name.
    pub suite: String,
    /// Scenario name.
    pub scenario: String,
    /// Scenario seed.
    pub seed: u64,
    /// Number of `trace` records seen.
    pub traced_rounds: u64,
    /// Sum of `round_us` over all traced rounds.
    pub round_us_total: u64,
    /// Per-phase statistics, in first-appearance order.
    pub phases: Vec<PhaseStat>,
    /// Counter totals, in first-appearance order.
    pub counters: Vec<(String, u64)>,
    /// Mean of the `mean_loss` values across evaluated rounds that carried
    /// one. All-offline rounds omit the field entirely and are *skipped*
    /// here — they would otherwise deflate the average with `0.0`
    /// sentinels.
    pub loss_mean: Option<f64>,
    /// Number of `round_eval` records that carried a `mean_loss`.
    pub loss_rounds: u64,
    /// First `peak_rss_bytes` seen in the `round_eval` stream.
    pub rss_first: Option<u64>,
    /// Last `peak_rss_bytes` seen (the high-water mark is monotone, so this
    /// is also the run's peak).
    pub rss_last: Option<u64>,
}

impl ScenarioReport {
    /// Fraction of total round time attributed to named phases (everything
    /// except `other`), in `[0, 1]`. `None` when no round time was traced.
    pub fn coverage(&self) -> Option<f64> {
        if self.round_us_total == 0 {
            return None;
        }
        let other: u64 = self.phases.iter().filter(|p| p.name == "other").map(|p| p.total_us).sum();
        Some(1.0 - other as f64 / self.round_us_total as f64)
    }
}

/// Exact rank quantile over unsorted values, indexed by the *shared*
/// nearest-rank definition (`cia_obs::nearest_rank`) that also drives the
/// recorder histogram's bucket walk — one convention, two views, so p50/p99
/// in report tables and trace records can never disagree on rank selection
/// (the bucket walk still reports an upper edge where this reports an exact
/// value). Public so the cross-checking property test in
/// `tests/properties.rs` can pin the agreement.
#[must_use]
pub fn rank_quantile(values: &mut [u64], q: f64) -> u64 {
    if values.is_empty() {
        return 0;
    }
    values.sort_unstable();
    let rank = nearest_rank(q, values.len() as u64) as usize;
    values[rank - 1]
}

struct Group {
    report: ScenarioReport,
    // Per-phase per-round values, parallel to `report.phases`.
    phase_rounds: Vec<Vec<u64>>,
    // Running sum of the `mean_loss` values seen (skipping absent fields).
    loss_sum: f64,
}

/// Parses a run JSONL stream and aggregates its `trace` and `round_eval`
/// records into one [`ScenarioReport`] per `(suite, scenario, seed)`, in
/// first-appearance order.
///
/// # Errors
///
/// Returns the line number and reason of the first unparsable record.
pub fn summarize(input: &str) -> Result<Vec<ScenarioReport>, String> {
    let mut groups: Vec<Group> = Vec::new();
    for (lineno, line) in input.lines().enumerate() {
        let fail = |msg: String| format!("line {}: {msg}", lineno + 1);
        if line.trim().is_empty() {
            continue;
        }
        let v = Json::parse(line).map_err(&fail)?;
        let kind = v
            .get("type")
            .and_then(Json::as_str)
            .ok_or_else(|| fail("record has no `type`".to_string()))?;
        if kind != "trace" && kind != "round_eval" {
            continue;
        }
        let key_field = |name: &str| -> Result<String, String> {
            v.get(name)
                .and_then(Json::as_str)
                .map(str::to_string)
                .ok_or_else(|| fail(format!("record has no `{name}`")))
        };
        let suite = key_field("suite")?;
        let scenario = key_field("scenario")?;
        let seed = v
            .get("seed")
            .and_then(Json::as_u64)
            .ok_or_else(|| fail("record has no integral `seed`".to_string()))?;
        let group = match groups.iter_mut().find(|g| {
            g.report.suite == suite && g.report.scenario == scenario && g.report.seed == seed
        }) {
            Some(g) => g,
            None => {
                groups.push(Group {
                    report: ScenarioReport {
                        suite,
                        scenario,
                        seed,
                        traced_rounds: 0,
                        round_us_total: 0,
                        phases: Vec::new(),
                        counters: Vec::new(),
                        loss_mean: None,
                        loss_rounds: 0,
                        rss_first: None,
                        rss_last: None,
                    },
                    phase_rounds: Vec::new(),
                    loss_sum: 0.0,
                });
                groups.last_mut().expect("just pushed")
            }
        };
        match kind {
            "round_eval" => {
                if let Some(rss) = v.get("peak_rss_bytes").and_then(Json::as_u64) {
                    group.report.rss_first.get_or_insert(rss);
                    group.report.rss_last = Some(rss);
                }
                // Absent on all-offline rounds — skipped, not counted as 0.
                if let Some(loss) = v.get("mean_loss").and_then(Json::as_f64) {
                    group.loss_sum += loss;
                    group.report.loss_rounds += 1;
                }
            }
            "trace" => {
                group.report.traced_rounds += 1;
                if let Some(us) = v.get("round_us").and_then(Json::as_u64) {
                    group.report.round_us_total += us;
                }
                let span_us = v
                    .get("span_us")
                    .and_then(Json::as_obj)
                    .ok_or_else(|| fail("trace record has no `span_us` object".to_string()))?;
                for (name, val) in span_us {
                    let us = val
                        .as_u64()
                        .ok_or_else(|| fail(format!("span_us.{name} is not integral")))?;
                    match group.report.phases.iter().position(|p| &p.name == name) {
                        Some(i) => {
                            group.report.phases[i].total_us += us;
                            group.phase_rounds[i].push(us);
                        }
                        None => {
                            group.report.phases.push(PhaseStat {
                                name: name.clone(),
                                total_us: us,
                                mean_us: 0,
                                p50_us: 0,
                                p99_us: 0,
                            });
                            group.phase_rounds.push(vec![us]);
                        }
                    }
                }
                let counters = v
                    .get("counters")
                    .and_then(Json::as_obj)
                    .ok_or_else(|| fail("trace record has no `counters` object".to_string()))?;
                for (name, val) in counters {
                    let delta = val
                        .as_u64()
                        .ok_or_else(|| fail(format!("counters.{name} is not integral")))?;
                    match group.report.counters.iter_mut().find(|(n, _)| n == name) {
                        Some((_, total)) => *total += delta,
                        None => group.report.counters.push((name.clone(), delta)),
                    }
                }
            }
            _ => unreachable!("filtered above"),
        }
    }
    Ok(groups
        .into_iter()
        .map(|mut g| {
            for (phase, rounds) in g.report.phases.iter_mut().zip(&mut g.phase_rounds) {
                phase.mean_us = phase.total_us / rounds.len().max(1) as u64;
                phase.p50_us = rank_quantile(rounds, 0.5);
                phase.p99_us = rank_quantile(rounds, 0.99);
            }
            if g.report.loss_rounds > 0 {
                g.report.loss_mean = Some(g.loss_sum / g.report.loss_rounds as f64);
            }
            g.report
        })
        .collect())
}

fn fmt_mib(bytes: u64) -> String {
    format!("{:.1} MiB", bytes as f64 / (1024.0 * 1024.0))
}

/// Renders reports as human-readable tables (one block per scenario).
pub fn render(reports: &[ScenarioReport]) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    for r in reports {
        let _ = writeln!(out, "{} / {} (seed {})", r.suite, r.scenario, r.seed);
        if r.traced_rounds == 0 {
            let _ =
                writeln!(out, "  no trace records — rerun with timing enabled (drop --no-timing)");
        } else {
            let _ = writeln!(
                out,
                "  {} traced rounds, {:.1} ms total round time",
                r.traced_rounds,
                r.round_us_total as f64 / 1000.0
            );
            let _ = writeln!(
                out,
                "  {:<12} {:>12} {:>10} {:>10} {:>10} {:>7}",
                "phase", "total_us", "mean_us", "p50_us", "p99_us", "share"
            );
            for p in &r.phases {
                let share = if r.round_us_total == 0 {
                    0.0
                } else {
                    100.0 * p.total_us as f64 / r.round_us_total as f64
                };
                let _ = writeln!(
                    out,
                    "  {:<12} {:>12} {:>10} {:>10} {:>10} {:>6.1}%",
                    p.name, p.total_us, p.mean_us, p.p50_us, p.p99_us, share
                );
            }
            if let Some(cov) = r.coverage() {
                let _ = writeln!(out, "  phase coverage: {:.1}% of round time", 100.0 * cov);
            }
            for (name, total) in &r.counters {
                let _ = writeln!(out, "  counter {name}: {total}");
            }
        }
        if let Some(loss) = r.loss_mean {
            let _ = writeln!(out, "  mean loss: {loss:.4} over {} evaluated rounds", r.loss_rounds);
        }
        match (r.rss_first, r.rss_last) {
            (Some(first), Some(last)) => {
                let _ = writeln!(out, "  rss: {} -> {} (peak)", fmt_mib(first), fmt_mib(last));
            }
            _ => {
                let _ = writeln!(out, "  rss: not recorded");
            }
        }
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn trace_line(scenario: &str, round: u64, train: u64, other: u64, clients: u64) -> String {
        format!(
            r#"{{"type":"trace","suite":"s","scenario":"{scenario}","dataset":"d","model":"m","protocol":"p","scale":"smoke","seed":7,"round":{round},"round_us":{},"span_us":{{"train":{train},"other":{other}}},"counters":{{"clients_trained":{clients}}}}}"#,
            train + other
        )
    }

    fn eval_line(scenario: &str, round: u64, rss: u64) -> String {
        format!(
            r#"{{"type":"round_eval","suite":"s","scenario":"{scenario}","dataset":"d","model":"m","protocol":"p","scale":"smoke","seed":7,"round":{round},"aac":0.5,"peak_rss_bytes":{rss}}}"#
        )
    }

    #[test]
    fn aggregates_phases_counters_and_rss_per_scenario() {
        let input = [
            eval_line("a", 1, 1_000_000),
            trace_line("a", 0, 100, 10, 3),
            trace_line("a", 1, 300, 30, 4),
            eval_line("a", 2, 2_000_000),
            trace_line("b", 0, 50, 5, 1),
        ]
        .join("\n");
        let reports = summarize(&input).unwrap();
        assert_eq!(reports.len(), 2);
        let a = &reports[0];
        assert_eq!((a.suite.as_str(), a.scenario.as_str(), a.seed), ("s", "a", 7));
        assert_eq!(a.traced_rounds, 2);
        assert_eq!(a.round_us_total, 440);
        let train = a.phases.iter().find(|p| p.name == "train").unwrap();
        assert_eq!(train.total_us, 400);
        assert_eq!(train.mean_us, 200);
        assert_eq!(train.p50_us, 100);
        assert_eq!(train.p99_us, 300);
        assert_eq!(a.counters, vec![("clients_trained".to_string(), 7)]);
        assert_eq!((a.rss_first, a.rss_last), (Some(1_000_000), Some(2_000_000)));
        // Coverage excludes `other`: 400 / 440.
        let cov = a.coverage().unwrap();
        assert!((cov - 400.0 / 440.0).abs() < 1e-12);
        assert_eq!(reports[1].scenario, "b");
        assert_eq!(reports[1].traced_rounds, 1);
    }

    #[test]
    fn untimed_streams_report_zero_traced_rounds() {
        let input = r#"{"type":"round_eval","suite":"s","scenario":"a","dataset":"d","model":"m","protocol":"p","scale":"smoke","seed":7,"round":1,"aac":0.5}"#;
        let reports = summarize(input).unwrap();
        assert_eq!(reports.len(), 1);
        assert_eq!(reports[0].traced_rounds, 0);
        assert_eq!(reports[0].rss_first, None);
        assert!(render(&reports).contains("no trace records"));
    }

    #[test]
    fn rejects_malformed_records() {
        assert!(summarize("not json").is_err());
        assert!(summarize(r#"{"suite":"s"}"#).is_err());
        let bad = r#"{"type":"trace","suite":"s","scenario":"a","dataset":"d","model":"m","protocol":"p","scale":"smoke","seed":7,"round":0,"span_us":{"train":"fast"},"counters":{}}"#;
        assert!(summarize(bad).is_err());
    }

    #[test]
    fn render_includes_the_phase_table() {
        let input = trace_line("a", 0, 900, 100, 2);
        let text = render(&summarize(&input).unwrap());
        assert!(text.contains("s / a (seed 7)"));
        assert!(text.contains("train"));
        assert!(text.contains("phase coverage: 90.0% of round time"));
        assert!(text.contains("counter clients_trained: 2"));
    }
}
