//! Process memory accounting for the timing records and the scale benches.
//!
//! The million-user preset only earns its keep if a round demonstrably fits
//! in a memory budget, so the runner records two numbers per evaluated round
//! when `--timing` is on: `bytes_materialized` (what the protocol itself
//! brought into residence — see `cia_models::ClientStore`) and
//! `peak_rss_bytes` (what the OS actually charged the process). Both are
//! timing-class fields: golden transcripts run `--no-timing` and never see
//! them.

use std::fs;

/// The process's peak resident set size in bytes (`VmHWM` from
/// `/proc/self/status`), or `None` off Linux or when procfs is unavailable.
///
/// The high-water mark is monotone over the process lifetime — per-round
/// deltas come from `bytes_materialized`, not from differencing this.
pub fn peak_rss_bytes() -> Option<u64> {
    parse_vm_hwm(&fs::read_to_string("/proc/self/status").ok()?)
}

/// Parses the `VmHWM:   123456 kB` line of a `/proc/<pid>/status` blob.
fn parse_vm_hwm(status: &str) -> Option<u64> {
    let line = status.lines().find(|l| l.starts_with("VmHWM:"))?;
    let kb: u64 = line.split_whitespace().nth(1)?.parse().ok()?;
    Some(kb * 1024)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_the_vm_hwm_line() {
        let status = "Name:\tcia\nVmPeak:\t  999 kB\nVmHWM:\t  123456 kB\nVmRSS:\t  5 kB\n";
        assert_eq!(parse_vm_hwm(status), Some(123_456 * 1024));
        assert_eq!(parse_vm_hwm("Name:\tcia\n"), None);
        assert_eq!(parse_vm_hwm("VmHWM:\tgarbage kB\n"), None);
    }

    #[test]
    fn linux_reports_a_positive_peak() {
        if let Some(bytes) = peak_rss_bytes() {
            // A running test binary has megabytes resident at minimum.
            assert!(bytes > 1024 * 1024, "implausible peak RSS: {bytes}");
        }
    }
}
