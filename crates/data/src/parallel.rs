//! Minimal data-parallel helpers built on scoped threads.
//!
//! The simulations are round-synchronous, so all parallelism is simple
//! fork-join over per-user work; no async runtime is warranted.

/// Number of worker threads to use.
///
/// The `CIA_THREADS` environment variable pins the count explicitly (CI and
/// golden-transcript jobs set `CIA_THREADS=2` so runs are reproducible and
/// cheap regardless of the host); `1` disables worker spawning entirely.
/// Unset — or set to `0` or garbage — falls back to available parallelism,
/// capped at 16. Every helper in this module produces results that are
/// byte-identical for *any* thread count (fixed work assignment, ordered
/// reduction), so the variable only affects wall-clock time.
///
/// The variable is re-read on every call (a few times per protocol round —
/// negligible) so tests can flip it at runtime.
pub fn num_threads() -> usize {
    if let Ok(v) = std::env::var("CIA_THREADS") {
        if let Ok(n) = v.trim().parse::<usize>() {
            if n >= 1 {
                return n.min(64);
            }
        }
    }
    std::thread::available_parallelism().map(std::num::NonZero::get).unwrap_or(4).min(16)
}

/// Applies `f` to every element of `items` in parallel, mutating in place.
///
/// Chunks are distributed contiguously across [`num_threads`] workers; `f`
/// receives the element's index and a mutable reference.
pub fn par_for_each_mut<T: Send, F>(items: &mut [T], f: F)
where
    F: Fn(usize, &mut T) + Sync,
{
    let threads = num_threads();
    if items.len() <= 1 || threads <= 1 {
        for (i, item) in items.iter_mut().enumerate() {
            f(i, item);
        }
        return;
    }
    let chunk = items.len().div_ceil(threads);
    std::thread::scope(|s| {
        for (c, slice) in items.chunks_mut(chunk).enumerate() {
            let f = &f;
            s.spawn(move || {
                for (i, item) in slice.iter_mut().enumerate() {
                    f(c * chunk + i, item);
                }
            });
        }
    });
}

/// Applies `f` to paired elements of two equal-length slices in parallel.
///
/// # Panics
///
/// Panics if the slices have different lengths.
pub fn par_zip_mut<A: Send, B: Send, F>(a: &mut [A], b: &mut [B], f: F)
where
    F: Fn(usize, &mut A, &mut B) + Sync,
{
    assert_eq!(a.len(), b.len(), "par_zip_mut length mismatch");
    let threads = num_threads();
    if a.len() <= 1 || threads <= 1 {
        for (i, (x, y)) in a.iter_mut().zip(b.iter_mut()).enumerate() {
            f(i, x, y);
        }
        return;
    }
    let chunk = a.len().div_ceil(threads);
    std::thread::scope(|s| {
        for (c, (sa, sb)) in a.chunks_mut(chunk).zip(b.chunks_mut(chunk)).enumerate() {
            let f = &f;
            s.spawn(move || {
                for (i, (x, y)) in sa.iter_mut().zip(sb.iter_mut()).enumerate() {
                    f(c * chunk + i, x, y);
                }
            });
        }
    });
}

/// Computes `f(i)` for `i in 0..n` in parallel and returns the results in
/// index order.
///
/// Workers each fill a per-chunk `Vec<R>` which are concatenated in chunk
/// order, so results need no `Option` wrapping or unwrap re-scan.
pub fn par_map<R: Send, F>(n: usize, f: F) -> Vec<R>
where
    F: Fn(usize) -> R + Sync,
{
    let threads = num_threads();
    if n <= 1 || threads <= 1 {
        return (0..n).map(f).collect();
    }
    let chunk = n.div_ceil(threads);
    let mut out: Vec<R> = Vec::with_capacity(n);
    std::thread::scope(|s| {
        let handles: Vec<_> = (0..n)
            .step_by(chunk)
            .map(|start| {
                let f = &f;
                let end = (start + chunk).min(n);
                s.spawn(move || (start..end).map(f).collect::<Vec<R>>())
            })
            .collect();
        for handle in handles {
            out.extend(handle.join().expect("par_map worker panicked"));
        }
    });
    out
}

/// Applies `f` to consecutive `chunk`-sized windows of `items` in parallel;
/// `f` receives the chunk index and the chunk (the last one may be shorter).
/// Used to fill row-major matrices row-by-row without collecting row
/// references.
///
/// # Panics
///
/// Panics if `chunk` is zero.
pub fn par_chunks_mut<T: Send, F>(items: &mut [T], chunk: usize, f: F)
where
    F: Fn(usize, &mut [T]) + Sync,
{
    assert!(chunk > 0, "chunk size must be positive");
    let total = items.len().div_ceil(chunk);
    let threads = num_threads();
    if total <= 1 || threads <= 1 {
        for (i, c) in items.chunks_mut(chunk).enumerate() {
            f(i, c);
        }
        return;
    }
    // Chunks-per-thread groups stay contiguous so indices are recoverable.
    let per_thread = total.div_ceil(threads);
    std::thread::scope(|s| {
        for (g, group) in items.chunks_mut(chunk * per_thread).enumerate() {
            let f = &f;
            s.spawn(move || {
                for (i, c) in group.chunks_mut(chunk).enumerate() {
                    f(g * per_thread + i, c);
                }
            });
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn par_for_each_mut_touches_every_element_once() {
        let mut v: Vec<u64> = vec![0; 1000];
        par_for_each_mut(&mut v, |i, x| *x = i as u64 * 2);
        for (i, x) in v.iter().enumerate() {
            assert_eq!(*x, i as u64 * 2);
        }
    }

    #[test]
    fn par_map_preserves_order() {
        let out = par_map(257, |i| i * i);
        for (i, x) in out.iter().enumerate() {
            assert_eq!(*x, i * i);
        }
    }

    #[test]
    fn par_map_empty_and_single() {
        assert!(par_map(0, |i| i).is_empty());
        assert_eq!(par_map(1, |i| i + 5), vec![5]);
    }

    #[test]
    fn par_chunks_mut_indexes_every_chunk() {
        let mut v: Vec<u64> = vec![0; 103]; // deliberately not a multiple
        par_chunks_mut(&mut v, 10, |ci, chunk| {
            for (o, x) in chunk.iter_mut().enumerate() {
                *x = (ci * 10 + o) as u64;
            }
        });
        for (i, x) in v.iter().enumerate() {
            assert_eq!(*x, i as u64);
        }
        // Degenerate cases: empty slice, chunk larger than the slice.
        par_chunks_mut(&mut [] as &mut [u64], 4, |_, _| panic!("no chunks"));
        let mut one = vec![7u64; 3];
        par_chunks_mut(&mut one, 100, |ci, c| {
            assert_eq!(ci, 0);
            assert_eq!(c.len(), 3);
        });
    }

    #[test]
    fn par_zip_mut_pairs_correctly() {
        let mut a: Vec<usize> = (0..500).collect();
        let mut b: Vec<usize> = vec![0; 500];
        par_zip_mut(&mut a, &mut b, |i, x, y| {
            *x += 1;
            *y = i * 10;
        });
        for i in 0..500 {
            assert_eq!(a[i], i + 1);
            assert_eq!(b[i], i * 10);
        }
    }
}
