//! `cia-obs` — dependency-free observability for the simulation stack.
//!
//! The paper's experiments live or die on knowing *where* round time and
//! memory go. This crate is the one sink every layer reports into:
//!
//! * **Spans** — a scoped-timer API ([`Recorder::span`] / the [`span!`]
//!   macro) producing hierarchical phase timings (`round` → `sample` →
//!   `train` → …) on a monotonic clock, with the recording thread and
//!   nesting depth attached to every span.
//! * **Counters** — a typed registry ([`Counter`]) of monotone event
//!   counters (clients trained, bytes on the wire, bytes materialized, …).
//!   Counters are plain atomics: always on, safe to bump from parallel
//!   training workers, and deterministic for deterministic workloads.
//! * **Histograms** — fixed log₂-bucket latency histograms ([`Metric`],
//!   [`Histogram`]): bucket edges are powers of two, so bucket assignment is
//!   deterministic and merging is a bucket-wise add (associative and
//!   commutative by construction).
//!
//! A [`Recorder`] is an explicit, cheaply clonable handle (an `Arc` around
//! the registry), **not** a process-global: simulations each own a default
//! recorder, and an orchestrator (the `cia-scenarios` runner) installs one
//! shared recorder per scenario so concurrent simulations — e.g. parallel
//! `cargo test` threads — can never cross-contaminate each other's streams.
//!
//! Span and histogram collection sits behind a *detail* flag
//! ([`Recorder::set_detail`]) so undrained long runs cannot grow an
//! unbounded span log and untraced hot loops pay no clock reads; counters
//! are always live (protocol statistics are derived from their per-round
//! deltas). Wall-clock measurements are inherently non-deterministic, which
//! is why everything drained from a recorder is *timing-class* data: the
//! scenario runner never lets it near a `--no-timing` transcript.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::cell::Cell;
use std::sync::atomic::{AtomicBool, AtomicU32, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use std::time::Instant;

/// The typed counter registry: one slot per cross-layer event counter.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Counter {
    /// Clients (FL) or nodes (GL) that ran local training.
    ClientsTrained = 0,
    /// Bytes of model snapshots routed between gossip nodes.
    BytesOnWire = 1,
    /// Bytes of client model state brought into residence (lazy rebuilds,
    /// retired-descriptor restores, observer snapshot buffers).
    BytesMaterialized = 2,
    /// Model deliveries pushed into gossip inboxes.
    InboxDeliveries = 3,
    /// Descriptor shard blocks allocated by a sharded `ClientStore`.
    ShardAllocations = 4,
    /// Serve-path ranking-cache hits ((user, snapshot-epoch) key matched).
    ServeCacheHits = 5,
    /// Serve-path ranking-cache misses (fresh tiled scoring pass ran).
    ServeCacheMisses = 6,
}

impl Counter {
    /// Every counter, in registry order.
    pub const ALL: [Counter; 7] = [
        Counter::ClientsTrained,
        Counter::BytesOnWire,
        Counter::BytesMaterialized,
        Counter::InboxDeliveries,
        Counter::ShardAllocations,
        Counter::ServeCacheHits,
        Counter::ServeCacheMisses,
    ];

    /// The counter's stable snake_case name (JSONL / trace-file key).
    pub fn name(self) -> &'static str {
        match self {
            Counter::ClientsTrained => "clients_trained",
            Counter::BytesOnWire => "bytes_on_wire",
            Counter::BytesMaterialized => "bytes_materialized",
            Counter::InboxDeliveries => "inbox_deliveries",
            Counter::ShardAllocations => "shard_allocations",
            Counter::ServeCacheHits => "serve_cache_hits",
            Counter::ServeCacheMisses => "serve_cache_misses",
        }
    }
}

/// The histogram registry: one latency distribution per instrumented
/// per-item operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Metric {
    /// Per-client local-training wall time, in microseconds.
    TrainMicros = 0,
    /// Per-node neighbor-mix wall time (gossip `mix_agg`), in microseconds.
    MixMicros = 1,
    /// Per-query serve-path wall time (snapshot load + score + rank), in
    /// microseconds.
    ServeMicros = 2,
}

impl Metric {
    /// Every metric, in registry order.
    pub const ALL: [Metric; 3] = [Metric::TrainMicros, Metric::MixMicros, Metric::ServeMicros];

    /// The metric's stable snake_case name (JSONL / trace-file key).
    pub fn name(self) -> &'static str {
        match self {
            Metric::TrainMicros => "train_us",
            Metric::MixMicros => "mix_us",
            Metric::ServeMicros => "serve_us",
        }
    }
}

/// Number of log₂ buckets: bucket 0 holds exactly the value 0, bucket `b ≥ 1`
/// holds `[2^(b-1), 2^b)`, and the last bucket absorbs everything from
/// `2^(HIST_BUCKETS-2)` up (≈ 12.7 days in microseconds — no round phase
/// plausibly escapes it).
pub const HIST_BUCKETS: usize = 41;

/// The nearest-rank quantile convention shared by every quantile site in the
/// workspace: the 1-based rank of quantile `q` over `n` observations is
/// `⌈q·n⌉` clamped to `[1, n]`. [`Histogram::quantile`] walks its buckets to
/// this rank and `cia-scenarios`' report tables index sorted per-round
/// values with it, so the two views can never drift by an off-by-one — the
/// ⌈q·n⌉ boundary cases (small `n`, `q` near a multiple of `1/n`) are pinned
/// in one place.
#[must_use]
pub fn nearest_rank(q: f64, n: u64) -> u64 {
    if n == 0 {
        return 0;
    }
    ((q * n as f64).ceil() as u64).clamp(1, n)
}

/// A fixed log₂-bucket histogram. Bucket edges are powers of two and never
/// depend on the data, so bucket assignment is a pure function of the value
/// ([`Histogram::bucket_of`]) and merging two histograms is a bucket-wise
/// add — associative and commutative by construction, which is what lets
/// parallel workers record into one shared histogram without coordination.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Histogram {
    /// Per-bucket observation counts.
    pub counts: [u64; HIST_BUCKETS],
    /// Sum of every recorded value (exact, not bucket-approximated).
    pub sum: u64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram { counts: [0; HIST_BUCKETS], sum: 0 }
    }
}

impl Histogram {
    /// An empty histogram.
    #[must_use]
    pub fn new() -> Self {
        Histogram::default()
    }

    /// The bucket index a value lands in: 0 for 0, otherwise
    /// `floor(log2(v)) + 1`, capped at the last bucket.
    #[must_use]
    pub fn bucket_of(value: u64) -> usize {
        if value == 0 {
            0
        } else {
            ((64 - value.leading_zeros()) as usize).min(HIST_BUCKETS - 1)
        }
    }

    /// The inclusive upper edge of a bucket (the value reported for
    /// quantiles landing in it).
    ///
    /// # Panics
    ///
    /// Panics if `bucket >= HIST_BUCKETS`.
    #[must_use]
    pub fn bucket_upper_edge(bucket: usize) -> u64 {
        assert!(bucket < HIST_BUCKETS, "bucket out of range");
        if bucket == 0 {
            0
        } else {
            (1u64 << bucket) - 1
        }
    }

    /// Records one observation.
    pub fn record(&mut self, value: u64) {
        self.counts[Self::bucket_of(value)] += 1;
        self.sum += value;
    }

    /// Merges another histogram in (bucket-wise add).
    pub fn merge(&mut self, other: &Histogram) {
        for (a, b) in self.counts.iter_mut().zip(&other.counts) {
            *a += b;
        }
        self.sum += other.sum;
    }

    /// Total number of observations.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.counts.iter().sum()
    }

    /// Whether no observations were recorded.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.count() == 0
    }

    /// The bucket-upper-edge estimate of quantile `q ∈ [0, 1]` (0 on an
    /// empty histogram). Deterministic: the rank is `ceil(q·count)` clamped
    /// to `[1, count]` and the answer is the inclusive upper edge of the
    /// bucket holding that rank.
    #[must_use]
    pub fn quantile(&self, q: f64) -> u64 {
        let total = self.count();
        if total == 0 {
            return 0;
        }
        let rank = nearest_rank(q, total);
        let mut seen = 0u64;
        for (b, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return Self::bucket_upper_edge(b);
            }
        }
        Self::bucket_upper_edge(HIST_BUCKETS - 1)
    }
}

/// One recorded span: a named phase with its thread, nesting depth and
/// monotonic-clock window (microseconds since the process trace epoch).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpanRec {
    /// Phase name.
    pub name: &'static str,
    /// Small dense id of the recording thread (Chrome-trace `tid`).
    pub tid: u32,
    /// Nesting depth at recording time (0 = top level).
    pub depth: u16,
    /// Start, µs since the process trace epoch.
    pub start_us: u64,
    /// Duration in µs.
    pub dur_us: u64,
}

/// Everything a recorder accumulated since the previous [`Recorder::drain`]:
/// the completed spans plus per-counter and per-histogram *deltas*.
#[derive(Debug, Clone, Default)]
pub struct TraceChunk {
    /// Spans completed in this window, in completion order.
    pub spans: Vec<SpanRec>,
    /// Non-zero counter increments, in [`Counter::ALL`] order.
    pub counters: Vec<(Counter, u64)>,
    /// Non-empty histogram increments, in [`Metric::ALL`] order.
    pub hists: Vec<(Metric, Histogram)>,
}

impl TraceChunk {
    /// Sum of `dur_us` over spans named `name`.
    #[must_use]
    pub fn span_us(&self, name: &str) -> u64 {
        self.spans.iter().filter(|s| s.name == name).map(|s| s.dur_us).sum()
    }

    /// The delta recorded for `counter` in this window (0 if absent).
    #[must_use]
    pub fn counter(&self, counter: Counter) -> u64 {
        self.counters.iter().find(|(c, _)| *c == counter).map_or(0, |(_, v)| *v)
    }
}

/// The process trace epoch: every span's `start_us` is relative to the first
/// clock read any recorder performed, so spans from different recorders (and
/// scenarios) share one Chrome-trace timeline.
fn epoch() -> Instant {
    static EPOCH: OnceLock<Instant> = OnceLock::new();
    *EPOCH.get_or_init(Instant::now)
}

/// Dense per-thread ids for Chrome-trace `tid` fields.
fn thread_id() -> u32 {
    static NEXT: AtomicU32 = AtomicU32::new(0);
    thread_local! {
        static TID: u32 = NEXT.fetch_add(1, Ordering::Relaxed);
    }
    TID.with(|t| *t)
}

thread_local! {
    /// Span nesting depth on this thread (across recorders — spans nest
    /// lexically, not per-handle).
    static DEPTH: Cell<u16> = const { Cell::new(0) };
}

struct AtomicHist {
    counts: [AtomicU64; HIST_BUCKETS],
    sum: AtomicU64,
}

impl AtomicHist {
    const fn new() -> Self {
        AtomicHist { counts: [const { AtomicU64::new(0) }; HIST_BUCKETS], sum: AtomicU64::new(0) }
    }

    fn snapshot(&self) -> Histogram {
        let mut h = Histogram::new();
        for (dst, src) in h.counts.iter_mut().zip(&self.counts) {
            *dst = src.load(Ordering::Relaxed);
        }
        h.sum = self.sum.load(Ordering::Relaxed);
        h
    }
}

/// The drained-so-far watermarks behind delta computation.
#[derive(Default)]
struct Drained {
    counters: [u64; Counter::ALL.len()],
    hists: Vec<Histogram>,
}

struct Inner {
    counters: [AtomicU64; Counter::ALL.len()],
    hists: [AtomicHist; Metric::ALL.len()],
    detail: AtomicBool,
    spans: Mutex<Vec<SpanRec>>,
    drained: Mutex<Drained>,
}

/// A metrics/trace sink handle. Cloning is cheap (`Arc`); all clones share
/// one registry. See the crate docs for the ownership model.
#[derive(Clone)]
pub struct Recorder {
    inner: Arc<Inner>,
}

impl Default for Recorder {
    fn default() -> Self {
        Recorder::new()
    }
}

impl std::fmt::Debug for Recorder {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Recorder").field("detail", &self.detail()).finish_non_exhaustive()
    }
}

impl Recorder {
    /// A fresh recorder with detail (spans + histograms) disabled.
    #[must_use]
    pub fn new() -> Self {
        Recorder {
            inner: Arc::new(Inner {
                counters: [const { AtomicU64::new(0) }; Counter::ALL.len()],
                hists: [const { AtomicHist::new() }; Metric::ALL.len()],
                detail: AtomicBool::new(false),
                spans: Mutex::new(Vec::new()),
                drained: Mutex::new(Drained {
                    counters: [0; Counter::ALL.len()],
                    hists: vec![Histogram::new(); Metric::ALL.len()],
                }),
            }),
        }
    }

    /// Enables or disables detail collection (spans and histograms).
    /// Counters are unaffected — they are always live.
    pub fn set_detail(&self, on: bool) {
        self.inner.detail.store(on, Ordering::Relaxed);
    }

    /// Whether detail collection is enabled.
    #[must_use]
    pub fn detail(&self) -> bool {
        self.inner.detail.load(Ordering::Relaxed)
    }

    /// Adds to a counter.
    pub fn add(&self, counter: Counter, value: u64) {
        self.inner.counters[counter as usize].fetch_add(value, Ordering::Relaxed);
    }

    /// Increments a counter by one.
    pub fn inc(&self, counter: Counter) {
        self.add(counter, 1);
    }

    /// The counter's lifetime total.
    #[must_use]
    pub fn counter(&self, counter: Counter) -> u64 {
        self.inner.counters[counter as usize].load(Ordering::Relaxed)
    }

    /// Records one histogram observation (no-op unless detail is enabled —
    /// but see [`Recorder::clock`], which avoids the clock read too).
    pub fn observe(&self, metric: Metric, value: u64) {
        if !self.detail() {
            return;
        }
        let h = &self.inner.hists[metric as usize];
        h.counts[Histogram::bucket_of(value)].fetch_add(1, Ordering::Relaxed);
        h.sum.fetch_add(value, Ordering::Relaxed);
    }

    /// A clock read for latency measurement: `Some(now)` when detail is
    /// enabled, `None` otherwise — so untraced hot loops skip the clock
    /// entirely. Pair with [`Recorder::observe_since`].
    #[must_use]
    pub fn clock(&self) -> Option<Instant> {
        self.detail().then(Instant::now)
    }

    /// Records the microseconds elapsed since a [`Recorder::clock`] read
    /// (no-op on `None`).
    pub fn observe_since(&self, metric: Metric, start: Option<Instant>) {
        if let Some(t0) = start {
            self.observe(metric, t0.elapsed().as_micros() as u64);
        }
    }

    /// The histogram's lifetime snapshot.
    #[must_use]
    pub fn histogram(&self, metric: Metric) -> Histogram {
        self.inner.hists[metric as usize].snapshot()
    }

    /// Opens a scoped phase span: the returned guard records the span when
    /// dropped. A no-op (and allocation-free) guard when detail is off.
    #[must_use]
    pub fn span(&self, name: &'static str) -> SpanGuard<'_> {
        if !self.detail() {
            return SpanGuard { rec: None, name, depth: 0, start: None };
        }
        let depth = DEPTH.with(|d| {
            let depth = d.get();
            d.set(depth + 1);
            depth
        });
        // Materialize the epoch before the first span starts so start_us
        // subtraction never underflows.
        let _ = epoch();
        SpanGuard { rec: Some(self), name, depth, start: Some(Instant::now()) }
    }

    /// Takes everything accumulated since the last drain: completed spans,
    /// counter deltas and histogram deltas. Typically called once per round
    /// by whoever owns the recorder.
    pub fn drain(&self) -> TraceChunk {
        let spans = std::mem::take(&mut *self.inner.spans.lock().expect("span log poisoned"));
        let mut watermark = self.inner.drained.lock().expect("drain watermark poisoned");
        let mut counters = Vec::new();
        for c in Counter::ALL {
            let now = self.counter(c);
            let delta = now - watermark.counters[c as usize];
            watermark.counters[c as usize] = now;
            if delta > 0 {
                counters.push((c, delta));
            }
        }
        let mut hists = Vec::new();
        for m in Metric::ALL {
            let now = self.histogram(m);
            let prev = &watermark.hists[m as usize];
            let mut delta = Histogram::new();
            for (d, (a, b)) in delta.counts.iter_mut().zip(now.counts.iter().zip(&prev.counts)) {
                *d = a - b;
            }
            delta.sum = now.sum - prev.sum;
            watermark.hists[m as usize] = now;
            if !delta.is_empty() {
                hists.push((m, delta));
            }
        }
        TraceChunk { spans, counters, hists }
    }
}

/// A scoped-span guard; records the span into its recorder on drop.
pub struct SpanGuard<'a> {
    rec: Option<&'a Recorder>,
    name: &'static str,
    depth: u16,
    start: Option<Instant>,
}

impl Drop for SpanGuard<'_> {
    fn drop(&mut self) {
        let (Some(rec), Some(start)) = (self.rec, self.start) else { return };
        DEPTH.with(|d| d.set(d.get().saturating_sub(1)));
        let start_us = start.duration_since(epoch()).as_micros() as u64;
        let dur_us = start.elapsed().as_micros() as u64;
        rec.inner.spans.lock().expect("span log poisoned").push(SpanRec {
            name: self.name,
            tid: thread_id(),
            depth: self.depth,
            start_us,
            dur_us,
        });
    }
}

/// Opens a scoped phase span on a recorder:
/// `span!(rec, "train");` records a `"train"` span covering the rest of the
/// enclosing scope. Sequential phases in one scope should use explicit
/// guards (`let g = rec.span(...); ...; drop(g);`) or nested blocks.
#[macro_export]
macro_rules! span {
    ($rec:expr, $name:literal) => {
        let _span_guard = $rec.span($name);
    };
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn counters_accumulate_and_drain_as_deltas() {
        let rec = Recorder::new();
        rec.add(Counter::BytesOnWire, 10);
        rec.inc(Counter::InboxDeliveries);
        assert_eq!(rec.counter(Counter::BytesOnWire), 10);
        let chunk = rec.drain();
        assert_eq!(chunk.counter(Counter::BytesOnWire), 10);
        assert_eq!(chunk.counter(Counter::InboxDeliveries), 1);
        assert_eq!(chunk.counter(Counter::ClientsTrained), 0);
        // A second drain sees only new increments.
        rec.add(Counter::BytesOnWire, 5);
        let chunk = rec.drain();
        assert_eq!(chunk.counter(Counter::BytesOnWire), 5);
        assert_eq!(rec.counter(Counter::BytesOnWire), 15);
    }

    #[test]
    fn clones_share_one_registry() {
        let rec = Recorder::new();
        let other = rec.clone();
        other.add(Counter::ClientsTrained, 7);
        assert_eq!(rec.counter(Counter::ClientsTrained), 7);
    }

    #[test]
    fn spans_respect_the_detail_flag() {
        let rec = Recorder::new();
        {
            let _g = rec.span("off");
        }
        assert!(rec.drain().spans.is_empty(), "detail off must record nothing");
        rec.set_detail(true);
        {
            let _outer = rec.span("outer");
            let _inner = rec.span("inner");
        }
        let spans = rec.drain().spans;
        assert_eq!(spans.len(), 2);
        // Completion order: inner drops first.
        assert_eq!((spans[0].name, spans[0].depth), ("inner", 1));
        assert_eq!((spans[1].name, spans[1].depth), ("outer", 0));
        assert!(spans[1].dur_us >= spans[0].dur_us);
        assert!(spans[0].start_us >= spans[1].start_us);
    }

    #[test]
    fn histograms_record_only_with_detail_and_drain_as_deltas() {
        let rec = Recorder::new();
        rec.observe(Metric::TrainMicros, 100);
        assert!(rec.histogram(Metric::TrainMicros).is_empty());
        assert!(rec.clock().is_none(), "no clock reads while detail is off");
        rec.set_detail(true);
        rec.observe(Metric::TrainMicros, 100);
        rec.observe(Metric::TrainMicros, 3);
        let chunk = rec.drain();
        assert_eq!(chunk.hists.len(), 1);
        let (m, h) = &chunk.hists[0];
        assert_eq!(*m, Metric::TrainMicros);
        assert_eq!(h.count(), 2);
        assert_eq!(h.sum, 103);
        rec.observe(Metric::MixMicros, 1);
        let chunk = rec.drain();
        assert_eq!(chunk.hists.len(), 1);
        assert_eq!(chunk.hists[0].0, Metric::MixMicros);
    }

    #[test]
    fn bucket_edges_partition_the_domain() {
        assert_eq!(Histogram::bucket_of(0), 0);
        assert_eq!(Histogram::bucket_of(1), 1);
        assert_eq!(Histogram::bucket_of(2), 2);
        assert_eq!(Histogram::bucket_of(3), 2);
        assert_eq!(Histogram::bucket_of(4), 3);
        assert_eq!(Histogram::bucket_of(u64::MAX), HIST_BUCKETS - 1);
        assert_eq!(Histogram::bucket_upper_edge(0), 0);
        assert_eq!(Histogram::bucket_upper_edge(2), 3);
    }

    #[test]
    fn quantiles_walk_bucket_edges_deterministically() {
        let mut h = Histogram::new();
        assert_eq!(h.quantile(0.5), 0);
        for v in [1u64, 1, 1, 1, 1, 1, 1, 1, 1, 1000] {
            h.record(v);
        }
        assert_eq!(h.quantile(0.5), 1);
        assert_eq!(h.quantile(0.99), Histogram::bucket_upper_edge(Histogram::bucket_of(1000)));
        assert_eq!(h.quantile(0.0), 1, "rank clamps to the first observation");
    }

    #[test]
    fn span_us_sums_repeated_phases() {
        let chunk = TraceChunk {
            spans: vec![
                SpanRec { name: "train", tid: 0, depth: 1, start_us: 0, dur_us: 5 },
                SpanRec { name: "train", tid: 0, depth: 1, start_us: 9, dur_us: 7 },
                SpanRec { name: "mix", tid: 0, depth: 1, start_us: 5, dur_us: 4 },
            ],
            counters: vec![],
            hists: vec![],
        };
        assert_eq!(chunk.span_us("train"), 12);
        assert_eq!(chunk.span_us("mix"), 4);
        assert_eq!(chunk.span_us("absent"), 0);
    }

    fn hist_of(values: &[u64]) -> Histogram {
        let mut h = Histogram::new();
        for &v in values {
            h.record(v);
        }
        h
    }

    proptest! {
        #[test]
        fn bucket_assignment_is_deterministic_and_edge_consistent(v in any::<u64>()) {
            let b = Histogram::bucket_of(v);
            prop_assert_eq!(b, Histogram::bucket_of(v));
            prop_assert!(b < HIST_BUCKETS);
            // The value sits at or below its bucket's inclusive upper edge
            // and above the previous bucket's.
            prop_assert!(v <= Histogram::bucket_upper_edge(b) || b == HIST_BUCKETS - 1);
            if b > 0 {
                prop_assert!(v > Histogram::bucket_upper_edge(b - 1));
            }
        }

        #[test]
        fn merge_is_associative_and_commutative(
            a in proptest::collection::vec(0u64..1 << 40, 0..20),
            b in proptest::collection::vec(0u64..1 << 40, 0..20),
            c in proptest::collection::vec(0u64..1 << 40, 0..20),
        ) {
            let (ha, hb, hc) = (hist_of(&a), hist_of(&b), hist_of(&c));
            // (a ⊕ b) ⊕ c
            let mut left = ha.clone();
            left.merge(&hb);
            left.merge(&hc);
            // a ⊕ (b ⊕ c)
            let mut right_inner = hb.clone();
            right_inner.merge(&hc);
            let mut right = ha.clone();
            right.merge(&right_inner);
            prop_assert_eq!(&left, &right);
            // b ⊕ a == a ⊕ b
            let mut ab = ha.clone();
            ab.merge(&hb);
            let mut ba = hb.clone();
            ba.merge(&ha);
            prop_assert_eq!(&ab, &ba);
            // Merging equals recording the concatenation.
            let mut all = a.clone();
            all.extend(&b);
            let mut merged = ha;
            merged.merge(&hb);
            prop_assert_eq!(merged, hist_of(&all));
        }

        #[test]
        fn quantile_matches_rank_walk(values in proptest::collection::vec(0u64..100_000, 1..200)) {
            let h = hist_of(&values);
            let mut sorted = values.clone();
            sorted.sort_unstable();
            for &q in &[0.5, 0.9, 0.99, 1.0] {
                let rank = nearest_rank(q, sorted.len() as u64) as usize;
                let expect = Histogram::bucket_upper_edge(Histogram::bucket_of(sorted[rank - 1]));
                prop_assert_eq!(h.quantile(q), expect);
            }
        }

        #[test]
        fn nearest_rank_is_monotone_and_bounded(n in 1u64..64, qa in 0.0f64..1.0, qb in 0.0f64..1.0) {
            let (lo, hi) = if qa <= qb { (qa, qb) } else { (qb, qa) };
            let (ra, rb) = (nearest_rank(lo, n), nearest_rank(hi, n));
            prop_assert!((1..=n).contains(&ra));
            prop_assert!((1..=n).contains(&rb));
            prop_assert!(ra <= rb);
        }
    }

    #[test]
    fn nearest_rank_pins_boundary_cases() {
        // The ⌈q·n⌉ off-by-one traps: q = 0 still selects rank 1, q = 1
        // selects rank n, and exact multiples of 1/n do not round up.
        assert_eq!(nearest_rank(0.0, 5), 1);
        assert_eq!(nearest_rank(1.0, 5), 5);
        assert_eq!(nearest_rank(0.5, 1), 1);
        assert_eq!(nearest_rank(0.5, 2), 1); // ⌈1.0⌉ = 1, not 2
        assert_eq!(nearest_rank(0.5, 3), 2); // ⌈1.5⌉ = 2
        assert_eq!(nearest_rank(0.99, 100), 99);
        assert_eq!(nearest_rank(0.99, 101), 100);
        assert_eq!(nearest_rank(0.5, 0), 0); // empty: caller returns 0
    }
}
