//! One Criterion benchmark per paper table/figure: the cost of regenerating
//! each artifact at smoke scale (see `DESIGN.md` §4 for the index).

use cia_bench::run_experiment;
use cia_data::presets::Scale;
use criterion::{criterion_group, criterion_main, Criterion};
use std::time::Duration;

fn bench_artifacts(c: &mut Criterion) {
    let mut group = c.benchmark_group("paper_artifacts");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(3));
    for name in [
        "table1", "table2", "table3", "table4", "table5", "table6", "table7", "table8", "table9",
        "fig1", "fig3", "fig4", "fig5", "aia", "mnist", "ablation",
    ] {
        group.bench_function(name, |b| {
            b.iter(|| std::hint::black_box(run_experiment(name, Scale::Smoke, 42)));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_artifacts);
criterion_main!(benches);
