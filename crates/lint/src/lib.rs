//! **cia-lint** — the repo's determinism & safety static-analysis pass.
//!
//! Every guarantee this reproduction makes — byte-identical transcripts
//! under any `CIA_THREADS`, any `--delivery-seed`, and across kill/resume —
//! is enforced downstream by golden and property tests. This crate enforces
//! the same invariants at the *source* level: a lightweight Rust lexer
//! ([`lexer`]) feeds a rule engine ([`rules`]) that walks every
//! `crates/**/*.rs` and `src/**/*.rs` file and flags the constructs that
//! historically break those guarantees (unordered-map iteration, wall-clock
//! reads, entropy-seeded RNGs, narrowing casts, undocumented `unsafe`,
//! unmanaged threads, unordered float reductions) before they ever reach a
//! transcript.
//!
//! Run it as the workspace binary:
//!
//! ```text
//! cargo run --release -p cia-lint --bin cia-lint -- [--json] [--out FILE] [PATHS…]
//! ```
//!
//! With no `PATHS` the whole workspace is walked (relative to `--root`,
//! default the current directory). Exit status: `0` clean, `1` violations,
//! `2` usage or I/O errors. `scripts/ci.sh` gates on it ahead of clippy.
//!
//! Rule IDs, rationale, and the allow-comment grammar are documented in
//! `crates/lint/README.md`.

#![forbid(unsafe_code)]

pub mod lexer;
pub mod rules;

pub use rules::{lint_source, Diagnostic, FileClass, DETERMINISTIC_PATH_CRATES, RULES};

use std::path::{Path, PathBuf};

/// Diagnostics for one file, with the path workspace-relative and
/// `/`-separated (stable across platforms, and what [`FileClass`] keys on).
#[derive(Debug)]
pub struct FileReport {
    pub path: String,
    pub diagnostics: Vec<Diagnostic>,
}

/// A whole run: per-file findings plus counts for the summary line.
#[derive(Debug, Default)]
pub struct Report {
    /// Only files with at least one diagnostic appear here, in walk order
    /// (sorted by path).
    pub files: Vec<FileReport>,
    /// Total files scanned.
    pub files_scanned: usize,
    /// Paths that could not be read (reported, and counted as failures).
    pub unreadable: Vec<String>,
}

impl Report {
    /// Total diagnostics across all files.
    #[must_use]
    pub fn total(&self) -> usize {
        self.files.iter().map(|f| f.diagnostics.len()).sum()
    }

    /// Clean means zero diagnostics *and* every target was readable.
    #[must_use]
    pub fn is_clean(&self) -> bool {
        self.total() == 0 && self.unreadable.is_empty()
    }
}

/// The default lint surface under `root`: every `.rs` file beneath
/// `crates/` and `src/`, excluding the lint fixtures (known-bad snippets
/// by design) and anything under `target/`. Sorted for deterministic
/// output.
#[must_use]
pub fn default_targets(root: &Path) -> Vec<PathBuf> {
    let mut out = Vec::new();
    for top in ["crates", "src"] {
        walk(&root.join(top), &mut out);
    }
    out.sort();
    out
}

fn walk(dir: &Path, out: &mut Vec<PathBuf>) {
    let Ok(entries) = std::fs::read_dir(dir) else { return };
    let mut entries: Vec<PathBuf> = entries.filter_map(|e| e.ok().map(|e| e.path())).collect();
    entries.sort();
    for path in entries {
        if path.is_dir() {
            let name = path.file_name().and_then(|n| n.to_str()).unwrap_or("");
            // Fixtures are deliberately violating snippets; target/ is
            // build output.
            if name == "target" || path.ends_with("tests/fixtures") {
                continue;
            }
            walk(&path, out);
        } else if path.extension().and_then(|e| e.to_str()) == Some("rs") {
            out.push(path);
        }
    }
}

/// Lints `paths` (files or directories), reporting each file's diagnostics
/// under its `root`-relative path.
#[must_use]
pub fn lint_paths(root: &Path, paths: &[PathBuf]) -> Report {
    let mut files = Vec::new();
    for p in paths {
        if p.is_dir() {
            walk(p, &mut files);
        } else {
            files.push(p.clone());
        }
    }
    files.sort();
    files.dedup();

    let mut report = Report::default();
    for file in &files {
        let rel = relative_slash_path(root, file);
        match std::fs::read_to_string(file) {
            Ok(src) => {
                report.files_scanned += 1;
                let diagnostics = lint_source(&rel, &src);
                if !diagnostics.is_empty() {
                    report.files.push(FileReport { path: rel, diagnostics });
                }
            }
            Err(e) => report.unreadable.push(format!("{rel}: {e}")),
        }
    }
    report
}

/// `root`-relative, `/`-separated rendering of `path` (falls back to the
/// path as given when it does not live under `root`).
fn relative_slash_path(root: &Path, path: &Path) -> String {
    let rel = path.strip_prefix(root).unwrap_or(path);
    rel.components().map(|c| c.as_os_str().to_string_lossy()).collect::<Vec<_>>().join("/")
}

/// Human-readable rendering: `path:line:col: [RULE] message` plus the
/// offending line, then a one-line summary.
#[must_use]
pub fn render_human(report: &Report) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    for f in &report.files {
        for d in &f.diagnostics {
            let _ = writeln!(out, "{}:{}:{}: [{}] {}", f.path, d.line, d.col, d.rule, d.message);
            if !d.snippet.is_empty() {
                let _ = writeln!(out, "    {}", d.snippet);
            }
        }
    }
    for u in &report.unreadable {
        let _ = writeln!(out, "error: cannot read {u}");
    }
    let _ = writeln!(
        out,
        "cia-lint: {} violation(s) across {} file(s) ({} scanned)",
        report.total(),
        report.files.len(),
        report.files_scanned
    );
    out
}

/// JSON rendering (the CI artifact): a single object with a `violations`
/// array. Dependency-free by construction — the writer escapes strings
/// itself.
#[must_use]
pub fn render_json(report: &Report) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    out.push_str("{\n  \"tool\": \"cia-lint\",\n  \"version\": 1,\n");
    let _ = writeln!(out, "  \"files_scanned\": {},", report.files_scanned);
    let _ = writeln!(out, "  \"total_violations\": {},", report.total());
    out.push_str("  \"violations\": [");
    let mut first = true;
    for f in &report.files {
        for d in &f.diagnostics {
            if !first {
                out.push(',');
            }
            first = false;
            let _ = write!(
                out,
                "\n    {{\"rule\": {}, \"path\": {}, \"line\": {}, \"col\": {}, \
                 \"message\": {}, \"snippet\": {}}}",
                json_string(d.rule),
                json_string(&f.path),
                d.line,
                d.col,
                json_string(&d.message),
                json_string(&d.snippet)
            );
        }
    }
    out.push_str("\n  ],\n  \"unreadable\": [");
    let mut first = true;
    for u in &report.unreadable {
        if !first {
            out.push(',');
        }
        first = false;
        let _ = write!(out, "\n    {}", json_string(u));
    }
    out.push_str("\n  ]\n}\n");
    out
}

/// Minimal JSON string escaping (quotes, backslashes, control chars).
fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            // cia-lint: allow(D05, char scalar values are at most 21 bits; u32 holds every codepoint)
            c if (c as u32) < 0x20 => {
                use std::fmt::Write as _;
                // cia-lint: allow(D05, char scalar values are at most 21 bits; u32 holds every codepoint)
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_escaping_round_trips_special_chars() {
        assert_eq!(json_string("a\"b\\c\nd"), r#""a\"b\\c\nd""#);
        assert_eq!(json_string("\u{1}"), "\"\\u0001\"");
    }

    #[test]
    fn report_summary_counts() {
        let mut r = Report::default();
        assert!(r.is_clean());
        r.files.push(FileReport {
            path: "x.rs".to_string(),
            diagnostics: lint_source("crates/core/src/x.rs", "fn f(x: u64) -> u32 { x as u32 }"),
        });
        assert_eq!(r.total(), 1);
        assert!(!r.is_clean());
        assert!(render_human(&r).contains("[D05]"));
        assert!(render_json(&r).contains("\"rule\": \"D05\""));
    }
}
