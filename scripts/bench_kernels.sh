#!/usr/bin/env bash
# Regenerates BENCH_kernels.json: runs the micro benchmark suite with the
# harness's JSON-lines output enabled, then folds the stream into a report
# that pairs each kernel-backed benchmark with its scalar baseline.
#
# The JSON-lines stream accumulates in target/criterion-results.jsonl across
# invocations and later lines win, so a filtered re-run (e.g.
# `scripts/bench_kernels.sh kernel`) updates only the filtered entries and
# keeps the rest of the report intact. Delete that file for a fresh slate.
set -euo pipefail
cd "$(dirname "$0")/.."

# Absolute path: cargo runs bench binaries with the package dir as cwd.
jsonl="$PWD/target/criterion-results.jsonl"
mkdir -p target

echo "== timing run (micro suite), streaming to $jsonl"
CRITERION_JSON="$jsonl" cargo bench -p cia-bench --bench micro "$@"

echo "== folding into BENCH_kernels.json"
cargo run --release -p cia-bench --bin bench_report -- "$jsonl" BENCH_kernels.json
cat BENCH_kernels.json
