//! The entropy-based membership-inference proxy (§VIII-C1).
//!
//! A low-cost MIA [23] classifies an item as a training member of a model
//! when the entropy of the model's prediction falls below a threshold ρ
//! (confident predictions ⇒ likely memorized). Used as a community-inference
//! proxy, the adversary ranks users by how many target items the MIA declares
//! members of their training set — the paper shows this is strictly weaker
//! than CIA (Table VIII).

use crate::fl::CiaConfig;
use crate::metrics::{community_accuracy, AttackOutcome, AttackTracker};
use crate::momentum::MomentumState;
use cia_data::UserId;
use cia_federated::{RoundObserver, RoundStats};
use cia_models::parallel::par_map;
use cia_models::{RelevanceScorer, SharedModel};
use serde::{Deserialize, Serialize};

/// Binary prediction entropy `−p·ln p − (1−p)·ln(1−p)` (nats; max ln 2).
///
/// ```
/// use cia_core::membership_entropy;
/// assert!(membership_entropy(0.5) > membership_entropy(0.99));
/// assert!(membership_entropy(0.0) == 0.0);
/// ```
pub fn membership_entropy(p: f32) -> f32 {
    let p = p.clamp(0.0, 1.0);
    if p == 0.0 || p == 1.0 {
        return 0.0;
    }
    -(p * p.ln() + (1.0 - p) * (1.0 - p).ln())
}

/// MIA proxy configuration.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MiaConfig {
    /// The CIA-compatible parameters (community size, momentum, cadence).
    pub cia: CiaConfig,
    /// Entropy threshold ρ: items with prediction entropy ≤ ρ are classified
    /// as training members.
    pub rho: f32,
}

/// Community inference via entropy-threshold membership inference, as a
/// federated-server observer (the paper evaluates the proxy in FL, Table
/// VIII).
pub struct MiaCommunityAttack<S: RelevanceScorer> {
    cfg: MiaConfig,
    scorer: S,
    targets: Vec<Vec<u32>>,
    truths: Vec<Vec<UserId>>,
    owners: Vec<Option<UserId>>,
    /// Actual train sets, used only to measure the MIA's own membership
    /// precision (reported next to the community accuracy in Table VIII).
    train_sets: Vec<Vec<u32>>,
    momentum: Vec<Option<MomentumState>>,
    tracker: AttackTracker,
    precision_history: Vec<(u64, f64)>,
}

impl<S: RelevanceScorer> MiaCommunityAttack<S> {
    /// Creates the proxy attack. Inputs mirror [`crate::FlCia::new`] plus the
    /// real train sets for precision measurement.
    ///
    /// # Panics
    ///
    /// Panics on misaligned tables or `k == 0`.
    pub fn new(
        cfg: MiaConfig,
        scorer: S,
        targets: Vec<Vec<u32>>,
        num_users: usize,
        truths: Vec<Vec<UserId>>,
        owners: Vec<Option<UserId>>,
        train_sets: Vec<Vec<u32>>,
    ) -> Self {
        assert!(cfg.cia.k > 0, "community size must be positive");
        assert!(cfg.cia.eval_every > 0, "eval_every must be positive");
        assert_eq!(truths.len(), targets.len(), "one truth per target");
        assert_eq!(owners.len(), targets.len(), "one owner entry per target");
        assert_eq!(train_sets.len(), num_users, "one train set per user");
        let candidates = num_users.saturating_sub(usize::from(owners.iter().any(Option::is_some)));
        MiaCommunityAttack {
            tracker: AttackTracker::new(cfg.cia.k, candidates),
            cfg,
            scorer,
            targets,
            truths,
            owners,
            train_sets,
            momentum: (0..num_users).map(|_| None).collect(),
            precision_history: Vec::new(),
        }
    }

    /// The attack summary.
    pub fn outcome(&self) -> AttackOutcome {
        self.tracker.outcome()
    }

    /// The MIA's membership precision at the round where Max AAC was
    /// achieved.
    pub fn precision_at_max(&self) -> f64 {
        let max_round = self.tracker.outcome().max_round;
        self.precision_history.iter().find(|(r, _)| *r == max_round).map(|(_, p)| *p).unwrap_or(0.0)
    }

    fn evaluate(&mut self, round: u64) {
        let rho = self.cfg.rho;
        let num_items = self.scorer.num_items() as usize;
        // Per user: membership bitmap over the catalog from the momentum
        // model, then per-target member counts.
        let member_frac: Vec<Option<(Vec<f32>, f64)>> = par_map(self.momentum.len(), |u| {
            let state = self.momentum[u].as_ref()?;
            let mut scores = vec![0.0f32; num_items];
            self.scorer.score_items(state.emb(), state.agg(), &mut scores);
            // The entropy rule needs calibrated probabilities; scorers emit
            // raw relevance (GMF: pre-sigmoid logits), so calibrate here.
            // Confident-positive rule: low entropy alone cannot separate a
            // memorized positive from a confident negative, so membership
            // additionally requires p > 1/2.
            let member: Vec<bool> = scores
                .iter()
                .map(|&z| {
                    let p = cia_models::params::sigmoid(z);
                    p > 0.5 && membership_entropy(p) <= rho
                })
                .collect();
            // Per-target fraction of items declared members.
            let fracs: Vec<f32> = self
                .targets
                .iter()
                .map(|t| {
                    if t.is_empty() {
                        0.0
                    } else {
                        t.iter().filter(|&&i| member[i as usize]).count() as f32 / t.len() as f32
                    }
                })
                .collect();
            // Membership precision on this user's own model: positives = own
            // train items, negatives = a deterministic stride probe.
            let train = &self.train_sets[u];
            let tp = train.iter().filter(|&&i| member[i as usize]).count();
            let stride = (num_items / train.len().max(1)).max(1);
            let mut fp = 0usize;
            let mut negs = 0usize;
            for i in (0..num_items).step_by(stride) {
                // cia-lint: allow(D05, ids and indices are bounded by the validated population/catalog size, which fits u32)
                if train.binary_search(&(i as u32)).is_err() {
                    negs += 1;
                    if member[i] {
                        fp += 1;
                    }
                }
                if negs >= train.len() {
                    break;
                }
            }
            let precision = if tp + fp == 0 { 0.0 } else { tp as f64 / (tp + fp) as f64 };
            Some((fracs, precision))
        });

        let mut accs = Vec::with_capacity(self.targets.len());
        let mut uppers = Vec::with_capacity(self.targets.len());
        for t in 0..self.targets.len() {
            let mut scored: Vec<(f32, u32)> = member_frac
                .iter()
                .enumerate()
                .filter_map(|(u, r)| {
                    // cia-lint: allow(D05, ids and indices are bounded by the validated population/catalog size, which fits u32)
                    if self.owners[t] == Some(UserId::new(u as u32)) {
                        return None;
                    }
                    // cia-lint: allow(D05, ids and indices are bounded by the validated population/catalog size, which fits u32)
                    r.as_ref().map(|(fracs, _)| (fracs[t], u as u32))
                })
                .collect();
            scored.sort_by(crate::metrics::rank_desc);
            let predicted: Vec<UserId> =
                scored.into_iter().take(self.cfg.cia.k).map(|(_, u)| UserId::new(u)).collect();
            accs.push(community_accuracy(&predicted, &self.truths[t], self.cfg.cia.k));
            let seen = self.truths[t].iter().filter(|u| self.momentum[u.index()].is_some()).count();
            uppers.push(seen as f64 / self.cfg.cia.k as f64);
        }
        self.tracker.record(round, &accs, &uppers);

        let precisions: Vec<f64> = member_frac.iter().flatten().map(|(_, p)| *p).collect();
        let mean_precision = if precisions.is_empty() {
            0.0
        } else {
            // cia-lint: allow(D07, sequential left-to-right fold over a slice in index order; the reduction order is fixed)
            precisions.iter().sum::<f64>() / precisions.len() as f64
        };
        self.precision_history.push((round, mean_precision));
    }
}

impl<S: RelevanceScorer> RoundObserver for MiaCommunityAttack<S> {
    fn on_client_model(&mut self, model: &SharedModel) {
        let u = model.owner.index();
        match &mut self.momentum[u] {
            Some(state) => state.update(self.cfg.cia.beta, model),
            slot @ None => *slot = Some(MomentumState::from_snapshot(model)),
        }
    }

    fn on_round_end(&mut self, stats: &RoundStats) {
        if (stats.round + 1).is_multiple_of(self.cfg.cia.eval_every) {
            self.evaluate(stats.round);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cia_data::{GroundTruth, LeaveOneOut, SyntheticConfig};
    use cia_federated::{FedAvg, FedAvgConfig};
    use cia_models::{GmfHyper, GmfSpec, SharingPolicy};

    #[test]
    fn entropy_properties() {
        assert!((membership_entropy(0.5) - std::f32::consts::LN_2).abs() < 1e-6);
        assert!(membership_entropy(0.9) < membership_entropy(0.6));
        assert_eq!(membership_entropy(1.0), 0.0);
        assert!((membership_entropy(0.3) - membership_entropy(0.7)).abs() < 1e-6);
    }

    #[test]
    fn mia_proxy_runs_and_reports() {
        let users = 24;
        let data = SyntheticConfig::builder()
            .users(users)
            .items(100)
            .communities(4)
            .interactions_per_user(12)
            .seed(3)
            .build()
            .generate();
        let split = LeaveOneOut::new(&data, 10, 1).unwrap();
        let k = 4;
        let gt = GroundTruth::from_train_sets(split.train_sets(), k);
        let spec = GmfSpec::new(100, 8, GmfHyper::default());
        let clients: Vec<_> = split
            .train_sets()
            .iter()
            .enumerate()
            .map(|(u, items)| {
                spec.build_client(
                    // cia-lint: allow(D05, ids and indices are bounded by the validated population/catalog size, which fits u32)
                    UserId::new(u as u32),
                    items.clone(),
                    SharingPolicy::Full,
                    u as u64,
                )
            })
            .collect();
        let truths: Vec<Vec<UserId>> =
            // cia-lint: allow(D05, ids and indices are bounded by the validated population/catalog size, which fits u32)
            (0..users).map(|u| gt.community_of(UserId::new(u as u32)).to_vec()).collect();
        // cia-lint: allow(D05, ids and indices are bounded by the validated population/catalog size, which fits u32)
        let owners: Vec<Option<UserId>> = (0..users).map(|u| Some(UserId::new(u as u32))).collect();
        let mut attack = MiaCommunityAttack::new(
            MiaConfig { cia: CiaConfig { k, beta: 0.9, eval_every: 2, seed: 0 }, rho: 0.4 },
            spec,
            split.train_sets().to_vec(),
            users,
            truths,
            owners,
            split.train_sets().to_vec(),
        );
        let mut sim =
            FedAvg::new(clients, FedAvgConfig { rounds: 10, seed: 4, ..Default::default() });
        sim.run(&mut attack);
        let out = attack.outcome();
        assert!(out.max_aac >= 0.0 && out.max_aac <= 1.0);
        assert!(out.history.len() == 5);
        let p = attack.precision_at_max();
        assert!((0.0..=1.0).contains(&p));
    }
}
