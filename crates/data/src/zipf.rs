//! Zipf-distributed sampling of item popularity.
//!
//! Real recommendation catalogs have heavily skewed popularity; the synthetic
//! generator uses a Zipf prior inside each topic cluster so that the item
//! frequency distribution resembles MovieLens/Foursquare traces.

use rand::Rng;

/// A Zipf distribution over `0..n` with exponent `s`, sampled by inverse
/// transform over the precomputed CDF.
///
/// Probability of rank `k` (0-based) is proportional to `1 / (k + 1)^s`.
///
/// ```
/// use cia_data::Zipf;
/// use rand::SeedableRng;
///
/// let z = Zipf::new(100, 1.1).unwrap();
/// let mut rng = rand::rngs::StdRng::seed_from_u64(1);
/// let x = z.sample(&mut rng);
/// assert!(x < 100);
/// ```
#[derive(Debug, Clone)]
pub struct Zipf {
    cdf: Vec<f64>,
}

impl Zipf {
    /// Creates a Zipf distribution over `0..n` with exponent `s >= 0`.
    ///
    /// # Errors
    ///
    /// Returns an error if `n == 0` or `s` is negative or non-finite.
    pub fn new(n: usize, s: f64) -> Result<Self, crate::DataError> {
        if n == 0 {
            return Err(crate::DataError::InvalidConfig {
                field: "zipf.n",
                reason: "support size must be positive".into(),
            });
        }
        if !s.is_finite() || s < 0.0 {
            return Err(crate::DataError::InvalidConfig {
                field: "zipf.s",
                reason: format!("exponent must be finite and non-negative, got {s}"),
            });
        }
        let mut cdf = Vec::with_capacity(n);
        let mut acc = 0.0f64;
        for k in 0..n {
            acc += 1.0 / ((k + 1) as f64).powf(s);
            cdf.push(acc);
        }
        let total = acc;
        for v in &mut cdf {
            *v /= total;
        }
        // Guard against floating point drift: the last entry must be 1.
        if let Some(last) = cdf.last_mut() {
            *last = 1.0;
        }
        Ok(Zipf { cdf })
    }

    /// Number of values in the support.
    pub fn len(&self) -> usize {
        self.cdf.len()
    }

    /// Returns `true` if the support is empty (never true for a constructed value).
    pub fn is_empty(&self) -> bool {
        self.cdf.is_empty()
    }

    /// Draws one rank in `0..len()`.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> usize {
        let u: f64 = rng.gen();
        // First index whose CDF value is >= u.
        match self.cdf.binary_search_by(|p| p.partial_cmp(&u).expect("cdf is finite")) {
            Ok(i) => i,
            Err(i) => i.min(self.cdf.len() - 1),
        }
    }

    /// Probability mass of rank `k`, or 0 if out of range.
    pub fn pmf(&self, k: usize) -> f64 {
        if k >= self.cdf.len() {
            return 0.0;
        }
        if k == 0 {
            self.cdf[0]
        } else {
            self.cdf[k] - self.cdf[k - 1]
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn rejects_bad_config() {
        assert!(Zipf::new(0, 1.0).is_err());
        assert!(Zipf::new(10, -1.0).is_err());
        assert!(Zipf::new(10, f64::NAN).is_err());
    }

    #[test]
    fn uniform_when_exponent_zero() {
        let z = Zipf::new(4, 0.0).unwrap();
        for k in 0..4 {
            assert!((z.pmf(k) - 0.25).abs() < 1e-12, "pmf({k}) = {}", z.pmf(k));
        }
    }

    #[test]
    fn pmf_sums_to_one() {
        let z = Zipf::new(1000, 1.2).unwrap();
        let sum: f64 = (0..1000).map(|k| z.pmf(k)).sum();
        assert!((sum - 1.0).abs() < 1e-9);
    }

    #[test]
    fn skew_favors_low_ranks() {
        let z = Zipf::new(100, 1.5).unwrap();
        assert!(z.pmf(0) > z.pmf(1));
        assert!(z.pmf(1) > z.pmf(50));
    }

    #[test]
    fn samples_match_pmf_roughly() {
        let z = Zipf::new(10, 1.0).unwrap();
        let mut rng = rand::rngs::StdRng::seed_from_u64(99);
        let n = 200_000;
        let mut counts = [0usize; 10];
        for _ in 0..n {
            counts[z.sample(&mut rng)] += 1;
        }
        for (k, &count) in counts.iter().enumerate() {
            let emp = count as f64 / n as f64;
            assert!((emp - z.pmf(k)).abs() < 0.01, "rank {k}: empirical {emp} vs pmf {}", z.pmf(k));
        }
    }

    #[test]
    fn sample_is_always_in_range() {
        let z = Zipf::new(3, 2.0).unwrap();
        let mut rng = rand::rngs::StdRng::seed_from_u64(5);
        for _ in 0..10_000 {
            assert!(z.sample(&mut rng) < 3);
        }
    }
}
