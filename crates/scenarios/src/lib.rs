//! `cia-scenarios` — the declarative scenario engine.
//!
//! The paper evaluates the Community Inference Attack under static FL/GL
//! deployments; real collaborative deployments have churn, stragglers,
//! partial participation and colluding sybils. This crate turns "a workload"
//! from a hand-wired Rust function into a *value*:
//!
//! * [`spec`] — the scenario specification: dataset × scale × model ×
//!   protocol × defense × attack plus a `dynamics` block, parseable from
//!   JSON and composable into named suites of *generators* — plain
//!   scenarios or parameter sweeps ([`SuiteSpec`], [`SuiteEntry`],
//!   [`builtin_suite`], [`participation_sweep_suite`],
//!   [`defense_dynamics_grid_suite`], [`pers_gossip_churn_suite`]);
//! * [`dynamics`] — the participant-dynamics layer, threaded through the
//!   protocols' observer seams so the training loops never fork;
//! * [`placement`] — adaptive traffic-aware sybil placement: a coalition
//!   that observes traffic for a warm-up window, then relocates onto the
//!   top-scoring positions ([`adaptive_sybils_suite`]);
//! * [`runner`] — deterministic suite execution streaming one JSONL record
//!   per (scenario, evaluation round), with checkpoint/resume of model,
//!   momentum, tracker and dynamics state ([`checkpoint`]);
//! * [`setup`] — the shared dataset/ground-truth substrate (also consumed by
//!   `cia-experiments`);
//! * [`json`] — the dependency-free JSON codec behind specs and records;
//! * [`trace`] — Chrome trace-event export of the per-round phase spans and
//!   counters the runner drains from its `cia_obs::Recorder`;
//! * [`report`] — the `scenario report` aggregator: per-phase mean/p50/p99
//!   tables, counter totals and the RSS trajectory from a run's JSONL.
//!
//! ```
//! use cia_data::presets::Scale;
//! use cia_scenarios::{builtin_suite, runner::{run_suite, validate_jsonl, RunOptions}};
//!
//! let suite = builtin_suite(Scale::Smoke, 42);
//! let mut out = Vec::new();
//! let outcomes = run_suite(&suite, &RunOptions::default(), &mut out).unwrap();
//! assert_eq!(outcomes.len(), 3);
//! validate_jsonl(&String::from_utf8(out).unwrap()).unwrap();
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod checkpoint;
pub mod dynamics;
pub mod json;
pub mod mem;
pub mod placement;
pub mod report;
pub mod runner;
pub mod setup;
pub mod spec;
pub mod trace;

pub use dynamics::{DynamicsState, FlDynamics, GlDynamics, ParticipantDynamics};
pub use mem::peak_rss_bytes;
pub use placement::{PlacementEngine, PlacementObserver, PlacementState};
pub use report::{render as render_report, summarize, PhaseStat, ScenarioReport};
pub use runner::{run_quiet, run_scenario, run_suite, RunOptions, RunResult, ScenarioOutcome};
pub use setup::{build_setup, try_build_setup, validate_scale_params, RecsysSetup};
pub use spec::{
    adaptive_sybils_suite, builtin_suite, defense_dynamics_grid_suite, named_suite,
    participation_sweep_suite, pers_gossip_churn_suite, DefenseKind, DynamicsSpec, ModelKind,
    PlacementStrategy, ProtocolKind, ScaleParams, ScenarioSpec, ServeWorkload, SuiteEntry,
    SuiteSpec, SweepField, BUILTIN_SUITE_NAMES,
};
pub use trace::{chrome_trace, validate_chrome_trace};
