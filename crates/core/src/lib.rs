//! The **Community Inference Attack (CIA)** — the paper's primary
//! contribution — together with the proxy attacks it is compared against.
//!
//! CIA is a *comparison-based* attack: an honest-but-curious adversary
//! (the server in FL, one or several nodes in GL) scores every received model
//! against a target item set `V_target` and ranks participants by relevance,
//! predicting the `K` highest as the community of interest (§IV). Model aging
//! and gossip temporality are smoothed with a per-sender parameter momentum
//! `v_u ← β·v_u + (1−β)·Θ_u` (Eq. 4).
//!
//! Components:
//!
//! * [`FlCia`] — Algorithm 1, implemented as a [`cia_federated::RoundObserver`];
//! * [`GlCiaCoalition`] — Algorithm 2 with parameter momentum, for a single
//!   adversary or a colluding coalition that multicasts received models;
//! * [`GlCiaAllPlacements`] — the all-placements sweep used for Table III,
//!   applying the momentum to relevance *scores* (substitution documented in
//!   `DESIGN.md` §3: per-(observer, sender) parameter momentum for every
//!   placement at once would need O(N²) model copies);
//! * [`ItemSetEvaluator`] — relevance of a model for item-set targets,
//!   including the Share-less adaptation that trains a fictive adversary
//!   embedding (§IV-C);
//! * [`MiaCommunityAttack`] — the entropy-threshold membership-inference
//!   proxy (§VIII-C1);
//! * [`AiaCommunityAttack`] — the gradient-classifier attribute-inference
//!   proxy (§VIII-C2);
//! * [`metrics`] — attack accuracy (Eq. 6), Max AAC, Best-10% AAC, random
//!   and upper bounds;
//! * [`complexity`] — the temporal cost model of Table IX.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod aia;
pub mod complexity;
mod evaluator;
mod fl;
mod gl;
pub mod metrics;
mod mia;
mod momentum;

pub use aia::{AiaCommunityAttack, AiaConfig};
pub use evaluator::{ItemSetEvaluator, RelevanceEvaluator, RelevanceKind};
pub use fl::{CiaAttackState, CiaConfig, FlCia};
pub use gl::{GlCiaAllPlacements, GlCiaCoalition, PlacementsState};
pub use metrics::{AttackOutcome, AttackTracker, RoundPoint, TopK};
pub use mia::{membership_entropy, MiaCommunityAttack, MiaConfig};
pub use momentum::MomentumState;

/// The observability layer (re-exported): phase spans, the typed counter
/// registry and log₂ latency histograms every simulation reports into.
pub use cia_obs as obs;
pub use cia_obs::{Counter, Histogram, Metric, Recorder, SpanRec, TraceChunk};

/// Runtime abstractions the attack engines implement (re-exported): the
/// export/restore trait behind checkpointing and the protocol-agnostic
/// liveness events observers receive.
pub use cia_runtime::{Checkpointable, LivenessEvent};
