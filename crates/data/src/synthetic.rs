//! Community-structured synthetic dataset generator.
//!
//! Substitutes the paper's real datasets (see `DESIGN.md` §3): users are
//! partitioned into *communities of interest*; each community has a primary
//! topic cluster of items, and a user draws each interaction from their own
//! cluster with probability [`SyntheticConfig::topic_affinity`] (Zipf-skewed
//! within the cluster) and from the global catalog otherwise. This reproduces
//! the property CIA exploits — users from the same community rate the same
//! items — while letting the ground truth be recomputed from the data itself
//! exactly as in the paper (Jaccard top-K, Eq. 5).

use crate::categories::{CategoryMap, CategoryPlan, HEALTH_CATEGORY};
use crate::{DataError, Dataset, UserRecord, Zipf};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};
use std::collections::BTreeSet;

/// Configuration of the synthetic generator. Build with
/// [`SyntheticConfig::builder`].
///
/// ```
/// use cia_data::SyntheticConfig;
///
/// let data = SyntheticConfig::builder()
///     .users(40)
///     .items(100)
///     .communities(4)
///     .interactions_per_user(10)
///     .seed(1)
///     .build()
///     .generate();
/// assert_eq!(data.num_users(), 40);
/// assert!(data.num_interactions() > 0);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SyntheticConfig {
    name: String,
    users: usize,
    items: u32,
    communities: usize,
    interactions_per_user: usize,
    /// Relative jitter on the per-user interaction count (0.3 ⇒ ±30%).
    ipu_jitter: f64,
    /// Probability that an interaction is drawn from the user's own topic
    /// cluster rather than the global catalog.
    topic_affinity: f64,
    /// Zipf exponent of item popularity (within clusters and globally).
    zipf_exponent: f64,
    /// Generate chronological check-in sequences (needed by PRME).
    sequences: bool,
    categories: Option<CategoryPlan>,
    seed: u64,
}

impl SyntheticConfig {
    /// Starts building a configuration with sensible defaults.
    pub fn builder() -> SyntheticConfigBuilder {
        SyntheticConfigBuilder::default()
    }

    /// Dataset name recorded in the output.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of users that will be generated.
    pub fn num_users(&self) -> usize {
        self.users
    }

    /// Catalog size that will be generated.
    pub fn num_items(&self) -> u32 {
        self.items
    }

    /// Generates the dataset deterministically from the configured seed.
    pub fn generate(&self) -> Dataset {
        let mut rng = StdRng::seed_from_u64(self.seed);
        let n_items = self.items as usize;

        // Contiguous topic clusters. Cluster c owns items
        // [c * n/C, (c+1) * n/C). A shuffled item permutation decouples item id
        // from popularity rank.
        let mut perm: Vec<u32> = (0..self.items).collect();
        perm.shuffle(&mut rng);
        let n_clusters = self.communities;
        let cluster_of = |slot: usize| -> usize { slot * n_clusters / n_items };
        let mut clusters: Vec<Vec<u32>> = vec![Vec::new(); n_clusters];
        for (slot, &item) in perm.iter().enumerate() {
            clusters[cluster_of(slot)].push(item);
        }

        // Categories (independent of clusters, so non-planted users hit the
        // base-rate health fraction naturally).
        let category_map = self.categories.as_ref().map(|plan| {
            let mut labels = vec![0u8; n_items];
            for l in &mut labels {
                if rng.gen::<f64>() < plan.health_item_fraction {
                    *l = HEALTH_CATEGORY;
                } else {
                    // Uniform over the 9 non-health categories.
                    // cia-lint: allow(D05, gen_range over 0..9 always fits u8)
                    *l = 1 + rng.gen_range(0..9) as u8;
                }
            }
            CategoryMap::new(labels)
        });
        let health_pool: Vec<u32> =
            category_map.as_ref().map(|m| m.items_in(HEALTH_CATEGORY)).unwrap_or_default();

        let global_zipf = Zipf::new(n_items, self.zipf_exponent).expect("validated config");
        let cluster_zipfs: Vec<Zipf> = clusters
            .iter()
            .map(|c| Zipf::new(c.len().max(1), self.zipf_exponent).expect("validated config"))
            .collect();

        // Community assignment: shuffled round-robin so community sizes are
        // balanced but user ids carry no community information.
        let mut community_of: Vec<u32> =
            // cia-lint: allow(D05, ids and indices are bounded by the validated population/catalog size, which fits u32)
            (0..self.users).map(|u| (u % self.communities) as u32).collect();
        community_of.shuffle(&mut rng);

        // Health-vulnerable planting (Figure 1): the first `num_users` user
        // ids become the planted community.
        let planting = self.categories.as_ref().and_then(|p| p.health_planting);

        let mut records = Vec::with_capacity(self.users);
        for (u, &community) in community_of.iter().enumerate() {
            let c = community as usize;
            let jitter = 1.0 + self.ipu_jitter * (rng.gen::<f64>() * 2.0 - 1.0);
            let mut n_u = ((self.interactions_per_user as f64) * jitter).round() as usize;
            n_u = n_u.clamp(2, (n_items * 4) / 5);

            let planted_health = match planting {
                Some(p) if u < p.num_users && !health_pool.is_empty() => Some(p),
                _ => None,
            };

            let mut chosen: BTreeSet<u32> = BTreeSet::new();
            let mut guard = 0usize;
            while chosen.len() < n_u && guard < n_u * 200 {
                guard += 1;
                let item = if let Some(p) = planted_health {
                    if rng.gen::<f64>() < p.health_fraction {
                        health_pool[rng.gen_range(0..health_pool.len())]
                    } else {
                        self.draw_regular(
                            &mut rng,
                            c,
                            &clusters,
                            &cluster_zipfs,
                            &global_zipf,
                            &perm,
                        )
                    }
                } else {
                    self.draw_regular(&mut rng, c, &clusters, &cluster_zipfs, &global_zipf, &perm)
                };
                chosen.insert(item);
            }

            let items: Vec<u32> = chosen.into_iter().collect();
            let sequence = if self.sequences {
                Self::synthesize_sequence(&items, &mut rng)
            } else {
                Vec::new()
            };
            records.push(UserRecord::new(items, sequence));
        }

        let mut data = Dataset::new(self.name.clone(), self.items, records)
            .expect("generator only emits in-range items")
            .with_planted_communities(community_of);
        if let Some(map) = category_map {
            data = data.with_categories(map);
        }
        data
    }

    fn draw_regular(
        &self,
        rng: &mut StdRng,
        community: usize,
        clusters: &[Vec<u32>],
        cluster_zipfs: &[Zipf],
        global_zipf: &Zipf,
        perm: &[u32],
    ) -> u32 {
        if rng.gen::<f64>() < self.topic_affinity && !clusters[community].is_empty() {
            let rank = cluster_zipfs[community].sample(rng);
            clusters[community][rank]
        } else {
            perm[global_zipf.sample(rng)]
        }
    }

    /// A check-in sequence: two passes over the item set in independent random
    /// orders, with occasional immediate revisits — enough temporal structure
    /// for PRME's successor pairs without modeling real trajectories.
    fn synthesize_sequence(items: &[u32], rng: &mut StdRng) -> Vec<u32> {
        let mut seq = Vec::with_capacity(items.len() * 2 + 4);
        for _ in 0..2 {
            let mut pass: Vec<u32> = items.to_vec();
            pass.shuffle(rng);
            for &it in &pass {
                seq.push(it);
                if rng.gen::<f64>() < 0.1 {
                    seq.push(it); // revisit
                }
            }
        }
        seq
    }
}

/// Builder for [`SyntheticConfig`]; all setters have defaults, `build`
/// validates.
#[derive(Debug, Clone)]
pub struct SyntheticConfigBuilder {
    cfg: SyntheticConfig,
}

impl Default for SyntheticConfigBuilder {
    fn default() -> Self {
        SyntheticConfigBuilder {
            cfg: SyntheticConfig {
                name: "synthetic".into(),
                users: 100,
                items: 500,
                communities: 10,
                interactions_per_user: 30,
                ipu_jitter: 0.3,
                topic_affinity: 0.8,
                zipf_exponent: 1.05,
                sequences: false,
                categories: None,
                seed: 0,
            },
        }
    }
}

impl SyntheticConfigBuilder {
    /// Sets the dataset name.
    pub fn name(mut self, name: impl Into<String>) -> Self {
        self.cfg.name = name.into();
        self
    }

    /// Sets the number of users.
    pub fn users(mut self, users: usize) -> Self {
        self.cfg.users = users;
        self
    }

    /// Sets the catalog size.
    pub fn items(mut self, items: u32) -> Self {
        self.cfg.items = items;
        self
    }

    /// Sets the number of planted communities.
    pub fn communities(mut self, communities: usize) -> Self {
        self.cfg.communities = communities;
        self
    }

    /// Sets the mean number of interactions per user.
    pub fn interactions_per_user(mut self, ipu: usize) -> Self {
        self.cfg.interactions_per_user = ipu;
        self
    }

    /// Sets the relative jitter (±fraction) on the per-user interaction count.
    pub fn ipu_jitter(mut self, jitter: f64) -> Self {
        self.cfg.ipu_jitter = jitter;
        self
    }

    /// Sets the probability of drawing from the user's own topic cluster.
    pub fn topic_affinity(mut self, affinity: f64) -> Self {
        self.cfg.topic_affinity = affinity;
        self
    }

    /// Sets the Zipf popularity exponent.
    pub fn zipf_exponent(mut self, s: f64) -> Self {
        self.cfg.zipf_exponent = s;
        self
    }

    /// Enables chronological check-in sequences (needed by PRME).
    pub fn sequences(mut self, on: bool) -> Self {
        self.cfg.sequences = on;
        self
    }

    /// Attaches a semantic category plan (needed by the Figure 1 example).
    pub fn categories(mut self, plan: CategoryPlan) -> Self {
        self.cfg.categories = Some(plan);
        self
    }

    /// Sets the generator seed.
    pub fn seed(mut self, seed: u64) -> Self {
        self.cfg.seed = seed;
        self
    }

    /// Validates and returns the configuration.
    ///
    /// # Panics
    ///
    /// Panics on invalid configurations; use [`Self::try_build`] for a
    /// fallible variant.
    pub fn build(self) -> SyntheticConfig {
        self.try_build().expect("invalid synthetic configuration")
    }

    /// Validates and returns the configuration.
    ///
    /// # Errors
    ///
    /// Returns [`DataError::InvalidConfig`] when a field is out of range
    /// (zero users/items/communities, affinity outside `[0, 1]`, more
    /// communities than items, ...).
    pub fn try_build(self) -> Result<SyntheticConfig, DataError> {
        let c = &self.cfg;
        if c.users == 0 {
            return Err(DataError::InvalidConfig { field: "users", reason: "must be > 0".into() });
        }
        if c.items == 0 {
            return Err(DataError::InvalidConfig { field: "items", reason: "must be > 0".into() });
        }
        if c.communities == 0 || c.communities > c.items as usize {
            return Err(DataError::InvalidConfig {
                field: "communities",
                reason: format!("must be in 1..={} (items), got {}", c.items, c.communities),
            });
        }
        if !(0.0..=1.0).contains(&c.topic_affinity) {
            return Err(DataError::InvalidConfig {
                field: "topic_affinity",
                reason: format!("must be in [0, 1], got {}", c.topic_affinity),
            });
        }
        if !(0.0..1.0).contains(&c.ipu_jitter) {
            return Err(DataError::InvalidConfig {
                field: "ipu_jitter",
                reason: format!("must be in [0, 1), got {}", c.ipu_jitter),
            });
        }
        if c.interactions_per_user < 2 {
            return Err(DataError::InvalidConfig {
                field: "interactions_per_user",
                reason: "must be >= 2 (leave-one-out needs train + test)".into(),
            });
        }
        Ok(self.cfg)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::jaccard_index;

    fn small() -> Dataset {
        SyntheticConfig::builder()
            .users(60)
            .items(300)
            .communities(6)
            .interactions_per_user(20)
            .seed(11)
            .build()
            .generate()
    }

    #[test]
    fn deterministic_given_seed() {
        let a = small();
        let b = small();
        for (ra, rb) in a.records().iter().zip(b.records()) {
            assert_eq!(ra, rb);
        }
    }

    #[test]
    fn different_seed_differs() {
        let a = small();
        let b = SyntheticConfig::builder()
            .users(60)
            .items(300)
            .communities(6)
            .interactions_per_user(20)
            .seed(12)
            .build()
            .generate();
        assert!(a.records().iter().zip(b.records()).any(|(x, y)| x != y));
    }

    #[test]
    fn every_user_has_at_least_two_items() {
        let d = small();
        for (_, rec) in d.iter() {
            assert!(rec.len() >= 2);
        }
    }

    #[test]
    fn same_community_users_overlap_more() {
        let d = small();
        let labels = d.planted_communities().unwrap().to_vec();
        let mut same = Vec::new();
        let mut diff = Vec::new();
        for a in 0..d.num_users() {
            for b in (a + 1)..d.num_users() {
                let j = jaccard_index(d.records()[a].items(), d.records()[b].items());
                if labels[a] == labels[b] {
                    same.push(j);
                } else {
                    diff.push(j);
                }
            }
        }
        let mean = |v: &[f64]| v.iter().sum::<f64>() / v.len() as f64;
        assert!(
            mean(&same) > 2.0 * mean(&diff),
            "communities not separated: same={} diff={}",
            mean(&same),
            mean(&diff)
        );
    }

    #[test]
    fn sequences_cover_item_set() {
        let d = SyntheticConfig::builder()
            .users(10)
            .items(100)
            .communities(2)
            .interactions_per_user(10)
            .sequences(true)
            .seed(3)
            .build()
            .generate();
        for (_, rec) in d.iter() {
            assert!(!rec.sequence().is_empty());
            // Every sequence element is an observed item.
            for &s in rec.sequence() {
                assert!(rec.contains(s));
            }
            // Every item appears in the sequence.
            for &i in rec.items() {
                assert!(rec.sequence().contains(&i));
            }
        }
    }

    #[test]
    fn health_planting_hits_target_fractions() {
        let d = SyntheticConfig::builder()
            .users(80)
            .items(600)
            .communities(8)
            .interactions_per_user(40)
            .categories(CategoryPlan {
                health_item_fraction: 0.067,
                health_planting: Some(crate::HealthPlanting {
                    num_users: 3,
                    health_fraction: 0.68,
                }),
            })
            .seed(21)
            .build()
            .generate();
        let cats = d.categories().unwrap();
        // Planted users: majority health items.
        for u in 0..3 {
            let frac = cats.fraction_in(d.records()[u].items(), HEALTH_CATEGORY);
            assert!(frac > 0.5, "planted user {u} only {frac} health");
        }
        // Background users: close to the base rate.
        let mut rest = 0.0;
        for u in 3..d.num_users() {
            rest += cats.fraction_in(d.records()[u].items(), HEALTH_CATEGORY);
        }
        rest /= (d.num_users() - 3) as f64;
        assert!(rest < 0.2, "background health fraction too high: {rest}");
    }

    #[test]
    fn builder_validation() {
        assert!(SyntheticConfig::builder().users(0).try_build().is_err());
        assert!(SyntheticConfig::builder().items(0).try_build().is_err());
        assert!(SyntheticConfig::builder().communities(0).try_build().is_err());
        assert!(SyntheticConfig::builder().items(5).communities(6).try_build().is_err());
        assert!(SyntheticConfig::builder().topic_affinity(1.5).try_build().is_err());
        assert!(SyntheticConfig::builder().interactions_per_user(1).try_build().is_err());
        assert!(SyntheticConfig::builder().ipu_jitter(1.0).try_build().is_err());
    }

    #[test]
    fn community_sizes_are_balanced() {
        let d = small();
        let labels = d.planted_communities().unwrap();
        let mut counts = vec![0usize; 6];
        for &l in labels {
            counts[l as usize] += 1;
        }
        for &c in &counts {
            assert_eq!(c, 10);
        }
    }
}
