//! Defense mechanisms evaluated in the paper (§III-D, §III-E):
//!
//! * **DP-SGD** ([`DpMechanism`]) — local differential privacy: each
//!   participant clips its per-round model update to an L2 threshold `C` and
//!   adds Gaussian noise `N(0, (ι·C)² I)` before sharing. Privacy budgets ε
//!   are computed with a Rényi-DP accountant ([`RdpAccountant`]) over the
//!   composed Gaussian mechanisms, and noise multipliers can be calibrated to
//!   a target ε by binary search.
//! * **Share-less** — keeping user embeddings on-device and regularizing item
//!   embedding updates. The mechanics live in the models
//!   ([`cia_models::SharingPolicy::ShareLess`]); this crate documents and
//!   re-exports the policy for discoverability.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod accountant;
mod dp;

pub use accountant::RdpAccountant;
pub use cia_models::SharingPolicy;
pub use dp::{DpConfig, DpMechanism, UpdateTransform};
