//! Plain-text and CSV rendering of result tables.

use serde::{Deserialize, Serialize};
use std::fmt::Write as _;

/// A rendered experiment result: headers plus rows of cells.
///
/// ```
/// use cia_experiments::tables::Table;
/// let mut t = Table::new("Demo", &["a", "b"]);
/// t.row(vec!["1".into(), "2".into()]);
/// assert!(t.to_text().contains("Demo"));
/// assert_eq!(t.to_csv().lines().count(), 2);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Table {
    /// Table title (e.g. "Table II — CIA on FedRecs").
    pub title: String,
    /// Column headers.
    pub headers: Vec<String>,
    /// Rows of cells, each aligned with `headers`.
    pub rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates an empty table.
    pub fn new(title: impl Into<String>, headers: &[&str]) -> Self {
        Table {
            title: title.into(),
            headers: headers.iter().map(std::string::ToString::to_string).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row.
    ///
    /// # Panics
    ///
    /// Panics if the row width differs from the header width.
    pub fn row(&mut self, cells: Vec<String>) {
        assert_eq!(cells.len(), self.headers.len(), "row width mismatch");
        self.rows.push(cells);
    }

    /// Renders an aligned monospace table.
    pub fn to_text(&self) -> String {
        let mut widths: Vec<usize> = self.headers.iter().map(String::len).collect();
        for row in &self.rows {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.len());
            }
        }
        let mut out = String::new();
        let _ = writeln!(out, "== {} ==", self.title);
        let line = |cells: &[String], widths: &[usize]| -> String {
            let mut s = String::new();
            for (c, w) in cells.iter().zip(widths) {
                let _ = write!(s, "| {c:w$} ");
            }
            s.push('|');
            s
        };
        out.push_str(&line(&self.headers, &widths));
        out.push('\n');
        let total: usize = widths.iter().map(|w| w + 3).sum::<usize>() + 1;
        out.push_str(&"-".repeat(total));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&line(row, &widths));
            out.push('\n');
        }
        out
    }

    /// Renders RFC-4180-ish CSV (quotes cells containing commas/quotes).
    pub fn to_csv(&self) -> String {
        let esc = |c: &String| -> String {
            if c.contains(',') || c.contains('"') || c.contains('\n') {
                format!("\"{}\"", c.replace('"', "\"\""))
            } else {
                c.clone()
            }
        };
        let mut out = String::new();
        out.push_str(&self.headers.iter().map(esc).collect::<Vec<_>>().join(","));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&row.iter().map(esc).collect::<Vec<_>>().join(","));
            out.push('\n');
        }
        out
    }
}

/// Formats a fraction as a percentage with one decimal.
pub fn pct(x: f64) -> String {
    format!("{:.1}", x * 100.0)
}

/// Formats a float with three decimals.
pub fn f3(x: f64) -> String {
    format!("{x:.3}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn text_render_is_aligned() {
        let mut t = Table::new("T", &["col", "x"]);
        t.row(vec!["aaaa".into(), "1".into()]);
        t.row(vec!["b".into(), "22".into()]);
        let text = t.to_text();
        let lines: Vec<&str> = text.lines().collect();
        assert!(lines[0].contains("T"));
        // All data lines have the same width.
        assert_eq!(lines[1].len(), lines[3].len());
        assert_eq!(lines[3].len(), lines[4].len());
    }

    #[test]
    fn csv_escapes_commas_and_quotes() {
        let mut t = Table::new("T", &["a"]);
        t.row(vec!["x,y".into()]);
        t.row(vec!["q\"uote".into()]);
        let csv = t.to_csv();
        assert!(csv.contains("\"x,y\""));
        assert!(csv.contains("\"q\"\"uote\""));
    }

    #[test]
    #[should_panic(expected = "row width mismatch")]
    fn row_width_is_validated() {
        let mut t = Table::new("T", &["a", "b"]);
        t.row(vec!["only-one".into()]);
    }

    #[test]
    fn formatting_helpers() {
        assert_eq!(pct(0.5731), "57.3");
        assert_eq!(f3(0.12345), "0.123");
    }
}
