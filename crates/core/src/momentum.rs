//! Per-sender parameter momentum (the paper's Eq. 4).
//!
//! Models leak most early in training, and in gossip they arrive at varying
//! training stages; comparing raw snapshots confounds model *quality* with
//! model *specialization*. The attack therefore ranks exponential moving
//! averages `v_u^t = β·v_u^{t−1} + (1−β)·Θ_u^t` instead of raw models.

use cia_models::params::ema;
use cia_models::SharedModel;

/// The EMA state `v_u` kept by the adversary for one sender.
#[derive(Debug, Clone, PartialEq)]
pub struct MomentumState {
    emb: Option<Vec<f32>>,
    agg: Vec<f32>,
    updates: u64,
}

impl MomentumState {
    /// Initializes the state from the first observed snapshot
    /// (`v⁰_u = Θ⁰_u`, line 10 of Algorithms 1 and 2).
    pub fn from_snapshot(model: &SharedModel) -> Self {
        MomentumState { emb: model.owner_emb.clone(), agg: model.agg.clone(), updates: 1 }
    }

    /// Rebuilds a state from its raw parts (checkpoint resume); the inverse
    /// of the [`MomentumState::emb`]/[`MomentumState::agg`]/
    /// [`MomentumState::updates`] accessors.
    pub fn from_parts(emb: Option<Vec<f32>>, agg: Vec<f32>, updates: u64) -> Self {
        MomentumState { emb, agg, updates }
    }

    /// Applies Eq. 4 with coefficient `beta`.
    ///
    /// # Panics
    ///
    /// Panics if the snapshot's layout differs from the state's.
    pub fn update(&mut self, beta: f32, model: &SharedModel) {
        ema(&mut self.agg, beta, &model.agg);
        match (&mut self.emb, &model.owner_emb) {
            (Some(v), Some(m)) => ema(v, beta, m),
            (None, None) => {}
            _ => panic!("sharing policy changed mid-attack"),
        }
        self.updates += 1;
    }

    /// The averaged owner embedding (if shared).
    pub fn emb(&self) -> Option<&[f32]> {
        self.emb.as_deref()
    }

    /// The averaged aggregatable parameters.
    pub fn agg(&self) -> &[f32] {
        &self.agg
    }

    /// Number of snapshots folded in (including the initial one).
    pub fn updates(&self) -> u64 {
        self.updates
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cia_data::UserId;

    fn snap(v: f32, with_emb: bool) -> SharedModel {
        SharedModel {
            owner: UserId::new(0),
            round: 0,
            owner_emb: with_emb.then(|| vec![v; 2]),
            agg: vec![v; 3],
        }
    }

    #[test]
    fn first_snapshot_is_copied() {
        let s = MomentumState::from_snapshot(&snap(2.0, true));
        assert_eq!(s.agg(), &[2.0; 3]);
        assert_eq!(s.emb(), Some(&[2.0f32; 2][..]));
        assert_eq!(s.updates(), 1);
    }

    #[test]
    fn beta_zero_tracks_latest() {
        let mut s = MomentumState::from_snapshot(&snap(1.0, true));
        s.update(0.0, &snap(5.0, true));
        assert_eq!(s.agg(), &[5.0; 3]);
        assert_eq!(s.updates(), 2);
    }

    #[test]
    fn high_beta_changes_slowly() {
        let mut s = MomentumState::from_snapshot(&snap(0.0, false));
        s.update(0.99, &snap(1.0, false));
        assert!((s.agg()[0] - 0.01).abs() < 1e-6);
        assert!(s.emb().is_none());
    }

    #[test]
    #[should_panic(expected = "sharing policy changed")]
    fn layout_change_is_rejected() {
        let mut s = MomentumState::from_snapshot(&snap(0.0, true));
        s.update(0.5, &snap(1.0, false));
    }
}
