//! Vectorization-friendly f32 kernels shared by every hot path.
//!
//! Every experiment in the paper reduces to a handful of primitives run
//! millions of times: catalog scoring (Eq. 3), per-sender momentum EMAs
//! (Eq. 4), MLP forward/backward for the AIA classifier and the MNIST
//! universality run, and DP clipping. This module implements those primitives
//! once, in a shape the compiler reliably auto-vectorizes:
//!
//! * **Chunked accumulation.** Reductions ([`dot`], [`dot3`], [`sq_norm`])
//!   keep [`LANES`] independent partial sums and fold the input in
//!   `LANES`-wide chunks. A naive `acc += a[i] * b[i]` loop is a serial
//!   dependency chain — each add waits on the previous one (4-5 cycles on
//!   current x86), and the compiler may not reassociate float math on its
//!   own. Eight independent accumulators break the chain, letting the backend
//!   use SIMD lanes and/or overlapping scalar FMAs; the tail (`len % LANES`)
//!   is handled separately.
//! * **Elementwise maps** ([`axpy`], [`ema`], [`scale_in_place`]) are written
//!   over `chunks_exact` pairs so the iterator bounds are known and the loop
//!   body vectorizes without bounds checks.
//! * **Fused [`gemv`]** computes `out = W·x + b` with an optional ReLU in one
//!   pass, so MLP layers need no intermediate buffer; [`gemv_t`] and [`ger`]
//!   cover the transposed product and the rank-1 gradient update of
//!   backpropagation.
//!
//! # Determinism
//!
//! f32 addition is not associative, so the summation *order* is part of the
//! result. Each kernel uses one fixed order — lane `l` accumulates indices
//! `l, l+LANES, l+2·LANES, …`, lanes are folded pairwise, then the tail is
//! added left-to-right — which is identical on every platform and every run.
//! The results differ from a plain left-to-right sum by O(ε·len) rounding,
//! which is why the equivalence property tests compare against a scalar
//! reference with a 1e-5/ULP-scaled tolerance rather than bit equality.

/// Number of independent accumulator lanes used by the reduction kernels.
pub const LANES: usize = 8;

/// Folds the `LANES` partial sums pairwise (a fixed, platform-independent
/// reduction tree).
#[inline(always)]
fn fold(acc: [f32; LANES]) -> f32 {
    let a = [acc[0] + acc[4], acc[1] + acc[5], acc[2] + acc[6], acc[3] + acc[7]];
    (a[0] + a[2]) + (a[1] + a[3])
}

/// Dot product `Σ a[i]·b[i]` with chunked accumulation.
///
/// # Panics
///
/// Panics if the slices have different lengths.
#[must_use]
#[inline]
pub fn dot(a: &[f32], b: &[f32]) -> f32 {
    assert_eq!(a.len(), b.len(), "dot length mismatch");
    let mut acc = [0.0f32; LANES];
    let mut ca = a.chunks_exact(LANES);
    let mut cb = b.chunks_exact(LANES);
    for (xa, xb) in ca.by_ref().zip(cb.by_ref()) {
        for l in 0..LANES {
            acc[l] += xa[l] * xb[l];
        }
    }
    let mut sum = fold(acc);
    for (xa, xb) in ca.remainder().iter().zip(cb.remainder()) {
        sum += xa * xb;
    }
    sum
}

/// Triple product `Σ a[i]·b[i]·c[i]` — GMF's `p_u ⊙ h · q_i` score without
/// materializing the elementwise product.
///
/// # Panics
///
/// Panics if the slices have different lengths.
#[must_use]
#[inline]
pub fn dot3(a: &[f32], b: &[f32], c: &[f32]) -> f32 {
    assert_eq!(a.len(), b.len(), "dot3 length mismatch");
    assert_eq!(a.len(), c.len(), "dot3 length mismatch");
    let mut acc = [0.0f32; LANES];
    let mut ca = a.chunks_exact(LANES);
    let mut cb = b.chunks_exact(LANES);
    let mut cc = c.chunks_exact(LANES);
    for ((xa, xb), xc) in ca.by_ref().zip(cb.by_ref()).zip(cc.by_ref()) {
        for l in 0..LANES {
            acc[l] += xa[l] * xb[l] * xc[l];
        }
    }
    let mut sum = fold(acc);
    for ((xa, xb), xc) in ca.remainder().iter().zip(cb.remainder()).zip(cc.remainder()) {
        sum += xa * xb * xc;
    }
    sum
}

/// Sum of squares `Σ x[i]²`, accumulated in f64 (norms feed DP clipping,
/// where cancellation matters more than speed; f64 SIMD still applies).
#[must_use]
#[inline]
pub fn sq_norm(x: &[f32]) -> f64 {
    let mut acc = [0.0f64; LANES];
    let mut cx = x.chunks_exact(LANES);
    for c in cx.by_ref() {
        for l in 0..LANES {
            acc[l] += c[l] as f64 * c[l] as f64;
        }
    }
    let a = [acc[0] + acc[4], acc[1] + acc[5], acc[2] + acc[6], acc[3] + acc[7]];
    let mut sum = (a[0] + a[2]) + (a[1] + a[3]);
    for v in cx.remainder() {
        sum += *v as f64 * *v as f64;
    }
    sum
}

/// `y ← y + a·x` (BLAS `axpy`).
///
/// # Panics
///
/// Panics if the slices have different lengths.
#[inline]
pub fn axpy(y: &mut [f32], a: f32, x: &[f32]) {
    assert_eq!(y.len(), x.len(), "axpy length mismatch");
    let mut cy = y.chunks_exact_mut(LANES);
    let mut cx = x.chunks_exact(LANES);
    for (wy, wx) in cy.by_ref().zip(cx.by_ref()) {
        for l in 0..LANES {
            wy[l] += a * wx[l];
        }
    }
    for (wy, wx) in cy.into_remainder().iter_mut().zip(cx.remainder()) {
        *wy += a * wx;
    }
}

/// Exponential moving average `v ← β·v + (1−β)·θ` (the attack's Eq. 4).
///
/// # Panics
///
/// Panics if the slices have different lengths.
#[inline]
pub fn ema(v: &mut [f32], beta: f32, theta: &[f32]) {
    assert_eq!(v.len(), theta.len(), "ema length mismatch");
    // Elementwise, so a plain zip loop vectorizes cleanly at any width (the
    // chunked form this replaced lost to it once AVX2 became the target);
    // per-element results are identical either way.
    let omb = 1.0 - beta;
    for (wv, wt) in v.iter_mut().zip(theta) {
        *wv = beta * *wv + omb * wt;
    }
}

/// `y ← a·y` in place.
#[inline]
pub fn scale_in_place(y: &mut [f32], a: f32) {
    for v in y.iter_mut() {
        *v *= a;
    }
}

/// Scales `x` so its L2 norm is at most `c` (DP-SGD clipping); returns the
/// factor applied (1.0 when no clipping was needed).
///
/// # Panics
///
/// Panics if `c` is not positive.
pub fn clip_l2(x: &mut [f32], c: f32) -> f32 {
    assert!(c > 0.0, "clipping threshold must be positive");
    let n = sq_norm(x).sqrt() as f32;
    if n > c {
        let f = c / n;
        scale_in_place(x, f);
        f
    } else {
        1.0
    }
}

/// Deterministic polynomial `e^x` for f32 (relative error ≲ 2·10⁻⁷).
///
/// libm's `expf` costs ~17 ns per call on commodity hardware and sits inside
/// every sigmoid of every SGD step — the dominant cost of a paper-scale
/// training round. This version is ~12 flops: range-reduce
/// `x·log₂e = n + f` with `f ∈ [−0.5, 0.5]` via the round-to-nearest magic
/// constant, evaluate `2^f` as a degree-6 Taylor polynomial in `f·ln 2`, and
/// scale by `2^n` through exponent-bit arithmetic.
///
/// The result saturates at `2^±126` instead of overflowing to infinity or
/// flushing to zero (callers divide by `1 + e^x`, where saturation is
/// harmless), and NaN propagates. Pure f32 arithmetic plus bit casts, so the
/// result is identical on every platform and thread count.
#[must_use]
#[inline]
pub fn fast_exp(x: f32) -> f32 {
    // Clamping x (not the scaled argument) keeps the reduced residual small
    // and the biased exponent inside (0, 255): e^±87 is still a normal f32.
    let x = x.clamp(-87.0, 87.0);
    const LOG2_E: f32 = std::f32::consts::LOG2_E;
    const MAGIC: f32 = 12_582_912.0; // 1.5 · 2²³: adding it rounds to nearest
    let nf = (x * LOG2_E + MAGIC) - MAGIC;
    // Cody–Waite two-constant reduction: f = x − n·ln2 stays accurate even
    // at large |x|, where a single-constant split loses low bits.
    const LN2_HI: f32 = f32::from_bits(0x3F31_8000); // high bits of ln2
    const LN2_LO: f32 = -2.121_944_4e-4;
    let f = (x - nf * LN2_HI) - nf * LN2_LO;
    // e^f over f ∈ [−0.347, 0.347]: degree-6 Taylor, truncation ≤ 2·10⁻⁸.
    #[allow(clippy::excessive_precision)]
    let p = 1.0
        + f * (1.0
            + f * (0.5
                + f * (0.166_666_67
                    + f * (0.041_666_668 + f * (0.008_333_334 + f * 0.001_388_889)))));
    // NaN falls through: `nf as i32` is 0, the scale is finite, and `p` stays
    // NaN.
    // cia-lint: allow(D05, IEEE-754 exponent assembly: nf is clamped to the representable range, so nf+127 is the 8-bit biased exponent)
    let scale = f32::from_bits((((nf as i32) + 127) as u32) << 23);
    p * scale
}

/// In-place uniform mean `y ← w·y + Σᵢ w·rowsᵢ` with `w = 1/(rows.len()+1)`
/// — gossip neighborhood averaging in a single read-modify-write pass.
///
/// The per-coordinate addition order matches a `scale` followed by one
/// `axpy` per row (`(w·y + w·r₁) + w·r₂ + …`), so the fusion is
/// bit-identical to the unfused sequence while halving the memory traffic.
///
/// # Panics
///
/// Panics if any row length differs from `y`.
pub fn uniform_mix(y: &mut [f32], rows: &[&[f32]]) {
    let w = 1.0 / (rows.len() + 1) as f32;
    for row in rows {
        assert_eq!(row.len(), y.len(), "uniform_mix length mismatch");
    }
    match rows {
        [] => scale_in_place(y, w),
        [r0] => {
            for (k, v) in y.iter_mut().enumerate() {
                *v = w * *v + w * r0[k];
            }
        }
        [r0, r1] => {
            for (k, v) in y.iter_mut().enumerate() {
                *v = (w * *v + w * r0[k]) + w * r1[k];
            }
        }
        _ => {
            for (k, v) in y.iter_mut().enumerate() {
                let mut acc = w * *v;
                for row in rows {
                    acc += w * row[k];
                }
                *v = acc;
            }
        }
    }
}

/// Applies the logistic sigmoid `1 / (1 + e^−x)` to every element in place.
///
/// [`fast_exp`] is branch-free (its clamp and bit manipulation lower to
/// elementwise vector ops), so this loop auto-vectorizes — the batched SGD
/// step evaluates a whole sampling group's sigmoids for close to the price
/// of one.
#[inline]
pub fn sigmoid_in_place(xs: &mut [f32]) {
    for x in xs.iter_mut() {
        *x = 1.0 / (1.0 + fast_exp(-*x));
    }
}

/// Deterministic polynomial `ln x` for normal positive f32 (≈ 1 ulp).
///
/// The binary-cross-entropy loss of every SGD step calls `ln` once; libm's
/// `logf` costs ~16 ns. This version splits `x = m·2^e` through the bits
/// (normalizing `m` into `[√2/2, √2)`) and evaluates
/// `ln m = 2·atanh r, r = (m−1)/(m+1), |r| ≤ 0.172` as a degree-9 odd
/// polynomial. Zero, negatives, NaN, infinity and subnormals take the libm
/// path — the exponent split assumes a normal positive input.
#[must_use]
#[inline]
pub fn fast_ln(x: f32) -> f32 {
    if !x.is_finite() || x < f32::MIN_POSITIVE {
        return x.ln();
    }
    let bits = x.to_bits();
    // cia-lint: allow(D05, biased exponent field is 8 bits; the i32 subtraction lives in [-127, 128])
    let mut e = ((bits >> 23) as i32) - 127;
    let mut m = f32::from_bits((bits & 0x007F_FFFF) | 0x3F80_0000); // [1, 2)
    if m >= std::f32::consts::SQRT_2 {
        m *= 0.5;
        e += 1;
    }
    let r = (m - 1.0) / (m + 1.0);
    let r2 = r * r;
    // 2·atanh r = 2r(1 + r²/3 + r⁴/5 + r⁶/7 + r⁸/9); the truncated r¹⁰/11
    // term is ≤ 2·10⁻⁹ at |r| ≤ 0.172.
    #[allow(clippy::excessive_precision)]
    let p = 2.0
        * r
        * (1.0 + r2 * (0.333_333_34 + r2 * (0.2 + r2 * (0.142_857_14 + r2 * 0.111_111_11))));
    e as f32 * std::f32::consts::LN_2 + p
}

/// Fused matrix–vector product `out[o] = W[o]·x (+ bias[o]) (then ReLU)`.
///
/// `w` is row-major `out.len() × x.len()`. With `relu`, negative outputs are
/// clamped to zero in the same pass — an MLP layer in one call, no
/// intermediate buffer.
///
/// # Panics
///
/// Panics if `w`, `x`, `bias` and `out` have inconsistent lengths.
pub fn gemv(out: &mut [f32], w: &[f32], x: &[f32], bias: Option<&[f32]>, relu: bool) {
    let n_in = x.len();
    assert_eq!(w.len(), out.len() * n_in, "gemv weight shape mismatch");
    if let Some(b) = bias {
        assert_eq!(b.len(), out.len(), "gemv bias length mismatch");
    }
    for (o, slot) in out.iter_mut().enumerate() {
        let mut z = dot(&w[o * n_in..(o + 1) * n_in], x);
        if let Some(b) = bias {
            z += b[o];
        }
        *slot = if relu { z.max(0.0) } else { z };
    }
}

/// Transposed accumulating product `out[i] += Σ_o w[o·n_in + i]·delta[o]` —
/// the `Wᵀ·δ` step of backpropagation. `out` is *accumulated into*; zero it
/// first when a fresh product is wanted.
///
/// # Panics
///
/// Panics if `w.len() != delta.len() * out.len()`.
pub fn gemv_t(out: &mut [f32], w: &[f32], delta: &[f32]) {
    let n_in = out.len();
    assert_eq!(w.len(), delta.len() * n_in, "gemv_t weight shape mismatch");
    for (o, &d) in delta.iter().enumerate() {
        axpy(out, d, &w[o * n_in..(o + 1) * n_in]);
    }
}

/// Rank-1 accumulate `acc[o·n_in + i] += delta[o]·prev[i]` — the weight
/// gradient `δ ⊗ a` of backpropagation.
///
/// # Panics
///
/// Panics if `acc.len() != delta.len() * prev.len()`.
pub fn ger(acc: &mut [f32], delta: &[f32], prev: &[f32]) {
    let n_in = prev.len();
    assert_eq!(acc.len(), delta.len() * n_in, "ger shape mismatch");
    for (o, &d) in delta.iter().enumerate() {
        axpy(&mut acc[o * n_in..(o + 1) * n_in], d, prev);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn seq(n: usize, salt: f32) -> Vec<f32> {
        (0..n).map(|i| ((i as f32 * 0.37 + salt).sin()) * 2.0).collect()
    }

    #[test]
    fn dot_matches_scalar_reference_across_lengths() {
        for n in [0, 1, 7, 8, 9, 16, 31, 100] {
            let a = seq(n, 0.1);
            let b = seq(n, 1.7);
            let reference: f64 = a.iter().zip(&b).map(|(x, y)| *x as f64 * *y as f64).sum();
            assert!(
                (dot(&a, &b) as f64 - reference).abs() < 1e-4,
                "len {n}: {} vs {reference}",
                dot(&a, &b)
            );
        }
    }

    #[test]
    fn dot3_matches_scalar_reference() {
        for n in [0, 3, 8, 17, 64] {
            let a = seq(n, 0.3);
            let b = seq(n, 2.1);
            let c = seq(n, 4.4);
            let reference: f64 =
                a.iter().zip(&b).zip(&c).map(|((x, y), z)| *x as f64 * *y as f64 * *z as f64).sum();
            assert!((dot3(&a, &b, &c) as f64 - reference).abs() < 1e-4, "len {n}");
        }
    }

    #[test]
    fn sq_norm_and_clip_match_reference() {
        let mut x = seq(37, 0.9);
        let reference: f64 = x.iter().map(|v| *v as f64 * *v as f64).sum();
        assert!((sq_norm(&x) - reference).abs() < 1e-9);
        let norm = reference.sqrt() as f32;
        let f = clip_l2(&mut x, norm / 2.0);
        assert!((f - 0.5).abs() < 1e-5);
        assert!((sq_norm(&x).sqrt() as f32 - norm / 2.0).abs() < 1e-4);
    }

    #[test]
    fn axpy_and_ema_match_elementwise_reference() {
        let mut y = seq(21, 0.2);
        let x = seq(21, 3.3);
        let expected: Vec<f32> = y.iter().zip(&x).map(|(a, b)| a + 0.7 * b).collect();
        axpy(&mut y, 0.7, &x);
        assert_eq!(y, expected);

        let mut v = seq(21, 0.5);
        // Same `1 - β` rounding as the kernel, so equality is exact.
        let omb = 1.0f32 - 0.9;
        let expected: Vec<f32> = v.iter().zip(&x).map(|(a, b)| 0.9 * a + omb * b).collect();
        ema(&mut v, 0.9, &x);
        assert_eq!(v, expected);
    }

    #[test]
    fn fast_exp_matches_libm_over_training_range() {
        // Sweep the range SGD logits actually cover (|z| far below the ±20
        // per-coordinate clamp) plus the saturation regions.
        let mut worst = 0.0f64;
        for i in -8000..=8000 {
            let x = i as f32 * 0.01; // [-80, 80]
            let fast = f64::from(fast_exp(x));
            let exact = f64::from(x).exp();
            if exact.is_finite() && exact > 1e-30 {
                let rel = ((fast - exact) / exact).abs();
                worst = worst.max(rel);
            }
        }
        assert!(worst < 1e-6, "worst relative error {worst}");
    }

    #[test]
    fn fast_exp_edge_cases_saturate_and_propagate() {
        assert_eq!(fast_exp(0.0), 1.0);
        assert!(fast_exp(1000.0).is_finite(), "saturates instead of inf");
        assert!(fast_exp(1000.0) > 1e37);
        assert!(fast_exp(-1000.0) > 0.0, "saturates instead of zero");
        assert!(fast_exp(-1000.0) < 1e-37);
        assert!(fast_exp(f32::NAN).is_nan());
    }

    #[test]
    fn fast_ln_matches_libm_over_probability_range() {
        // The BCE loss evaluates ln over (ε, 1 + ε]; sweep a wider span.
        let mut worst = 0.0f64;
        for i in 1..=400_000 {
            let x = i as f32 * 2.5e-6; // (0, 1]
            let diff = (f64::from(fast_ln(x)) - f64::from(x).ln()).abs();
            worst = worst.max(diff);
        }
        for i in 1..=10_000 {
            let x = i as f32 * 0.01; // (0, 100]
            let diff = (f64::from(fast_ln(x)) - f64::from(x).ln()).abs();
            worst = worst.max(diff);
        }
        assert!(worst < 2e-6, "worst absolute error {worst}");
    }

    #[test]
    fn fast_ln_non_normal_inputs_take_libm_path() {
        assert_eq!(fast_ln(0.0), f32::NEG_INFINITY);
        assert!(fast_ln(-1.0).is_nan());
        assert!(fast_ln(f32::NAN).is_nan());
        assert_eq!(fast_ln(f32::INFINITY), f32::INFINITY);
        let sub = f32::MIN_POSITIVE / 2.0;
        assert_eq!(fast_ln(sub), sub.ln());
        assert_eq!(fast_ln(1.0), 0.0);
    }

    #[test]
    fn gemv_fuses_bias_and_relu() {
        // 2x3 weights, picked so one output is negative pre-ReLU.
        let w = [1.0, 0.0, 0.0, -1.0, -1.0, -1.0];
        let x = [2.0, 3.0, 4.0];
        let b = [0.5, 0.5];
        let mut out = [0.0f32; 2];
        gemv(&mut out, &w, &x, Some(&b), false);
        assert_eq!(out, [2.5, -8.5]);
        gemv(&mut out, &w, &x, Some(&b), true);
        assert_eq!(out, [2.5, 0.0]);
        gemv(&mut out, &w, &x, None, false);
        assert_eq!(out, [2.0, -9.0]);
    }

    #[test]
    fn gemv_t_and_ger_match_loops() {
        let n_in = 11;
        let n_out = 5;
        let w = seq(n_in * n_out, 1.1);
        let delta = seq(n_out, 2.2);
        let prev = seq(n_in, 3.3);

        let mut out = vec![0.0f32; n_in];
        gemv_t(&mut out, &w, &delta);
        for i in 0..n_in {
            let reference: f32 = (0..n_out).map(|o| w[o * n_in + i] * delta[o]).sum();
            assert!((out[i] - reference).abs() < 1e-5);
        }

        let mut acc = vec![0.0f32; n_in * n_out];
        ger(&mut acc, &delta, &prev);
        for o in 0..n_out {
            for i in 0..n_in {
                assert!((acc[o * n_in + i] - delta[o] * prev[i]).abs() < 1e-6);
            }
        }
    }
}
