//! Table VIII — the entropy-based MIA as a community-inference proxy
//! (FL, GMF, MovieLens), compared against CIA.

use crate::runner::{build_setup, run_recsys, ModelKind, ProtocolKind, RunSpec, ScaleParams};
use crate::tables::{pct, Table};
use cia_core::{CiaConfig, MiaCommunityAttack, MiaConfig};
use cia_data::presets::{Preset, Scale};
use cia_data::UserId;
use cia_federated::{FedAvg, FedAvgConfig};
use cia_models::{GmfHyper, GmfSpec, SharingPolicy};

/// The entropy thresholds of Table VIII.
pub const RHOS: [f32; 5] = [0.2, 0.4, 0.6, 0.8, 1.0];

/// Regenerates Table VIII.
pub fn run(scale: Scale, seed: u64) -> Vec<Table> {
    let setup = build_setup(Preset::MovieLens, scale, None, seed);
    let params = ScaleParams::of(scale);
    let users = setup.data.num_users();
    let spec = GmfSpec::new(
        setup.data.num_items(),
        params.dim,
        GmfHyper { lr: 0.1, ..GmfHyper::default() },
    );

    let mut t = Table::new(
        format!(
            "Table VIII — MIA as a community-inference proxy (FL, GMF, MovieLens, {scale} scale)"
        ),
        &["Attack", "rho", "MIA precision %", "Max AAC %"],
    );

    for rho in RHOS {
        let clients: Vec<_> = setup
            .split
            .train_sets()
            .iter()
            .enumerate()
            .map(|(u, items)| {
                spec.build_client(
                    // cia-lint: allow(D05, ids and indices are bounded by the validated population/catalog size, which fits u32)
                    UserId::new(u as u32),
                    items.clone(),
                    SharingPolicy::Full,
                    seed ^ (u as u64).wrapping_mul(0xD6E8_FEB8),
                )
            })
            .collect();
        let mut attack = MiaCommunityAttack::new(
            MiaConfig {
                cia: CiaConfig { k: setup.k, beta: 0.99, eval_every: params.fl_eval_every, seed },
                rho,
            },
            spec.clone(),
            setup.split.train_sets().to_vec(),
            users,
            setup.truth_table(),
            setup.owner_table(),
            setup.split.train_sets().to_vec(),
        );
        let mut sim = FedAvg::new(
            clients,
            FedAvgConfig {
                rounds: params.fl_rounds,
                local_epochs: params.local_epochs,
                seed,
                ..Default::default()
            },
        );
        sim.run(&mut attack);
        let out = attack.outcome();
        t.row(vec![
            "MIA proxy".into(),
            format!("{rho}"),
            pct(attack.precision_at_max()),
            pct(out.max_aac),
        ]);
    }

    // CIA reference row on the identical setting.
    let mut cia_spec = RunSpec::new(Preset::MovieLens, ModelKind::Gmf, ProtocolKind::Fl, scale);
    cia_spec.seed = seed;
    let cia = run_recsys(&cia_spec);
    t.row(vec!["CIA".into(), "-".into(), "-".into(), pct(cia.attack.max_aac)]);
    vec![t]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_mia_table_has_six_rows_and_cia_wins() {
        let tables = run(Scale::Smoke, 13);
        let rows = &tables[0].rows;
        assert_eq!(rows.len(), 6);
        let best_mia: f64 =
            rows[..5].iter().map(|r| r[3].parse::<f64>().unwrap()).fold(0.0, f64::max);
        let cia: f64 = rows[5][3].parse().unwrap();
        assert!(cia >= best_mia, "CIA {cia} should not lose to MIA proxy {best_mia}");
    }
}
