//! Gossip learning under attack: a lone adversary vs a colluding coalition.
//!
//! Reproduces the dynamics behind Tables IV and VI: a single gossip node sees
//! few victims (the coverage upper bound binds the attack), while colluders
//! that multicast received models approach federated-level leakage — but only
//! when the momentum smooths out gossip temporality.
//!
//! ```text
//! cargo run --release --example gossip_colluders
//! ```

use community_inference::prelude::*;

fn run(colluders: usize, beta: f32) -> AttackOutcome {
    let users = 150;
    let k = 10;
    let data = SyntheticConfig::builder()
        .users(users)
        .items(400)
        .communities(8)
        .interactions_per_user(25)
        .seed(3)
        .build()
        .generate();
    let split = LeaveOneOut::new(&data, 50, 3).expect("dataset is splittable");
    let truth = GroundTruth::from_train_sets(split.train_sets(), k);
    let spec = GmfSpec::new(data.num_items(), 8, GmfHyper { lr: 0.1, ..GmfHyper::default() });
    let clients: Vec<_> = split
        .train_sets()
        .iter()
        .enumerate()
        .map(|(u, items)| {
            spec.build_client(UserId::new(u as u32), items.clone(), SharingPolicy::Full, u as u64)
        })
        .collect();

    let truths: Vec<_> =
        (0..users as u32).map(|u| truth.community_of(UserId::new(u)).to_vec()).collect();
    let owners: Vec<_> = (0..users as u32).map(|u| Some(UserId::new(u))).collect();
    let members: Vec<u32> = (0..colluders).map(|i| (i * users / colluders) as u32).collect();
    let evaluator = ItemSetEvaluator::new(spec, split.train_sets().to_vec(), false);
    let mut attack = GlCiaCoalition::new(
        CiaConfig { k, beta, eval_every: 30, seed: 0 },
        evaluator,
        users,
        &members,
        truths,
        owners,
    );
    let mut sim =
        GossipSim::new(clients, GossipConfig { rounds: 300, seed: 11, ..Default::default() });
    sim.run(&mut attack);
    attack.outcome()
}

fn main() {
    println!("Rand-Gossip, 150 users, GMF, K=10; coalition sizes vs momentum.\n");
    println!("{:<22} {:>9} {:>14} {:>13}", "setting", "Max AAC", "upper bound", "vs random");
    for (label, colluders, beta) in [
        ("single adversary", 1, 0.99f32),
        ("8 colluders", 8, 0.99),
        ("15 colluders", 15, 0.99),
        ("30 colluders", 30, 0.99),
        ("30 colluders, beta=0", 30, 0.0),
    ] {
        let out = run(colluders, beta);
        println!(
            "{:<22} {:>8.1}% {:>13.1}% {:>12.1}x",
            label,
            out.max_aac * 100.0,
            out.upper_bound.min(1.0) * 100.0,
            out.advantage_over_random()
        );
    }
    println!("\nColluders widen the adversary's view of the network (the coverage");
    println!("upper bound approaches 100%), which the ranking converts into");
    println!("accuracy — the paper's Table IV trend. Note the momentum ablation:");
    println!("on this synthetic workload the planted communities separate so");
    println!("cleanly that the latest snapshot (beta=0) already ranks near the");
    println!("ceiling, while beta=0.99 anchors on early, under-trained models;");
    println!("the paper's real-data noise is what makes its Table VI favor the");
    println!("momentum (see EXPERIMENTS.md for the discussion).");
}
