//! The round-synchronous gossip learning engine.

use crate::graph::{sample_exp_interval, ViewTable};
use cia_data::UserId;
use cia_models::parallel::par_zip_mut;
use cia_models::{ClientStore, Participant, SharedModel, UpdateTransform};
use cia_obs::{Counter, Metric, Recorder};
use cia_runtime::{
    Checkpointable, Ctx, DeliveryPolicy, LivenessEvent, Msg, Node, SavedEvent, Scheduler,
    SLOTS_PER_ROUND,
};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// Which gossip protocol to simulate.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum GossipProtocol {
    /// Rand-Gossip [12]: uniform random peer sampling.
    Rand,
    /// Pers-Gossip [5]: performance-aware peer retention with uniform
    /// exploration.
    Pers {
        /// Fraction of the view refilled uniformly at random on refresh
        /// (the paper uses 0.4).
        exploration: f64,
    },
}

/// Gossip simulation configuration (paper defaults: `P = 3`, view refresh
/// `~ Exp(0.1)`, exploration 0.4).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct GossipConfig {
    /// Number of rounds.
    pub rounds: u64,
    /// Out-degree `P` of the communication graph.
    pub out_degree: usize,
    /// Rate of the exponential view-refresh interval distribution.
    pub view_refresh_rate: f64,
    /// The protocol variant.
    pub protocol: GossipProtocol,
    /// Probability that a node wakes (sends + aggregates + trains) in a
    /// round.
    pub wake_fraction: f64,
    /// Local training epochs per wake.
    pub local_epochs: usize,
    /// Simulation seed.
    pub seed: u64,
}

impl Default for GossipConfig {
    fn default() -> Self {
        GossipConfig {
            rounds: 50,
            out_degree: 3,
            view_refresh_rate: 0.1,
            protocol: GossipProtocol::Rand,
            wake_fraction: 1.0,
            local_epochs: 1,
            seed: 0,
        }
    }
}

/// Per-round statistics handed to observers.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GossipRoundStats {
    /// The completed round index.
    pub round: u64,
    /// Number of nodes that woke up.
    pub awake: usize,
    /// Number of model deliveries routed this round.
    pub deliveries: usize,
    /// Mean local training loss across awake nodes; `None` when every node
    /// slept (an all-offline round has no losses to average — a `0.0`
    /// sentinel would be indistinguishable from perfect convergence and
    /// silently deflate downstream loss averages).
    pub mean_loss: Option<f32>,
    /// Bytes of model state materialized for this round: the outgoing
    /// snapshot copies routed into inboxes (node state itself is permanently
    /// resident in gossip — every round mixes neighbors in place).
    pub bytes_materialized: u64,
}

/// Observes gossip model deliveries — the vantage point of a gossip
/// adversary, who sees the models delivered to nodes she controls.
pub trait GossipObserver {
    /// Called when a round begins.
    fn on_round_start(&mut self, round: u64) {
        let _ = round;
    }

    /// The protocol-agnostic liveness hook (shared with
    /// `cia_federated::RoundObserver`):
    ///
    /// * [`LivenessEvent::ActingSet`] arrives after the protocol's own wake
    ///   sampling with the round's tentative wake mask. Observers may clear
    ///   entries to model availability — churn, stragglers, node failures —
    ///   without the gossip loop knowing about participant dynamics (the
    ///   `cia-scenarios` dynamics layer plugs in here). Asleep nodes keep
    ///   accumulating their inbox, exactly like a natural sleep round.
    /// * [`LivenessEvent::Probe`] is the availability query consulted before
    ///   a node acts on its scheduled view refresh: an offline device cannot
    ///   re-sample peers, so clearing `available` defers the refresh (and,
    ///   under Pers-Gossip, preserves the `heard` personalization evidence
    ///   the refresh would consume) until the node's next available round.
    ///
    /// The default leaves both events untouched (everyone acts, everyone
    /// available), which reproduces the pre-dynamics behavior exactly.
    fn on_liveness(&mut self, event: LivenessEvent<'_>) {
        let _ = event;
    }

    /// Called for every routed model delivery.
    fn on_delivery(&mut self, round: u64, receiver: UserId, model: &SharedModel) {
        let _ = (round, receiver, model);
    }

    /// Called when a round completes.
    fn on_round_end(&mut self, stats: &GossipRoundStats) {
        let _ = stats;
    }
}

/// A no-op observer for runs without an adversary.
#[derive(Debug, Clone, Copy, Default)]
pub struct NullGossipObserver;

impl GossipObserver for NullGossipObserver {}

/// Serializable snapshot of a [`GossipSim`]'s protocol-side state
/// (checkpoint/resume of long runs; node parameters travel separately).
#[derive(Debug, Clone)]
pub struct GossipSimState {
    /// Rounds completed.
    pub round: u64,
    /// Next scheduled view-refresh round per node.
    pub refresh_at: Vec<u64>,
    /// Current out-views.
    pub views: Vec<Vec<u32>>,
    /// Undelivered inbox contents per node (asleep nodes accumulate).
    pub inboxes: Vec<Vec<SharedModel>>,
    /// Pers-Gossip `(sender, score)` candidates heard since the last refresh.
    pub heard: Vec<Vec<(u32, f32)>>,
    /// DP reference vectors (last sent `[emb | agg]` per node).
    pub prev_sent: Vec<Option<Vec<f32>>>,
    /// Accumulated per-node traffic counters.
    pub traffic: TrafficCounters,
    /// Undelivered scheduler events (the evented runtime's cross-round
    /// in-flight messages and timers — view-refresh timers, chiefly). Empty
    /// for lockstep runs and for checkpoints written before the evented
    /// runtime existed; an empty queue re-derives refresh timers from
    /// `refresh_at` on the next evented round.
    pub pending: Vec<SavedEvent>,
}

/// Passive per-node traffic counters the simulation accumulates every round.
/// They never influence the protocol — they exist so observers with a
/// network vantage point (e.g. the adaptive sybil-placement engine in
/// `cia-scenarios`) can rank positions by observed traffic instead of
/// guessing.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct TrafficCounters {
    /// Models delivered to each node since round 0.
    pub received: Vec<u64>,
    /// Accumulated in-degree of the communication graph: each round, every
    /// out-view containing the node adds one (view-membership frequency).
    pub view_in_degree: Vec<u64>,
}

impl TrafficCounters {
    fn zeroed(n: usize) -> Self {
        TrafficCounters { received: vec![0; n], view_in_degree: vec![0; n] }
    }
}

/// Per-node bookkeeping owned by the node itself (in the evented runtime a
/// peer's seat borrows exactly this struct, so nothing here may be touched by
/// the coordinator mid-round).
struct PeerCtl {
    inbox: Vec<SharedModel>,
    /// Reference shared vector for DP updates (last sent `[emb | agg]`).
    prev_sent: Option<Vec<f32>>,
    /// `(sender, score)` entries produced while mixing this round's inbox;
    /// drained into the simulation-level `heard` table at the round barrier
    /// (lockstep) or via [`Msg::TrainReport`] (evented).
    heard_scratch: Vec<(u32, f32)>,
    /// Local snapshot-carcass pool (evented rounds recycle consumed inbox
    /// buffers per peer; the lockstep path uses the shared pool instead).
    stash: Vec<SharedModel>,
    /// Local copy of the node's out-view (maintained by [`Msg::ViewPush`];
    /// the authoritative table stays with the coordinator's graph).
    view: Vec<u32>,
    awake: bool,
    loss: f32,
}

/// The gossip learning simulation.
pub struct GossipSim<P: Participant> {
    /// Node storage. Gossip requires a dense (fully resident) store: every
    /// round each awake node mixes its neighbors' models into its *own*
    /// persistent parameters, so there is no global aggregate to rebuild a
    /// lazy client from — unlike FedAvg, where untouched clients are exactly
    /// reconstructible from seed + global (see `cia_federated::FedAvg::sharded`).
    store: ClientStore<P>,
    ctl: Vec<PeerCtl>,
    /// Pers-Gossip `(sender, score)` candidates heard since each node's last
    /// view refresh. Lives on the simulation (the refresh phase consumes it
    /// while peers own their [`PeerCtl`]s), filled from each peer's
    /// `heard_scratch` at the round barrier.
    heard: Vec<Vec<(u32, f32)>>,
    views: ViewTable,
    refresh_at: Vec<u64>,
    cfg: GossipConfig,
    transform: Option<Box<dyn UpdateTransform>>,
    traffic: TrafficCounters,
    round: u64,
    /// Undelivered scheduler events carried between evented rounds (see
    /// [`GossipSimState::pending`]). Lockstep rounds clear it — a later
    /// evented round re-derives its timers from `refresh_at`.
    pending: Vec<SavedEvent>,
    /// Invoked when the evented round's scheduled [`Msg::GlobalBroadcast`]
    /// fires: `(round, nodes)`. The scenario runner installs per-user
    /// snapshot publication to `cia-serve` here.
    publish_hook: Option<GossipPublishHook<P>>,
    /// Recycled model carcasses: aggregated inbox snapshots return here and
    /// the next round's outgoing snapshots reuse their buffers, so a steady
    /// round allocates no catalog-sized vectors.
    pool: Vec<SharedModel>,
    /// Reused per-round outgoing-slot table.
    outgoing: Vec<Option<SharedModel>>,
    /// The observability sink: phase spans, wire/delivery counters and the
    /// per-node mix/train latency histograms.
    obs: Recorder,
}

/// Post-round publication callback: `(round, nodes)`.
pub type GossipPublishHook<P> = Box<dyn FnMut(u64, &[P])>;

impl<P: Participant> GossipSim<P> {
    /// Creates a simulation over `nodes`.
    ///
    /// # Panics
    ///
    /// Panics if fewer than `out_degree + 1` nodes are given, configuration
    /// values are out of range, or nodes disagree on parameter sizes.
    pub fn new(nodes: Vec<P>, cfg: GossipConfig) -> Self {
        assert!(nodes.len() > cfg.out_degree, "need more nodes than the out-degree");
        let len = nodes[0].agg_len();
        assert!(nodes.iter().all(|n| n.agg_len() == len), "nodes must share a parameter layout");
        assert!(
            cfg.wake_fraction > 0.0 && cfg.wake_fraction <= 1.0,
            "wake fraction must be in (0, 1]"
        );
        if let GossipProtocol::Pers { exploration } = cfg.protocol {
            assert!((0.0..=1.0).contains(&exploration), "exploration must be in [0, 1]");
        }
        let mut rng = StdRng::seed_from_u64(cfg.seed);
        let views = ViewTable::new(nodes.len(), cfg.out_degree, &mut rng);
        let refresh_at = (0..nodes.len())
            .map(|_| sample_exp_interval(cfg.view_refresh_rate, &mut rng))
            .collect();
        let ctl = (0..nodes.len())
            .map(|_| PeerCtl {
                inbox: Vec::new(),
                prev_sent: None,
                heard_scratch: Vec::new(),
                stash: Vec::new(),
                view: Vec::new(),
                awake: false,
                loss: 0.0,
            })
            .collect();
        let heard = vec![Vec::new(); nodes.len()];
        let traffic = TrafficCounters::zeroed(nodes.len());
        let outgoing = (0..nodes.len()).map(|_| None).collect();
        GossipSim {
            store: ClientStore::dense(nodes),
            ctl,
            heard,
            views,
            refresh_at,
            cfg,
            transform: None,
            traffic,
            round: 0,
            pending: Vec::new(),
            publish_hook: None,
            pool: Vec::new(),
            outgoing,
            obs: Recorder::new(),
        }
    }

    /// Installs the post-round publication hook (see the `publish_hook`
    /// field). Only the evented path ([`GossipSim::step_evented`]) schedules
    /// the [`Msg::GlobalBroadcast`] event that fires it.
    pub fn set_publish_hook(&mut self, hook: GossipPublishHook<P>) {
        self.publish_hook = Some(hook);
    }

    /// Installs the metrics/trace sink this simulation reports into. The
    /// scenario runner installs one recorder per scenario; standalone
    /// simulations keep their own default recorder.
    pub fn set_recorder(&mut self, recorder: Recorder) {
        self.obs = recorder;
    }

    /// The metrics/trace sink this simulation reports into.
    pub fn recorder(&self) -> &Recorder {
        &self.obs
    }

    /// Installs a local update transform (DP-SGD) applied to every outgoing
    /// model.
    pub fn set_update_transform(&mut self, transform: Box<dyn UpdateTransform>) {
        self.transform = Some(transform);
    }

    /// The configuration.
    pub fn config(&self) -> &GossipConfig {
        &self.cfg
    }

    /// Creates a simulation from a [`ClientStore`].
    ///
    /// # Panics
    ///
    /// Panics if the store is sharded — gossip has no global aggregate to
    /// lazily rebuild clients from (see the `store` field docs) — plus
    /// everything [`GossipSim::new`] panics on.
    pub fn from_store(mut store: ClientStore<P>, cfg: GossipConfig) -> Self {
        let nodes = store.as_dense_mut().map(std::mem::take).expect(
            "gossip requires a dense client store: nodes mix neighbors into resident state",
        );
        Self::new(nodes, cfg)
    }

    /// The nodes (evaluation access).
    pub fn nodes(&self) -> &[P] {
        self.store.as_dense().expect("gossip stores are dense")
    }

    /// Rounds completed so far.
    pub fn round(&self) -> u64 {
        self.round
    }

    /// The current out-view of node `u` (testing/diagnostics).
    pub fn view_of(&self, u: u32) -> &[u32] {
        self.views.view_of(u)
    }

    /// The accumulated per-node traffic counters (observed-traffic vantage
    /// point for placement decisions; purely passive).
    pub fn traffic(&self) -> &TrafficCounters {
        &self.traffic
    }

    /// Mutable access to the nodes (checkpoint resume restores each
    /// participant's private state in place).
    pub fn nodes_mut(&mut self) -> &mut [P] {
        self.store.as_dense_mut().expect("gossip stores are dense")
    }

    /// Runs one gossip round: refresh views, send, route, aggregate, train.
    pub fn step(&mut self, observer: &mut dyn GossipObserver) -> GossipRoundStats {
        let t = self.round;
        let obs = self.obs.clone();
        let bytes0 = obs.counter(Counter::BytesOnWire);
        let n = self.store.len();
        // Lockstep rounds invalidate any carried-over scheduler events; a
        // later evented round re-derives its refresh timers from
        // `refresh_at`, which this path keeps authoritative.
        self.pending.clear();
        let mut rng = StdRng::seed_from_u64(self.cfg.seed ^ t.wrapping_mul(0xA076_1D64_78BD_642F));
        observer.on_round_start(t);

        // 1. View refreshes due this round. Offline nodes (per the
        // observer's availability query) defer theirs: `refresh_at` stays in
        // the past and fires on the node's first available round.
        let refresh_span = obs.span("refresh");
        let keep = match self.cfg.protocol {
            GossipProtocol::Rand => 0,
            GossipProtocol::Pers { exploration } => {
                ((1.0 - exploration) * self.cfg.out_degree as f64).ceil() as usize
            }
        };
        // cia-lint: allow(D05, ids and indices are bounded by the validated population/catalog size, which fits u32)
        for u in 0..n as u32 {
            if self.refresh_at[u as usize] <= t && probe_available(observer, t, u) {
                match self.cfg.protocol {
                    GossipProtocol::Rand => self.views.refresh_random(u, &mut rng),
                    GossipProtocol::Pers { .. } => {
                        let mut scored = std::mem::take(&mut self.heard[u as usize]);
                        self.views.refresh_personalized(u, &mut scored, keep, &mut rng);
                    }
                }
                self.refresh_at[u as usize] =
                    t + sample_exp_interval(self.cfg.view_refresh_rate, &mut rng);
            }
        }

        // Traffic accounting: the in-degree of the graph the round's sends
        // will be routed over (after refreshes, before sending).
        // cia-lint: allow(D05, ids and indices are bounded by the validated population/catalog size, which fits u32)
        for u in 0..n as u32 {
            for &v in self.views.view_of(u) {
                self.traffic.view_in_degree[v as usize] += 1;
            }
        }
        drop(refresh_span);

        // 2. Wake set (drawn first to keep the RNG stream stable, then
        // filtered through the observer's availability hook).
        let sample_span = obs.span("sample");
        let mut wake: Vec<bool> = (0..n)
            .map(|_| self.cfg.wake_fraction >= 1.0 || rng.gen::<f64>() < self.cfg.wake_fraction)
            .collect();
        observer.on_liveness(LivenessEvent::ActingSet { round: t, mask: &mut wake });
        for (c, &w) in self.ctl.iter_mut().zip(&wake) {
            c.awake = w;
        }
        drop(sample_span);

        // 3. Send phase: snapshot (+ DP transform) in parallel. Outgoing
        // slots are seeded with recycled carcasses from the pool so
        // `snapshot_into` reuses their buffers.
        let cfg = self.cfg;
        let transform = self.transform.as_deref();
        let awake: Vec<bool> = self.ctl.iter().map(|c| c.awake).collect();
        let destinations: Vec<u32> =
            // cia-lint: allow(D05, ids and indices are bounded by the validated population/catalog size, which fits u32)
            (0..n).map(|u| self.views.random_neighbor(u as u32, &mut rng)).collect();
        let send_span = obs.span("send");
        for (slot, &w) in self.outgoing.iter_mut().zip(&awake) {
            if w && slot.is_none() {
                *slot = self.pool.pop();
            }
        }
        {
            let nodes = self.store.as_dense().expect("gossip stores are dense");
            let ctl = &mut self.ctl;
            // Parallel over (ctl, outgoing) pairs; nodes are read-only here.
            par_zip_mut(ctl, &mut self.outgoing, |i, c, slot| {
                if !c.awake {
                    *slot = None;
                    return;
                }
                match slot {
                    Some(snap) => nodes[i].snapshot_into(t, snap),
                    None => *slot = Some(nodes[i].snapshot(t)),
                }
                let snap = slot.as_mut().expect("just filled");
                if let Some(tr) = transform {
                    let mut crng = StdRng::seed_from_u64(
                        cfg.seed ^ (t << 22) ^ (i as u64).wrapping_mul(0x2545_F491_4F6C_DD1D),
                    );
                    apply_gossip_transform(tr, snap, &mut c.prev_sent, &mut crng);
                }
            });
        }
        drop(send_span);

        // 4. Routing (serial: observer callbacks + inbox pushes). Each
        // delivered snapshot is a fresh materialization of model state for
        // this round — the pool only recycles allocations, not contents.
        let route_span = obs.span("route");
        let mut deliveries = 0usize;
        for (u, slot) in self.outgoing.iter_mut().enumerate() {
            if let Some(snap) = slot.take() {
                let dest = destinations[u];
                obs.add(Counter::BytesOnWire, 4 * snap.len() as u64);
                obs.inc(Counter::InboxDeliveries);
                observer.on_delivery(t, UserId::new(dest), &snap);
                self.ctl[dest as usize].inbox.push(snap);
                self.traffic.received[dest as usize] += 1;
                deliveries += 1;
            }
        }
        drop(route_span);

        // 5. Neighbor mixing + local training on awake nodes, in one fused
        // parallel pass under the `train` span. The in-place `mix_agg`
        // replaces materializing the neighborhood mean. Mix and train stay
        // fused deliberately: a node's aggregate is catalog-sized (~54 KB
        // at paper scale), so training right after mixing reuses it while
        // cache-hot — separate passes stream the whole population's state
        // through memory twice (~13% slower on the paper-scale round). The
        // per-node mix/train cost split is still observable through the
        // `mix_us` / `train_us` histograms, which bracket the two halves
        // with detail-gated clock reads.
        let is_pers = matches!(self.cfg.protocol, GossipProtocol::Pers { .. });
        let train_span = obs.span("train");
        {
            let nodes = self.store.as_dense_mut().expect("gossip stores are dense");
            par_zip_mut(nodes, &mut self.ctl, |i, node, c| {
                if !c.awake {
                    return;
                }
                if !c.inbox.is_empty() {
                    let t0 = obs.clock();
                    if is_pers {
                        for m in &c.inbox {
                            c.heard_scratch.push((m.owner.raw(), node.evaluate_model(m)));
                        }
                    }
                    let rows: Vec<&[f32]> = c.inbox.iter().map(|m| m.agg.as_slice()).collect();
                    node.mix_agg(&rows);
                    obs.observe_since(Metric::MixMicros, t0);
                }
                let t0 = obs.clock();
                let mut crng = StdRng::seed_from_u64(
                    cfg.seed ^ (t << 24) ^ (i as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15),
                );
                let mut loss = 0.0;
                for _ in 0..cfg.local_epochs.max(1) {
                    loss = node.train_local(&mut crng);
                }
                c.loss = loss;
                obs.observe_since(Metric::TrainMicros, t0);
            });
        }
        drop(train_span);

        // Consumed inboxes drain into the pool, and each node's mixing
        // evidence lands in the simulation-level `heard` table, afterwards
        // (serially — pool and table are shared). The barrier append keeps
        // `heard` byte-identical to in-pass pushes: it only ever gets
        // consumed at a *later* round's view refresh.
        for (u, c) in self.ctl.iter_mut().enumerate() {
            self.heard[u].append(&mut c.heard_scratch);
            if c.awake {
                self.pool.append(&mut c.inbox);
            }
        }
        self.pool.truncate(n);

        let awake_count = awake.iter().filter(|&&a| a).count();
        obs.add(Counter::ClientsTrained, awake_count as u64);
        let loss_sum: f32 = self.ctl.iter().filter(|c| c.awake).map(|c| c.loss).sum();
        let stats = GossipRoundStats {
            round: t,
            awake: awake_count,
            deliveries,
            mean_loss: (awake_count > 0).then(|| loss_sum / awake_count as f32),
            bytes_materialized: obs.counter(Counter::BytesOnWire) - bytes0,
        };
        let evaluate_span = obs.span("evaluate");
        observer.on_round_end(&stats);
        drop(evaluate_span);
        self.round += 1;
        stats
    }

    /// Runs all configured rounds.
    pub fn run(&mut self, observer: &mut dyn GossipObserver) {
        for _ in 0..self.cfg.rounds {
            self.step(observer);
        }
    }

    /// Runs one round on the event-driven runtime: a coordinator seat (node
    /// 0) owns the graph and the round timeline, every gossip node becomes a
    /// peer seat (node `i + 1`), and the round unfolds as typed messages —
    /// [`Msg::RefreshTimer`]/[`Msg::ViewPush`] for view management,
    /// [`Msg::WakeSend`]/[`Msg::ModelPush`] for the push path,
    /// [`Msg::MixTrain`]/[`Msg::TrainReport`] for mixing and training —
    /// under the deterministic virtual-clock scheduler.
    ///
    /// Compatibility contract: under *any* [`DeliveryPolicy`] this replays
    /// [`GossipSim::step`]'s lockstep semantics bit for bit — same RNG
    /// streams, same float operations, same observer callback order. Every
    /// reorderable mailbox is sorted on a canonical key before any float is
    /// touched (routing by ascending sender, inboxes by `(round, owner)`,
    /// train reports by node), so interleaving seeds cannot change bytes.
    ///
    /// View-refresh timers are the events that legitimately cross rounds:
    /// leftover queue contents persist on the simulation (and inside
    /// checkpoints via [`GossipSimState::pending`]); an empty queue re-derives
    /// them from `refresh_at`, which produces the identical firing schedule.
    pub fn step_evented(
        &mut self,
        observer: &mut dyn GossipObserver,
        policy: DeliveryPolicy,
    ) -> GossipRoundStats {
        let t = self.round;
        let obs = self.obs.clone();
        let bytes0 = obs.counter(Counter::BytesOnWire);
        let n = self.store.len();
        let base = t * SLOTS_PER_ROUND;
        let mut stats_out = None;
        let mut publish = false;
        {
            let GossipSim {
                store,
                ctl,
                heard,
                views,
                refresh_at,
                cfg,
                transform,
                traffic,
                pending,
                ..
            } = &mut *self;
            let nodes = store.as_dense_mut().expect("gossip stores are dense");
            let cfg = *cfg;
            let transform = transform.as_deref();
            let mut sched = Scheduler::new(policy);
            sched.set_recorder(obs.clone());
            if pending.is_empty() {
                // First evented round, or resumed without a saved queue:
                // derive each node's refresh timer from its scheduled round.
                // `max(refresh_at, t)` folds overdue (deferred) refreshes
                // into the current round, exactly like the lockstep
                // `refresh_at <= t` scan.
                // cia-lint: allow(D05, ids and indices are bounded by the validated population/catalog size, which fits u32)
                for u in 0..n as u32 {
                    let at = refresh_at[u as usize].max(t) * SLOTS_PER_ROUND;
                    sched.timer_at(at, COORD, Msg::RefreshTimer { node: u });
                }
            } else {
                sched.install_pending(std::mem::take(pending));
            }
            sched.timer_at(base, COORD, Msg::RoundStart { round: t });
            sched.timer_at(base + 2, COORD, Msg::RouteFlush { round: t });
            sched.timer_at(base + 4, COORD, Msg::RoundEnd { round: t });

            let mut seats: Vec<GlNode<'_, P>> = Vec::with_capacity(n + 1);
            seats.push(GlNode::Coordinator(CoordRound {
                observer,
                views,
                refresh_at,
                heard,
                traffic,
                cfg,
                obs: obs.clone(),
                due: Vec::new(),
                wake: Vec::new(),
                buffer: Vec::new(),
                reports: Vec::new(),
                deliveries: 0,
                bytes0,
                stats: &mut stats_out,
                publish: &mut publish,
            }));
            for (i, (node, c)) in nodes.iter_mut().zip(ctl.iter_mut()).enumerate() {
                seats.push(GlNode::Peer(PeerSeat {
                    index: i,
                    node,
                    ctl: c,
                    transform,
                    cfg,
                    obs: obs.clone(),
                }));
            }

            // Slot 0: due refresh timers, then the round opening (refresh +
            // sample phases in its handler).
            sched.run_until(base, &mut seats);
            // Slot 1: view pushes + wake sends (peers snapshot and apply DP).
            let send_span = obs.span("send");
            sched.run_until(base + 1, &mut seats);
            drop(send_span);
            // Slot 2: model pushes buffer at the coordinator; the route-flush
            // timer then routes them in canonical sender order.
            let route_span = obs.span("route");
            sched.run_until(base + 2, &mut seats);
            drop(route_span);
            // Slot 3: routed models land in peer inboxes, then every awake
            // peer's mix+train timer fires.
            let train_span = obs.span("train");
            sched.run_until(base + 3, &mut seats);
            drop(train_span);
            // Slots 4–5: train reports, round closing, broadcast.
            sched.run_until(base + 5, &mut seats);
            *pending = sched.drain_pending();
        }
        self.round += 1;
        let stats = stats_out.expect("RoundEnd produced stats");
        if publish {
            if let Some(mut hook) = self.publish_hook.take() {
                hook(t, self.nodes());
                self.publish_hook = Some(hook);
            }
        }
        stats
    }
}

impl<P: Participant> Checkpointable for GossipSim<P> {
    type State = GossipSimState;

    /// Snapshot of the protocol-side state — round counter, views, refresh
    /// schedule, per-node mailboxes and the pending event queue. Per-round
    /// RNG streams are derived from `(seed, round)`, so no generator state
    /// needs saving; node parameters are captured separately via
    /// [`cia_models::Participant::state_vec`].
    fn export_state(&self) -> GossipSimState {
        GossipSimState {
            round: self.round,
            refresh_at: self.refresh_at.clone(),
            views: self.views.views().to_vec(),
            inboxes: self.ctl.iter().map(|c| c.inbox.clone()).collect(),
            traffic: self.traffic.clone(),
            heard: self.heard.clone(),
            prev_sent: self.ctl.iter().map(|c| c.prev_sent.clone()).collect(),
            pending: self.pending.clone(),
        }
    }

    /// Restores a state captured by `export_state` on a simulation
    /// constructed with the same nodes and configuration.
    ///
    /// # Panics
    ///
    /// Panics if any table is not aligned with the node count or the views
    /// are malformed.
    fn restore_state(&mut self, state: GossipSimState) {
        let n = self.store.len();
        assert_eq!(state.refresh_at.len(), n, "one refresh time per node");
        assert_eq!(state.inboxes.len(), n, "one inbox per node");
        assert_eq!(state.heard.len(), n, "one heard list per node");
        assert_eq!(state.prev_sent.len(), n, "one DP reference per node");
        self.views.restore_views(state.views);
        self.round = state.round;
        self.refresh_at = state.refresh_at;
        self.heard = state.heard;
        for ((c, inbox), prev) in self.ctl.iter_mut().zip(state.inboxes).zip(state.prev_sent) {
            c.inbox = inbox;
            c.prev_sent = prev;
        }
        assert_eq!(state.traffic.received.len(), n, "one received counter per node");
        assert_eq!(state.traffic.view_in_degree.len(), n, "one in-degree counter per node");
        self.traffic = state.traffic;
        self.pending = state.pending;
    }
}

/// The coordinator's node address in the gossip scheduler (peers sit at
/// `i + 1`).
const COORD: cia_runtime::NodeId = 0;

/// Availability probe through the unified liveness hook.
fn probe_available(observer: &mut dyn GossipObserver, round: u64, node: u32) -> bool {
    let mut available = true;
    observer.on_liveness(LivenessEvent::Probe { round, node, available: &mut available });
    available
}

/// One gossip seat on the scheduler: the coordinator (node 0, owning graph,
/// routing and round control) or a peer (node `i + 1`, owning exactly its
/// participant state and [`PeerCtl`]).
enum GlNode<'a, P: Participant> {
    Coordinator(CoordRound<'a>),
    Peer(PeerSeat<'a, P>),
}

/// One buffered `TrainReport`: `(node, loss, heard)`.
type TrainReportRow = (u32, f32, Vec<(u32, f32)>);

/// The coordinator's per-round working state (borrows the simulation's
/// persistent tables).
struct CoordRound<'a> {
    observer: &'a mut dyn GossipObserver,
    views: &'a mut ViewTable,
    refresh_at: &'a mut Vec<u64>,
    heard: &'a mut Vec<Vec<(u32, f32)>>,
    traffic: &'a mut TrafficCounters,
    cfg: GossipConfig,
    obs: Recorder,
    /// Nodes whose refresh timers fired this round (processed sorted, which
    /// reproduces the lockstep ascending scan).
    due: Vec<u32>,
    /// This round's final wake mask.
    wake: Vec<bool>,
    /// Buffered pushes awaiting the route flush: `(sender, dest, model)`.
    buffer: Vec<(u32, u32, SharedModel)>,
    /// Buffered train reports awaiting the round end: `(node, loss, heard)`.
    reports: Vec<TrainReportRow>,
    deliveries: usize,
    bytes0: u64,
    stats: &'a mut Option<GossipRoundStats>,
    publish: &'a mut bool,
}

/// A peer seat: the participant plus its own control block.
struct PeerSeat<'a, P: Participant> {
    index: usize,
    node: &'a mut P,
    ctl: &'a mut PeerCtl,
    transform: Option<&'a dyn UpdateTransform>,
    cfg: GossipConfig,
    obs: Recorder,
}

impl CoordRound<'_> {
    fn round_start(&mut self, t: u64, ctx: &mut Ctx<'_>) {
        let n = self.refresh_at.len();
        let base = t * SLOTS_PER_ROUND;
        let cfg = self.cfg;
        let mut rng = StdRng::seed_from_u64(cfg.seed ^ t.wrapping_mul(0xA076_1D64_78BD_642F));
        self.observer.on_round_start(t);

        // Refresh phase: the due set arrived as timer events; sorted, it is
        // exactly the lockstep ascending `refresh_at[u] <= t` scan.
        let refresh_span = self.obs.span("refresh");
        let keep = match cfg.protocol {
            GossipProtocol::Rand => 0,
            GossipProtocol::Pers { exploration } => {
                ((1.0 - exploration) * cfg.out_degree as f64).ceil() as usize
            }
        };
        self.due.sort_unstable();
        for i in 0..self.due.len() {
            let u = self.due[i];
            debug_assert!(self.refresh_at[u as usize] <= t, "refresh timer fired early");
            if probe_available(self.observer, t, u) {
                match cfg.protocol {
                    GossipProtocol::Rand => self.views.refresh_random(u, &mut rng),
                    GossipProtocol::Pers { .. } => {
                        let mut scored = std::mem::take(&mut self.heard[u as usize]);
                        self.views.refresh_personalized(u, &mut scored, keep, &mut rng);
                    }
                }
                self.refresh_at[u as usize] =
                    t + sample_exp_interval(cfg.view_refresh_rate, &mut rng);
                ctx.timer_at(
                    self.refresh_at[u as usize] * SLOTS_PER_ROUND,
                    COORD,
                    Msg::RefreshTimer { node: u },
                );
                ctx.send_at(
                    base + 1,
                    u + 1,
                    Msg::ViewPush { round: t, view: self.views.view_of(u).to_vec() },
                );
            } else {
                // Deferred: `refresh_at` stays in the past; re-probe next
                // round (the node's first available round acts on it).
                ctx.timer_at((t + 1) * SLOTS_PER_ROUND, COORD, Msg::RefreshTimer { node: u });
            }
        }
        self.due.clear();
        // cia-lint: allow(D05, ids and indices are bounded by the validated population/catalog size, which fits u32)
        for u in 0..n as u32 {
            for &v in self.views.view_of(u) {
                self.traffic.view_in_degree[v as usize] += 1;
            }
        }
        drop(refresh_span);

        // Wake sampling (drawn first to keep the RNG stream stable, then
        // filtered through the observer's liveness hook).
        let sample_span = self.obs.span("sample");
        let mut wake: Vec<bool> = (0..n)
            .map(|_| cfg.wake_fraction >= 1.0 || rng.gen::<f64>() < cfg.wake_fraction)
            .collect();
        self.observer.on_liveness(LivenessEvent::ActingSet { round: t, mask: &mut wake });
        drop(sample_span);

        // Destinations are drawn for every node — awake or not — exactly
        // like the lockstep round (RNG stream parity).
        let destinations: Vec<u32> =
            // cia-lint: allow(D05, ids and indices are bounded by the validated population/catalog size, which fits u32)
            (0..n).map(|u| self.views.random_neighbor(u as u32, &mut rng)).collect();
        for (u, &w) in wake.iter().enumerate() {
            if w {
                ctx.send_at(
                    base + 1,
                    // cia-lint: allow(D05, ids and indices are bounded by the validated population/catalog size, which fits u32)
                    u as u32 + 1,
                    Msg::WakeSend { round: t, dest: destinations[u], snap: None },
                );
            }
        }
        self.wake = wake;
    }

    fn route(&mut self, t: u64, ctx: &mut Ctx<'_>) {
        let base = t * SLOTS_PER_ROUND;
        // Canonical routing order: ascending sender, independent of how the
        // delivery policy interleaved the pushes' arrival.
        self.buffer.sort_unstable_by_key(|&(sender, _, _)| sender);
        for (sender, dest, snap) in self.buffer.drain(..) {
            self.obs.add(Counter::BytesOnWire, 4 * snap.len() as u64);
            self.obs.inc(Counter::InboxDeliveries);
            self.observer.on_delivery(t, UserId::new(dest), &snap);
            self.traffic.received[dest as usize] += 1;
            self.deliveries += 1;
            ctx.send_at(base + 3, dest + 1, Msg::ModelPush { round: t, sender, dest, model: snap });
        }
        // Every awake peer mixes + trains once all routed models are in its
        // inbox (the timer lane fires after same-slot messages).
        for (u, &w) in self.wake.iter().enumerate() {
            if w {
                ctx.timer_at(
                    base + 3,
                    // cia-lint: allow(D05, ids and indices are bounded by the validated population/catalog size, which fits u32)
                    u as u32 + 1,
                    Msg::MixTrain { round: t, epochs: self.cfg.local_epochs },
                );
            }
        }
    }

    fn round_end(&mut self, t: u64, ctx: &mut Ctx<'_>) {
        let awake_count = self.wake.iter().filter(|&&w| w).count();
        debug_assert_eq!(self.reports.len(), awake_count, "one report per awake peer");
        // Canonical report order: ascending node, which is the order the
        // lockstep barrier reads losses and appends `heard` evidence in.
        self.reports.sort_unstable_by_key(|&(node, _, _)| node);
        let mut loss_sum = 0.0f32;
        for (node, loss, mut heard) in self.reports.drain(..) {
            self.heard[node as usize].append(&mut heard);
            loss_sum += loss;
        }
        self.obs.add(Counter::ClientsTrained, awake_count as u64);
        let stats = GossipRoundStats {
            round: t,
            awake: awake_count,
            deliveries: self.deliveries,
            mean_loss: (awake_count > 0).then(|| loss_sum / awake_count as f32),
            bytes_materialized: self.obs.counter(Counter::BytesOnWire) - self.bytes0,
        };
        let evaluate_span = self.obs.span("evaluate");
        self.observer.on_round_end(&stats);
        drop(evaluate_span);
        *self.stats = Some(stats);
        ctx.send(COORD, Msg::GlobalBroadcast { round: t });
    }
}

impl<P: Participant> PeerSeat<'_, P> {
    /// The lockstep send-phase body for one node: snapshot into a recycled
    /// carcass (local stash) and apply the DP transform on its own RNG
    /// stream, then push to the drawn destination via the network.
    fn wake_send(&mut self, t: u64, dest: u32, ctx: &mut Ctx<'_>) {
        let i = self.index;
        let mut snap = match self.ctl.stash.pop() {
            Some(mut s) => {
                self.node.snapshot_into(t, &mut s);
                s
            }
            None => self.node.snapshot(t),
        };
        if let Some(tr) = self.transform {
            let mut crng = StdRng::seed_from_u64(
                self.cfg.seed ^ (t << 22) ^ (i as u64).wrapping_mul(0x2545_F491_4F6C_DD1D),
            );
            apply_gossip_transform(tr, &mut snap, &mut self.ctl.prev_sent, &mut crng);
        }
        ctx.send_at(
            ctx.now() + 1,
            COORD,
            // cia-lint: allow(D05, ids and indices are bounded by the validated population/catalog size, which fits u32)
            Msg::ModelPush { round: t, sender: i as u32, dest, model: snap },
        );
    }

    /// The lockstep fused mix+train body for one node, on the canonically
    /// ordered inbox.
    fn mix_train(&mut self, t: u64, epochs: usize, ctx: &mut Ctx<'_>) {
        let i = self.index;
        // Canonical inbox order — `(round, owner)` ascending — is exactly the
        // lockstep accumulation order (one push per sender per round, routed
        // in ascending sender order, rounds appended in order), independent
        // of how the delivery policy interleaved this round's arrivals.
        self.ctl.inbox.sort_unstable_by_key(|m| (m.round, m.owner.raw()));
        if !self.ctl.inbox.is_empty() {
            let t0 = self.obs.clock();
            if matches!(self.cfg.protocol, GossipProtocol::Pers { .. }) {
                for m in &self.ctl.inbox {
                    self.ctl.heard_scratch.push((m.owner.raw(), self.node.evaluate_model(m)));
                }
            }
            let rows: Vec<&[f32]> = self.ctl.inbox.iter().map(|m| m.agg.as_slice()).collect();
            self.node.mix_agg(&rows);
            self.obs.observe_since(Metric::MixMicros, t0);
        }
        let t0 = self.obs.clock();
        let mut crng = StdRng::seed_from_u64(
            self.cfg.seed ^ (t << 24) ^ (i as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15),
        );
        let mut loss = 0.0;
        for _ in 0..epochs.max(1) {
            loss = self.node.train_local(&mut crng);
        }
        self.ctl.loss = loss;
        self.obs.observe_since(Metric::TrainMicros, t0);
        // Consumed inbox buffers recycle into the local carcass stash (the
        // shared pool stays a lockstep-only optimization).
        self.ctl.stash.append(&mut self.ctl.inbox);
        self.ctl.stash.truncate(2);
        ctx.send_at(
            ctx.now() + 1,
            COORD,
            Msg::TrainReport {
                round: t,
                // cia-lint: allow(D05, ids and indices are bounded by the validated population/catalog size, which fits u32)
                node: i as u32,
                loss,
                heard: std::mem::take(&mut self.ctl.heard_scratch),
            },
        );
    }
}

impl<P: Participant> Node for GlNode<'_, P> {
    fn on_message(&mut self, msg: Msg, ctx: &mut Ctx<'_>) {
        match (self, msg) {
            (GlNode::Peer(seat), Msg::ViewPush { view, .. }) => seat.ctl.view = view,
            (GlNode::Peer(seat), Msg::WakeSend { round, dest, .. }) => {
                seat.wake_send(round, dest, ctx);
            }
            (GlNode::Peer(seat), Msg::ModelPush { model, .. }) => seat.ctl.inbox.push(model),
            (GlNode::Coordinator(co), Msg::ModelPush { sender, dest, model, .. }) => {
                co.buffer.push((sender, dest, model));
            }
            (GlNode::Coordinator(co), Msg::TrainReport { node, loss, heard, .. }) => {
                co.reports.push((node, loss, heard));
            }
            (GlNode::Coordinator(co), Msg::GlobalBroadcast { .. }) => *co.publish = true,
            (_, msg) => unreachable!("misrouted gossip message {}", msg.label()),
        }
    }

    fn on_timer(&mut self, msg: Msg, ctx: &mut Ctx<'_>) {
        match (self, msg) {
            (GlNode::Coordinator(co), Msg::RefreshTimer { node }) => co.due.push(node),
            (GlNode::Coordinator(co), Msg::RoundStart { round }) => co.round_start(round, ctx),
            (GlNode::Coordinator(co), Msg::RouteFlush { round }) => co.route(round, ctx),
            (GlNode::Coordinator(co), Msg::RoundEnd { round }) => co.round_end(round, ctx),
            (GlNode::Peer(seat), Msg::MixTrain { round, epochs }) => {
                seat.mix_train(round, epochs, ctx);
            }
            (_, msg) => unreachable!("misrouted gossip timer {}", msg.label()),
        }
    }
}

/// DP in gossip: the outgoing `[emb | agg]` vector is treated as an update
/// relative to the previously sent vector (zero for the first send), clipped
/// and noised, then rewritten. `prev_sent` is updated to the new clean value.
fn apply_gossip_transform(
    transform: &dyn UpdateTransform,
    snap: &mut SharedModel,
    prev_sent: &mut Option<Vec<f32>>,
    rng: &mut StdRng,
) {
    let emb_len = snap.owner_emb.as_ref().map_or(0, Vec::len);
    let mut current = vec![0.0f32; emb_len + snap.agg.len()];
    if let Some(emb) = &snap.owner_emb {
        current[..emb_len].copy_from_slice(emb);
    }
    current[emb_len..].copy_from_slice(&snap.agg);

    let reference = prev_sent.get_or_insert_with(|| current.clone());
    let mut update: Vec<f32> = current.iter().zip(reference.iter()).map(|(c, r)| c - r).collect();
    transform.transform(&mut update, rng);

    if let Some(emb) = &mut snap.owner_emb {
        for k in 0..emb_len {
            emb[k] = reference[k] + update[k];
        }
    }
    for (k, a) in snap.agg.iter_mut().enumerate() {
        *a = reference[emb_len + k] + update[emb_len + k];
    }
    *prev_sent = Some(current);
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A deterministic toy participant: params drift towards a per-community
    /// fixed point during "training", and `evaluate_model` prefers models
    /// close to the node's own fixed point — enough to exercise the protocol
    /// without real ML.
    struct TestNode {
        user: UserId,
        params: Vec<f32>,
        target: Vec<f32>,
    }

    impl TestNode {
        fn new(user: u32, community: usize) -> Self {
            let mut target = vec![0.0f32; 8];
            target[community % 8] = 1.0;
            TestNode { user: UserId::new(user), params: vec![0.0; 8], target }
        }
    }

    impl Participant for TestNode {
        fn user(&self) -> UserId {
            self.user
        }
        fn agg_len(&self) -> usize {
            8
        }
        fn agg(&self) -> &[f32] {
            &self.params
        }
        fn absorb_agg(&mut self, agg: &[f32]) {
            self.params.copy_from_slice(agg);
        }
        fn train_local(&mut self, _rng: &mut StdRng) -> f32 {
            let mut dist = 0.0f32;
            for (p, t) in self.params.iter_mut().zip(&self.target) {
                *p += 0.5 * (t - *p);
                dist += (t - *p) * (t - *p);
            }
            dist
        }
        fn snapshot(&self, round: u64) -> SharedModel {
            SharedModel { owner: self.user, round, owner_emb: None, agg: self.params.clone() }
        }
        fn num_examples(&self) -> usize {
            1
        }
        fn evaluate_model(&self, model: &SharedModel) -> f32 {
            // cia-lint: allow(D07, sequential left-to-right fold over a slice in index order; the reduction order is fixed)
            -model.agg.iter().zip(&self.target).map(|(a, t)| (a - t) * (a - t)).sum::<f32>()
        }
    }

    fn sim(n: usize, cfg: GossipConfig) -> GossipSim<TestNode> {
        // cia-lint: allow(D05, ids and indices are bounded by the validated population/catalog size, which fits u32)
        let nodes = (0..n).map(|u| TestNode::new(u as u32, u % 4)).collect();
        GossipSim::new(nodes, cfg)
    }

    #[derive(Default)]
    struct Recorder {
        deliveries: Vec<(u64, u32, u32)>,
        stats: Vec<GossipRoundStats>,
    }

    impl GossipObserver for Recorder {
        fn on_delivery(&mut self, round: u64, receiver: UserId, model: &SharedModel) {
            self.deliveries.push((round, receiver.raw(), model.owner.raw()));
        }
        fn on_round_end(&mut self, stats: &GossipRoundStats) {
            self.stats.push(stats.clone());
        }
    }

    #[test]
    fn every_awake_node_sends_exactly_one_model() {
        let mut s = sim(20, GossipConfig { rounds: 5, seed: 3, ..Default::default() });
        let mut rec = Recorder::default();
        s.run(&mut rec);
        for st in &rec.stats {
            assert_eq!(st.awake, 20);
            assert_eq!(st.deliveries, 20);
        }
        // Nobody delivers to itself.
        assert!(rec.deliveries.iter().all(|&(_, recv, sender)| recv != sender));
    }

    #[test]
    fn deliveries_follow_views() {
        let mut s = sim(15, GossipConfig { rounds: 1, seed: 7, ..Default::default() });
        // Record views before the round; deliveries of round 0 must respect
        // them (views refresh only at their scheduled time > 0).
        let views: Vec<Vec<u32>> = (0..15).map(|u| s.view_of(u).to_vec()).collect();
        let mut rec = Recorder::default();
        s.run(&mut rec);
        for &(_, recv, sender) in &rec.deliveries {
            assert!(
                views[sender as usize].contains(&recv),
                "delivery {sender}->{recv} not in view {:?}",
                views[sender as usize]
            );
        }
    }

    #[test]
    fn partial_wake_fraction_accumulates_inboxes() {
        let mut s =
            sim(30, GossipConfig { rounds: 10, wake_fraction: 0.5, seed: 1, ..Default::default() });
        let mut rec = Recorder::default();
        s.run(&mut rec);
        for st in &rec.stats {
            assert!(st.awake < 30, "round {}: awake {}", st.round, st.awake);
            assert_eq!(st.deliveries, st.awake);
        }
    }

    #[test]
    fn training_converges_towards_targets() {
        let mut s = sim(16, GossipConfig { rounds: 30, seed: 5, ..Default::default() });
        let mut rec = Recorder::default();
        s.run(&mut rec);
        let first = rec.stats.first().unwrap().mean_loss.expect("nodes awake");
        let last = rec.stats.last().unwrap().mean_loss.expect("nodes awake");
        assert!(last < first, "loss {first} -> {last}");
    }

    #[test]
    fn deterministic_given_seed() {
        let run = || {
            let mut s = sim(12, GossipConfig { rounds: 6, seed: 11, ..Default::default() });
            let mut rec = Recorder::default();
            s.run(&mut rec);
            (rec.deliveries, s.nodes()[3].params.clone())
        };
        let (d1, p1) = run();
        let (d2, p2) = run();
        assert_eq!(d1, d2);
        assert_eq!(p1, p2);
    }

    #[test]
    fn pers_gossip_biases_views_towards_own_community() {
        // 4 communities of 10; after plenty of rounds, Pers-Gossip views
        // should contain more same-community peers than the ~23% a uniform
        // view would give.
        let cfg = GossipConfig {
            rounds: 120,
            protocol: GossipProtocol::Pers { exploration: 0.4 },
            seed: 2,
            ..Default::default()
        };
        let mut s = sim(40, cfg);
        s.run(&mut NullGossipObserver);
        let mut same = 0usize;
        let mut total = 0usize;
        for u in 0..40u32 {
            for &v in s.view_of(u) {
                total += 1;
                if v % 4 == u % 4 {
                    same += 1;
                }
            }
        }
        let frac = same as f64 / total as f64;
        assert!(frac > 0.35, "same-community view fraction only {frac}");
    }

    #[test]
    fn rand_gossip_views_stay_uniform() {
        let mut s = sim(40, GossipConfig { rounds: 120, seed: 2, ..Default::default() });
        s.run(&mut NullGossipObserver);
        let mut same = 0usize;
        let mut total = 0usize;
        for u in 0..40u32 {
            for &v in s.view_of(u) {
                total += 1;
                if v % 4 == u % 4 {
                    same += 1;
                }
            }
        }
        let frac = same as f64 / total as f64;
        assert!(frac < 0.4, "rand-gossip views unexpectedly clustered: {frac}");
    }

    #[test]
    fn dp_transform_perturbs_deliveries() {
        use cia_defenses::{DpConfig, DpMechanism};
        let run = |noisy: bool| {
            let mut s = sim(10, GossipConfig { rounds: 2, seed: 4, ..Default::default() });
            if noisy {
                s.set_update_transform(Box::new(DpMechanism::new(DpConfig {
                    clip: 0.5,
                    noise_multiplier: 1.0,
                })));
            }
            let mut rec = Recorder::default();
            s.run(&mut rec);
            s.nodes()[0].params.clone()
        };
        assert_ne!(run(false), run(true));
    }

    #[test]
    #[should_panic(expected = "need more nodes")]
    fn rejects_too_few_nodes() {
        let _ = sim(3, GossipConfig::default());
    }

    /// Clears every odd node from the wake set via the availability hook.
    #[derive(Default)]
    struct OddSleeper {
        stats: Vec<GossipRoundStats>,
        deliveries: Vec<u32>,
    }

    impl GossipObserver for OddSleeper {
        fn on_liveness(&mut self, event: LivenessEvent<'_>) {
            if let LivenessEvent::ActingSet { mask, .. } = event {
                for (u, m) in mask.iter_mut().enumerate() {
                    if u % 2 == 1 {
                        *m = false;
                    }
                }
            }
        }
        fn on_delivery(&mut self, _round: u64, _receiver: UserId, model: &SharedModel) {
            self.deliveries.push(model.owner.raw());
        }
        fn on_round_end(&mut self, stats: &GossipRoundStats) {
            self.stats.push(stats.clone());
        }
    }

    #[test]
    fn wake_hook_filters_senders() {
        let mut s = sim(20, GossipConfig { rounds: 4, seed: 6, ..Default::default() });
        let mut obs = OddSleeper::default();
        s.run(&mut obs);
        for st in &obs.stats {
            assert_eq!(st.awake, 10, "only even nodes wake");
            assert_eq!(st.deliveries, 10);
        }
        assert!(obs.deliveries.iter().all(|u| u % 2 == 0), "only awake nodes send");
    }

    /// Declares node 5 permanently unavailable (refresh deferral only; the
    /// wake set is left alone so the rest of the round is unchanged).
    struct FiveOffline;

    impl GossipObserver for FiveOffline {
        fn on_liveness(&mut self, event: LivenessEvent<'_>) {
            if let LivenessEvent::Probe { node, available, .. } = event {
                if node == 5 {
                    *available = false;
                }
            }
        }
    }

    #[test]
    fn offline_nodes_defer_view_refreshes() {
        // A refresh rate of 1.0 schedules refreshes nearly every round, so
        // over 12 rounds every available node re-samples its view at least
        // once with overwhelming probability — while node 5's view must
        // stay exactly its initial one.
        let cfg =
            GossipConfig { rounds: 12, view_refresh_rate: 1.0, seed: 9, ..Default::default() };
        let mut s = sim(16, cfg);
        let initial: Vec<Vec<u32>> = (0..16).map(|u| s.view_of(u).to_vec()).collect();
        s.run(&mut FiveOffline);
        assert_eq!(s.view_of(5), initial[5].as_slice(), "offline node refreshed its view");
        let changed = (0..16u32)
            .filter(|&u| u != 5 && s.view_of(u) != initial[u as usize].as_slice())
            .count();
        assert!(changed > 10, "only {changed} available nodes refreshed");
    }

    #[test]
    fn traffic_counters_account_for_every_delivery_and_view_slot() {
        let rounds = 6;
        let mut s = sim(20, GossipConfig { rounds, seed: 3, ..Default::default() });
        let mut rec = Recorder::default();
        s.run(&mut rec);
        let traffic = s.traffic();
        // Every routed delivery is counted exactly once.
        let received: u64 = traffic.received.iter().sum();
        assert_eq!(received as usize, rec.deliveries.len());
        for (u, &count) in traffic.received.iter().enumerate() {
            // cia-lint: allow(D05, ids and indices are bounded by the validated population/catalog size, which fits u32)
            let delivered = rec.deliveries.iter().filter(|&&(_, recv, _)| recv == u as u32).count();
            assert_eq!(count as usize, delivered, "node {u}");
        }
        // Each round accumulates exactly out_degree view slots per node.
        let in_degree: u64 = traffic.view_in_degree.iter().sum();
        assert_eq!(in_degree, rounds * 20 * s.config().out_degree as u64);
        // And the counters survive a checkpoint roundtrip.
        let state = s.export_state();
        assert_eq!(&state.traffic, traffic);
        let mut fresh = sim(20, GossipConfig { rounds, seed: 3, ..Default::default() });
        let traffic = traffic.clone();
        fresh.restore_state(state);
        assert_eq!(fresh.traffic(), &traffic);
    }

    #[test]
    fn recorder_counts_wire_bytes_and_spans_phases() {
        let rounds = 5u64;
        let mut s = sim(20, GossipConfig { rounds, seed: 3, ..Default::default() });
        let rec = cia_obs::Recorder::new();
        rec.set_detail(true);
        s.set_recorder(rec.clone());
        let mut tape = Recorder::default();
        s.run(&mut tape);
        assert_eq!(rec.counter(Counter::InboxDeliveries) as usize, tape.deliveries.len());
        assert_eq!(rec.counter(Counter::ClientsTrained), rounds * 20);
        // Every delivery carries the 8-float test model: 32 bytes, and the
        // stats field mirrors the counter delta exactly.
        assert_eq!(rec.counter(Counter::BytesOnWire), 32 * rec.counter(Counter::InboxDeliveries));
        let stat_bytes: u64 = tape.stats.iter().map(|s| s.bytes_materialized).sum();
        assert_eq!(stat_bytes, rec.counter(Counter::BytesOnWire));
        assert_eq!(rec.histogram(Metric::TrainMicros).count(), rounds * 20);
        // The fused mix+train pass still splits per-node cost into the two
        // histograms: one mix observation per (round, node-with-mail), so
        // the count is positive and bounded by the delivery count.
        let mixes = rec.histogram(Metric::MixMicros).count();
        assert!(mixes > 0, "mix cost was never observed");
        assert!(mixes <= rec.counter(Counter::InboxDeliveries));
        let chunk = rec.drain();
        for phase in ["refresh", "sample", "send", "route", "train", "evaluate"] {
            assert_eq!(
                chunk.spans.iter().filter(|s| s.name == phase).count(),
                rounds as usize,
                "one {phase} span per round"
            );
        }
    }

    #[test]
    fn tracing_does_not_change_the_simulation() {
        // A detail-enabled recorder (spans, histograms, per-node mix/train
        // clock reads) must leave the protocol bit-identical to an
        // untraced run.
        let cfg = GossipConfig {
            rounds: 8,
            wake_fraction: 0.6,
            protocol: GossipProtocol::Pers { exploration: 0.4 },
            seed: 17,
            ..Default::default()
        };
        let run = |traced: bool| {
            let mut s = sim(16, cfg);
            if traced {
                let rec = cia_obs::Recorder::new();
                rec.set_detail(true);
                s.set_recorder(rec);
            }
            let mut tape = Recorder::default();
            s.run(&mut tape);
            let params: Vec<Vec<f32>> = s.nodes().iter().map(|n| n.params.clone()).collect();
            (tape.deliveries, params)
        };
        assert_eq!(run(false), run(true));
    }

    #[test]
    fn restore_replays_identically() {
        let cfg = GossipConfig { rounds: 8, wake_fraction: 0.7, seed: 21, ..Default::default() };
        let mut straight = sim(14, cfg);
        straight.run(&mut NullGossipObserver);

        let mut first = sim(14, cfg);
        for _ in 0..3 {
            first.step(&mut NullGossipObserver);
        }
        let proto = first.export_state();
        let params: Vec<Vec<f32>> = first.nodes().iter().map(Participant::state_vec).collect();

        let mut resumed = sim(14, cfg);
        resumed.restore_state(proto);
        for (node, p) in resumed.nodes_mut().iter_mut().zip(&params) {
            node.restore_state(p);
        }
        for _ in 3..8 {
            resumed.step(&mut NullGossipObserver);
        }
        for (a, b) in straight.nodes().iter().zip(resumed.nodes()) {
            assert_eq!(a.params, b.params);
        }
        assert_eq!(straight.round(), resumed.round());
    }

    /// Runs lockstep and evented from identical state under `observer`s
    /// built by `make_obs`, comparing every observable byte: deliveries,
    /// stats, views, node parameters.
    fn assert_evented_matches_lockstep(
        cfg: GossipConfig,
        n: usize,
        dp: bool,
        policy: DeliveryPolicy,
    ) {
        let build = || {
            let mut s = sim(n, cfg);
            if dp {
                use cia_defenses::{DpConfig, DpMechanism};
                s.set_update_transform(Box::new(DpMechanism::new(DpConfig {
                    clip: 0.5,
                    noise_multiplier: 0.3,
                })));
            }
            s
        };
        let mut lockstep = build();
        let mut lock_tape = Recorder::default();
        for _ in 0..cfg.rounds {
            lockstep.step(&mut lock_tape);
        }

        let mut evented = build();
        let mut ev_tape = Recorder::default();
        for _ in 0..cfg.rounds {
            evented.step_evented(&mut ev_tape, policy);
        }

        assert_eq!(lock_tape.deliveries, ev_tape.deliveries);
        assert_eq!(lock_tape.stats, ev_tape.stats);
        assert_eq!(lockstep.traffic(), evented.traffic());
        // cia-lint: allow(D05, ids and indices are bounded by the validated population/catalog size, which fits u32)
        for u in 0..n as u32 {
            assert_eq!(lockstep.view_of(u), evented.view_of(u), "view of {u}");
        }
        for (a, b) in lockstep.nodes().iter().zip(evented.nodes()) {
            assert_eq!(a.params, b.params);
        }
    }

    #[test]
    fn evented_round_replays_lockstep_bit_for_bit() {
        let cfg = GossipConfig { rounds: 6, seed: 11, ..Default::default() };
        assert_evented_matches_lockstep(cfg, 14, false, DeliveryPolicy::Lockstep);
    }

    #[test]
    fn evented_matches_lockstep_under_pers_partial_wake_and_dp() {
        let cfg = GossipConfig {
            rounds: 8,
            wake_fraction: 0.6,
            protocol: GossipProtocol::Pers { exploration: 0.4 },
            view_refresh_rate: 0.5,
            seed: 17,
            ..Default::default()
        };
        assert_evented_matches_lockstep(cfg, 16, true, DeliveryPolicy::Lockstep);
    }

    #[test]
    fn interleaving_seeds_cannot_change_gossip_bytes() {
        // Every reorderable mailbox is sorted on a canonical key before any
        // float is touched, so a permuted delivery order must still replay
        // the lockstep transcript exactly.
        let cfg = GossipConfig {
            rounds: 5,
            wake_fraction: 0.7,
            protocol: GossipProtocol::Pers { exploration: 0.4 },
            view_refresh_rate: 0.8,
            seed: 23,
            ..Default::default()
        };
        for seed in [0u64, 9, 0xFEED_C0DE] {
            assert_evented_matches_lockstep(cfg, 12, false, DeliveryPolicy::Interleaved { seed });
        }
    }

    #[test]
    fn evented_defers_refreshes_for_unavailable_nodes() {
        // The Probe liveness event must defer node 5's refreshes under the
        // evented runtime exactly like the lockstep availability query.
        let cfg =
            GossipConfig { rounds: 12, view_refresh_rate: 1.0, seed: 9, ..Default::default() };
        let mut s = sim(16, cfg);
        let initial: Vec<Vec<u32>> = (0..16).map(|u| s.view_of(u).to_vec()).collect();
        for _ in 0..12 {
            s.step_evented(&mut FiveOffline, DeliveryPolicy::Lockstep);
        }
        assert_eq!(s.view_of(5), initial[5].as_slice(), "offline node refreshed its view");
        let changed = (0..16u32)
            .filter(|&u| u != 5 && s.view_of(u) != initial[u as usize].as_slice())
            .count();
        assert!(changed > 10, "only {changed} available nodes refreshed");
    }

    #[test]
    fn evented_resume_restores_the_pending_event_queue() {
        // Kill/resume across a half-drained queue: after 3 evented rounds
        // the queue holds future refresh timers; a restore must carry them
        // (and produce the exact same continuation as an uninterrupted run).
        let cfg = GossipConfig {
            rounds: 8,
            wake_fraction: 0.7,
            view_refresh_rate: 0.5,
            seed: 21,
            ..Default::default()
        };
        let mut straight = sim(14, cfg);
        for _ in 0..8 {
            straight.step_evented(&mut NullGossipObserver, DeliveryPolicy::Lockstep);
        }

        let mut first = sim(14, cfg);
        for _ in 0..3 {
            first.step_evented(&mut NullGossipObserver, DeliveryPolicy::Lockstep);
        }
        let proto = first.export_state();
        assert!(!proto.pending.is_empty(), "refresh timers should be in flight");
        let params: Vec<Vec<f32>> = first.nodes().iter().map(Participant::state_vec).collect();

        let mut resumed = sim(14, cfg);
        resumed.restore_state(proto);
        for (node, p) in resumed.nodes_mut().iter_mut().zip(&params) {
            node.restore_state(p);
        }
        for _ in 3..8 {
            resumed.step_evented(&mut NullGossipObserver, DeliveryPolicy::Lockstep);
        }
        for (a, b) in straight.nodes().iter().zip(resumed.nodes()) {
            assert_eq!(a.params, b.params);
        }
        assert_eq!(straight.round(), resumed.round());
    }

    #[test]
    fn lockstep_checkpoint_resumes_onto_the_evented_runtime() {
        // Cross-mode resume: a checkpoint written by a lockstep run has an
        // empty pending queue; the evented runtime re-derives refresh timers
        // from `refresh_at` and must continue bit-identically.
        let cfg =
            GossipConfig { rounds: 8, view_refresh_rate: 0.5, seed: 31, ..Default::default() };
        let mut straight = sim(12, cfg);
        straight.run(&mut NullGossipObserver);

        let mut first = sim(12, cfg);
        for _ in 0..4 {
            first.step(&mut NullGossipObserver);
        }
        let proto = first.export_state();
        assert!(proto.pending.is_empty(), "lockstep rounds leave no queue");
        let params: Vec<Vec<f32>> = first.nodes().iter().map(Participant::state_vec).collect();

        let mut resumed = sim(12, cfg);
        resumed.restore_state(proto);
        for (node, p) in resumed.nodes_mut().iter_mut().zip(&params) {
            node.restore_state(p);
        }
        for _ in 4..8 {
            resumed.step_evented(&mut NullGossipObserver, DeliveryPolicy::Lockstep);
        }
        for (a, b) in straight.nodes().iter().zip(resumed.nodes()) {
            assert_eq!(a.params, b.params);
        }
    }

    #[test]
    fn evented_round_fires_publish_hook_after_broadcast() {
        use std::cell::RefCell;
        use std::rc::Rc;
        let published: Rc<RefCell<Vec<u64>>> = Rc::default();
        let sink = Rc::clone(&published);
        let mut s = sim(10, GossipConfig { rounds: 2, seed: 4, ..Default::default() });
        s.set_publish_hook(Box::new(move |t, nodes| {
            assert_eq!(nodes.len(), 10);
            sink.borrow_mut().push(t);
        }));
        s.step_evented(&mut NullGossipObserver, DeliveryPolicy::Lockstep);
        s.step_evented(&mut NullGossipObserver, DeliveryPolicy::Lockstep);
        // Lockstep rounds do not schedule the broadcast event.
        s.step(&mut NullGossipObserver);
        assert_eq!(*published.borrow(), vec![0, 1]);
    }

    #[test]
    fn evented_round_spans_phases_and_counts_like_lockstep() {
        let rounds = 5u64;
        let mut s = sim(20, GossipConfig { rounds, seed: 3, ..Default::default() });
        let rec = cia_obs::Recorder::new();
        rec.set_detail(true);
        s.set_recorder(rec.clone());
        let mut tape = Recorder::default();
        for _ in 0..rounds {
            s.step_evented(&mut tape, DeliveryPolicy::Lockstep);
        }
        assert_eq!(rec.counter(Counter::InboxDeliveries) as usize, tape.deliveries.len());
        assert_eq!(rec.counter(Counter::ClientsTrained), rounds * 20);
        assert_eq!(rec.counter(Counter::BytesOnWire), 32 * rec.counter(Counter::InboxDeliveries));
        let stat_bytes: u64 = tape.stats.iter().map(|s| s.bytes_materialized).sum();
        assert_eq!(stat_bytes, rec.counter(Counter::BytesOnWire));
        assert_eq!(rec.histogram(Metric::TrainMicros).count(), rounds * 20);
        let chunk = rec.drain();
        for phase in ["refresh", "sample", "send", "route", "train", "evaluate"] {
            assert_eq!(
                chunk.spans.iter().filter(|s| s.name == phase).count(),
                rounds as usize,
                "one {phase} span per round"
            );
        }
        // Per-message trace slices exist for the protocol messages.
        let wake_sends = chunk.spans.iter().filter(|s| s.name == "msg:wake_send").count();
        assert_eq!(wake_sends, (rounds * 20) as usize);
    }
}
