//! Property tests for the evented FedAvg port: under any participation
//! fraction, weighting, epoch count and seed, the event-driven round —
//! including with a seeded interleaved delivery order — replays the fused
//! lockstep round bit for bit, and a mid-run restore lands on the
//! uninterrupted trajectory.

use cia_data::UserId;
use cia_federated::{
    DeliveryPolicy, FedAvg, FedAvgConfig, LivenessEvent, RoundObserver, RoundStats, Weighting,
};
use cia_models::{Participant, SharedModel};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::Rng;

/// Deterministic toy client: params drift towards a per-community fixed
/// point with a small RNG perturbation, so any divergence in RNG stream
/// order between the lockstep and evented paths shows up in the parameters.
struct TestClient {
    user: UserId,
    params: Vec<f32>,
    target: Vec<f32>,
}

impl TestClient {
    fn new(user: u32) -> Self {
        let mut target = vec![0.0f32; 8];
        target[user as usize % 4] = 1.0;
        TestClient { user: UserId::new(user), params: vec![0.0; 8], target }
    }
}

impl Participant for TestClient {
    fn user(&self) -> UserId {
        self.user
    }
    fn agg_len(&self) -> usize {
        8
    }
    fn agg(&self) -> &[f32] {
        &self.params
    }
    fn absorb_agg(&mut self, agg: &[f32]) {
        self.params.copy_from_slice(agg);
    }
    fn train_local(&mut self, rng: &mut StdRng) -> f32 {
        let mut dist = 0.0f32;
        for (p, t) in self.params.iter_mut().zip(&self.target) {
            *p += 0.5 * (t - *p) + rng.gen_range(-0.01f32..0.01);
            dist += (t - *p) * (t - *p);
        }
        dist
    }
    fn snapshot(&self, round: u64) -> SharedModel {
        SharedModel { owner: self.user, round, owner_emb: None, agg: self.params.clone() }
    }
    fn num_examples(&self) -> usize {
        1 + self.user.raw() as usize % 3
    }
}

fn sim(n: usize, cfg: FedAvgConfig) -> FedAvg<TestClient> {
    // cia-lint: allow(D05, test/bench populations are tiny; ids fit u32 with orders of magnitude to spare)
    FedAvg::new((0..n as u32).map(TestClient::new).collect(), cfg)
}

/// Observer taping every event the FL adversary can see.
#[derive(Default, Debug, PartialEq)]
struct Tape {
    acting: Vec<(u64, Vec<bool>)>,
    globals: Vec<(u64, Vec<f32>)>,
    models: Vec<(u64, u32, Vec<f32>)>,
    stats: Vec<RoundStats>,
}

impl RoundObserver for Tape {
    fn on_liveness(&mut self, event: LivenessEvent<'_>) {
        if let LivenessEvent::ActingSet { round, mask } = event {
            self.acting.push((round, mask.to_vec()));
        }
    }
    fn on_global(&mut self, round: u64, global_agg: &[f32]) {
        self.globals.push((round, global_agg.to_vec()));
    }
    fn on_client_model(&mut self, model: &SharedModel) {
        self.models.push((model.round, model.owner.raw(), model.agg.clone()));
    }
    fn on_round_end(&mut self, stats: &RoundStats) {
        self.stats.push(stats.clone());
    }
}

fn config(
    rounds: u64,
    participation: f64,
    epochs: usize,
    by_examples: bool,
    seed: u64,
) -> FedAvgConfig {
    FedAvgConfig {
        rounds,
        participation,
        local_epochs: epochs,
        weighting: if by_examples { Weighting::ByExamples } else { Weighting::Uniform },
        seed,
    }
}

proptest! {
    #[test]
    fn evented_round_replays_lockstep_under_any_interleaving(
        n in 2usize..14,
        rounds in 1u64..5,
        participation in 0.2f64..1.0,
        epochs in 1usize..3,
        by_examples in any::<bool>(),
        seed in 0u64..(1 << 40),
        interleave in any::<u64>(),
    ) {
        let cfg = config(rounds, participation, epochs, by_examples, seed);
        let mut lockstep = sim(n, cfg);
        let mut lock_tape = Tape::default();
        for _ in 0..rounds {
            lockstep.step(&mut lock_tape);
        }
        for policy in [DeliveryPolicy::Lockstep, DeliveryPolicy::Interleaved { seed: interleave }] {
            let mut evented = sim(n, cfg);
            let mut ev_tape = Tape::default();
            for _ in 0..rounds {
                evented.step_evented(&mut ev_tape, policy);
            }
            prop_assert_eq!(&ev_tape, &lock_tape, "policy {:?} drifted", policy);
            prop_assert_eq!(evented.global_agg(), lockstep.global_agg());
            for (a, b) in evented.clients().iter().zip(lockstep.clients()) {
                prop_assert_eq!(&a.params, &b.params);
            }
        }
    }

    #[test]
    fn mid_run_restore_replays_the_evented_trajectory(
        n in 2usize..14,
        rounds in 2u64..6,
        cut in 1u64..5,
        participation in 0.2f64..1.0,
        seed in 0u64..(1 << 40),
    ) {
        prop_assume!(cut < rounds);
        let cfg = config(rounds, participation, 1, true, seed);
        let mut straight = sim(n, cfg);
        let mut straight_tape = Tape::default();
        for _ in 0..rounds {
            straight.step_evented(&mut straight_tape, DeliveryPolicy::Lockstep);
        }

        let mut first = sim(n, cfg);
        let mut tape = Tape::default();
        for _ in 0..cut {
            first.step_evented(&mut tape, DeliveryPolicy::Lockstep);
        }
        let global = first.global_agg().to_vec();
        let params: Vec<Vec<f32>> = first.clients().iter().map(Participant::state_vec).collect();
        drop(first);

        let mut resumed = sim(n, cfg);
        resumed.restore(cut, global);
        for (node, p) in resumed.clients_mut().iter_mut().zip(&params) {
            node.restore_state(p);
        }
        for _ in cut..rounds {
            resumed.step_evented(&mut tape, DeliveryPolicy::Lockstep);
        }
        prop_assert_eq!(&tape, &straight_tape, "stitched tape diverged at cut {}", cut);
        prop_assert_eq!(resumed.global_agg(), straight.global_agg());
    }
}
