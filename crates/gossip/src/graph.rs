//! P-out-regular dynamic views and the random peer-sampling service.

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::Rng;

/// Per-node out-views of a P-out-regular digraph, refreshed by a peer
/// sampling service.
///
/// Every node holds exactly `P = out_degree` distinct out-neighbors (never
/// itself), so `|N_out(u)| = P` and `E[|N_in(u)|] = P`, matching the paper's
/// graph model (§III-C).
#[derive(Debug, Clone)]
pub struct ViewTable {
    views: Vec<Vec<u32>>,
    out_degree: usize,
}

impl ViewTable {
    /// Samples an initial P-out-regular view table over `n` nodes.
    ///
    /// # Panics
    ///
    /// Panics if `out_degree == 0` or `out_degree >= n`.
    pub fn new(n: usize, out_degree: usize, rng: &mut StdRng) -> Self {
        assert!(out_degree > 0, "out-degree must be positive");
        assert!(out_degree < n, "out-degree must be smaller than the node count");
        let mut views = Vec::with_capacity(n);
        for u in 0..n {
            // cia-lint: allow(D05, ids and indices are bounded by the validated population/catalog size, which fits u32)
            views.push(Self::sample_view(u as u32, n, out_degree, &[], 0, rng));
        }
        ViewTable { views, out_degree }
    }

    /// The out-degree P.
    pub fn out_degree(&self) -> usize {
        self.out_degree
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.views.len()
    }

    /// Whether the table is empty.
    pub fn is_empty(&self) -> bool {
        self.views.is_empty()
    }

    /// The current out-view of node `u`.
    pub fn view_of(&self, u: u32) -> &[u32] {
        &self.views[u as usize]
    }

    /// All current out-views (checkpoint access).
    pub fn views(&self) -> &[Vec<u32>] {
        &self.views
    }

    /// Replaces every out-view (checkpoint resume).
    ///
    /// # Panics
    ///
    /// Panics if the table shape is wrong or any view contains its own node
    /// or a duplicate.
    pub fn restore_views(&mut self, views: Vec<Vec<u32>>) {
        assert_eq!(views.len(), self.views.len(), "one view per node");
        for (u, view) in views.iter().enumerate() {
            assert_eq!(view.len(), self.out_degree, "view of node {u} must have P entries");
            let mut uniq = view.clone();
            uniq.sort_unstable();
            uniq.dedup();
            assert_eq!(uniq.len(), view.len(), "view of node {u} has duplicates");
            // cia-lint: allow(D05, ids and indices are bounded by the validated population/catalog size, which fits u32)
            assert!(!view.contains(&(u as u32)), "view of node {u} contains itself");
        }
        self.views = views;
    }

    /// One uniformly random out-neighbor of `u`.
    pub fn random_neighbor(&self, u: u32, rng: &mut StdRng) -> u32 {
        let v = &self.views[u as usize];
        v[rng.gen_range(0..v.len())]
    }

    /// Refreshes `u`'s view uniformly at random (Rand-Gossip peer sampling).
    pub fn refresh_random(&mut self, u: u32, rng: &mut StdRng) {
        let n = self.views.len();
        self.views[u as usize] = Self::sample_view(u, n, self.out_degree, &[], 0, rng);
    }

    /// Refreshes `u`'s view keeping the `keep` highest-scoring candidates
    /// (Pers-Gossip): `scored` holds `(peer, score)` candidates — typically
    /// the current view plus recently heard senders — and the remaining slots
    /// are filled uniformly at random (the exploration share).
    pub fn refresh_personalized(
        &mut self,
        u: u32,
        scored: &mut [(u32, f32)],
        keep: usize,
        rng: &mut StdRng,
    ) {
        let n = self.views.len();
        // Highest score first; dedup peers keeping their best score.
        scored.sort_by(|a, b| {
            b.1.partial_cmp(&a.1).expect("finite scores").then_with(|| a.0.cmp(&b.0))
        });
        let mut kept: Vec<u32> = Vec::with_capacity(keep);
        for &(peer, _) in scored.iter() {
            if peer != u && !kept.contains(&peer) {
                kept.push(peer);
                if kept.len() == keep {
                    break;
                }
            }
        }
        let view = Self::sample_view(u, n, self.out_degree, &kept, kept.len(), rng);
        self.views[u as usize] = view;
    }

    /// Samples a view of size `out_degree` containing the first
    /// `num_pinned` entries of `pinned`, completed with uniform distinct
    /// peers (never `u`).
    fn sample_view(
        u: u32,
        n: usize,
        out_degree: usize,
        pinned: &[u32],
        num_pinned: usize,
        rng: &mut StdRng,
    ) -> Vec<u32> {
        let mut view: Vec<u32> = pinned.iter().take(num_pinned.min(out_degree)).copied().collect();
        // Rejection-sample the remainder; fall back to a shuffle for tiny n.
        let mut guard = 0;
        while view.len() < out_degree {
            guard += 1;
            if guard > 50 * out_degree {
                let mut all: Vec<u32> =
                    // cia-lint: allow(D05, ids and indices are bounded by the validated population/catalog size, which fits u32)
                    (0..n as u32).filter(|&v| v != u && !view.contains(&v)).collect();
                all.shuffle(rng);
                view.extend(all.into_iter().take(out_degree - view.len()));
                break;
            }
            // cia-lint: allow(D05, ids and indices are bounded by the validated population/catalog size, which fits u32)
            let cand = rng.gen_range(0..n as u32);
            if cand != u && !view.contains(&cand) {
                view.push(cand);
            }
        }
        view
    }
}

/// Samples a view-refresh interval (in rounds) from Exp(`rate`), rounded up —
/// the paper's periodic view change `p ~ Exp(0.1)` (§V-B).
///
/// # Panics
///
/// Panics if `rate` is not positive.
pub fn sample_exp_interval(rate: f64, rng: &mut StdRng) -> u64 {
    assert!(rate > 0.0, "rate must be positive");
    let u: f64 = rng.gen::<f64>().max(f64::MIN_POSITIVE);
    (-u.ln() / rate).ceil().max(1.0) as u64
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn views_are_regular_and_self_free() {
        let mut rng = StdRng::seed_from_u64(1);
        let t = ViewTable::new(50, 3, &mut rng);
        assert_eq!(t.len(), 50);
        for u in 0..50u32 {
            let v = t.view_of(u);
            assert_eq!(v.len(), 3);
            assert!(!v.contains(&u));
            let mut uniq = v.to_vec();
            uniq.sort_unstable();
            uniq.dedup();
            assert_eq!(uniq.len(), 3);
        }
    }

    #[test]
    fn random_refresh_changes_views_over_time() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut t = ViewTable::new(30, 3, &mut rng);
        let before = t.view_of(5).to_vec();
        let mut changed = false;
        for _ in 0..20 {
            t.refresh_random(5, &mut rng);
            if t.view_of(5) != before.as_slice() {
                changed = true;
                break;
            }
        }
        assert!(changed, "refresh never changed the view");
    }

    #[test]
    fn peer_sampling_is_roughly_uniform() {
        // Over many refreshes, every peer should be picked a similar number
        // of times (the uniformity property of view shuffling [19]).
        let mut rng = StdRng::seed_from_u64(3);
        let n = 20;
        let mut t = ViewTable::new(n, 3, &mut rng);
        let mut counts = vec![0usize; n];
        for _ in 0..3000 {
            t.refresh_random(0, &mut rng);
            for &v in t.view_of(0) {
                counts[v as usize] += 1;
            }
        }
        assert_eq!(counts[0], 0, "node never samples itself");
        let expected = 3000.0 * 3.0 / (n - 1) as f64;
        for (i, &c) in counts.iter().enumerate().skip(1) {
            assert!(
                (c as f64 - expected).abs() < expected * 0.25,
                "peer {i} sampled {c} times, expected ~{expected}"
            );
        }
    }

    #[test]
    fn personalized_refresh_keeps_best_scored() {
        let mut rng = StdRng::seed_from_u64(4);
        let mut t = ViewTable::new(30, 4, &mut rng);
        let mut scored = vec![(7u32, 0.9f32), (3, 0.8), (12, 0.1), (7, 0.2), (9, 0.5)];
        t.refresh_personalized(0, &mut scored, 2, &mut rng);
        let v = t.view_of(0);
        assert_eq!(v.len(), 4);
        assert!(v.contains(&7) && v.contains(&3), "best peers retained: {v:?}");
    }

    #[test]
    fn personalized_refresh_never_pins_self() {
        let mut rng = StdRng::seed_from_u64(5);
        let mut t = ViewTable::new(10, 3, &mut rng);
        let mut scored = vec![(0u32, 99.0f32), (4, 0.5)];
        t.refresh_personalized(0, &mut scored, 2, &mut rng);
        assert!(!t.view_of(0).contains(&0));
        assert!(t.view_of(0).contains(&4));
    }

    #[test]
    fn exp_intervals_have_correct_mean() {
        let mut rng = StdRng::seed_from_u64(6);
        let n = 50_000;
        let sum: u64 = (0..n).map(|_| sample_exp_interval(0.1, &mut rng)).sum();
        let mean = sum as f64 / n as f64;
        // E[ceil(Exp(0.1))] ≈ 10.5.
        assert!((mean - 10.5).abs() < 0.3, "mean interval {mean}");
        assert!((0..100).all(|_| sample_exp_interval(0.1, &mut rng) >= 1));
    }

    #[test]
    #[should_panic(expected = "out-degree must be smaller")]
    fn rejects_degree_ge_n() {
        let mut rng = StdRng::seed_from_u64(0);
        let _ = ViewTable::new(3, 3, &mut rng);
    }
}
