//! Table VII — impact of the community-size parameter K on Max AAC
//! (FL, GMF, MovieLens; full sharing vs Share-less).
//!
//! The paper sweeps K ∈ {10, 20, 40, 50, 100} with N = 943 users; at smaller
//! scales we keep the same *fractions* of the population so the random bound
//! rows stay comparable.

use crate::runner::{build_setup, run_recsys, DefenseKind, ModelKind, ProtocolKind, RunSpec};
use crate::tables::{pct, Table};
use cia_data::presets::{Preset, Scale};

/// The paper's K values as fractions of N = 943.
pub const K_FRACTIONS: [f64; 6] =
    [10.0 / 943.0, 20.0 / 943.0, 40.0 / 943.0, 50.0 / 943.0, 100.0 / 943.0, 190.0 / 943.0];

/// Regenerates Table VII.
pub fn run(scale: Scale, seed: u64) -> Vec<Table> {
    let n = build_setup(Preset::MovieLens, scale, None, seed).data.num_users();
    let ks: Vec<usize> =
        K_FRACTIONS.iter().map(|f| ((n as f64 * f).round() as usize).max(1)).collect();
    let mut headers: Vec<String> = vec!["Setting".to_string()];
    headers.extend(ks.iter().map(|k| format!("K={k}")));
    let headers_ref: Vec<&str> = headers.iter().map(String::as_str).collect();
    let mut t = Table::new(
        format!("Table VII — Max AAC across community sizes (FL, GMF, MovieLens, {scale} scale)"),
        &headers_ref,
    );
    for (label, defense) in
        [("Full models", DefenseKind::None), ("Share less", DefenseKind::ShareLess { tau: 0.3 })]
    {
        let mut cells = vec![label.to_string()];
        for &k in &ks {
            let mut spec = RunSpec::new(Preset::MovieLens, ModelKind::Gmf, ProtocolKind::Fl, scale);
            spec.seed = seed;
            spec.defense = defense;
            spec.k_override = Some(k);
            let r = run_recsys(&spec);
            cells.push(pct(r.attack.max_aac));
        }
        t.row(cells);
    }
    // Random-guess row for context, as in the paper.
    let mut random = vec!["Random guess".to_string()];
    for &k in &ks {
        random.push(pct(k as f64 / (n - 1) as f64));
    }
    t.row(random);
    vec![t]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_k_sweep_has_three_rows() {
        let tables = run(Scale::Smoke, 11);
        assert_eq!(tables[0].rows.len(), 3);
        assert_eq!(tables[0].headers.len(), 7);
    }
}
