//! Hot-path micro-benchmarks: the primitives every experiment is built from.
//!
//! Several benchmarks come in pairs: the live (kernel-backed) path under its
//! original name, and a `_scalar_ref`/`_naive` twin that re-implements the
//! pre-kernel scalar code. The pairs let `bench_report` compute speedups into
//! `BENCH_kernels.json` — see `scripts/bench_kernels.sh`.

use cia_core::{CiaConfig, FlCia, ItemSetEvaluator};
use cia_data::presets::{Preset, Scale};
use cia_data::{jaccard_index, GroundTruth, LeaveOneOut, UserId};
use cia_defenses::{DpConfig, DpMechanism, UpdateTransform};
use cia_federated::{DeliveryPolicy, FedAvg, FedAvgConfig, NullObserver};
use cia_gossip::{GossipConfig, GossipSim, NullGossipObserver};
use cia_models::params::{clip_l2, ema, sigmoid};
use cia_models::{
    kernel, ClientStore, GmfHyper, GmfSpec, Mlp, MlpHyper, MlpSpec, RelevanceScorer, SharingPolicy,
};
use cia_scenarios::runner::gmf_scorer;
use cia_scenarios::{DynamicsSpec, FlDynamics, ParticipantDynamics};
use cia_serve::{QueryWorkload, ServeEngine, Snapshot, SnapshotHub};
use criterion::{criterion_group, criterion_main, Criterion};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::sync::Arc;
use std::time::{Duration, Instant};

const ITEMS: u32 = 1682; // MovieLens catalog size
const DIM: usize = 16;

fn bench_kernels(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(11);
    let a: Vec<f32> = (0..1024).map(|_| rng.gen::<f32>() - 0.5).collect();
    let b: Vec<f32> = (0..1024).map(|_| rng.gen::<f32>() - 0.5).collect();
    c.bench_function("kernel_dot_1024", |bch| {
        bch.iter(|| std::hint::black_box(kernel::dot(&a, &b)));
    });
    c.bench_function("kernel_dot_1024_scalar_ref", |bch| {
        bch.iter(|| {
            let mut z = 0.0f32;
            for i in 0..a.len() {
                z += a[i] * b[i];
            }
            std::hint::black_box(z)
        });
    });

    // The polynomial sigmoid (fast_exp-backed) against the libm-based
    // two-branch form it replaced — the per-step transcendental cost that
    // dominated paper-scale training rounds.
    let zs: Vec<f32> = (0..1024).map(|_| (rng.gen::<f32>() - 0.5) * 16.0).collect();
    let mut buf = zs.clone();
    c.bench_function("sigmoid_batch_1024", |bch| {
        bch.iter(|| {
            buf.copy_from_slice(&zs);
            kernel::sigmoid_in_place(std::hint::black_box(&mut buf));
        });
    });
    c.bench_function("sigmoid_batch_1024_scalar_ref", |bch| {
        bch.iter(|| {
            buf.copy_from_slice(&zs);
            for x in std::hint::black_box(&mut buf).iter_mut() {
                *x = if *x >= 0.0 {
                    1.0 / (1.0 + (-*x).exp())
                } else {
                    let e = x.exp();
                    e / (1.0 + e)
                };
            }
        });
    });

    let w: Vec<f32> = (0..256 * 256).map(|_| rng.gen::<f32>() - 0.5).collect();
    let x: Vec<f32> = (0..256).map(|_| rng.gen::<f32>() - 0.5).collect();
    let bias: Vec<f32> = (0..256).map(|_| rng.gen::<f32>() - 0.5).collect();
    let mut out = vec![0.0f32; 256];
    c.bench_function("kernel_gemv_relu_256x256", |bch| {
        bch.iter(|| kernel::gemv(std::hint::black_box(&mut out), &w, &x, Some(&bias), true));
    });
}

fn bench_scoring(c: &mut Criterion) {
    let spec = GmfSpec::new(ITEMS, DIM, GmfHyper::default());
    let mut rng = StdRng::seed_from_u64(1);
    let agg = spec.init_agg(&mut rng);
    let emb = vec![0.05f32; DIM];
    let mut out = vec![0.0f32; ITEMS as usize];
    c.bench_function("gmf_score_full_catalog_1682x16", |b| {
        b.iter(|| spec.score_items(Some(&emb), &agg, std::hint::black_box(&mut out)));
    });
    // The pre-kernel scalar path: heap-allocate w = p_u ⊙ h, then a serial
    // dependency-chained dot per item. The dimension is opaque to the
    // optimizer (black_box), as it was in the old library code where `d` was
    // a runtime field.
    c.bench_function("gmf_score_full_catalog_1682x16_scalar_ref", |b| {
        b.iter(|| {
            let d = std::hint::black_box(DIM);
            let h = &agg[ITEMS as usize * d..];
            let w: Vec<f32> = emb.iter().zip(h).map(|(u, h)| u * h).collect();
            for (j, o) in out.iter_mut().enumerate() {
                let q = &agg[j * d..(j + 1) * d];
                let mut z = 0.0f32;
                for k in 0..d {
                    z += w[k] * q[k];
                }
                *o = sigmoid(z);
            }
            std::hint::black_box(&mut out);
        });
    });
    let target: Vec<u32> = (0..100).collect();
    c.bench_function("gmf_mean_relevance_100_items", |b| {
        b.iter(|| std::hint::black_box(spec.mean_relevance(Some(&emb), &agg, &target)));
    });
}

fn bench_momentum_and_dp(c: &mut Criterion) {
    let spec = GmfSpec::new(ITEMS, DIM, GmfHyper::default());
    let mut rng = StdRng::seed_from_u64(2);
    let theta = spec.init_agg(&mut rng);
    let mut v = theta.clone();
    c.bench_function("momentum_ema_27k_params", |b| {
        b.iter(|| ema(std::hint::black_box(&mut v), 0.99, &theta));
    });
    let mut v2 = theta.clone();
    c.bench_function("momentum_ema_27k_params_scalar_ref", |b| {
        b.iter(|| {
            let v = std::hint::black_box(&mut v2);
            for (vi, ti) in v.iter_mut().zip(&theta) {
                *vi = 0.99 * *vi + (1.0 - 0.99) * ti;
            }
        });
    });

    let dp = DpMechanism::new(DpConfig { clip: 2.0, noise_multiplier: 1.0 });
    c.bench_function("dp_clip_noise_27k_params", |b| {
        b.iter(|| {
            let mut upd = theta.clone();
            dp.transform(&mut upd, &mut rng);
            std::hint::black_box(upd)
        });
    });
    let mut upd = theta.clone();
    c.bench_function("clip_l2_27k_params", |b| {
        b.iter(|| clip_l2(std::hint::black_box(&mut upd), 2.0));
    });
}

fn bench_mlp_train(c: &mut Criterion) {
    // The MNIST-shaped classifier of §VIII-E: 784-100-10, one batch of 16.
    let spec = MlpSpec::new(vec![784, 100, 10]);
    let hyper = MlpHyper { lr: 0.05, weight_decay: 1e-5, batch_size: 16 };
    let mut rng = StdRng::seed_from_u64(4);
    let batch: Vec<Vec<f32>> =
        (0..16).map(|_| (0..784).map(|_| rng.gen::<f32>()).collect()).collect();
    let xs: Vec<&[f32]> = batch.iter().map(std::vec::Vec::as_slice).collect();
    let labels: Vec<usize> = (0..16).map(|i| i % 10).collect();

    let mut mlp = Mlp::new(spec.clone(), hyper, 7);
    c.bench_function("mlp_train_batch_784x100x10_b16", |b| {
        b.iter(|| std::hint::black_box(mlp.train_classification(&xs, &labels)));
    });

    // The pre-kernel scalar path: per-sample Vec allocations and serial
    // dependency-chained loops, as `train_batch` was written before the
    // kernel layer.
    let mut params = Mlp::new(spec.clone(), hyper, 7).params().to_vec();
    c.bench_function("mlp_train_batch_784x100x10_b16_scalar_ref", |b| {
        b.iter(|| {
            std::hint::black_box(scalar_ref_train_batch(
                &spec,
                &mut params,
                hyper.lr,
                hyper.weight_decay,
                &xs,
                &labels,
            ))
        });
    });

    let mut scratch = cia_models::MlpScratch::default();
    let mlp_fwd = Mlp::new(spec.clone(), hyper, 7);
    c.bench_function("mlp_forward_784x100x10", |b| {
        b.iter(|| {
            std::hint::black_box(spec.forward_into(mlp_fwd.params(), &batch[0], &mut scratch));
        });
    });
}

/// The seed's scalar `train_batch` (softmax head), kept verbatim as the
/// benchmark baseline for the kernel rewrite.
fn scalar_ref_train_batch(
    spec: &MlpSpec,
    params: &mut [f32],
    lr: f32,
    weight_decay: f32,
    xs: &[&[f32]],
    labels: &[usize],
) -> f32 {
    let layers = spec.layers();
    let n_layers = layers.len() - 1;
    let mut grads = vec![0.0f32; spec.param_len()];
    let mut total_loss = 0.0f32;
    for (bi, x) in xs.iter().enumerate() {
        let mut acts: Vec<Vec<f32>> = Vec::with_capacity(n_layers + 1);
        acts.push(x.to_vec());
        let mut off = 0;
        for (li, w) in layers.windows(2).enumerate() {
            let (n_in, n_out) = (w[0], w[1]);
            let weights = &params[off..off + n_in * n_out];
            let biases = &params[off + n_in * n_out..off + n_in * n_out + n_out];
            let prev = &acts[li];
            let mut next = vec![0.0f32; n_out];
            for o in 0..n_out {
                let row = &weights[o * n_in..(o + 1) * n_in];
                let mut z = biases[o];
                for i in 0..n_in {
                    z += row[i] * prev[i];
                }
                next[o] = if li + 1 < n_layers { z.max(0.0) } else { z };
            }
            acts.push(next);
            off += n_in * n_out + n_out;
        }
        let logp = MlpSpec::log_softmax(acts.last().expect("output layer"));
        total_loss += -logp[labels[bi]];
        let mut delta: Vec<f32> = logp.iter().map(|&lp| lp.exp()).collect();
        delta[labels[bi]] -= 1.0;

        let mut offs: Vec<usize> = Vec::with_capacity(n_layers);
        let mut o = 0;
        for w in layers.windows(2) {
            offs.push(o);
            o += w[0] * w[1] + w[1];
        }
        for li in (0..n_layers).rev() {
            let (n_in, n_out) = (layers[li], layers[li + 1]);
            let off = offs[li];
            let prev = &acts[li];
            for o in 0..n_out {
                let g = delta[o];
                let wrow = &mut grads[off + o * n_in..off + (o + 1) * n_in];
                for i in 0..n_in {
                    wrow[i] += g * prev[i];
                }
                grads[off + n_in * n_out + o] += g;
            }
            if li > 0 {
                let weights = &params[off..off + n_in * n_out];
                let mut prev_delta = vec![0.0f32; n_in];
                for o in 0..n_out {
                    let g = delta[o];
                    let row = &weights[o * n_in..(o + 1) * n_in];
                    for i in 0..n_in {
                        prev_delta[i] += row[i] * g;
                    }
                }
                for i in 0..n_in {
                    if acts[li][i] <= 0.0 {
                        prev_delta[i] = 0.0;
                    }
                }
                delta = prev_delta;
            }
        }
    }
    let scale = lr / xs.len() as f32;
    for (p, g) in params.iter_mut().zip(&grads) {
        *p -= scale * g + lr * weight_decay * *p;
    }
    total_loss / xs.len() as f32
}

fn bench_protocol_rounds(c: &mut Criterion) {
    let data = Preset::MovieLens.generate(Scale::Smoke, 3);
    let split = LeaveOneOut::new(&data, 20, 3).unwrap();
    let spec = GmfSpec::new(data.num_items(), 8, GmfHyper::default());
    let clients = || -> Vec<_> {
        split
            .train_sets()
            .iter()
            .enumerate()
            .map(|(u, items)| {
                spec.build_client(
                    // cia-lint: allow(D05, test/bench populations are tiny; ids fit u32 with orders of magnitude to spare)
                    UserId::new(u as u32),
                    items.clone(),
                    SharingPolicy::Full,
                    u as u64,
                )
            })
            .collect()
    };
    c.bench_function("fedavg_round_48_clients", |b| {
        let mut sim =
            FedAvg::new(clients(), FedAvgConfig { rounds: u64::MAX, ..Default::default() });
        b.iter(|| sim.step(&mut NullObserver));
    });
    c.bench_function("gossip_round_48_nodes", |b| {
        let mut sim =
            GossipSim::new(clients(), GossipConfig { rounds: u64::MAX, ..Default::default() });
        b.iter(|| sim.step(&mut NullGossipObserver));
    });
    // Small-scale (200×400) trend rows for the paper-scale round cost:
    // the same hot path (fused absorb/train/sparse-aggregate, pooled gossip
    // snapshots) at ~1% of the work, so the default bench run — and the
    // `cargo bench -- --test` smoke gate — tracks round-cost drift without
    // paying for 943-client rounds. The paper rows stay gated behind
    // `--scale paper` (see `bench_paper_scale`).
    let small = Preset::MovieLens.generate(Scale::Small, 3);
    let small_split = LeaveOneOut::new(&small, 40, 3).unwrap();
    let small_spec = GmfSpec::new(small.num_items(), 8, GmfHyper::default());
    let small_clients = || -> Vec<_> {
        small_split
            .train_sets()
            .iter()
            .enumerate()
            .map(|(u, items)| {
                small_spec.build_client(
                    // cia-lint: allow(D05, test/bench populations are tiny; ids fit u32 with orders of magnitude to spare)
                    UserId::new(u as u32),
                    items.clone(),
                    SharingPolicy::Full,
                    u as u64,
                )
            })
            .collect()
    };
    c.bench_function("fedavg_round_small_200x400", |b| {
        let mut sim = FedAvg::new(
            small_clients(),
            FedAvgConfig { rounds: u64::MAX, local_epochs: 2, ..Default::default() },
        );
        b.iter(|| sim.step(&mut NullObserver));
    });
    c.bench_function("gossip_round_small_200x400", |b| {
        let mut sim = GossipSim::new(
            small_clients(),
            GossipConfig { rounds: u64::MAX, ..Default::default() },
        );
        b.iter(|| sim.step(&mut NullGossipObserver));
    });
    // The sharded lazy-materialization round at smoke scale, ungated so the
    // `cargo bench -- --test` smoke gate (scripts/bench_smoke.sh) exercises
    // the materialize/train/retire hot path on every run. Shell clients
    // rebuild from the factory, train inside the shared workspace, and
    // retire to d-float descriptors; 25% participation keeps the round
    // representative of a sampled cohort.
    let lazy_train = split.train_sets().to_vec();
    // cia-lint: allow(D05, test/bench populations are tiny; ids fit u32 with orders of magnitude to spare)
    let lazy_examples: Vec<u32> = lazy_train.iter().map(|t| t.len() as u32).collect();
    let lazy_spec = spec.clone();
    let lazy_store = ClientStore::sharded(
        16,
        lazy_examples,
        Box::new(move |i| {
            lazy_spec.build_shell(
                // cia-lint: allow(D05, test/bench populations are tiny; ids fit u32 with orders of magnitude to spare)
                UserId::new(i as u32),
                lazy_train[i].clone(),
                SharingPolicy::Full,
                i as u64,
            )
        }),
    );
    let mut lazy_sim = FedAvg::sharded(
        lazy_store,
        spec.init_agg(&mut StdRng::seed_from_u64(3)),
        FedAvgConfig { rounds: u64::MAX, participation: 0.25, ..Default::default() },
    );
    c.bench_function("fedavg_round_lazy_48x160", |b| {
        b.iter(|| lazy_sim.step(&mut NullObserver));
    });
    // The same FedAvg round with the scenario engine's churn/straggler
    // dynamics threaded through the observer seam — measures what the
    // availability layer costs on top of a bare round.
    c.bench_function("fedavg_round_48_clients_churn_dynamics", |b| {
        let dyn_spec = DynamicsSpec {
            leave_prob: 0.05,
            join_prob: 0.2,
            initial_online: 0.9,
            straggler_fraction: 0.1,
            straggler_mean_delay: 2.0,
            ..DynamicsSpec::default()
        };
        let mut dynamics = ParticipantDynamics::new(&dyn_spec, 48, 1);
        let mut inner = NullObserver;
        let mut sim =
            FedAvg::new(clients(), FedAvgConfig { rounds: u64::MAX, ..Default::default() });
        b.iter(|| {
            let mut obs = FlDynamics { inner: &mut inner, dynamics: &mut dynamics };
            sim.step(&mut obs)
        });
    });
}

fn bench_attack_eval(c: &mut Criterion) {
    let data = Preset::MovieLens.generate(Scale::Smoke, 5);
    let split = LeaveOneOut::new(&data, 20, 5).unwrap();
    let users = data.num_users();
    let k = 5;
    let gt = GroundTruth::from_train_sets(split.train_sets(), k);
    let spec = GmfSpec::new(data.num_items(), 8, GmfHyper::default());
    let clients: Vec<_> = split
        .train_sets()
        .iter()
        .enumerate()
        .map(|(u, items)| {
            // cia-lint: allow(D05, test/bench populations are tiny; ids fit u32 with orders of magnitude to spare)
            spec.build_client(UserId::new(u as u32), items.clone(), SharingPolicy::Full, u as u64)
        })
        .collect();
    c.bench_function("cia_fl_round_with_eval_48_users", |b| {
        let evaluator = ItemSetEvaluator::new(spec.clone(), split.train_sets().to_vec(), false);
        let truths: Vec<_> =
            // cia-lint: allow(D05, test/bench populations are tiny; ids fit u32 with orders of magnitude to spare)
            (0..users as u32).map(|u| gt.community_of(UserId::new(u)).to_vec()).collect();
        // cia-lint: allow(D05, test/bench populations are tiny; ids fit u32 with orders of magnitude to spare)
        let owners: Vec<_> = (0..users as u32).map(|u| Some(UserId::new(u))).collect();
        let mut attack = FlCia::new(
            CiaConfig { k, beta: 0.99, eval_every: 1, seed: 0 },
            evaluator,
            users,
            truths,
            owners,
        );
        let mut sim =
            FedAvg::new(clients.clone(), FedAvgConfig { rounds: u64::MAX, ..Default::default() });
        b.iter(|| sim.step(&mut attack));
    });
}

fn bench_ground_truth(c: &mut Criterion) {
    let data = Preset::MovieLens.generate(Scale::Smoke, 7);
    let split = LeaveOneOut::new(&data, 20, 7).unwrap();
    c.bench_function("ground_truth_jaccard_topk_48_users", |b| {
        b.iter(|| std::hint::black_box(GroundTruth::from_train_sets(split.train_sets(), 5)));
    });
    c.bench_function("ground_truth_jaccard_topk_48_users_naive", |b| {
        b.iter(|| std::hint::black_box(GroundTruth::from_train_sets_naive(split.train_sets(), 5)));
    });
    let a = &split.train_sets()[0];
    let bset = &split.train_sets()[1];
    c.bench_function("jaccard_index_pair", |b| {
        b.iter(|| std::hint::black_box(jaccard_index(a, bset)));
    });
}

/// A published snapshot over random GMF parameters — serving cost depends
/// only on shapes, not on how trained the parameters are.
fn serve_hub(users: usize, items: u32, dim: usize, seed: u64) -> Arc<SnapshotHub> {
    let mut rng = StdRng::seed_from_u64(seed);
    let agg = gmf_scorer(items, dim).init_agg(&mut rng);
    let embs: Vec<Vec<f32>> =
        (0..users).map(|_| (0..dim).map(|_| rng.gen::<f32>() - 0.5).collect()).collect();
    let hub = Arc::new(SnapshotHub::new());
    hub.publish(Snapshot::shared(dim, embs.iter().map(|e| Some(e.as_slice())), &agg));
    hub
}

fn bench_serve(c: &mut Criterion) {
    // Cold path: every query misses the ranking cache (capacity 0) and pays
    // the full tiled gemv scan + streaming top-k over the catalog.
    let users = 100u32;
    let hub = serve_hub(users as usize, ITEMS, DIM, 5);
    let cold = ServeEngine::new(gmf_scorer(ITEMS, DIM), Arc::clone(&hub), 0);
    let mut u = 0u32;
    c.bench_function("serve_query_cold_1682", |b| {
        b.iter(|| {
            u = (u + 1) % users;
            cold.top_k(u, 20).expect("servable")
        });
    });
    // Hot path: the same queries answered out of the per-epoch cache.
    let hot = ServeEngine::new(gmf_scorer(ITEMS, DIM), hub, users as usize);
    for w in 0..users {
        hot.top_k(w, 20).expect("servable");
    }
    c.bench_function("serve_query_hot_1682", |b| {
        b.iter(|| {
            u = (u + 1) % users;
            hot.top_k(u, 20).expect("servable")
        });
    });
}

fn bench_paper_scale(c: &mut Criterion) {
    // Paper-scale (943 users × 1682 items, Table I) end-to-end round cost.
    // Gated behind CIA_BENCH_PAPER_SCALE — `scripts/bench_kernels.sh
    // --scale paper` sets it — so the `cargo bench -- --test` smoke gate
    // (and CI) never pays for 943-client rounds.
    if std::env::var_os("CIA_BENCH_PAPER_SCALE").is_none() {
        return;
    }
    let data = Preset::MovieLens.generate(Scale::Paper, 3);
    let split = LeaveOneOut::new(&data, 100, 3).unwrap();
    let spec = GmfSpec::new(data.num_items(), 8, GmfHyper::default());
    let clients = || -> Vec<_> {
        split
            .train_sets()
            .iter()
            .enumerate()
            .map(|(u, items)| {
                spec.build_client(
                    // cia-lint: allow(D05, test/bench populations are tiny; ids fit u32 with orders of magnitude to spare)
                    UserId::new(u as u32),
                    items.clone(),
                    SharingPolicy::Full,
                    u as u64,
                )
            })
            .collect()
    };
    // The paper's FL setting: 2 local epochs per round (ScaleParams::Paper).
    let t = thread_suffix();
    c.bench_function(&format!("fedavg_round_paper_943x1682{t}"), |b| {
        let mut sim = FedAvg::new(
            clients(),
            FedAvgConfig { rounds: u64::MAX, local_epochs: 2, ..Default::default() },
        );
        b.iter(|| sim.step(&mut NullObserver));
    });
    // The same round on the event-driven runtime (typed messages under the
    // virtual-clock scheduler, compat delivery policy). The pair quantifies
    // the scheduler's dispatch overhead against the fused lockstep loop —
    // budgeted at ≤15% (the per-message cost is one enum dispatch plus a
    // heap push/pop; training dominates at paper scale).
    c.bench_function(&format!("fedavg_round_paper_943x1682_evented{t}"), |b| {
        let mut sim = FedAvg::new(
            clients(),
            FedAvgConfig { rounds: u64::MAX, local_epochs: 2, ..Default::default() },
        );
        b.iter(|| sim.step_evented(&mut NullObserver, DeliveryPolicy::Lockstep));
    });
    // Phase-annotated twin of the row above: a few instrumented rounds
    // attribute the median to sample/train/attack/aggregate/evaluate.
    {
        let mut sim = FedAvg::new(
            clients(),
            FedAvgConfig { rounds: u64::MAX, local_epochs: 2, ..Default::default() },
        );
        let rec = cia_core::Recorder::new();
        rec.set_detail(true);
        sim.set_recorder(rec.clone());
        const PHASE_ROUNDS: u64 = 5;
        for _ in 0..PHASE_ROUNDS {
            sim.step(&mut NullObserver);
        }
        emit_phase_rows(&format!("fedavg_round_paper_943x1682{t}"), &rec, PHASE_ROUNDS);
    }
    c.bench_function(&format!("gossip_round_paper_943x1682{t}"), |b| {
        let mut sim =
            GossipSim::new(clients(), GossipConfig { rounds: u64::MAX, ..Default::default() });
        b.iter(|| sim.step(&mut NullGossipObserver));
    });
    // Phase-annotated twin of the gossip row, plus the per-neighbor mixing
    // cost: mix+train stay fused in one cache-hot pass (PR 7), so mixing
    // never gets its own span — its distribution surfaces only through the
    // `mix_us` histogram, recorded here as `<base>_mix_us_p50`/`_p99` rows.
    {
        let mut sim =
            GossipSim::new(clients(), GossipConfig { rounds: u64::MAX, ..Default::default() });
        let rec = cia_core::Recorder::new();
        rec.set_detail(true);
        sim.set_recorder(rec.clone());
        const PHASE_ROUNDS: u64 = 5;
        for _ in 0..PHASE_ROUNDS {
            sim.step(&mut NullGossipObserver);
        }
        emit_mix_hist_rows(&format!("gossip_round_paper_943x1682{t}"), &rec);
        emit_phase_rows(&format!("gossip_round_paper_943x1682{t}"), &rec, PHASE_ROUNDS);
    }
    // Serving at paper scale: per-query cold cost, plus a sustained-QPS row
    // over the deterministic Zipf workload (hot users mostly hit the
    // ranking cache, as a real request log would).
    let hub = serve_hub(943, 1682, 8, 17);
    let cold = ServeEngine::new(gmf_scorer(1682, 8), Arc::clone(&hub), 0);
    let mut u = 0u32;
    c.bench_function(&format!("serve_query_paper_943x1682{t}"), |b| {
        b.iter(|| {
            u = (u + 1) % 943;
            cold.top_k(u, 20).expect("servable")
        });
    });
    emit_serve_qps_row(&format!("serve_qps_paper_943x1682{t}"), &hub);
}

/// Appends the sustained-throughput row to the `CRITERION_JSON` stream:
/// `QUERIES` Zipf-distributed queries (exponent 1.1, the synthetic
/// generator's skew) against a cache-fronted engine, reported as both
/// ns/query (`median_ns`, so the row folds into `BENCH_kernels.json` like
/// any other) and queries/second (`qps`).
fn emit_serve_qps_row(name: &str, hub: &Arc<SnapshotHub>) {
    let Some(path) = std::env::var_os("CRITERION_JSON") else {
        return;
    };
    const QUERIES: u64 = 200_000;
    let engine = ServeEngine::new(gmf_scorer(1682, 8), Arc::clone(hub), 1024);
    let mut workload = QueryWorkload::new(943, 1.1, 29).expect("workload");
    // Warm-up pass fills the cache the steady state would have.
    for _ in 0..10_000 {
        engine.top_k(workload.next_user(), 20).expect("servable");
    }
    // cia-lint: allow(D02, bench-harness wall clock for the QPS row; benches emit no deterministic transcripts)
    let start = Instant::now();
    for _ in 0..QUERIES {
        engine.top_k(workload.next_user(), 20).expect("servable");
    }
    let secs = start.elapsed().as_secs_f64();
    let ns_per_query = secs * 1e9 / QUERIES as f64;
    let qps = QUERIES as f64 / secs;
    let mut file = std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(path)
        .expect("CRITERION_JSON path is writable");
    use std::io::Write as _;
    writeln!(file, r#"{{"name": "{name}", "median_ns": {ns_per_query:.1}, "qps": {qps:.0}}}"#)
        .expect("CRITERION_JSON stream is writable");
    println!("{name}: {qps:.0} queries/s ({ns_per_query:.0} ns/query)");
}

/// Appends per-phase breakdown rows (`<base>_phase_<name>`) to the
/// `CRITERION_JSON` stream: the mean ns/round each top-level recorder span
/// (sample, train, attack, aggregate, evaluate, …) cost over `rounds`
/// instrumented rounds. The phase pass runs *outside* `Bencher::iter` — the
/// timed rows stay un-instrumented — so the breakdown annotates the
/// end-to-end median instead of perturbing it.
fn emit_phase_rows(base: &str, rec: &cia_core::Recorder, rounds: u64) {
    let Some(path) = std::env::var_os("CRITERION_JSON") else {
        return;
    };
    let chunk = rec.drain();
    let mut names: Vec<&'static str> = Vec::new();
    let mut sums: Vec<u64> = Vec::new();
    for s in chunk.spans.iter().filter(|s| s.depth == 0) {
        match names.iter().position(|&n| n == s.name) {
            Some(i) => sums[i] += s.dur_us,
            None => {
                names.push(s.name);
                sums.push(s.dur_us);
            }
        }
    }
    let mut file = std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(path)
        .expect("CRITERION_JSON path is writable");
    for (name, total_us) in names.iter().zip(&sums) {
        let ns_per_round = *total_us as f64 * 1000.0 / rounds.max(1) as f64;
        use std::io::Write as _;
        writeln!(file, r#"{{"name": "{base}_phase_{name}", "median_ns": {ns_per_round:.1}}}"#)
            .expect("CRITERION_JSON stream is writable");
    }
}

/// Appends the per-neighbor gossip mixing-cost rows (`<base>_mix_us_p50`,
/// `<base>_mix_us_p99`) to the `CRITERION_JSON` stream, from the recorder's
/// `mix_us` histogram (one observation per neighborhood mix). `median_ns`
/// carries the quantile so the rows fold into `BENCH_kernels.json` like any
/// other; `count` records how many mixes the quantiles summarize.
fn emit_mix_hist_rows(base: &str, rec: &cia_core::Recorder) {
    let Some(path) = std::env::var_os("CRITERION_JSON") else {
        return;
    };
    let hist = rec.histogram(cia_core::Metric::MixMicros);
    if hist.count() == 0 {
        return;
    }
    let mut file = std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(path)
        .expect("CRITERION_JSON path is writable");
    for (label, q) in [("p50", 0.5), ("p99", 0.99)] {
        let ns = hist.quantile(q) * 1000;
        use std::io::Write as _;
        writeln!(
            file,
            r#"{{"name": "{base}_mix_us_{label}", "median_ns": {ns}, "count": {}}}"#,
            hist.count()
        )
        .expect("CRITERION_JSON stream is writable");
    }
}

/// `_tN` suffix for the paper-scale round rows when `CIA_THREADS=N>1`, so a
/// thread-scaling sweep (`CIA_THREADS=2 scripts/bench_kernels.sh --scale
/// paper paper`) records alongside the single-thread baseline instead of
/// overwriting it.
fn thread_suffix() -> String {
    match std::env::var("CIA_THREADS").ok().and_then(|v| v.parse::<usize>().ok()) {
        Some(n) if n > 1 => format!("_t{n}"),
        _ => String::new(),
    }
}

fn bench_million_scale(c: &mut Criterion) {
    // Million-user scale (10⁶ users × 10⁵ items, `--scale million`): the
    // sharded lazy FedAvg round at 1% participation. A dense run would hold
    // ~3 TiB of client state; the sharded store materializes only the ~10⁴
    // sampled clients per round and retires each to an 8-float descriptor,
    // and this bench enforces the 8 GiB peak-RSS budget after timing.
    // Gated behind CIA_BENCH_MILLION_SCALE — `scripts/bench_kernels.sh
    // --scale million` sets it — because dataset generation alone costs
    // minutes, so the `cargo bench -- --test` smoke gate never pays for it.
    if std::env::var_os("CIA_BENCH_MILLION_SCALE").is_none() {
        return;
    }
    let data = Preset::MovieLens.generate(Scale::Million, 3);
    // ScaleParams::of(Million): 100 eval negatives, embedding dim 8.
    let split = LeaveOneOut::new(&data, 100, 3).unwrap();
    let train = split.train_sets().to_vec();
    // cia-lint: allow(D05, test/bench populations are tiny; ids fit u32 with orders of magnitude to spare)
    let examples: Vec<u32> = train.iter().map(|t| t.len() as u32).collect();
    let spec = GmfSpec::new(data.num_items(), 8, GmfHyper::default());
    let initial = spec.init_agg(&mut StdRng::seed_from_u64(3));
    // Only the per-client train sets survive into the round: the catalog
    // split (eval instances, negatives) and the raw dataset are setup-only.
    drop(split);
    drop(data);
    let store = ClientStore::sharded(
        4096,
        examples,
        Box::new(move |i| {
            // cia-lint: allow(D05, test/bench populations are tiny; ids fit u32 with orders of magnitude to spare)
            spec.build_shell(UserId::new(i as u32), train[i].clone(), SharingPolicy::Full, i as u64)
        }),
    );
    let mut sim = FedAvg::sharded(
        store,
        initial,
        FedAvgConfig {
            rounds: u64::MAX,
            participation: 0.01,
            local_epochs: 2,
            seed: 7,
            ..Default::default()
        },
    );
    c.bench_function("fedavg_round_million_1000000x100000", |b| {
        b.iter(|| sim.step(&mut NullObserver));
    });
    // Phase-annotated rows for the same sim (the sharded store keeps its
    // lazy state, so extra rounds stay representative of the timed ones).
    {
        let rec = cia_core::Recorder::new();
        rec.set_detail(true);
        sim.set_recorder(rec.clone());
        const PHASE_ROUNDS: u64 = 3;
        for _ in 0..PHASE_ROUNDS {
            sim.step(&mut NullObserver);
        }
        emit_phase_rows("fedavg_round_million_1000000x100000", &rec, PHASE_ROUNDS);
    }
    let peak = cia_scenarios::peak_rss_bytes().unwrap_or(0);
    let gib = peak as f64 / f64::from(1u32 << 30);
    println!("million-scale peak RSS: {gib:.2} GiB (budget 8 GiB)");
    assert!(
        peak < 8 * (1u64 << 30),
        "million-scale round exceeded the 8 GiB peak-RSS budget: {gib:.2} GiB"
    );
}

fn config() -> Criterion {
    // Paper-scale rounds run tens of milliseconds on a shared single-core
    // container whose load wobbles ±10%; a longer measurement window keeps
    // the recorded medians from tracking transient neighbors instead of the
    // code. (`cargo bench -- --test` ignores these and runs each body once.)
    Criterion::default()
        .sample_size(30)
        .warm_up_time(Duration::from_millis(500))
        .measurement_time(Duration::from_secs(4))
}

fn million_config() -> Criterion {
    // A million-user round runs whole seconds; ten samples bound the
    // (already env-gated) run to a few minutes while the median stays
    // robust to single-neighbor noise.
    Criterion::default()
        .sample_size(10)
        .warm_up_time(Duration::from_secs(1))
        .measurement_time(Duration::from_secs(10))
}

criterion_group! {
    name = benches;
    config = config();
    targets = bench_kernels, bench_scoring, bench_momentum_and_dp, bench_mlp_train,
              bench_protocol_rounds, bench_attack_eval, bench_ground_truth, bench_serve,
              bench_paper_scale
}
criterion_group! {
    name = million_benches;
    config = million_config();
    targets = bench_million_scale
}
criterion_main!(benches, million_benches);
