//! The participant abstraction shared by FL and gossip protocols, and the
//! model snapshot exchanged between participants.

use cia_data::UserId;
use rand::rngs::StdRng;
use serde::{Deserialize, Serialize};

/// What a participant shares with the server (FL) or a neighbor (GL).
///
/// The *aggregatable* part `agg` (item embeddings, output layers) is what
/// protocols average. Under full sharing the snapshot also carries the
/// owner's user embedding — the paper's default, and the leak the Share-less
/// policy closes by setting `owner_emb` to `None` (§III-D).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SharedModel {
    /// Which participant produced the snapshot.
    pub owner: UserId,
    /// Round at which the snapshot was produced (set by the protocol).
    pub round: u64,
    /// The owner's user embedding; `None` under the Share-less policy or for
    /// models without per-user factors (MLP).
    pub owner_emb: Option<Vec<f32>>,
    /// Aggregatable public parameters.
    pub agg: Vec<f32>,
}

impl SharedModel {
    /// Total number of shared `f32` parameters.
    pub fn len(&self) -> usize {
        self.agg.len() + self.owner_emb.as_ref().map_or(0, Vec::len)
    }

    /// Whether the snapshot carries no parameters.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// Which parameters leave the device.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum SharingPolicy {
    /// Full model sharing — the paper's default setting.
    Full,
    /// The Share-less strategy (§III-D): the user embedding stays on-device
    /// and item-embedding updates are regularized toward their reference
    /// value with factor `tau` (Eq. 2).
    ShareLess {
        /// Regularization factor τ of Eq. 2.
        tau: f32,
    },
}

impl SharingPolicy {
    /// Whether the user embedding is shared.
    pub fn shares_user_embedding(self) -> bool {
        matches!(self, SharingPolicy::Full)
    }

    /// The Share-less regularization factor (0 under full sharing).
    pub fn tau(self) -> f32 {
        match self {
            SharingPolicy::Full => 0.0,
            SharingPolicy::ShareLess { tau } => tau,
        }
    }
}

/// A participant in a collaborative learning protocol: owns local data and a
/// model whose public part can be exchanged.
///
/// The protocols drive participants through a strict round structure:
/// `absorb_agg` (load the aggregate), `train_local` (one local epoch, possibly
/// repeated), `snapshot` (produce the outgoing model).
pub trait Participant: Send + Sync {
    /// The participant's user id.
    fn user(&self) -> UserId;

    /// Length of the aggregatable parameter vector.
    fn agg_len(&self) -> usize;

    /// Read access to the current aggregatable parameters.
    fn agg(&self) -> &[f32];

    /// The owner's user embedding as it would be shared, or `None` under
    /// Share-less / for models without user factors. Used by protocols to
    /// compute the embedding part of an outgoing update (DP noising).
    fn owner_emb(&self) -> Option<&[f32]> {
        None
    }

    /// Replaces the aggregatable parameters (server broadcast in FL, mixed
    /// neighborhood average in GL). Also records the incoming values as the
    /// Share-less reference embeddings where applicable.
    fn absorb_agg(&mut self, agg: &[f32]);

    /// Replaces the aggregatable parameters with the uniform mean of the own
    /// parameters and `others` (gossip neighborhood averaging, line 7 of the
    /// paper's Algorithm 2), with the same Share-less reference bookkeeping
    /// as [`Participant::absorb_agg`]. The default materializes the mean and
    /// absorbs it; implementations may mix in place to halve the memory
    /// traffic of a paper-scale gossip round.
    fn mix_agg(&mut self, others: &[&[f32]]) {
        let mut rows: Vec<&[f32]> = Vec::with_capacity(others.len() + 1);
        rows.push(self.agg());
        rows.extend_from_slice(others);
        let weights = vec![1.0f32; rows.len()];
        let mut mixed = vec![0.0f32; self.agg_len()];
        crate::params::weighted_mean(&mut mixed, &rows, &weights);
        drop(rows);
        self.absorb_agg(&mixed);
    }

    /// Runs one local training epoch; returns the mean training loss.
    fn train_local(&mut self, rng: &mut StdRng) -> f32;

    /// One fused FedAvg client round: absorb `global`, run `epochs` local
    /// epochs, and — when `acc` is given — fold `weight · (agg − global)`
    /// into it as [`Participant::accumulate_update`] would. Returns the last
    /// epoch's mean loss. The RNG usage matches the unfused
    /// absorb/train/accumulate sequence exactly, so both produce identical
    /// parameters; the fusion exists so the single-thread FedAvg path can
    /// accumulate each client's sparse update while its parameters are still
    /// cache-hot.
    fn fed_round(
        &mut self,
        global: &[f32],
        epochs: usize,
        rng: &mut StdRng,
        acc: Option<(f32, &mut [f32])>,
    ) -> f32 {
        self.absorb_agg(global);
        let mut loss = 0.0;
        for _ in 0..epochs.max(1) {
            loss = self.train_local(rng);
        }
        if let Some((weight, acc)) = acc {
            self.accumulate_update(global, weight, acc);
        }
        loss
    }

    /// [`Participant::fed_round`] against a *borrowed* aggregate buffer: the
    /// caller lends `workspace`, bit-identical to `global`, for the duration
    /// of the round, and the implementation must leave it bit-identical to
    /// `global` on return. Implementations that keep no aggregatable buffer
    /// of their own (lazily materialized "shell" clients) swap the workspace
    /// in, train, and repair the rows they touched — so a sampled cohort
    /// shares one catalog-sized buffer instead of owning one each. When
    /// `snapshot` is given, the post-training model is written into the slot
    /// (as [`Participant::snapshot_into`] would) *before* the workspace is
    /// repaired. The default ignores the workspace and runs the owned-buffer
    /// [`Participant::fed_round`], which trivially preserves the contract.
    fn fed_round_shared(
        &mut self,
        workspace: &mut Vec<f32>,
        global: &[f32],
        epochs: usize,
        rng: &mut StdRng,
        acc: Option<(f32, &mut [f32])>,
        snapshot: Option<(u64, &mut SharedModel)>,
    ) -> f32 {
        let _ = workspace;
        let loss = self.fed_round(global, epochs, rng, acc);
        if let Some((round, slot)) = snapshot {
            self.snapshot_into(round, slot);
        }
        loss
    }

    /// The compact state that must survive *between sampled FedAvg rounds*,
    /// on top of what the next round re-derives anyway (the constructor plus
    /// the round-start [`Participant::absorb_agg`] / reference refresh). The
    /// lazily materialized client store persists only this per client. The
    /// default is the full [`Participant::state_vec`] encoding — always
    /// correct, never smaller; participants with a private/public split (e.g.
    /// GMF's user embedding) should override with the private part only.
    fn private_state(&self) -> Vec<f32> {
        self.state_vec()
    }

    /// Restores [`Participant::private_state`] onto a freshly constructed
    /// participant of the same spec and constructor seed.
    fn restore_private_state(&mut self, state: &[f32]) {
        self.restore_state(state);
    }

    /// Produces the outgoing snapshot under the participant's sharing policy.
    fn snapshot(&self, round: u64) -> SharedModel;

    /// Writes the outgoing snapshot into `slot`, reusing its buffers. The
    /// default delegates to [`Participant::snapshot`]; implementations
    /// should override to copy in place so protocol rounds stay
    /// allocation-free once warm.
    fn snapshot_into(&self, round: u64, slot: &mut SharedModel) {
        *slot = self.snapshot(round);
    }

    /// Accumulates `weight · (agg − reference)` into `out` — the
    /// participant's weighted contribution to an aggregate, relative to the
    /// parameters it absorbed at the start of the round.
    ///
    /// `reference` must be the exact vector passed to the last
    /// [`Participant::absorb_agg`]: implementations that track which
    /// parameters local training actually modified may then skip the
    /// untouched (identical) remainder, turning FedAvg aggregation from a
    /// dense pass over every client's full model into a sparse one. The
    /// default is the dense pass.
    fn accumulate_update(&self, reference: &[f32], weight: f32, out: &mut [f32]) {
        let agg = self.agg();
        assert_eq!(agg.len(), reference.len(), "reference length mismatch");
        assert_eq!(agg.len(), out.len(), "output length mismatch");
        for ((o, &a), &r) in out.iter_mut().zip(agg).zip(reference) {
            *o += weight * (a - r);
        }
    }

    /// Number of local training examples (FedAvg weighting).
    fn num_examples(&self) -> usize;

    /// Personalization score of a received model *for this node* (higher is
    /// better). Pers-Gossip uses it to retain well-performing neighbors
    /// during peer sampling; the default makes all peers equivalent.
    fn evaluate_model(&self, model: &SharedModel) -> f32 {
        let _ = model;
        0.0
    }

    /// Serializes the participant's *full* mutable state (private user
    /// factors, public parameters, defense bookkeeping) into a flat `f32`
    /// vector, for checkpoint/resume of long runs. The encoding is private to
    /// the participant type: only [`Participant::restore_state`] of the same
    /// type needs to understand it.
    ///
    /// The default covers participants whose only mutable state is the
    /// aggregatable slice (e.g. the MNIST MLP client).
    fn state_vec(&self) -> Vec<f32> {
        self.agg().to_vec()
    }

    /// Restores state previously produced by [`Participant::state_vec`] on a
    /// participant constructed with the same spec and constructor seed.
    ///
    /// # Panics
    ///
    /// Implementations may panic when `state` was produced by a different
    /// participant layout.
    fn restore_state(&mut self, state: &[f32]) {
        self.absorb_agg(state);
    }
}

/// A transform applied to a participant's outgoing model update before it is
/// shared (clipping + noising for DP-SGD; see `cia-defenses`).
pub trait UpdateTransform: Send + Sync {
    /// Mutates the outgoing update (`shared_after − shared_before`) in place.
    fn transform(&self, update: &mut [f32], rng: &mut rand::rngs::StdRng);
}

/// Computes relevance scores from a shared (or momentum-averaged) model —
/// the quantity the attack ranks participants by, and the basis of utility
/// evaluation.
///
/// `user_emb` is the embedding the score is computed *with*: the sender's own
/// under full sharing, the adversary's fictive embedding under Share-less
/// (§IV-C), or `None` for models without user factors.
pub trait RelevanceScorer: Send + Sync {
    /// Catalog size.
    fn num_items(&self) -> u32;

    /// Length of the aggregatable parameter vector this scorer expects.
    fn agg_len(&self) -> usize;

    /// Dimensionality of the user embedding (0 if the model has none).
    fn user_emb_len(&self) -> usize;

    /// Scores every item in the catalog into `out` (higher = more relevant).
    ///
    /// # Panics
    ///
    /// Implementations may panic if `out.len() != num_items()` or the
    /// parameter slices have unexpected lengths.
    fn score_items(&self, user_emb: Option<&[f32]>, agg: &[f32], out: &mut [f32]);

    /// Scores the contiguous catalog id range `[start, start + out.len())`
    /// into `out` — the tile primitive behind streaming top-k paths (serve
    /// queries, catalog evaluation), which never materialize a
    /// catalog-length score vector. Item parameters are stored row-major by
    /// item id, so a contiguous range is a dense sub-matrix and
    /// implementations batch it through the vectorized kernels
    /// ([`crate::kernel::gemv`] for dot-product models).
    ///
    /// Must agree exactly with [`RelevanceScorer::score_items`]:
    /// `score_item_range(u, agg, s, out)` equals
    /// `score_items(u, agg, all); all[s..s+out.len()]` bit for bit.
    ///
    /// # Panics
    ///
    /// Implementations may panic if the range exceeds the catalog or the
    /// parameter slices have unexpected lengths.
    fn score_item_range(&self, user_emb: Option<&[f32]>, agg: &[f32], start: u32, out: &mut [f32]);

    /// Mean relevance over an item set — `Ŷ(Θ, V_target)` in the paper.
    fn mean_relevance(&self, user_emb: Option<&[f32]>, agg: &[f32], items: &[u32]) -> f32 {
        if items.is_empty() {
            return 0.0;
        }
        let mut all = vec![0.0f32; self.num_items() as usize];
        self.score_items(user_emb, agg, &mut all);
        // cia-lint: allow(D07, sequential left-to-right fold over a slice in index order; the reduction order is fixed)
        items.iter().map(|&i| all[i as usize]).sum::<f32>() / items.len() as f32
    }

    /// Trains a fictive adversary user embedding that "likes" `target_items`,
    /// given public parameters `agg` (the Share-less adaptation of §IV-C).
    ///
    /// `warm_start` carries the embedding produced by the previous refresh
    /// against earlier public parameters, if any; implementations should
    /// continue from it (with a reduced epoch budget) instead of retraining
    /// from scratch — the item embeddings drift slowly between refreshes, so
    /// the previous solution is already close.
    ///
    /// Returns `None` for models without user factors.
    fn train_adversary_embedding(
        &self,
        agg: &[f32],
        target_items: &[u32],
        warm_start: Option<&[f32]>,
        rng: &mut StdRng,
    ) -> Option<Vec<f32>>;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shared_model_len_counts_both_parts() {
        let m = SharedModel {
            owner: UserId::new(0),
            round: 1,
            owner_emb: Some(vec![0.0; 4]),
            agg: vec![0.0; 10],
        };
        assert_eq!(m.len(), 14);
        assert!(!m.is_empty());
        let m2 = SharedModel { owner_emb: None, ..m };
        assert_eq!(m2.len(), 10);
    }

    #[test]
    fn sharing_policy_accessors() {
        assert!(SharingPolicy::Full.shares_user_embedding());
        assert_eq!(SharingPolicy::Full.tau(), 0.0);
        let sl = SharingPolicy::ShareLess { tau: 0.3 };
        assert!(!sl.shares_user_embedding());
        assert!((sl.tau() - 0.3).abs() < 1e-7);
    }
}
