//! Train/test splitting and negative sampling.
//!
//! Utility (HR@K, F1@K) is measured with the standard leave-one-out protocol
//! of the GMF/NCF paper: one held-out item per user is ranked against a
//! sample of unobserved items.

use crate::{DataError, Dataset, UserId};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// A leave-one-out split: per user, all interactions but a small holdout are
/// kept for training; the held-out items plus sampled negatives form the
/// evaluation instance.
///
/// ```
/// use cia_data::{LeaveOneOut, SyntheticConfig};
///
/// let data = SyntheticConfig::builder()
///     .users(20).items(100).communities(4).interactions_per_user(8)
///     .seed(3).build().generate();
/// let split = LeaveOneOut::new(&data, 20, 99).unwrap();
/// assert_eq!(split.train_sets().len(), 20);
/// ```
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct LeaveOneOut {
    train_sets: Vec<Vec<u32>>,
    train_sequences: Vec<Vec<u32>>,
    eval: Vec<EvalInstance>,
}

/// One user's ranking evaluation instance: the held-out positives and a pool
/// of sampled negatives.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct EvalInstance {
    /// The held-out test items (at least one). The first is the *primary*
    /// positive used by hit-ratio metrics.
    pub positives: Vec<u32>,
    /// Sampled unobserved items the positives compete against.
    pub negatives: Vec<u32>,
}

impl EvalInstance {
    /// The primary held-out item (hit-ratio evaluation).
    pub fn primary(&self) -> u32 {
        self.positives[0]
    }
}

impl LeaveOneOut {
    /// Splits `data` holding out one item per user (the chronologically last
    /// check-in for sequence data, a random observed item otherwise) and
    /// sampling `num_negatives` unobserved items for evaluation.
    ///
    /// # Errors
    ///
    /// Returns [`DataError::NotEnoughInteractions`] if a user has fewer than
    /// two interactions, or [`DataError::InvalidConfig`] if the catalog is too
    /// small to sample the requested negatives.
    pub fn new(data: &Dataset, num_negatives: usize, seed: u64) -> Result<Self, DataError> {
        Self::with_holdout(data, 1, num_negatives, seed)
    }

    /// Like [`LeaveOneOut::new`] but holding out up to `holdout` items per
    /// user (never more than half the user's interactions). Multi-item
    /// holdouts make precision/recall-style metrics (the paper's F1 for
    /// PRME) meaningful.
    ///
    /// # Errors
    ///
    /// Same conditions as [`LeaveOneOut::new`]; additionally `holdout` must
    /// be at least 1.
    pub fn with_holdout(
        data: &Dataset,
        holdout: usize,
        num_negatives: usize,
        seed: u64,
    ) -> Result<Self, DataError> {
        if holdout == 0 {
            return Err(DataError::InvalidConfig {
                field: "holdout",
                reason: "must hold out at least one item".into(),
            });
        }
        let mut rng = StdRng::seed_from_u64(seed);
        let num_items = data.num_items();
        let mut train_sets = Vec::with_capacity(data.num_users());
        let mut train_sequences = Vec::with_capacity(data.num_users());
        let mut eval = Vec::with_capacity(data.num_users());

        for (u, rec) in data.iter() {
            if rec.len() < 2 {
                return Err(DataError::NotEnoughInteractions {
                    user: u.raw(),
                    have: rec.len(),
                    need: 2,
                });
            }
            // cia-lint: allow(D05, per-user interaction counts are catalog-bounded; the sum fits u32)
            if (rec.len() + num_negatives) as u32 > num_items {
                return Err(DataError::InvalidConfig {
                    field: "num_negatives",
                    reason: format!(
                        "user {u} has {} items; catalog of {num_items} cannot supply {num_negatives} negatives",
                        rec.len()
                    ),
                });
            }
            let take = holdout.min(rec.len() / 2).max(1);

            // Hold out the chronologically last distinct check-ins when a
            // sequence exists, else random observed items.
            let held: Vec<u32> = if rec.sequence().is_empty() {
                let mut pool: Vec<u32> = rec.items().to_vec();
                for i in 0..take {
                    let j = rng.gen_range(i..pool.len());
                    pool.swap(i, j);
                }
                pool.truncate(take);
                pool
            } else {
                let mut held = Vec::with_capacity(take);
                for &it in rec.sequence().iter().rev() {
                    if !held.contains(&it) {
                        held.push(it);
                        if held.len() == take {
                            break;
                        }
                    }
                }
                held
            };
            let train: Vec<u32> =
                rec.items().iter().copied().filter(|i| !held.contains(i)).collect();
            // Drop held-out visits from the training sequence; successor
            // pairs across the removed gaps are a negligible approximation
            // for the synthetic traces.
            let train_seq: Vec<u32> =
                rec.sequence().iter().copied().filter(|i| !held.contains(i)).collect();
            let negatives = sample_negatives(rec.items(), num_items, num_negatives, &mut rng);
            train_sets.push(train);
            train_sequences.push(train_seq);
            eval.push(EvalInstance { positives: held, negatives });
        }

        Ok(LeaveOneOut { train_sets, train_sequences, eval })
    }

    /// Per-user training item sets (sorted, unique).
    pub fn train_sets(&self) -> &[Vec<u32>] {
        &self.train_sets
    }

    /// Per-user training check-in sequences (empty for rating data).
    pub fn train_sequences(&self) -> &[Vec<u32>] {
        &self.train_sequences
    }

    /// The evaluation instance of user `u`.
    pub fn eval_of(&self, u: UserId) -> &EvalInstance {
        &self.eval[u.index()]
    }

    /// All evaluation instances, indexed by user.
    pub fn eval_instances(&self) -> &[EvalInstance] {
        &self.eval
    }
}

/// Samples `count` distinct items uniformly from the catalog that are **not**
/// in `observed` (which must be sorted and deduplicated).
///
/// # Panics
///
/// Panics if the catalog cannot supply `count` distinct unobserved items.
pub fn sample_negatives(
    observed: &[u32],
    num_items: u32,
    count: usize,
    rng: &mut StdRng,
) -> Vec<u32> {
    let available = num_items as usize - observed.len();
    assert!(available >= count, "catalog too small: need {count} negatives, have {available}");
    let mut out = Vec::with_capacity(count);
    let mut seen = std::collections::HashSet::with_capacity(count);
    while out.len() < count {
        let cand = rng.gen_range(0..num_items);
        if observed.binary_search(&cand).is_err() && seen.insert(cand) {
            out.push(cand);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{SyntheticConfig, UserRecord};

    fn data(sequences: bool) -> Dataset {
        SyntheticConfig::builder()
            .users(30)
            .items(200)
            .communities(5)
            .interactions_per_user(12)
            .sequences(sequences)
            .seed(8)
            .build()
            .generate()
    }

    #[test]
    fn split_removes_exactly_one_item_per_user() {
        let d = data(false);
        let s = LeaveOneOut::new(&d, 50, 1).unwrap();
        for (u, rec) in d.iter() {
            let train = &s.train_sets()[u.index()];
            assert_eq!(train.len(), rec.len() - 1);
            let held = s.eval_of(u).primary();
            assert!(rec.contains(held));
            assert!(!train.contains(&held));
        }
    }

    #[test]
    fn multi_holdout_splits_consistently() {
        let d = data(true);
        let s = LeaveOneOut::with_holdout(&d, 3, 20, 5).unwrap();
        for (u, rec) in d.iter() {
            let inst = s.eval_of(u);
            assert!(!inst.positives.is_empty() && inst.positives.len() <= 3);
            let train = &s.train_sets()[u.index()];
            assert_eq!(train.len() + inst.positives.len(), rec.len());
            for p in &inst.positives {
                assert!(!train.contains(p));
                assert!(rec.contains(*p));
            }
            // Train sequence never references held-out items.
            for t in &s.train_sequences()[u.index()] {
                assert!(!inst.positives.contains(t));
            }
        }
    }

    #[test]
    fn holdout_zero_is_rejected() {
        let d = data(false);
        assert!(matches!(
            LeaveOneOut::with_holdout(&d, 0, 5, 0),
            Err(DataError::InvalidConfig { .. })
        ));
    }

    #[test]
    fn negatives_are_unobserved_and_distinct() {
        let d = data(false);
        let s = LeaveOneOut::new(&d, 50, 2).unwrap();
        for (u, rec) in d.iter() {
            let negs = &s.eval_of(u).negatives;
            assert_eq!(negs.len(), 50);
            let mut uniq = negs.clone();
            uniq.sort_unstable();
            uniq.dedup();
            assert_eq!(uniq.len(), 50);
            for &n in negs {
                assert!(!rec.contains(n));
            }
        }
    }

    #[test]
    fn sequence_holdout_is_last_checkin() {
        let d = data(true);
        let s = LeaveOneOut::new(&d, 20, 3).unwrap();
        for (u, rec) in d.iter() {
            assert_eq!(s.eval_of(u).primary(), *rec.sequence().last().unwrap());
            // The held-out visits were removed from the training sequence.
            let tseq = &s.train_sequences()[u.index()];
            assert!(tseq.len() < rec.sequence().len());
            assert!(!tseq.contains(&s.eval_of(u).primary()));
        }
    }

    #[test]
    fn rejects_single_interaction_users() {
        let d = Dataset::new("tiny", 10, vec![UserRecord::new(vec![1], vec![])]).unwrap();
        assert!(matches!(LeaveOneOut::new(&d, 3, 0), Err(DataError::NotEnoughInteractions { .. })));
    }

    #[test]
    fn rejects_catalog_too_small_for_negatives() {
        let d = Dataset::new("tiny", 4, vec![UserRecord::new(vec![0, 1], vec![])]).unwrap();
        assert!(matches!(LeaveOneOut::new(&d, 5, 0), Err(DataError::InvalidConfig { .. })));
    }

    #[test]
    fn deterministic_given_seed() {
        let d = data(false);
        let a = LeaveOneOut::new(&d, 10, 7).unwrap();
        let b = LeaveOneOut::new(&d, 10, 7).unwrap();
        assert_eq!(a.train_sets(), b.train_sets());
        assert_eq!(a.eval_instances(), b.eval_instances());
    }
}
