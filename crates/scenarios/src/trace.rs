//! Chrome trace-event export for scenario runs.
//!
//! Converts the per-round [`TraceChunk`]s a scenario run drains from its
//! recorder into the Chrome trace-event JSON format — loadable in
//! `chrome://tracing` and [Perfetto](https://ui.perfetto.dev) — so a
//! paper-scale round's phase structure can be inspected on a real timeline
//! instead of through aggregate tables.
//!
//! Mapping:
//!
//! * each scenario becomes one *process* (`pid` = 1-based scenario index)
//!   named via an `M` (metadata) `process_name` event;
//! * every recorded span becomes an `X` (complete) event at its original
//!   monotonic timestamp (`ts`/`dur` in µs, the format's native unit) on the
//!   thread that recorded it (`tid` = the recorder's dense thread id);
//! * counters become `C` (counter) events carrying the *cumulative* value
//!   per counter at the end of each round, so Perfetto renders them as
//!   monotone step functions.
//!
//! The output is assembled with the in-tree [`Json`] writer, so it is
//! deterministic given the recorded timings (the timings themselves are
//! wall-clock and therefore vary run to run — trace files are diagnostics,
//! never goldens).

use crate::json::{Json, ObjBuilder};
use crate::runner::ScenarioOutcome;
use cia_core::Counter;

/// Builds a Chrome trace-event document (`{"traceEvents": [...]}`) from the
/// trace chunks of a slice of scenario outcomes.
pub fn chrome_trace(outcomes: &[ScenarioOutcome]) -> Json {
    let mut events: Vec<Json> = Vec::new();
    for (idx, outcome) in outcomes.iter().enumerate() {
        let pid = (idx + 1) as f64;
        events.push(
            ObjBuilder::new()
                .str("name", "process_name")
                .str("ph", "M")
                .num("pid", pid)
                .num("tid", 0.0)
                .value("args", ObjBuilder::new().str("name", &outcome.name).build())
                .build(),
        );
        // Cumulative counter values across the scenario's rounds.
        let mut totals: Vec<(Counter, u64)> = Vec::new();
        for (_round, chunk) in &outcome.traces {
            for s in &chunk.spans {
                events.push(
                    ObjBuilder::new()
                        .str("name", s.name)
                        .str("cat", "phase")
                        .str("ph", "X")
                        .num("ts", s.start_us as f64)
                        .num("dur", s.dur_us as f64)
                        .num("pid", pid)
                        .num("tid", s.tid as f64)
                        .build(),
                );
            }
            if chunk.counters.is_empty() {
                continue;
            }
            // Stamp the round's counter samples at the chunk's last span
            // end; chunks without spans fall back to the previous stamp.
            let ts = chunk.spans.iter().map(|s| s.start_us + s.dur_us).max().unwrap_or(0);
            for (c, delta) in &chunk.counters {
                match totals.iter_mut().find(|(tc, _)| tc == c) {
                    Some((_, v)) => *v += delta,
                    None => totals.push((*c, *delta)),
                }
            }
            for (c, total) in &totals {
                events.push(
                    ObjBuilder::new()
                        .str("name", c.name())
                        .str("ph", "C")
                        .num("ts", ts as f64)
                        .num("pid", pid)
                        .num("tid", 0.0)
                        .value("args", ObjBuilder::new().num("value", *total as f64).build())
                        .build(),
                );
            }
        }
    }
    ObjBuilder::new().value("traceEvents", Json::Arr(events)).str("displayTimeUnit", "ms").build()
}

/// Validates a Chrome trace-event document: parses it, checks the
/// `traceEvents` array and every event's phase-specific required fields.
/// Returns the event count.
///
/// # Errors
///
/// Returns a description of the first malformed event.
pub fn validate_chrome_trace(text: &str) -> Result<usize, String> {
    let doc = Json::parse(text).map_err(|e| format!("not JSON: {e}"))?;
    let events = doc
        .get("traceEvents")
        .and_then(Json::as_arr)
        .ok_or("missing `traceEvents` array".to_string())?;
    for (i, ev) in events.iter().enumerate() {
        let fail = |msg: &str| format!("event {i}: {msg}");
        let ph = ev.get("ph").and_then(Json::as_str).ok_or_else(|| fail("missing `ph`"))?;
        if ev.get("name").and_then(Json::as_str).is_none() {
            return Err(fail("missing `name`"));
        }
        if ev.get("pid").and_then(Json::as_u64).is_none() {
            return Err(fail("missing integral `pid`"));
        }
        match ph {
            "X" => {
                for key in ["ts", "dur", "tid"] {
                    if ev.get(key).and_then(Json::as_u64).is_none() {
                        return Err(fail(&format!("X event missing integral `{key}`")));
                    }
                }
            }
            "C" => {
                if ev.get("ts").and_then(Json::as_u64).is_none() {
                    return Err(fail("C event missing integral `ts`"));
                }
                let has_value =
                    ev.get("args").and_then(|a| a.get("value")).and_then(Json::as_u64).is_some();
                if !has_value {
                    return Err(fail("C event missing integral `args.value`"));
                }
            }
            "M" => {
                if ev.get("args").and_then(|a| a.get("name")).and_then(Json::as_str).is_none() {
                    return Err(fail("M event missing `args.name`"));
                }
            }
            other => return Err(fail(&format!("unsupported phase `{other}`"))),
        }
    }
    Ok(events.len())
}

#[cfg(test)]
mod tests {
    use super::*;
    use cia_core::{AttackOutcome, SpanRec, TraceChunk};
    use std::time::Duration;

    fn outcome_with(name: &str, traces: Vec<(u64, TraceChunk)>) -> ScenarioOutcome {
        let attack = AttackOutcome {
            k: 0,
            max_aac: 0.0,
            best10_aac: 0.0,
            max_round: 0,
            random_bound: 0.0,
            upper_bound: 0.0,
            upper_bound_online: 0.0,
            history: Vec::new(),
        };
        ScenarioOutcome {
            name: name.to_string(),
            attack,
            utility: None,
            utility_metric: "hr@20",
            rounds_done: traces.len() as u64,
            completed: true,
            skipped: false,
            elapsed: Duration::ZERO,
            traces,
        }
    }

    fn span(name: &'static str, depth: u16, start_us: u64, dur_us: u64) -> SpanRec {
        SpanRec { name, tid: 0, depth, start_us, dur_us }
    }

    #[test]
    fn assembles_a_valid_chrome_trace() {
        let chunk0 = TraceChunk {
            spans: vec![span("round", 0, 0, 100), span("train", 1, 10, 50)],
            counters: vec![(Counter::ClientsTrained, 3)],
            hists: Vec::new(),
        };
        let chunk1 = TraceChunk {
            spans: vec![span("round", 0, 100, 80), span("train", 1, 110, 40)],
            counters: vec![(Counter::ClientsTrained, 4)],
            hists: Vec::new(),
        };
        let doc = chrome_trace(&[outcome_with("demo", vec![(0, chunk0), (1, chunk1)])]);
        let text = doc.render();
        let n = validate_chrome_trace(&text).unwrap();
        // 1 metadata + 4 span events + 2 counter samples.
        assert_eq!(n, 7);
        // Counter samples are cumulative: 3 then 7.
        let parsed = Json::parse(&text).unwrap();
        let events = parsed.get("traceEvents").unwrap().as_arr().unwrap();
        let samples: Vec<u64> = events
            .iter()
            .filter(|e| e.get("ph").and_then(Json::as_str) == Some("C"))
            .map(|e| e.get("args").unwrap().get("value").unwrap().as_u64().unwrap())
            .collect();
        assert_eq!(samples, vec![3, 7]);
    }

    #[test]
    fn validator_rejects_malformed_documents() {
        assert!(validate_chrome_trace("not json").is_err());
        assert!(validate_chrome_trace(r#"{"events": []}"#).is_err());
        assert!(validate_chrome_trace(r#"{"traceEvents": [{"ph": "X", "pid": 1}]}"#).is_err());
        let no_dur = r#"{"traceEvents": [{"name": "a", "ph": "X", "ts": 1, "pid": 1, "tid": 0}]}"#;
        assert!(validate_chrome_trace(no_dur).is_err());
        assert_eq!(validate_chrome_trace(r#"{"traceEvents": []}"#).unwrap(), 0);
    }
}
