//! Federated learning (FedAvg) simulation with adversary observer hooks.
//!
//! Reproduces the paper's federated recommender setting (§III-B): at each
//! round the server broadcasts the global model, (a subset of) clients train
//! locally and send back their models, and the server aggregates them into
//! the next global model. The [`RoundObserver`] hook exposes exactly what the
//! server receives — the vantage point of the paper's FL adversary, who *is*
//! the server (§IV-A).
//!
//! # Example
//!
//! ```
//! use cia_data::{LeaveOneOut, SyntheticConfig, UserId};
//! use cia_federated::{FedAvg, FedAvgConfig, RoundObserver};
//! use cia_models::{GmfHyper, GmfSpec, SharedModel, SharingPolicy};
//!
//! let data = SyntheticConfig::builder()
//!     .users(12).items(60).communities(3).interactions_per_user(8)
//!     .seed(1).build().generate();
//! let split = LeaveOneOut::new(&data, 10, 0).unwrap();
//! let spec = GmfSpec::new(60, 8, GmfHyper::default());
//! let clients: Vec<_> = split
//!     .train_sets()
//!     .iter()
//!     .enumerate()
//!     .map(|(u, items)| {
//!         spec.build_client(UserId::new(u as u32), items.clone(), SharingPolicy::Full, u as u64)
//!     })
//!     .collect();
//!
//! struct Counter(usize);
//! impl RoundObserver for Counter {
//!     fn on_client_model(&mut self, _m: &SharedModel) { self.0 += 1; }
//! }
//!
//! let mut sim = FedAvg::new(clients, FedAvgConfig { rounds: 2, ..Default::default() });
//! let mut counter = Counter(0);
//! sim.run(&mut counter);
//! assert_eq!(counter.0, 2 * 12);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use cia_data::UserId;
use cia_models::parallel::par_zip_mut;
use cia_models::params::weighted_mean;
use cia_models::{ClientStore, Participant, SharedModel, UpdateTransform};
use cia_obs::{Counter, Metric, Recorder};
use cia_runtime::{Ctx, Msg, Node, Scheduler, SLOTS_PER_ROUND};

// The runtime abstractions this crate's API surfaces (observer liveness
// events, evented delivery policies).
pub use cia_runtime::{DeliveryPolicy, LivenessEvent};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};
use std::sync::Arc;

/// How client updates are weighted during aggregation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum Weighting {
    /// Every participating client weighs the same.
    Uniform,
    /// FedAvg's default: weigh by local example count.
    #[default]
    ByExamples,
}

/// FedAvg configuration.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FedAvgConfig {
    /// Number of communication rounds `T`.
    pub rounds: u64,
    /// Fraction of clients sampled each round (1.0 = full participation, the
    /// paper's FL adversary "may contact all or part of the users").
    pub participation: f64,
    /// Local training epochs per round.
    pub local_epochs: usize,
    /// Aggregation weighting.
    pub weighting: Weighting,
    /// Simulation seed (client sampling, training order, DP noise).
    pub seed: u64,
}

impl Default for FedAvgConfig {
    fn default() -> Self {
        FedAvgConfig {
            rounds: 20,
            participation: 1.0,
            local_epochs: 1,
            weighting: Weighting::ByExamples,
            seed: 0,
        }
    }
}

/// Per-round statistics handed to observers.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RoundStats {
    /// The completed round index.
    pub round: u64,
    /// Number of clients that participated.
    pub participants: usize,
    /// Mean local training loss across participants; `None` when no client
    /// participated (an all-offline round has no losses to average — a `0.0`
    /// sentinel would be indistinguishable from perfect convergence).
    pub mean_loss: Option<f32>,
    /// Bytes of client model state materialized for this round: rebuilt lazy
    /// clients plus observer snapshots (sharded stores), or the snapshot
    /// buffers refilled for the observer (dense stores, where client state
    /// is permanently resident).
    pub bytes_materialized: u64,
}

/// Observes what the FL server sees — the adversary's vantage point.
///
/// All methods have empty default bodies so observers implement only what
/// they need.
pub trait RoundObserver {
    /// Called when a round begins.
    fn on_round_start(&mut self, round: u64) {
        let _ = round;
    }

    /// Called with protocol-agnostic liveness events (the same enum gossip
    /// observers consume). FedAvg issues one
    /// [`LivenessEvent::ActingSet`] per round, after its own participation
    /// sampling, with the round's tentative participant mask. Observers may
    /// clear entries to model availability — churn, stragglers, device
    /// dropout — without the training loop knowing about participant
    /// dynamics (the `cia-scenarios` dynamics layer plugs in here). Setting
    /// entries to `true` is ignored-at-your-own-risk: the protocol honors
    /// the final mask as-is.
    fn on_liveness(&mut self, event: LivenessEvent<'_>) {
        let _ = event;
    }

    /// Called at the start of every round with the broadcast global model —
    /// public knowledge for a server-side adversary (reference for update
    /// reconstruction and for training fictive embeddings).
    fn on_global(&mut self, round: u64, global_agg: &[f32]) {
        let _ = (round, global_agg);
    }

    /// Called once per received client model, in user-id order.
    fn on_client_model(&mut self, model: &SharedModel) {
        let _ = model;
    }

    /// Whether this observer consumes [`RoundObserver::on_client_model`].
    /// Observers that don't (e.g. [`NullObserver`] in utility-only runs and
    /// round benchmarks) should return `false`: the protocol then skips
    /// materializing per-client snapshots entirely — aggregation works
    /// directly from client state — which removes a full copy of every
    /// client's model from each round. Aggregation math is identical either
    /// way.
    fn observes_models(&self) -> bool {
        true
    }

    /// Called when a round's aggregation completes.
    fn on_round_end(&mut self, stats: &RoundStats) {
        let _ = stats;
    }
}

/// A no-op observer for runs without an adversary.
#[derive(Debug, Clone, Copy, Default)]
pub struct NullObserver;

impl RoundObserver for NullObserver {
    fn observes_models(&self) -> bool {
        false
    }
}

/// The FedAvg simulation.
pub struct FedAvg<P: Participant> {
    store: ClientStore<P>,
    global_agg: Vec<f32>,
    cfg: FedAvgConfig,
    transform: Option<Box<dyn UpdateTransform>>,
    round: u64,
    /// Per-client round slots (dense stores), persistent across rounds so
    /// snapshots reuse their buffers instead of re-allocating a full model
    /// per client per round.
    slots: Vec<RoundSlot>,
    /// Reused aggregation accumulator.
    acc: Vec<f32>,
    /// Sharded-mode shared training workspace — one catalog-sized buffer
    /// lent to every sampled client in turn (see
    /// [`Participant::fed_round_shared`]).
    workspace: Vec<f32>,
    /// Sharded-mode reusable observer snapshot slot (clients are observed
    /// one at a time, in index order, so one slot serves the cohort).
    snap_slot: SharedModel,
    /// The observability sink: phase spans, event counters (clients trained,
    /// bytes materialized) and the per-client training-latency histogram.
    /// Shared with the client store in sharded mode so every materialized
    /// byte lands in one registry.
    obs: Recorder,
    /// Invoked when the evented round's scheduled
    /// [`Msg::GlobalBroadcast`] event fires: `(round, clients, global)`.
    /// The scenario runner installs snapshot publication to `cia-serve`
    /// here, making publication a scheduled event instead of an
    /// out-of-band runner step.
    publish_hook: Option<PublishHook<P>>,
}

/// Post-broadcast publication callback: `(round, clients, new_global)`.
pub type PublishHook<P> = Box<dyn FnMut(u64, &[P], &[f32])>;

/// Per-client per-round bookkeeping; `model` keeps its buffers across rounds.
struct RoundSlot {
    model: SharedModel,
    loss: f32,
    sampled: bool,
}

impl<P: Participant> FedAvg<P> {
    /// Creates a simulation over `clients`. The initial global model is the
    /// first client's public parameters (all clients sync to it in round 0).
    ///
    /// # Panics
    ///
    /// Panics if `clients` is empty or clients disagree on parameter sizes.
    pub fn new(clients: Vec<P>, cfg: FedAvgConfig) -> Self {
        assert!(!clients.is_empty(), "need at least one client");
        let len = clients[0].agg_len();
        assert!(
            clients.iter().all(|c| c.agg_len() == len),
            "clients must share a parameter layout"
        );
        assert!(
            cfg.participation > 0.0 && cfg.participation <= 1.0,
            "participation must be in (0, 1]"
        );
        let global_agg = clients[0].agg().to_vec();
        let slots = clients
            .iter()
            .map(|c| RoundSlot {
                model: SharedModel { owner: c.user(), round: 0, owner_emb: None, agg: Vec::new() },
                loss: 0.0,
                sampled: false,
            })
            .collect();
        FedAvg {
            store: ClientStore::dense(clients),
            global_agg,
            cfg,
            transform: None,
            round: 0,
            slots,
            acc: Vec::new(),
            workspace: Vec::new(),
            snap_slot: empty_snap_slot(),
            obs: Recorder::new(),
            publish_hook: None,
        }
    }

    /// Creates a simulation over a sharded, lazily materialized client store
    /// (see `cia_models::ClientStore`). `initial_global` seeds the global
    /// model — shell clients carry no aggregatable buffer, so the caller
    /// supplies the value a dense run would read off its first client.
    ///
    /// Sharded rounds run the shared-workspace serial path: bit-identical to
    /// the dense path for the same seed, but only the sampled clients are
    /// ever resident. Update transforms (DP) require a dense store.
    ///
    /// # Panics
    ///
    /// Panics if the store is empty or dense, or `participation` is out of
    /// range.
    pub fn sharded(store: ClientStore<P>, initial_global: Vec<f32>, cfg: FedAvgConfig) -> Self {
        assert!(!store.is_empty(), "need at least one client");
        assert!(store.is_sharded(), "FedAvg::sharded needs a sharded store; use FedAvg::new");
        assert!(
            cfg.participation > 0.0 && cfg.participation <= 1.0,
            "participation must be in (0, 1]"
        );
        let obs = Recorder::new();
        let mut store = store;
        store.set_recorder(obs.clone());
        FedAvg {
            store,
            global_agg: initial_global,
            cfg,
            transform: None,
            round: 0,
            slots: Vec::new(),
            acc: Vec::new(),
            workspace: Vec::new(),
            snap_slot: empty_snap_slot(),
            obs,
            publish_hook: None,
        }
    }

    /// Installs the post-broadcast publication hook (see [`PublishHook`]).
    /// Only the evented path ([`FedAvg::step_evented`]) schedules the
    /// [`Msg::GlobalBroadcast`] event that fires it.
    pub fn set_publish_hook(&mut self, hook: PublishHook<P>) {
        self.publish_hook = Some(hook);
    }

    /// Installs the metrics/trace sink this simulation (and, in sharded
    /// mode, its client store) reports into. The scenario runner installs
    /// one recorder per scenario; standalone simulations keep their own
    /// default recorder.
    pub fn set_recorder(&mut self, recorder: Recorder) {
        self.store.set_recorder(recorder.clone());
        self.obs = recorder;
    }

    /// The metrics/trace sink this simulation reports into.
    pub fn recorder(&self) -> &Recorder {
        &self.obs
    }

    /// Installs a local update transform (DP-SGD) applied to every outgoing
    /// client update.
    ///
    /// # Panics
    ///
    /// Panics on a sharded store: the DP path aggregates dense transformed
    /// snapshots of every participant, which defeats lazy materialization.
    pub fn set_update_transform(&mut self, transform: Box<dyn UpdateTransform>) {
        assert!(!self.store.is_sharded(), "update transforms (DP) require a dense client store");
        self.transform = Some(transform);
    }

    /// The configuration.
    pub fn config(&self) -> &FedAvgConfig {
        &self.cfg
    }

    /// The client store.
    pub fn store(&self) -> &ClientStore<P> {
        &self.store
    }

    /// The clients (evaluation access).
    ///
    /// # Panics
    ///
    /// Panics on a sharded store — lazy clients are not resident; use
    /// [`FedAvg::store`].
    pub fn clients(&self) -> &[P] {
        self.store.as_dense().expect("clients() needs a dense store; use store()")
    }

    /// The current global public parameters.
    pub fn global_agg(&self) -> &[f32] {
        &self.global_agg
    }

    /// Rounds completed so far.
    pub fn round(&self) -> u64 {
        self.round
    }

    /// Mutable access to the clients (checkpoint resume restores each
    /// participant's private state in place).
    ///
    /// # Panics
    ///
    /// Panics on a sharded store — lazy clients are not resident.
    pub fn clients_mut(&mut self) -> &mut [P] {
        self.store.as_dense_mut().expect("clients_mut() needs a dense store")
    }

    /// Restores the protocol-side state — the round counter and the current
    /// global model — captured from [`FedAvg::round`] and
    /// [`FedAvg::global_agg`]. Per-round RNG streams are derived from
    /// `(seed, round)`, so no generator state needs saving: stepping after a
    /// restore replays exactly the rounds an uninterrupted run would have
    /// executed.
    ///
    /// # Panics
    ///
    /// Panics if `global_agg` does not match the clients' parameter layout.
    pub fn restore(&mut self, round: u64, global_agg: Vec<f32>) {
        assert_eq!(global_agg.len(), self.global_agg.len(), "global layout mismatch");
        self.round = round;
        self.global_agg = global_agg;
    }

    /// Loads the current global model into every client (used before utility
    /// evaluation, mirroring the broadcast deployment of the final model).
    ///
    /// # Panics
    ///
    /// Panics on a sharded store — materialize individual clients instead.
    pub fn sync_clients_to_global(&mut self) {
        let global = self.global_agg.clone();
        for c in self.store.as_dense_mut().expect("sync needs a dense store") {
            c.absorb_agg(&global);
        }
    }

    /// Runs one round: sample, broadcast, local training, transform,
    /// observe, aggregate.
    pub fn step(&mut self, observer: &mut dyn RoundObserver) -> RoundStats {
        if self.store.is_sharded() {
            return self.step_sharded(observer);
        }
        let t = self.round;
        let obs = self.obs.clone();
        let bytes0 = obs.counter(Counter::BytesMaterialized);
        let FedAvg { store, global_agg, cfg, transform, slots, acc, .. } = &mut *self;
        let clients = store.as_dense_mut().expect("dense step");
        let n = clients.len();
        let cfg = *cfg;
        let mut rng = StdRng::seed_from_u64(cfg.seed ^ t.wrapping_mul(0x9E37_79B9_7F4A_7C15));

        // Sample participants.
        let sample_span = obs.span("sample");
        let mut sampled: Vec<bool> = if cfg.participation >= 1.0 {
            vec![true; n]
        } else {
            let k = ((n as f64 * cfg.participation).round() as usize).clamp(1, n);
            let mut idx: Vec<usize> = (0..n).collect();
            idx.shuffle(&mut rng);
            let mut mask = vec![false; n];
            for &i in idx.iter().take(k) {
                mask[i] = true;
            }
            mask
        };

        observer.on_round_start(t);
        observer.on_liveness(LivenessEvent::ActingSet { round: t, mask: &mut sampled });
        observer.on_global(t, global_agg);
        drop(sample_span);

        // Snapshots are materialized only when something consumes them: the
        // observer, or the DP transform (which aggregates transformed
        // parameters instead of the clients' own).
        let materialize = transform.is_some() || observer.observes_models();

        // Per-client work deposited into aligned, buffer-reusing slots.
        let global: &[f32] = global_agg;
        let transform = transform.as_deref();
        for (slot, &s) in slots.iter_mut().zip(&sampled) {
            slot.sampled = s;
            slot.loss = 0.0;
        }
        let per_client =
            |i: usize, client: &mut P, slot: &mut RoundSlot, acc: Option<(f32, &mut [f32])>| {
                if !slot.sampled {
                    return;
                }
                let t0 = obs.clock();
                let mut crng = StdRng::seed_from_u64(
                    cfg.seed ^ (t << 20) ^ (i as u64).wrapping_mul(0x5851_F42D),
                );
                if let Some(tr) = transform {
                    // DP path: the transform needs the pre-round embedding
                    // and rewrites the materialized snapshot.
                    client.absorb_agg(global);
                    let emb_before: Option<Vec<f32>> = client.owner_emb().map(<[f32]>::to_vec);
                    let mut loss = 0.0;
                    for _ in 0..cfg.local_epochs.max(1) {
                        loss = client.train_local(&mut crng);
                    }
                    slot.loss = loss;
                    client.snapshot_into(t, &mut slot.model);
                    apply_update_transform(
                        tr,
                        &mut slot.model,
                        global,
                        emb_before.as_deref(),
                        &mut crng,
                    );
                } else {
                    slot.loss = client.fed_round(global, cfg.local_epochs, &mut crng, acc);
                    if materialize {
                        client.snapshot_into(t, &mut slot.model);
                    }
                }
                obs.observe_since(Metric::TrainMicros, t0);
            };
        // Pre-compute the sparse-aggregation weights so the single-thread
        // path can fold each client's contribution while its parameters are
        // still cache-hot. The parallel path runs the same accumulation as a
        // separate pass; both visit clients in index order over identical
        // inputs, so the result is bit-identical for every thread count.
        let weight_of = |client: &P| match cfg.weighting {
            Weighting::Uniform => 1.0,
            Weighting::ByExamples => client.num_examples().max(1) as f32,
        };
        let sparse_agg = transform.is_none();
        let total: f32 = clients
            .iter()
            .zip(&*slots)
            .filter(|(_, slot)| slot.sampled)
            .map(|(client, _)| weight_of(client))
            .sum();
        acc.resize(global.len(), 0.0);
        acc.fill(0.0);
        let train_span = obs.span("train");
        if cia_models::parallel::num_threads() <= 1 {
            for (i, (client, slot)) in clients.iter_mut().zip(slots.iter_mut()).enumerate() {
                let sink = if sparse_agg && total > 0.0 {
                    Some((weight_of(client) / total, acc.as_mut_slice()))
                } else {
                    None
                };
                per_client(i, client, slot, sink);
            }
        } else {
            par_zip_mut(clients, slots, |i, client, slot| {
                per_client(i, client, slot, None);
            });
            if sparse_agg && total > 0.0 {
                for (client, slot) in clients.iter().zip(&*slots) {
                    if slot.sampled {
                        client.accumulate_update(global, weight_of(client) / total, acc);
                    }
                }
            }
        }
        drop(train_span);

        // Observe in deterministic (user-id) order. Dense clients are
        // permanently resident, so the round's materialization cost is the
        // snapshot buffers refilled for the observer / DP transform.
        let attack_span = obs.span("attack");
        let mut loss_sum = 0.0f32;
        let mut participants = 0usize;
        for slot in &*slots {
            if slot.sampled {
                if materialize {
                    observer.on_client_model(&slot.model);
                    obs.add(Counter::BytesMaterialized, 4 * slot.model.len() as u64);
                }
                loss_sum += slot.loss;
                participants += 1;
            }
        }
        drop(attack_span);
        obs.add(Counter::ClientsTrained, participants as u64);
        // Aggregate. An all-offline round (dynamics can empty the mask)
        // keeps the previous global — nothing arrived to aggregate.
        let aggregate_span = obs.span("aggregate");
        if participants > 0 {
            if sparse_agg {
                // Sparse path: every client contributed
                // `w̃ᵢ · (aggᵢ − global)` over only the parameters its local
                // training touched (Σ w̃ᵢ = 1, so
                // `global + Σ w̃ᵢ·(aggᵢ − global) = Σ w̃ᵢ·aggᵢ`) — already
                // folded into `acc` above, in client index order.
                for (g, a) in global_agg.iter_mut().zip(&*acc) {
                    *g += a;
                }
            } else {
                // Transformed parameters live only in the snapshots: dense
                // weighted mean over the materialized models.
                let mut rows: Vec<&[f32]> = Vec::with_capacity(participants);
                let mut weights: Vec<f32> = Vec::with_capacity(participants);
                for (client, slot) in clients.iter().zip(&*slots) {
                    if slot.sampled {
                        rows.push(&slot.model.agg);
                        weights.push(weight_of(client));
                    }
                }
                let mut new_global = vec![0.0f32; global_agg.len()];
                weighted_mean(&mut new_global, &rows, &weights);
                *global_agg = new_global;
            }
        }
        drop(aggregate_span);

        let stats = RoundStats {
            round: t,
            participants,
            mean_loss: (participants > 0).then(|| loss_sum / participants as f32),
            bytes_materialized: obs.counter(Counter::BytesMaterialized) - bytes0,
        };
        let evaluate_span = obs.span("evaluate");
        observer.on_round_end(&stats);
        drop(evaluate_span);
        self.round += 1;
        stats
    }

    /// One round over a sharded store: identical sampling, RNG streams,
    /// visit order and aggregation math as the dense single-thread path —
    /// bit-identical results — but each sampled client is rebuilt on demand,
    /// trains inside the shared workspace, and retires back to its compact
    /// descriptor before the next client materializes.
    fn step_sharded(&mut self, observer: &mut dyn RoundObserver) -> RoundStats {
        debug_assert!(self.transform.is_none(), "transforms are rejected at install time");
        let t = self.round;
        let obs = self.obs.clone();
        let bytes0 = obs.counter(Counter::BytesMaterialized);
        let n = self.store.len();
        let cfg = self.cfg;
        let mut rng = StdRng::seed_from_u64(cfg.seed ^ t.wrapping_mul(0x9E37_79B9_7F4A_7C15));

        let sample_span = obs.span("sample");
        let mut sampled: Vec<bool> = if cfg.participation >= 1.0 {
            vec![true; n]
        } else {
            let k = ((n as f64 * cfg.participation).round() as usize).clamp(1, n);
            let mut idx: Vec<usize> = (0..n).collect();
            idx.shuffle(&mut rng);
            let mut mask = vec![false; n];
            for &i in idx.iter().take(k) {
                mask[i] = true;
            }
            mask
        };

        observer.on_round_start(t);
        observer.on_liveness(LivenessEvent::ActingSet { round: t, mask: &mut sampled });
        observer.on_global(t, &self.global_agg);
        drop(sample_span);
        let materialize = observer.observes_models();

        let weight_of = |store: &ClientStore<P>, i: usize| match cfg.weighting {
            Weighting::Uniform => 1.0,
            Weighting::ByExamples => store.num_examples_of(i).max(1) as f32,
        };
        let total: f32 = sampled
            .iter()
            .enumerate()
            .filter(|&(_, &s)| s)
            .map(|(i, _)| weight_of(&self.store, i))
            .sum();
        self.acc.resize(self.global_agg.len(), 0.0);
        self.acc.fill(0.0);
        // The cohort's shared workspace starts bit-identical to the
        // broadcast global; every `fed_round_shared` returns it that way.
        self.workspace.resize(self.global_agg.len(), 0.0);
        self.workspace.copy_from_slice(&self.global_agg);

        // Training and observation are fused per client here (the snapshot
        // slot is reused client to client), so one "train" span covers the
        // materialize → train → observe → retire chain.
        let train_span = obs.span("train");
        let mut loss_sum = 0.0f32;
        let mut participants = 0usize;
        for (i, _) in sampled.iter().enumerate().filter(|&(_, &s)| s) {
            let t0 = obs.clock();
            let mut client = self.store.materialize(i);
            let mut crng =
                StdRng::seed_from_u64(cfg.seed ^ (t << 20) ^ (i as u64).wrapping_mul(0x5851_F42D));
            let sink = if total > 0.0 {
                Some((weight_of(&self.store, i) / total, self.acc.as_mut_slice()))
            } else {
                None
            };
            let snap = if materialize { Some((t, &mut self.snap_slot)) } else { None };
            let loss = client.fed_round_shared(
                &mut self.workspace,
                &self.global_agg,
                cfg.local_epochs,
                &mut crng,
                sink,
                snap,
            );
            obs.observe_since(Metric::TrainMicros, t0);
            if materialize {
                obs.add(Counter::BytesMaterialized, 4 * self.snap_slot.len() as u64);
                observer.on_client_model(&self.snap_slot);
            }
            loss_sum += loss;
            participants += 1;
            self.store.retire(i, client);
        }
        drop(train_span);
        obs.add(Counter::ClientsTrained, participants as u64);

        let aggregate_span = obs.span("aggregate");
        if participants > 0 {
            for (g, a) in self.global_agg.iter_mut().zip(&self.acc) {
                *g += a;
            }
        }
        drop(aggregate_span);

        let stats = RoundStats {
            round: t,
            participants,
            mean_loss: (participants > 0).then(|| loss_sum / participants as f32),
            bytes_materialized: obs.counter(Counter::BytesMaterialized) - bytes0,
        };
        let evaluate_span = obs.span("evaluate");
        observer.on_round_end(&stats);
        drop(evaluate_span);
        self.round += 1;
        stats
    }

    /// Runs one round on the event-driven runtime: the server and every
    /// client become [`cia_runtime::Node`]s exchanging typed
    /// [`Msg::TrainRequest`]/[`Msg::ModelUpdate`] messages under the
    /// deterministic virtual-clock scheduler, closed by a scheduled
    /// [`Msg::GlobalBroadcast`].
    ///
    /// Compatibility contract: under *any* [`DeliveryPolicy`] this replays
    /// [`FedAvg::step`]'s lockstep semantics bit for bit — same RNG streams,
    /// same visit order, same float operations. Aggregation rides the
    /// participant chain: each `TrainRequest` threads the shared sparse
    /// accumulator to exactly one in-flight client, which folds its update
    /// via the same fused [`Participant::fed_round`] sink the lockstep
    /// single-thread path uses. Reordering is impossible by construction
    /// (one message in flight), so interleaving seeds cannot change bytes.
    ///
    /// # Panics
    ///
    /// Panics on a sharded store — the lazy materialization path stays
    /// lockstep (see [`FedAvg::sharded`]).
    pub fn step_evented(
        &mut self,
        observer: &mut dyn RoundObserver,
        policy: DeliveryPolicy,
    ) -> RoundStats {
        assert!(
            !self.store.is_sharded(),
            "evented rounds need a dense store; sharded (million-scale) runs stay lockstep"
        );
        let t = self.round;
        let obs = self.obs.clone();
        let bytes0 = obs.counter(Counter::BytesMaterialized);
        let base = t * SLOTS_PER_ROUND;
        let mut stats_out = None;
        let mut publish = false;
        {
            let FedAvg { store, global_agg, cfg, transform, slots, acc, .. } = &mut *self;
            let clients = store.as_dense_mut().expect("dense step");
            let cfg = *cfg;
            let weights: Vec<f32> = clients
                .iter()
                .map(|c| match cfg.weighting {
                    Weighting::Uniform => 1.0,
                    Weighting::ByExamples => c.num_examples().max(1) as f32,
                })
                .collect();
            let transform = transform.as_deref();
            let mut sched = Scheduler::new(policy);
            sched.set_recorder(obs.clone());
            let mut nodes: Vec<FlNode<'_, P>> = Vec::with_capacity(clients.len() + 1);
            nodes.push(FlNode::Server(ServerRound {
                observer,
                global: global_agg,
                acc,
                slots,
                weights,
                cfg,
                obs: obs.clone(),
                dp: transform.is_some(),
                materialize: false,
                chain: Vec::new(),
                next: 0,
                total: 0.0,
                global_arc: Arc::new(Vec::new()),
                bytes0,
                stats: &mut stats_out,
                publish: &mut publish,
            }));
            for (i, client) in clients.iter_mut().enumerate() {
                nodes.push(FlNode::Client(ClientSeat {
                    index: i,
                    client,
                    transform,
                    cfg,
                    obs: obs.clone(),
                }));
            }
            sched.timer_at(base, SERVER, Msg::RoundStart { round: t });
            sched.timer_at(base + 2, SERVER, Msg::RoundEnd { round: t });
            sched.run_until(base, &mut nodes);
            // The whole request/update chain lives at slot 1 — one "train"
            // span covers it, exactly like the lockstep round.
            let train_span = obs.span("train");
            sched.run_until(base + 1, &mut nodes);
            drop(train_span);
            sched.run_until(base + 3, &mut nodes);
            debug_assert_eq!(sched.pending_len(), 0, "FL rounds drain their queue");
        }
        self.round += 1;
        let stats = stats_out.expect("RoundEnd produced stats");
        if publish {
            if let Some(mut hook) = self.publish_hook.take() {
                hook(t, self.clients(), &self.global_agg);
                self.publish_hook = Some(hook);
            }
        }
        stats
    }

    /// Runs all configured rounds.
    pub fn run(&mut self, observer: &mut dyn RoundObserver) {
        for _ in 0..self.cfg.rounds {
            self.step(observer);
        }
    }
}

/// The server's node address in the FL scheduler (clients sit at `i + 1`).
const SERVER: cia_runtime::NodeId = 0;

/// One FL participant seat on the scheduler: the aggregation server (node 0)
/// or a training client (node `index + 1`).
enum FlNode<'a, P: Participant> {
    Server(ServerRound<'a>),
    Client(ClientSeat<'a, P>),
}

/// The server's per-round working state (borrows the simulation's persistent
/// buffers so the evented round reuses exactly the lockstep allocations).
struct ServerRound<'a> {
    observer: &'a mut dyn RoundObserver,
    global: &'a mut Vec<f32>,
    acc: &'a mut Vec<f32>,
    slots: &'a mut Vec<RoundSlot>,
    /// Raw aggregation weight per client (pre-normalization).
    weights: Vec<f32>,
    cfg: FedAvgConfig,
    obs: Recorder,
    dp: bool,
    materialize: bool,
    /// Sampled client indices in visit (index) order.
    chain: Vec<usize>,
    /// Next chain position to dispatch.
    next: usize,
    total: f32,
    global_arc: Arc<Vec<f32>>,
    bytes0: u64,
    stats: &'a mut Option<RoundStats>,
    publish: &'a mut bool,
}

/// A client seat: the participant plus everything its handler needs.
struct ClientSeat<'a, P: Participant> {
    index: usize,
    client: &'a mut P,
    transform: Option<&'a dyn UpdateTransform>,
    cfg: FedAvgConfig,
    obs: Recorder,
}

impl ServerRound<'_> {
    /// Dispatches a `TrainRequest` to the chain's next client, threading the
    /// accumulator and a recycled snapshot carcass through the message.
    fn dispatch(&mut self, round: u64, acc: Option<Vec<f32>>, ctx: &mut Ctx<'_>) {
        let i = self.chain[self.next];
        self.next += 1;
        let snap = self
            .materialize
            .then(|| std::mem::replace(&mut self.slots[i].model, empty_snap_slot()));
        let weight = if acc.is_some() { self.weights[i] / self.total } else { 0.0 };
        ctx.send_at(
            ctx.now().max(round * SLOTS_PER_ROUND + 1),
            (i + 1) as cia_runtime::NodeId,
            Msg::TrainRequest {
                round,
                epochs: self.cfg.local_epochs,
                global: Arc::clone(&self.global_arc),
                weight,
                acc,
                snap,
            },
        );
    }

    fn round_start(&mut self, t: u64, ctx: &mut Ctx<'_>) {
        let n = self.slots.len();
        let cfg = self.cfg;
        let mut rng = StdRng::seed_from_u64(cfg.seed ^ t.wrapping_mul(0x9E37_79B9_7F4A_7C15));
        let sample_span = self.obs.span("sample");
        let mut sampled: Vec<bool> = if cfg.participation >= 1.0 {
            vec![true; n]
        } else {
            let k = ((n as f64 * cfg.participation).round() as usize).clamp(1, n);
            let mut idx: Vec<usize> = (0..n).collect();
            idx.shuffle(&mut rng);
            let mut mask = vec![false; n];
            for &i in idx.iter().take(k) {
                mask[i] = true;
            }
            mask
        };
        self.observer.on_round_start(t);
        self.observer.on_liveness(LivenessEvent::ActingSet { round: t, mask: &mut sampled });
        self.observer.on_global(t, self.global);
        drop(sample_span);

        self.materialize = self.dp || self.observer.observes_models();
        for (slot, &s) in self.slots.iter_mut().zip(&sampled) {
            slot.sampled = s;
            slot.loss = 0.0;
        }
        self.total = self.weights.iter().zip(&sampled).filter(|&(_, &s)| s).map(|(&w, _)| w).sum();
        self.acc.resize(self.global.len(), 0.0);
        self.acc.fill(0.0);
        self.chain = sampled.iter().enumerate().filter(|&(_, &s)| s).map(|(i, _)| i).collect();
        self.next = 0;
        if self.chain.is_empty() {
            return; // The already-scheduled RoundEnd closes the round.
        }
        self.global_arc = Arc::new(self.global.clone());
        let acc = (!self.dp && self.total > 0.0).then(|| std::mem::take(self.acc));
        self.dispatch(t, acc, ctx);
    }

    fn on_update(
        &mut self,
        round: u64,
        client: u32,
        loss: f32,
        acc: Option<Vec<f32>>,
        snap: Option<SharedModel>,
        ctx: &mut Ctx<'_>,
    ) {
        let slot = &mut self.slots[client as usize];
        slot.loss = loss;
        if let Some(snap) = snap {
            slot.model = snap;
        }
        if self.next < self.chain.len() {
            self.dispatch(round, acc, ctx);
        } else if let Some(acc) = acc {
            *self.acc = acc;
        }
    }

    fn round_end(&mut self, t: u64, ctx: &mut Ctx<'_>) {
        // Observe in deterministic (index) order — byte-identical to the
        // lockstep attack phase.
        let attack_span = self.obs.span("attack");
        let mut loss_sum = 0.0f32;
        let mut participants = 0usize;
        for slot in self.slots.iter() {
            if slot.sampled {
                if self.materialize {
                    self.observer.on_client_model(&slot.model);
                    self.obs.add(Counter::BytesMaterialized, 4 * slot.model.len() as u64);
                }
                loss_sum += slot.loss;
                participants += 1;
            }
        }
        drop(attack_span);
        self.obs.add(Counter::ClientsTrained, participants as u64);
        let aggregate_span = self.obs.span("aggregate");
        if participants > 0 {
            if !self.dp {
                for (g, a) in self.global.iter_mut().zip(self.acc.iter()) {
                    *g += a;
                }
            } else {
                let mut rows: Vec<&[f32]> = Vec::with_capacity(participants);
                let mut weights: Vec<f32> = Vec::with_capacity(participants);
                for (slot, &w) in self.slots.iter().zip(&self.weights) {
                    if slot.sampled {
                        rows.push(&slot.model.agg);
                        weights.push(w);
                    }
                }
                let mut new_global = vec![0.0f32; self.global.len()];
                weighted_mean(&mut new_global, &rows, &weights);
                *self.global = new_global;
            }
        }
        drop(aggregate_span);
        let stats = RoundStats {
            round: t,
            participants,
            mean_loss: (participants > 0).then(|| loss_sum / participants as f32),
            bytes_materialized: self.obs.counter(Counter::BytesMaterialized) - self.bytes0,
        };
        let evaluate_span = self.obs.span("evaluate");
        self.observer.on_round_end(&stats);
        drop(evaluate_span);
        *self.stats = Some(stats);
        ctx.send(SERVER, Msg::GlobalBroadcast { round: t });
    }
}

impl<P: Participant> ClientSeat<'_, P> {
    /// The lockstep per-client body, verbatim: same RNG stream, same DP vs.
    /// fused-sink split, same snapshot fill.
    fn train(
        &mut self,
        round: u64,
        global: &[f32],
        weight: f32,
        mut acc: Option<Vec<f32>>,
        mut snap: Option<SharedModel>,
        ctx: &mut Ctx<'_>,
    ) {
        let cfg = self.cfg;
        let i = self.index;
        let t0 = self.obs.clock();
        let mut crng =
            StdRng::seed_from_u64(cfg.seed ^ (round << 20) ^ (i as u64).wrapping_mul(0x5851_F42D));
        let mut loss;
        if let Some(tr) = self.transform {
            self.client.absorb_agg(global);
            let emb_before: Option<Vec<f32>> = self.client.owner_emb().map(<[f32]>::to_vec);
            loss = 0.0;
            for _ in 0..cfg.local_epochs.max(1) {
                loss = self.client.train_local(&mut crng);
            }
            let snap = snap.as_mut().expect("DP rounds always materialize");
            self.client.snapshot_into(round, snap);
            apply_update_transform(tr, snap, global, emb_before.as_deref(), &mut crng);
        } else {
            let sink = acc.as_mut().map(|a| (weight, a.as_mut_slice()));
            loss = self.client.fed_round(global, cfg.local_epochs, &mut crng, sink);
            if let Some(snap) = &mut snap {
                self.client.snapshot_into(round, snap);
            }
        }
        self.obs.observe_since(Metric::TrainMicros, t0);
        // cia-lint: allow(D05, ids and indices are bounded by the validated population/catalog size, which fits u32)
        ctx.send(SERVER, Msg::ModelUpdate { round, client: i as u32, loss, acc, snap });
    }
}

impl<P: Participant> Node for FlNode<'_, P> {
    fn on_message(&mut self, msg: Msg, ctx: &mut Ctx<'_>) {
        match (self, msg) {
            (FlNode::Client(seat), Msg::TrainRequest { round, global, weight, acc, snap, .. }) => {
                seat.train(round, &global, weight, acc, snap, ctx);
            }
            (FlNode::Server(srv), Msg::ModelUpdate { round, client, loss, acc, snap }) => {
                srv.on_update(round, client, loss, acc, snap, ctx);
            }
            (FlNode::Server(srv), Msg::GlobalBroadcast { .. }) => *srv.publish = true,
            (node, msg) => unreachable!(
                "misrouted FL message {} to {}",
                msg.label(),
                if matches!(node, FlNode::Server(_)) { "server" } else { "client" }
            ),
        }
    }

    fn on_timer(&mut self, msg: Msg, ctx: &mut Ctx<'_>) {
        match (self, msg) {
            (FlNode::Server(srv), Msg::RoundStart { round }) => srv.round_start(round, ctx),
            (FlNode::Server(srv), Msg::RoundEnd { round }) => srv.round_end(round, ctx),
            (_, msg) => unreachable!("misrouted FL timer {}", msg.label()),
        }
    }
}

/// An empty reusable snapshot slot (overwritten by `snapshot_into` before
/// every observer call).
fn empty_snap_slot() -> SharedModel {
    SharedModel { owner: UserId::new(0), round: 0, owner_emb: None, agg: Vec::new() }
}

/// Applies a DP-style transform to the *update* encoded by `snap` relative to
/// the round-start reference, then rewrites `snap` as `reference + update`.
fn apply_update_transform(
    transform: &dyn UpdateTransform,
    snap: &mut SharedModel,
    global_before: &[f32],
    emb_before: Option<&[f32]>,
    rng: &mut StdRng,
) {
    // Concatenate [emb_update | agg_update] so the clipping bound covers the
    // whole shared vector, as user-level LDP requires.
    let emb_len = snap.owner_emb.as_ref().map_or(0, Vec::len);
    let mut update = vec![0.0f32; emb_len + snap.agg.len()];
    if let (Some(emb), Some(before)) = (&snap.owner_emb, emb_before) {
        for k in 0..emb_len {
            update[k] = emb[k] - before[k];
        }
    }
    for (k, u) in update[emb_len..].iter_mut().enumerate() {
        *u = snap.agg[k] - global_before[k];
    }

    transform.transform(&mut update, rng);

    if let (Some(emb), Some(before)) = (&mut snap.owner_emb, emb_before) {
        for k in 0..emb_len {
            emb[k] = before[k] + update[k];
        }
    }
    for (k, a) in snap.agg.iter_mut().enumerate() {
        *a = global_before[k] + update[emb_len + k];
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cia_data::{LeaveOneOut, SyntheticConfig, UserId};
    use cia_models::{GmfHyper, GmfSpec, SharingPolicy};

    fn make_sim(users: usize, rounds: u64, policy: SharingPolicy) -> FedAvg<cia_models::GmfClient> {
        let data = SyntheticConfig::builder()
            .users(users)
            .items(80)
            .communities(4)
            .interactions_per_user(10)
            .seed(3)
            .build()
            .generate();
        let split = LeaveOneOut::new(&data, 10, 1).unwrap();
        let spec = GmfSpec::new(80, 8, GmfHyper::default());
        let clients: Vec<_> = split
            .train_sets()
            .iter()
            .enumerate()
            .map(|(u, items)| {
                // cia-lint: allow(D05, ids and indices are bounded by the validated population/catalog size, which fits u32)
                spec.build_client(UserId::new(u as u32), items.clone(), policy, u as u64)
            })
            .collect();
        FedAvg::new(clients, FedAvgConfig { rounds, seed: 9, ..Default::default() })
    }

    #[derive(Default)]
    struct Recorder {
        started: Vec<u64>,
        models: Vec<(u64, u32, bool)>,
        stats: Vec<RoundStats>,
    }

    impl RoundObserver for Recorder {
        fn on_round_start(&mut self, round: u64) {
            self.started.push(round);
        }
        fn on_client_model(&mut self, model: &SharedModel) {
            self.models.push((model.round, model.owner.raw(), model.owner_emb.is_some()));
        }
        fn on_round_end(&mut self, stats: &RoundStats) {
            self.stats.push(stats.clone());
        }
    }

    #[test]
    fn observer_sees_every_model_every_round() {
        let mut sim = make_sim(10, 3, SharingPolicy::Full);
        let mut rec = Recorder::default();
        sim.run(&mut rec);
        assert_eq!(rec.started, vec![0, 1, 2]);
        assert_eq!(rec.models.len(), 30);
        assert!(rec.models.iter().all(|&(_, _, has_emb)| has_emb));
        // User-id order within each round.
        for r in 0..3 {
            let round_models: Vec<u32> =
                rec.models.iter().filter(|&&(t, _, _)| t == r).map(|&(_, u, _)| u).collect();
            assert_eq!(round_models, (0..10).collect::<Vec<u32>>());
        }
        assert_eq!(sim.round(), 3);
    }

    #[test]
    fn share_less_hides_embeddings_from_server() {
        let mut sim = make_sim(6, 2, SharingPolicy::ShareLess { tau: 0.5 });
        let mut rec = Recorder::default();
        sim.run(&mut rec);
        assert!(rec.models.iter().all(|&(_, _, has_emb)| !has_emb));
    }

    #[test]
    fn training_loss_decreases_over_rounds() {
        let mut sim = make_sim(12, 15, SharingPolicy::Full);
        let mut rec = Recorder::default();
        sim.run(&mut rec);
        let first = rec.stats.first().unwrap().mean_loss.expect("clients participated");
        let last = rec.stats.last().unwrap().mean_loss.expect("clients participated");
        assert!(last < first, "loss {first} -> {last}");
    }

    #[test]
    fn partial_participation_samples_subset() {
        let data = SyntheticConfig::builder()
            .users(20)
            .items(80)
            .communities(4)
            .interactions_per_user(8)
            .seed(5)
            .build()
            .generate();
        let split = LeaveOneOut::new(&data, 10, 1).unwrap();
        let spec = GmfSpec::new(80, 8, GmfHyper::default());
        let clients: Vec<_> = split
            .train_sets()
            .iter()
            .enumerate()
            .map(|(u, items)| {
                spec.build_client(
                    // cia-lint: allow(D05, ids and indices are bounded by the validated population/catalog size, which fits u32)
                    UserId::new(u as u32),
                    items.clone(),
                    SharingPolicy::Full,
                    u as u64,
                )
            })
            .collect();
        let mut sim = FedAvg::new(
            clients,
            FedAvgConfig { rounds: 4, participation: 0.5, seed: 2, ..Default::default() },
        );
        let mut rec = Recorder::default();
        sim.run(&mut rec);
        for s in &rec.stats {
            assert_eq!(s.participants, 10);
        }
        // Different rounds sample different subsets (overwhelmingly likely).
        let r0: Vec<u32> = rec.models.iter().filter(|m| m.0 == 0).map(|m| m.1).collect();
        let r1: Vec<u32> = rec.models.iter().filter(|m| m.0 == 1).map(|m| m.1).collect();
        assert_ne!(r0, r1);
    }

    #[test]
    fn deterministic_given_seed() {
        let run = || {
            let mut sim = make_sim(8, 3, SharingPolicy::Full);
            let mut rec = Recorder::default();
            sim.run(&mut rec);
            (sim.global_agg().to_vec(), rec.stats.last().unwrap().mean_loss)
        };
        let (g1, l1) = run();
        let (g2, l2) = run();
        assert_eq!(g1, g2);
        assert_eq!(l1, l2);
    }

    #[test]
    fn dp_transform_perturbs_observed_models() {
        use cia_defenses::{DpConfig, DpMechanism};
        // Two runs from identical state: with strong noise the observed agg
        // differs from the noiseless run; global stays finite.
        let mut clean = make_sim(6, 1, SharingPolicy::Full);
        let mut noisy = make_sim(6, 1, SharingPolicy::Full);
        noisy.set_update_transform(Box::new(DpMechanism::new(DpConfig {
            clip: 1.0,
            noise_multiplier: 1.0,
        })));
        let mut rec_clean = Recorder::default();
        let mut rec_noisy = Recorder::default();
        clean.run(&mut rec_clean);
        noisy.run(&mut rec_noisy);
        assert_ne!(clean.global_agg(), noisy.global_agg());
        assert!(noisy.global_agg().iter().all(|v| v.is_finite()));
    }

    #[test]
    fn sync_clients_loads_global() {
        let mut sim = make_sim(5, 2, SharingPolicy::Full);
        sim.run(&mut NullObserver);
        sim.sync_clients_to_global();
        let g = sim.global_agg().to_vec();
        for c in sim.clients() {
            assert_eq!(c.agg(), g.as_slice());
        }
    }

    #[test]
    #[should_panic(expected = "need at least one client")]
    fn rejects_empty_clients() {
        let _: FedAvg<cia_models::GmfClient> = FedAvg::new(vec![], FedAvgConfig::default());
    }

    /// Masks odd users via the availability hook and records what arrives.
    #[derive(Default)]
    struct OddMasker {
        models: Vec<u32>,
    }

    impl RoundObserver for OddMasker {
        fn on_liveness(&mut self, event: LivenessEvent<'_>) {
            if let LivenessEvent::ActingSet { mask, .. } = event {
                for (u, m) in mask.iter_mut().enumerate() {
                    if u % 2 == 1 {
                        *m = false;
                    }
                }
            }
        }
        fn on_client_model(&mut self, model: &SharedModel) {
            self.models.push(model.owner.raw());
        }
    }

    #[test]
    fn participants_hook_filters_the_round() {
        let mut sim = make_sim(10, 2, SharingPolicy::Full);
        let mut masker = OddMasker::default();
        sim.run(&mut masker);
        assert_eq!(masker.models.len(), 10, "5 even users over 2 rounds");
        assert!(masker.models.iter().all(|u| u % 2 == 0));
    }

    struct Blackout;

    impl RoundObserver for Blackout {
        fn on_liveness(&mut self, event: LivenessEvent<'_>) {
            if let LivenessEvent::ActingSet { mask, .. } = event {
                mask.fill(false);
            }
        }
    }

    #[test]
    fn all_offline_round_keeps_global_and_reports_no_loss() {
        let mut sim = make_sim(6, 1, SharingPolicy::Full);
        let before = sim.global_agg().to_vec();
        let stats = sim.step(&mut Blackout);
        assert_eq!(stats.participants, 0);
        assert_eq!(stats.mean_loss, None);
        assert_eq!(sim.global_agg(), before.as_slice());
    }

    /// One observed snapshot: (round, owner, owner_emb, agg).
    type TapedModel = (u64, u32, Option<Vec<f32>>, Vec<f32>);

    /// Records the full model stream (owner, round, byte-exact agg) so dense
    /// and lazy runs can be compared snapshot for snapshot.
    #[derive(Default)]
    struct ModelTape {
        models: Vec<TapedModel>,
        stats: Vec<RoundStats>,
    }

    impl RoundObserver for ModelTape {
        fn on_client_model(&mut self, m: &SharedModel) {
            self.models.push((m.round, m.owner.raw(), m.owner_emb.clone(), m.agg.clone()));
        }
        fn on_round_end(&mut self, stats: &RoundStats) {
            self.stats.push(stats.clone());
        }
    }

    fn dense_vs_lazy(
        users: usize,
        items: u32,
        policy: SharingPolicy,
        cfg: FedAvgConfig,
        data: cia_data::Dataset,
    ) {
        let split = LeaveOneOut::new(&data, 20, 1).unwrap();
        let spec = GmfSpec::new(items, 8, GmfHyper::default());
        let train = split.train_sets().to_vec();

        let clients: Vec<_> = train
            .iter()
            .enumerate()
            // cia-lint: allow(D05, ids and indices are bounded by the validated population/catalog size, which fits u32)
            .map(|(u, it)| spec.build_client(UserId::new(u as u32), it.clone(), policy, u as u64))
            .collect();
        let mut dense = FedAvg::new(clients, cfg);
        let mut dense_tape = ModelTape::default();
        dense.run(&mut dense_tape);

        let initial = spec.build_client(UserId::new(0), train[0].clone(), policy, 0).agg().to_vec();
        // cia-lint: allow(D05, ids and indices are bounded by the validated population/catalog size, which fits u32)
        let examples: Vec<u32> = train.iter().map(|s| s.len() as u32).collect();
        let factory_spec = spec.clone();
        let store = cia_models::ClientStore::sharded(
            64,
            examples,
            Box::new(move |i| {
                // cia-lint: allow(D05, ids and indices are bounded by the validated population/catalog size, which fits u32)
                factory_spec.build_shell(UserId::new(i as u32), train[i].clone(), policy, i as u64)
            }),
        );
        let mut lazy = FedAvg::sharded(store, initial, cfg);
        let mut lazy_tape = ModelTape::default();
        lazy.run(&mut lazy_tape);

        // Byte-identical: the lazy shared-workspace round replays the dense
        // round exactly — global model, observed snapshots, and losses.
        assert_eq!(dense.global_agg(), lazy.global_agg());
        assert_eq!(dense_tape.models, lazy_tape.models);
        for (d, l) in dense_tape.stats.iter().zip(&lazy_tape.stats) {
            assert_eq!(
                (d.round, d.participants, d.mean_loss),
                (l.round, l.participants, l.mean_loss)
            );
        }
        assert!(lazy_tape.stats.iter().all(|s| s.bytes_materialized > 0));
        // Only the sampled shards' descriptor blocks ever materialized.
        assert!(lazy.store().resident_shards() <= users.div_ceil(64));
    }

    #[test]
    fn sharded_lazy_round_matches_dense_at_paper_scale() {
        use cia_data::presets::{Preset, Scale};
        let data = Preset::MovieLens.generate(Scale::Paper, 11);
        let users = data.num_users();
        let items = data.num_items();
        let cfg = FedAvgConfig {
            rounds: 3,
            participation: 0.01,
            local_epochs: 2,
            seed: 7,
            ..Default::default()
        };
        dense_vs_lazy(users, items, SharingPolicy::Full, cfg, data);
    }

    #[test]
    fn sharded_lazy_round_matches_dense_under_share_less() {
        let data = SyntheticConfig::builder()
            .users(30)
            .items(80)
            .communities(4)
            .interactions_per_user(10)
            .seed(4)
            .build()
            .generate();
        let cfg = FedAvgConfig {
            rounds: 4,
            participation: 0.3,
            local_epochs: 2,
            seed: 13,
            weighting: Weighting::Uniform,
        };
        dense_vs_lazy(30, 80, SharingPolicy::ShareLess { tau: 0.4 }, cfg, data);
    }

    #[test]
    #[should_panic(expected = "dense client store")]
    fn sharded_store_rejects_update_transform() {
        use cia_defenses::{DpConfig, DpMechanism};
        let spec = GmfSpec::new(40, 8, GmfHyper::default());
        let store = cia_models::ClientStore::sharded(
            8,
            vec![2u32; 16],
            Box::new(move |i| {
                // cia-lint: allow(D05, ids and indices are bounded by the validated population/catalog size, which fits u32)
                spec.build_shell(UserId::new(i as u32), vec![1, 2], SharingPolicy::Full, i as u64)
            }),
        );
        let initial = vec![0.0f32; 40 * 8 + 8];
        let mut sim = FedAvg::sharded(store, initial, FedAvgConfig::default());
        sim.set_update_transform(Box::new(DpMechanism::new(DpConfig {
            clip: 1.0,
            noise_multiplier: 1.0,
        })));
    }

    #[test]
    fn sharded_bytes_materialized_matches_pre_registry_baseline() {
        // Equivalence pin: the per-round `bytes_materialized` stats were
        // captured *before* the store's ad-hoc byte meter moved onto the
        // `cia_obs` counter registry. The registry-backed path must
        // reproduce them bit-identically (stats are within-step counter
        // deltas, so the refactor is observable only if it miscounts).
        let data = SyntheticConfig::builder()
            .users(30)
            .items(80)
            .communities(4)
            .interactions_per_user(10)
            .seed(4)
            .build()
            .generate();
        let split = LeaveOneOut::new(&data, 20, 1).unwrap();
        let spec = GmfSpec::new(80, 8, GmfHyper::default());
        let train = split.train_sets().to_vec();
        let policy = SharingPolicy::Full;
        let initial = spec.build_client(UserId::new(0), train[0].clone(), policy, 0).agg().to_vec();
        // cia-lint: allow(D05, ids and indices are bounded by the validated population/catalog size, which fits u32)
        let examples: Vec<u32> = train.iter().map(|s| s.len() as u32).collect();
        let factory_spec = spec.clone();
        let store = cia_models::ClientStore::sharded(
            8,
            examples,
            Box::new(move |i| {
                // cia-lint: allow(D05, ids and indices are bounded by the validated population/catalog size, which fits u32)
                factory_spec.build_shell(UserId::new(i as u32), train[i].clone(), policy, i as u64)
            }),
        );
        let cfg = FedAvgConfig {
            rounds: 4,
            participation: 0.3,
            local_epochs: 2,
            seed: 13,
            weighting: Weighting::Uniform,
        };
        let mut lazy = FedAvg::sharded(store, initial, cfg);
        let bytes: Vec<u64> =
            (0..4).map(|_| lazy.step(&mut NullObserver).bytes_materialized).collect();
        assert_eq!(bytes, vec![288, 384, 448, 480]);
    }

    #[test]
    fn recorder_counts_clients_and_spans_phases() {
        let mut sim = make_sim(10, 2, SharingPolicy::Full);
        let rec = cia_obs::Recorder::new();
        rec.set_detail(true);
        sim.set_recorder(rec.clone());
        sim.run(&mut NullObserver);
        assert_eq!(rec.counter(Counter::ClientsTrained), 20);
        assert_eq!(rec.counter(Counter::BytesMaterialized), 0, "NullObserver skips snapshots");
        assert_eq!(rec.histogram(Metric::TrainMicros).count(), 20);
        let chunk = rec.drain();
        for phase in ["sample", "train", "attack", "aggregate", "evaluate"] {
            assert_eq!(
                chunk.spans.iter().filter(|s| s.name == phase).count(),
                2,
                "one {phase} span per round"
            );
        }
    }

    #[test]
    fn restore_replays_identically() {
        // Run 4 rounds straight; then run 2, export, rebuild, restore, run 2
        // more — the global models must agree exactly.
        let mut straight = make_sim(8, 4, SharingPolicy::Full);
        straight.run(&mut NullObserver);

        let mut first = make_sim(8, 4, SharingPolicy::Full);
        first.step(&mut NullObserver);
        first.step(&mut NullObserver);
        let round = first.round();
        let global = first.global_agg().to_vec();
        let states: Vec<Vec<f32>> = first.clients().iter().map(Participant::state_vec).collect();

        let mut resumed = make_sim(8, 4, SharingPolicy::Full);
        resumed.restore(round, global);
        for (c, s) in resumed.clients_mut().iter_mut().zip(&states) {
            c.restore_state(s);
        }
        resumed.step(&mut NullObserver);
        resumed.step(&mut NullObserver);
        assert_eq!(resumed.global_agg(), straight.global_agg());
    }

    /// Runs lockstep and evented from identical state, comparing every
    /// observable byte: the observed model stream, round stats, the final
    /// global, and every client's private state.
    fn assert_evented_matches_lockstep(
        mut make: impl FnMut() -> FedAvg<cia_models::GmfClient>,
        rounds: u64,
        policy: DeliveryPolicy,
    ) {
        let mut lockstep = make();
        let mut lock_tape = ModelTape::default();
        for _ in 0..rounds {
            lockstep.step(&mut lock_tape);
        }

        let mut evented = make();
        let mut ev_tape = ModelTape::default();
        for _ in 0..rounds {
            evented.step_evented(&mut ev_tape, policy);
        }

        assert_eq!(lock_tape.models, ev_tape.models);
        assert_eq!(lock_tape.stats, ev_tape.stats);
        assert_eq!(lockstep.global_agg(), evented.global_agg());
        for (l, e) in lockstep.clients().iter().zip(evented.clients()) {
            assert_eq!(l.state_vec(), e.state_vec());
        }
    }

    #[test]
    fn evented_round_replays_lockstep_bit_for_bit() {
        assert_evented_matches_lockstep(
            || make_sim(10, 3, SharingPolicy::Full),
            3,
            DeliveryPolicy::Lockstep,
        );
    }

    #[test]
    fn evented_round_matches_lockstep_with_partial_participation() {
        let make = || {
            let mut sim = make_sim(12, 4, SharingPolicy::Full);
            sim.cfg.participation = 0.5;
            sim.cfg.weighting = Weighting::ByExamples;
            sim
        };
        assert_evented_matches_lockstep(make, 4, DeliveryPolicy::Lockstep);
    }

    #[test]
    fn evented_round_matches_lockstep_under_dp() {
        use cia_defenses::{DpConfig, DpMechanism};
        let make = || {
            let mut sim = make_sim(8, 3, SharingPolicy::Full);
            sim.set_update_transform(Box::new(DpMechanism::new(DpConfig {
                clip: 1.0,
                noise_multiplier: 0.5,
            })));
            sim
        };
        assert_evented_matches_lockstep(make, 3, DeliveryPolicy::Lockstep);
    }

    #[test]
    fn interleaving_seeds_cannot_change_fl_bytes() {
        // The request/update chain keeps exactly one message in flight, so
        // any interleaving seed degenerates to the lockstep order.
        for seed in [0u64, 7, 0xDEAD_BEEF] {
            let make = || {
                let mut sim = make_sim(9, 2, SharingPolicy::Full);
                sim.cfg.participation = 0.6;
                sim
            };
            assert_evented_matches_lockstep(make, 2, DeliveryPolicy::Interleaved { seed });
        }
    }

    #[test]
    fn evented_all_offline_round_keeps_global() {
        let mut sim = make_sim(6, 1, SharingPolicy::Full);
        let before = sim.global_agg().to_vec();
        let stats = sim.step_evented(&mut Blackout, DeliveryPolicy::Lockstep);
        assert_eq!(stats.participants, 0);
        assert_eq!(stats.mean_loss, None);
        assert_eq!(sim.global_agg(), before.as_slice());
        assert_eq!(sim.round(), 1);
    }

    #[test]
    fn evented_round_fires_publish_hook_after_broadcast() {
        use std::cell::RefCell;
        use std::rc::Rc;
        type Published = Rc<RefCell<Vec<(u64, Vec<f32>)>>>;
        let published: Published = Rc::default();
        let sink = Rc::clone(&published);
        let mut sim = make_sim(5, 2, SharingPolicy::Full);
        sim.set_publish_hook(Box::new(move |t, clients, global| {
            assert_eq!(clients.len(), 5);
            sink.borrow_mut().push((t, global.to_vec()));
        }));
        sim.step_evented(&mut NullObserver, DeliveryPolicy::Lockstep);
        let after_first = sim.global_agg().to_vec();
        sim.step_evented(&mut NullObserver, DeliveryPolicy::Lockstep);
        let events = published.borrow();
        assert_eq!(events.len(), 2, "one broadcast per round");
        assert_eq!(events[0].0, 0);
        assert_eq!(events[0].1, after_first, "hook sees the post-aggregation global");
        assert_eq!(events[1].0, 1);
        assert_eq!(events[1].1, sim.global_agg());
    }

    #[test]
    fn evented_round_spans_phases_and_counts_like_lockstep() {
        let mut sim = make_sim(10, 2, SharingPolicy::Full);
        let rec = cia_obs::Recorder::new();
        rec.set_detail(true);
        sim.set_recorder(rec.clone());
        for _ in 0..2 {
            sim.step_evented(&mut NullObserver, DeliveryPolicy::Lockstep);
        }
        assert_eq!(rec.counter(Counter::ClientsTrained), 20);
        assert_eq!(rec.histogram(Metric::TrainMicros).count(), 20);
        let chunk = rec.drain();
        for phase in ["sample", "train", "attack", "aggregate", "evaluate"] {
            assert_eq!(
                chunk.spans.iter().filter(|s| s.name == phase).count(),
                2,
                "one {phase} span per round"
            );
        }
        // The per-message trace: every train request and model update gets
        // its own span slice nested under the round's train phase.
        for msg in ["msg:train_request", "msg:model_update"] {
            assert_eq!(
                chunk.spans.iter().filter(|s| s.name == msg).count(),
                20,
                "one {msg} span per sampled client per round"
            );
        }
    }
}
