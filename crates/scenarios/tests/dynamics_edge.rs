//! Edge-case coverage for the dynamics layer driven end to end through the
//! runner: populations that go entirely dark, 100% churn, sybil coalitions
//! outnumbering the honest nodes, and straggler delays beyond the horizon —
//! every case must complete without panicking, produce a schema-valid
//! stream, and report bounds that respect `upper_bound_online ≤
//! upper_bound` (the validator enforces the inequality on every record).

use cia_data::presets::{Preset, Scale};
use cia_scenarios::json::Json;
use cia_scenarios::runner::{run_scenario, validate_jsonl, RunOptions};
use cia_scenarios::spec::{DynamicsSpec, ModelKind, ProtocolKind, ScenarioSpec};

fn run_to_valid_stream(spec: &ScenarioSpec) -> String {
    let mut buf = Vec::new();
    let outcome = run_scenario(spec, "edge", &RunOptions::default(), &mut buf)
        .unwrap_or_else(|e| panic!("{}: {e}", spec.name));
    assert!(outcome.completed, "{} did not complete", spec.name);
    let text = String::from_utf8(buf).unwrap();
    validate_jsonl(&text).unwrap_or_else(|e| panic!("{}: invalid stream: {e}", spec.name));
    let out = &outcome.attack;
    assert!((0.0..=1.0).contains(&out.max_aac), "{}: AAC {}", spec.name, out.max_aac);
    assert!(
        out.upper_bound_online <= out.upper_bound + 1e-12,
        "{}: online bound {} above static {}",
        spec.name,
        out.upper_bound_online,
        out.upper_bound
    );
    text
}

fn base(protocol: ProtocolKind) -> ScenarioSpec {
    ScenarioSpec::new(Preset::MovieLens, ModelKind::Gmf, protocol, Scale::Smoke)
}

#[test]
fn zero_online_participants_for_a_full_round_is_survivable() {
    // Everyone online at round 0 leaves *during* round 0 (leave_prob 1) and
    // barely anyone rejoins: rounds with zero participants are guaranteed,
    // exercising the FedAvg keep-previous-global guard.
    let mut spec = base(ProtocolKind::Fl);
    spec.name = "blackout".to_string();
    spec.dynamics = DynamicsSpec {
        leave_prob: 1.0,
        join_prob: 0.02,
        initial_online: 0.1,
        ..DynamicsSpec::default()
    };
    let text = run_to_valid_stream(&spec);
    let mut saw_empty_round = false;
    for line in text.lines() {
        let v = Json::parse(line).unwrap();
        if v.get("type").unwrap().as_str() == Some("round_eval")
            && v.get("participants").unwrap().as_u64() == Some(0)
        {
            saw_empty_round = true;
            // Nobody acted: the live set is empty, so the online bound
            // collapses to zero even where the static bound does not.
            assert_eq!(v.get("upper_bound_online").unwrap().as_f64(), Some(0.0));
        }
    }
    assert!(saw_empty_round, "blackout never produced an all-offline evaluation round");
}

#[test]
fn hundred_percent_churn_flips_the_population_every_round() {
    // leave = join = 1: every online node leaves, every offline node
    // rejoins — the population alternates in two complementary waves.
    let mut spec = base(ProtocolKind::Fl);
    spec.name = "full-churn".to_string();
    spec.dynamics = DynamicsSpec {
        leave_prob: 1.0,
        join_prob: 1.0,
        initial_online: 0.5,
        ..DynamicsSpec::default()
    };
    run_to_valid_stream(&spec);
}

#[test]
fn sybil_coalition_larger_than_honest_population() {
    // 40 sybils against 8 honest users (smoke scale has 48): the coalition
    // engine must handle a near-total takeover.
    let mut spec = base(ProtocolKind::RandGossip);
    spec.name = "sybil-majority".to_string();
    spec.dynamics = DynamicsSpec { sybils: 40, ..DynamicsSpec::default() };
    run_to_valid_stream(&spec);
}

#[test]
fn sybil_count_beyond_the_population_is_capped() {
    // More sybils than nodes exist: the dynamics layer caps membership at
    // the population size instead of indexing out of bounds.
    let mut spec = base(ProtocolKind::RandGossip);
    spec.name = "sybil-overflow".to_string();
    spec.dynamics = DynamicsSpec { sybils: 10_000, ..DynamicsSpec::default() };
    run_to_valid_stream(&spec);
}

#[test]
fn straggler_delay_exceeding_the_horizon() {
    // Every node is a straggler with a mean delay far past the 8-round
    // smoke horizon: after their first action almost nobody returns, and
    // late rounds run nearly (or fully) empty.
    let mut spec = base(ProtocolKind::Fl);
    spec.name = "straggler-horizon".to_string();
    spec.dynamics = DynamicsSpec {
        straggler_fraction: 1.0,
        straggler_mean_delay: 1_000.0,
        ..DynamicsSpec::default()
    };
    let text = run_to_valid_stream(&spec);
    // The online count stays full (stragglers are online, just not acting),
    // while participants collapse after round 0 — the distinction the
    // schema's two fields exist to make.
    let mut last_participants = u64::MAX;
    for line in text.lines() {
        let v = Json::parse(line).unwrap();
        if v.get("type").unwrap().as_str() == Some("round_eval") {
            assert_eq!(v.get("online").unwrap().as_u64(), Some(48));
            last_participants = v.get("participants").unwrap().as_u64().unwrap();
        }
    }
    assert!(last_participants < 10, "stragglers kept acting: {last_participants}");
}
