#!/usr/bin/env bash
# Keeps the benchmarks from bit-rotting: every bench body runs once
# (`--test`), and clippy gates all targets (benches included) at -D warnings.
# Part of the verify flow; see ROADMAP.md.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== cargo bench -- --test (every benchmark body, one iteration)"
cargo bench -p cia-bench -- --test

echo "== scenario engine smoke (built-in suite + schema + resume)"
scripts/scenario_smoke.sh

echo "== cargo clippy --workspace --all-targets -- -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "bench smoke OK"
