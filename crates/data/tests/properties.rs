//! Property-based tests for the data substrate.

use cia_data::{
    jaccard_index, sample_negatives, top_k_similar, GroundTruth, SyntheticConfig, UserId, Zipf,
};
use proptest::prelude::*;
use rand::SeedableRng;

fn sorted_unique(max: u32, len: usize) -> impl Strategy<Value = Vec<u32>> {
    proptest::collection::btree_set(0..max, 0..len).prop_map(|s| s.into_iter().collect())
}

proptest! {
    #[test]
    fn jaccard_is_symmetric(a in sorted_unique(200, 40), b in sorted_unique(200, 40)) {
        prop_assert!((jaccard_index(&a, &b) - jaccard_index(&b, &a)).abs() < 1e-12);
    }

    #[test]
    fn jaccard_in_unit_interval(a in sorted_unique(200, 40), b in sorted_unique(200, 40)) {
        let j = jaccard_index(&a, &b);
        prop_assert!((0.0..=1.0).contains(&j));
    }

    #[test]
    fn jaccard_self_is_one(a in sorted_unique(200, 40)) {
        prop_assume!(!a.is_empty());
        prop_assert_eq!(jaccard_index(&a, &a), 1.0);
    }

    #[test]
    fn jaccard_matches_naive(a in sorted_unique(100, 30), b in sorted_unique(100, 30)) {
        use std::collections::BTreeSet;
        let sa: BTreeSet<u32> = a.iter().copied().collect();
        let sb: BTreeSet<u32> = b.iter().copied().collect();
        let inter = sa.intersection(&sb).count();
        let union = sa.union(&sb).count();
        let expected = if union == 0 { 0.0 } else { inter as f64 / union as f64 };
        prop_assert!((jaccard_index(&a, &b) - expected).abs() < 1e-12);
    }

    #[test]
    fn top_k_never_exceeds_k(target in sorted_unique(100, 30), k in 0usize..10) {
        let sets: Vec<Vec<u32>> = vec![vec![1, 2], vec![3], vec![1, 2, 3, 4]];
        let got = top_k_similar(
            &target,
            // cia-lint: allow(D05, test/bench populations are tiny; ids fit u32 with orders of magnitude to spare)
            sets.iter().enumerate().map(|(u, s)| (UserId::new(u as u32), s.as_slice())),
            k,
        );
        prop_assert!(got.len() <= k);
        // Results are distinct users.
        let mut ids: Vec<u32> = got.iter().map(|u| u.raw()).collect();
        ids.sort_unstable();
        ids.dedup();
        prop_assert_eq!(ids.len(), got.len());
    }

    #[test]
    fn zipf_sample_in_range(n in 1usize..400, s in 0.0f64..3.0, seed in any::<u64>()) {
        let z = Zipf::new(n, s).unwrap();
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        for _ in 0..50 {
            prop_assert!(z.sample(&mut rng) < n);
        }
    }

    #[test]
    fn negatives_avoid_observed(observed in sorted_unique(80, 20), seed in any::<u64>()) {
        let num_items = 100u32;
        let count = 10usize;
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let negs = sample_negatives(&observed, num_items, count, &mut rng);
        prop_assert_eq!(negs.len(), count);
        for &n in &negs {
            prop_assert!(n < num_items);
            prop_assert!(observed.binary_search(&n).is_err());
        }
    }

    #[test]
    fn inverted_index_ground_truth_matches_naive(
        // A small item universe forces many identical Jaccard values, so the
        // smaller-id tie-break is exercised constantly.
        sets in proptest::collection::vec(sorted_unique(12, 8), 2..14),
        k in 1usize..6,
    ) {
        let fast = GroundTruth::from_train_sets(&sets, k);
        let naive = GroundTruth::from_train_sets_naive(&sets, k);
        prop_assert_eq!(fast.num_targets(), naive.num_targets());
        // cia-lint: allow(D05, test/bench populations are tiny; ids fit u32 with orders of magnitude to spare)
        for owner in 0..sets.len() as u32 {
            prop_assert_eq!(
                fast.community_of(UserId::new(owner)),
                naive.community_of(UserId::new(owner)),
                "owner {} communities diverge", owner
            );
        }
    }

    #[test]
    fn generator_is_deterministic(seed in any::<u64>()) {
        let gen = || SyntheticConfig::builder()
            .users(12).items(60).communities(3).interactions_per_user(6)
            .seed(seed).build().generate();
        let a = gen();
        let b = gen();
        prop_assert_eq!(a.records(), b.records());
    }
}
