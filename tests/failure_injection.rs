//! Failure-injection and degenerate-input tests: the simulation must stay
//! finite, deterministic and non-panicking under hostile conditions
//! (destroyed models, minimal populations, extreme configurations).

use community_inference::prelude::*;
use rand::rngs::StdRng;

/// A transform that replaces every update with worst-case values.
struct Saboteur {
    value: f32,
}

impl cia_models::UpdateTransform for Saboteur {
    fn transform(&self, update: &mut [f32], _rng: &mut StdRng) {
        for v in update.iter_mut() {
            *v = self.value;
        }
    }
}

fn tiny_clients(users: usize, seed: u64) -> (GmfSpec, Vec<cia_models::GmfClient>, Vec<Vec<u32>>) {
    let data = SyntheticConfig::builder()
        .users(users)
        .items(60)
        .communities(3)
        .interactions_per_user(8)
        .seed(seed)
        .build()
        .generate();
    let split = LeaveOneOut::new(&data, 10, seed).unwrap();
    let spec = GmfSpec::new(60, 4, GmfHyper::default());
    let clients: Vec<_> = split
        .train_sets()
        .iter()
        .enumerate()
        .map(|(u, items)| {
            spec.build_client(UserId::new(u as u32), items.clone(), SharingPolicy::Full, u as u64)
        })
        .collect();
    (spec, clients, split.train_sets().to_vec())
}

fn attack_for(
    spec: &GmfSpec,
    train_sets: &[Vec<u32>],
    users: usize,
    k: usize,
) -> FlCia<ItemSetEvaluator<GmfSpec>> {
    let truth = GroundTruth::from_train_sets(train_sets, k);
    let evaluator = ItemSetEvaluator::new(spec.clone(), train_sets.to_vec(), false);
    let truths: Vec<_> =
        (0..users as u32).map(|u| truth.community_of(UserId::new(u)).to_vec()).collect();
    let owners: Vec<_> = (0..users as u32).map(|u| Some(UserId::new(u))).collect();
    FlCia::new(CiaConfig { k, beta: 0.9, eval_every: 1, seed: 0 }, evaluator, users, truths, owners)
}

#[test]
fn huge_constant_updates_do_not_poison_the_attack() {
    let (spec, clients, train_sets) = tiny_clients(10, 1);
    let mut attack = attack_for(&spec, &train_sets, 10, 2);
    let mut sim = FedAvg::new(clients, FedAvgConfig { rounds: 4, ..Default::default() });
    sim.set_update_transform(Box::new(Saboteur { value: 1e30 }));
    sim.run(&mut attack);
    let out = attack.outcome();
    // Accuracy may be garbage but everything stays finite and bounded.
    assert!(out.max_aac.is_finite());
    assert!((0.0..=1.0).contains(&out.max_aac));
}

#[test]
fn nan_updates_do_not_panic_the_ranking() {
    let (spec, clients, train_sets) = tiny_clients(10, 2);
    let mut attack = attack_for(&spec, &train_sets, 10, 2);
    let mut sim = FedAvg::new(clients, FedAvgConfig { rounds: 3, ..Default::default() });
    sim.set_update_transform(Box::new(Saboteur { value: f32::NAN }));
    sim.run(&mut attack);
    // NaN-safe comparator: ranking completes; outcome stays in range.
    let out = attack.outcome();
    assert!(out.max_aac.is_finite() && (0.0..=1.0).contains(&out.max_aac));
}

#[test]
fn minimal_population_gossip_survives() {
    // The smallest legal gossip network: out_degree + 1 nodes.
    let (_, clients, _) = tiny_clients(4, 3);
    let mut sim = GossipSim::new(
        clients,
        GossipConfig { rounds: 10, out_degree: 3, seed: 4, ..Default::default() },
    );
    let mut deliveries = 0usize;
    struct Count<'a>(&'a mut usize);
    impl cia_gossip::GossipObserver for Count<'_> {
        fn on_delivery(
            &mut self,
            _round: u64,
            _receiver: UserId,
            _model: &cia_models::SharedModel,
        ) {
            *self.0 += 1;
        }
    }
    sim.run(&mut Count(&mut deliveries));
    assert_eq!(deliveries, 40);
}

#[test]
fn single_member_communities_work() {
    let (spec, clients, train_sets) = tiny_clients(8, 5);
    let mut attack = attack_for(&spec, &train_sets, 8, 1);
    let mut sim = FedAvg::new(clients, FedAvgConfig { rounds: 3, ..Default::default() });
    sim.run(&mut attack);
    let out = attack.outcome();
    assert_eq!(out.k, 1);
    assert!((0.0..=1.0).contains(&out.max_aac));
}

#[test]
fn zero_noise_dp_equals_pure_clipping_behavior() {
    // eps = inf (noiseless clipping) must keep training stable and the
    // attack effective.
    let (spec, clients, train_sets) = tiny_clients(12, 7);
    let mut attack = attack_for(&spec, &train_sets, 12, 2);
    let mut sim =
        FedAvg::new(clients, FedAvgConfig { rounds: 8, local_epochs: 2, ..Default::default() });
    sim.set_update_transform(Box::new(DpMechanism::new(DpConfig {
        clip: 100.0, // effectively no clipping
        noise_multiplier: 0.0,
    })));
    sim.run(&mut attack);
    let out = attack.outcome();
    assert!(out.max_aac >= out.random_bound, "{} < {}", out.max_aac, out.random_bound);
}

#[test]
fn deterministic_across_identical_runs() {
    let run = || {
        let (spec, clients, train_sets) = tiny_clients(12, 9);
        let mut attack = attack_for(&spec, &train_sets, 12, 2);
        let mut sim =
            FedAvg::new(clients, FedAvgConfig { rounds: 5, seed: 77, ..Default::default() });
        sim.run(&mut attack);
        attack.outcome()
    };
    let a = run();
    let b = run();
    assert_eq!(a.max_aac, b.max_aac);
    assert_eq!(a.history, b.history);
}

#[test]
fn wake_fraction_extremes_are_stable() {
    let (_, clients, _) = tiny_clients(10, 11);
    // Nearly-zero wake fraction: most rounds are silent, nothing panics.
    let mut sim = GossipSim::new(
        clients,
        GossipConfig { rounds: 20, wake_fraction: 0.05, seed: 2, ..Default::default() },
    );
    sim.run(&mut cia_gossip::NullGossipObserver);
    assert_eq!(sim.round(), 20);
}
