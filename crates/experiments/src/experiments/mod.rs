//! One module per paper artifact; see `DESIGN.md` §4 for the index.

pub mod ablation;
pub mod aia;
pub mod fig1;
pub mod fig3;
pub mod fig4;
pub mod fig5;
pub mod mnist;
pub mod table1;
pub mod table2;
pub mod table3;
pub mod table4;
pub mod table5;
pub mod table6;
pub mod table7;
pub mod table8;
pub mod table9;
