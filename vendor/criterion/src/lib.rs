//! Vendored, dependency-free stand-in for the subset of `criterion` this
//! workspace uses.
//!
//! Implements a straightforward wall-clock harness behind the familiar API:
//! [`Criterion::bench_function`], [`Bencher::iter`], `criterion_group!` /
//! `criterion_main!`, and the config knobs the benches set (`sample_size`,
//! `warm_up_time`, `measurement_time`). Each benchmark warms up, then takes
//! `sample_size` samples (each a batch of iterations sized so a sample takes
//! roughly `measurement_time / sample_size`) and reports the median, min and
//! max nanoseconds per iteration.
//!
//! Extras for this workspace:
//!
//! * `cargo bench -- --test` runs every benchmark body once (smoke mode, used
//!   by `scripts/bench_smoke.sh` so benches can't bit-rot);
//! * a `<substring>` CLI filter matches benchmark names like upstream;
//! * when `CRITERION_JSON` is set, results are appended to that file as JSON
//!   lines `{"name": ..., "median_ns": ..., "min_ns": ..., "max_ns": ...}` —
//!   the hook `cia-bench` uses to emit `BENCH_kernels.json`.

#![forbid(unsafe_code)]

use std::fs::OpenOptions;
use std::io::Write as _;
use std::time::{Duration, Instant};

/// Runs closures and measures them.
pub struct Bencher {
    mode: Mode,
    /// Median/min/max ns per iteration of the last measurement.
    result: Option<Sample>,
}

#[derive(Clone, Copy)]
struct Sample {
    median_ns: f64,
    min_ns: f64,
    max_ns: f64,
}

#[derive(Clone, Copy)]
enum Mode {
    Test,
    Measure { sample_size: usize, warm_up: Duration, measurement: Duration },
}

impl Bencher {
    /// Benchmarks `f`, timing batches of calls.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        match self.mode {
            Mode::Test => {
                std::hint::black_box(f());
            }
            Mode::Measure { sample_size, warm_up, measurement } => {
                // Warm-up: run until the warm-up budget is spent, counting
                // iterations to size the measurement batches.
                let start = Instant::now();
                let mut warm_iters = 0u64;
                while start.elapsed() < warm_up {
                    std::hint::black_box(f());
                    warm_iters += 1;
                }
                let per_iter = warm_up.as_nanos() as f64 / warm_iters.max(1) as f64;
                let batch = ((measurement.as_nanos() as f64
                    / sample_size.max(1) as f64
                    / per_iter.max(1.0)) as u64)
                    .max(1);
                let mut samples: Vec<f64> = Vec::with_capacity(sample_size);
                for _ in 0..sample_size.max(1) {
                    let t = Instant::now();
                    for _ in 0..batch {
                        std::hint::black_box(f());
                    }
                    samples.push(t.elapsed().as_nanos() as f64 / batch as f64);
                }
                samples.sort_by(|a, b| a.partial_cmp(b).expect("finite timings"));
                self.result = Some(Sample {
                    median_ns: samples[samples.len() / 2],
                    min_ns: samples[0],
                    max_ns: samples[samples.len() - 1],
                });
            }
        }
    }
}

/// The benchmark driver.
pub struct Criterion {
    sample_size: usize,
    warm_up: Duration,
    measurement: Duration,
    test_mode: bool,
    filter: Option<String>,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            sample_size: 20,
            warm_up: Duration::from_millis(300),
            measurement: Duration::from_secs(2),
            test_mode: false,
            filter: None,
        }
    }
}

impl Criterion {
    /// Sets the number of timing samples per benchmark.
    #[must_use]
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n;
        self
    }

    /// Sets the warm-up duration per benchmark.
    #[must_use]
    pub fn warm_up_time(mut self, d: Duration) -> Self {
        self.warm_up = d;
        self
    }

    /// Sets the total measurement budget per benchmark.
    #[must_use]
    pub fn measurement_time(mut self, d: Duration) -> Self {
        self.measurement = d;
        self
    }

    /// Applies `cargo bench` CLI arguments: `--test` (run each body once) and
    /// an optional name substring filter. Called by `criterion_main!`.
    pub fn configure_from_args(mut self) -> Self {
        for arg in std::env::args().skip(1) {
            match arg.as_str() {
                "--test" => self.test_mode = true,
                // Flags cargo's bench harness forwards; ignore them.
                "--bench" | "--nocapture" | "--quiet" => {}
                a if a.starts_with('-') => {}
                name => self.filter = Some(name.to_string()),
            }
        }
        self
    }

    /// Opens a named group; group benchmarks are reported as
    /// `group/name` and may override the timing config.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            prefix: name.to_string(),
            sample_size: self.sample_size,
            warm_up: self.warm_up,
            measurement: self.measurement,
            criterion: self,
        }
    }

    /// Runs one named benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        if let Some(filter) = &self.filter {
            if !name.contains(filter.as_str()) {
                return self;
            }
        }
        let mode = if self.test_mode {
            Mode::Test
        } else {
            Mode::Measure {
                sample_size: self.sample_size,
                warm_up: self.warm_up,
                measurement: self.measurement,
            }
        };
        let mut bencher = Bencher { mode, result: None };
        f(&mut bencher);
        match bencher.result {
            None => println!("{name:<44} ... ok (test mode)"),
            Some(s) => {
                println!(
                    "{name:<44} median {:>12} /iter (min {}, max {})",
                    fmt_ns(s.median_ns),
                    fmt_ns(s.min_ns),
                    fmt_ns(s.max_ns)
                );
                if let Ok(path) = std::env::var("CRITERION_JSON") {
                    if let Ok(mut file) = OpenOptions::new().create(true).append(true).open(&path) {
                        let _ = writeln!(
                            file,
                            "{{\"name\": \"{name}\", \"median_ns\": {:.1}, \"min_ns\": {:.1}, \"max_ns\": {:.1}}}",
                            s.median_ns, s.min_ns, s.max_ns
                        );
                    }
                }
            }
        }
        self
    }
}

/// A group of related benchmarks sharing a name prefix and timing config.
pub struct BenchmarkGroup<'c> {
    criterion: &'c mut Criterion,
    prefix: String,
    sample_size: usize,
    warm_up: Duration,
    measurement: Duration,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timing samples for this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n;
        self
    }

    /// Sets the warm-up duration for this group.
    pub fn warm_up_time(&mut self, d: Duration) -> &mut Self {
        self.warm_up = d;
        self
    }

    /// Sets the measurement budget for this group.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.measurement = d;
        self
    }

    /// Runs one benchmark inside the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, f: F) -> &mut Self {
        let full = format!("{}/{name}", self.prefix);
        // Temporarily install the group's timing config.
        let saved =
            (self.criterion.sample_size, self.criterion.warm_up, self.criterion.measurement);
        self.criterion.sample_size = self.sample_size;
        self.criterion.warm_up = self.warm_up;
        self.criterion.measurement = self.measurement;
        self.criterion.bench_function(&full, f);
        (self.criterion.sample_size, self.criterion.warm_up, self.criterion.measurement) = saved;
        self
    }

    /// Ends the group (no-op; provided for API compatibility).
    pub fn finish(self) {}
}

fn fmt_ns(ns: f64) -> String {
    if ns >= 1e9 {
        format!("{:.3} s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.3} ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.3} µs", ns / 1e3)
    } else {
        format!("{ns:.1} ns")
    }
}

/// Re-exported for API compatibility; prefer `std::hint::black_box`.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Declares a benchmark group, mirroring criterion's two macro forms.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)*) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $config.configure_from_args();
            $( $target(&mut criterion); )+
        }
    };
    ($name:ident, $($target:path),+ $(,)*) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Declares the benchmark entry point.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)*) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn test_mode_runs_once_and_measure_mode_times() {
        let mut runs = 0u32;
        let mut b = Bencher { mode: Mode::Test, result: None };
        b.iter(|| runs += 1);
        assert_eq!(runs, 1);
        assert!(b.result.is_none());

        let mut b = Bencher {
            mode: Mode::Measure {
                sample_size: 3,
                warm_up: Duration::from_millis(5),
                measurement: Duration::from_millis(10),
            },
            result: None,
        };
        b.iter(|| std::hint::black_box(3u64.pow(7)));
        let s = b.result.expect("measured");
        assert!(s.min_ns <= s.median_ns && s.median_ns <= s.max_ns);
        assert!(s.median_ns > 0.0);
    }

    #[test]
    fn filter_skips_non_matching_benchmarks() {
        let mut c = Criterion {
            filter: Some("match_me".to_string()),
            test_mode: true,
            ..Criterion::default()
        };
        let mut ran = false;
        c.bench_function("other", |b| b.iter(|| ran = true));
        assert!(!ran);
        c.bench_function("yes_match_me_1", |b| b.iter(|| ran = true));
        assert!(ran);
    }
}
