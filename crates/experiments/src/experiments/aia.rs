//! §VIII-C2 — the AIA gradient classifier as a community-inference proxy,
//! compared against CIA on the same targets.

use crate::runner::{build_setup, ScaleParams};
use crate::tables::{pct, Table};
use cia_core::{AiaCommunityAttack, AiaConfig, CiaConfig, FlCia, ItemSetEvaluator};
use cia_data::presets::{Preset, Scale};
use cia_data::UserId;
use cia_federated::{FedAvg, FedAvgConfig};
use cia_models::{GmfHyper, GmfSpec, SharingPolicy};

/// Regenerates the AIA-vs-CIA comparison (single randomly selected target
/// community, as in the paper).
pub fn run(scale: Scale, seed: u64) -> Vec<Table> {
    let setup = build_setup(Preset::MovieLens, scale, None, seed);
    let params = ScaleParams::of(scale);
    let users = setup.data.num_users();
    let spec = GmfSpec::new(
        setup.data.num_items(),
        params.dim,
        GmfHyper { lr: 0.1, ..GmfHyper::default() },
    );
    // "Randomly selected community": the target donor is derived from the
    // seed so reruns with other seeds pick other communities.
    let target_user = (seed as usize * 7 + 3) % users;
    let target = setup.split.train_sets()[target_user].clone();
    // cia-lint: allow(D05, ids and indices are bounded by the validated population/catalog size, which fits u32)
    let truth = setup.truth.community_of(UserId::new(target_user as u32)).to_vec();

    let build_clients = || -> Vec<_> {
        setup
            .split
            .train_sets()
            .iter()
            .enumerate()
            .map(|(u, items)| {
                spec.build_client(
                    // cia-lint: allow(D05, ids and indices are bounded by the validated population/catalog size, which fits u32)
                    UserId::new(u as u32),
                    items.clone(),
                    SharingPolicy::Full,
                    seed ^ (u as u64).wrapping_mul(0xD6E8_FEB8),
                )
            })
            .collect()
    };
    let fed_cfg = FedAvgConfig {
        rounds: params.fl_rounds,
        local_epochs: params.local_epochs,
        seed,
        ..Default::default()
    };

    // AIA on the single target.
    let mut aia = AiaCommunityAttack::new(
        AiaConfig {
            cia: CiaConfig { k: setup.k, beta: 0.99, eval_every: params.fl_eval_every, seed },
            ..AiaConfig::default()
        },
        spec.clone(),
        target.clone(),
        users,
        truth.clone(),
        // cia-lint: allow(D05, ids and indices are bounded by the validated population/catalog size, which fits u32)
        Some(UserId::new(target_user as u32)),
    );
    let mut sim = FedAvg::new(build_clients(), fed_cfg);
    sim.run(&mut aia);
    let aia_out = aia.outcome();

    // CIA on the identical single target.
    let evaluator = ItemSetEvaluator::new(spec.clone(), vec![target], false);
    let mut cia = FlCia::new(
        CiaConfig { k: setup.k, beta: 0.99, eval_every: params.fl_eval_every, seed },
        evaluator,
        users,
        vec![truth],
        // cia-lint: allow(D05, ids and indices are bounded by the validated population/catalog size, which fits u32)
        vec![Some(UserId::new(target_user as u32))],
    );
    let mut sim = FedAvg::new(build_clients(), fed_cfg);
    sim.run(&mut cia);
    let cia_out = cia.outcome();

    let mut t = Table::new(
        format!("AIA as a community-inference proxy vs CIA (FL, GMF, MovieLens, {scale} scale)"),
        &["Attack", "Max AAC %", "Random bound %"],
    );
    t.row(vec!["AIA proxy".into(), pct(aia_out.max_aac), pct(aia_out.random_bound)]);
    t.row(vec!["CIA".into(), pct(cia_out.max_aac), pct(cia_out.random_bound)]);
    vec![t]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_aia_vs_cia_completes() {
        let tables = run(Scale::Smoke, 37);
        let rows = &tables[0].rows;
        assert_eq!(rows.len(), 2);
        let cia: f64 = rows[1][1].parse().unwrap();
        assert!((0.0..=100.0).contains(&cia));
    }
}
