//! `repro` — regenerate any table or figure of the paper.
//!
//! ```text
//! repro <experiment|all> [--scale smoke|small|paper] [--seed N] [--out DIR]
//! ```
//!
//! Experiments: `table1 table2 table3 table4 table5 table6 table7 table8
//! table9 fig1 fig3 fig4 fig5 aia mnist ablation`.

#![forbid(unsafe_code)]

use cia_data::presets::Scale;
use cia_experiments::experiments as exp;
use cia_experiments::tables::Table;
use std::path::PathBuf;
use std::process::ExitCode;
use std::time::Instant;

const EXPERIMENTS: [&str; 16] = [
    "table1", "table2", "table3", "table4", "table5", "table6", "table7", "table8", "table9",
    "fig1", "fig3", "fig4", "fig5", "aia", "mnist", "ablation",
];

fn dispatch(name: &str, scale: Scale, seed: u64) -> Option<Vec<Table>> {
    let tables = match name {
        "table1" => exp::table1::run(scale, seed),
        "table2" => exp::table2::run(scale, seed),
        "table3" => exp::table3::run(scale, seed),
        "table4" => exp::table4::run(scale, seed),
        "table5" => exp::table5::run(scale, seed),
        "table6" => exp::table6::run(scale, seed),
        "table7" => exp::table7::run(scale, seed),
        "table8" => exp::table8::run(scale, seed),
        "table9" => exp::table9::run(scale, seed),
        "fig1" => exp::fig1::run(scale, seed),
        "fig3" => exp::fig3::run(scale, seed),
        "fig4" => exp::fig4::run(scale, seed),
        "fig5" => exp::fig5::run(scale, seed),
        "aia" => exp::aia::run(scale, seed),
        "mnist" => exp::mnist::run(scale, seed),
        "ablation" => exp::ablation::run(scale, seed),
        _ => return None,
    };
    Some(tables)
}

fn usage() {
    eprintln!("usage: repro <experiment|all> [--scale smoke|small|paper] [--seed N] [--out DIR]");
    eprintln!("experiments: {}", EXPERIMENTS.join(" "));
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(which) = args.first().cloned() else {
        usage();
        return ExitCode::FAILURE;
    };
    let mut scale = Scale::Small;
    let mut seed = 42u64;
    let mut out_dir: Option<PathBuf> = None;
    let mut i = 1;
    while i < args.len() {
        match args[i].as_str() {
            "--scale" => {
                let Some(v) = args.get(i + 1).and_then(|s| Scale::parse(s)) else {
                    eprintln!("error: --scale expects smoke|small|paper");
                    return ExitCode::FAILURE;
                };
                if v == Scale::Million {
                    eprintln!(
                        "error: repro caps at --scale paper; the million profile is \
                         bench-only (scripts/bench_kernels.sh --scale million)"
                    );
                    return ExitCode::FAILURE;
                }
                scale = v;
                i += 2;
            }
            "--seed" => {
                let Some(v) = args.get(i + 1).and_then(|s| s.parse().ok()) else {
                    eprintln!("error: --seed expects an integer");
                    return ExitCode::FAILURE;
                };
                seed = v;
                i += 2;
            }
            "--out" => {
                let Some(v) = args.get(i + 1) else {
                    eprintln!("error: --out expects a directory");
                    return ExitCode::FAILURE;
                };
                out_dir = Some(PathBuf::from(v));
                i += 2;
            }
            other => {
                eprintln!("error: unknown argument `{other}`");
                usage();
                return ExitCode::FAILURE;
            }
        }
    }

    let names: Vec<&str> = if which == "all" {
        EXPERIMENTS.to_vec()
    } else if EXPERIMENTS.contains(&which.as_str()) {
        vec![which.as_str()]
    } else {
        eprintln!("error: unknown experiment `{which}`");
        usage();
        return ExitCode::FAILURE;
    };

    if let Some(dir) = &out_dir {
        if let Err(e) = std::fs::create_dir_all(dir) {
            eprintln!("error: cannot create {}: {e}", dir.display());
            return ExitCode::FAILURE;
        }
    }

    for name in names {
        // cia-lint: allow(D02, CLI progress timing printed to the console; experiments emit no deterministic transcripts)
        let start = Instant::now();
        let tables = dispatch(name, scale, seed).expect("validated above");
        let elapsed = start.elapsed();
        for (i, table) in tables.iter().enumerate() {
            println!("{}", table.to_text());
            if let Some(dir) = &out_dir {
                let file = dir.join(format!("{name}_{i}_{scale}.csv"));
                if let Err(e) = std::fs::write(&file, table.to_csv()) {
                    eprintln!("error: cannot write {}: {e}", file.display());
                    return ExitCode::FAILURE;
                }
            }
        }
        println!("[{name} completed in {:.1}s]\n", elapsed.as_secs_f64());
    }
    ExitCode::SUCCESS
}
