//! Clean fixture for D04: the SAFETY convention in both accepted shapes —
//! directly above the block, and at the head of a multi-line comment run.

fn peek(xs: &[u8]) -> u8 {
    // SAFETY: the caller guarantees `xs` is non-empty.
    unsafe { *xs.get_unchecked(0) }
}

fn peek_second(xs: &[u8]) -> u8 {
    // SAFETY: `xs.len() >= 2` is checked by every caller; the bound is
    // re-asserted in debug builds by the assert below, so the index is
    // always in range.
    unsafe { *xs.get_unchecked(1) }
}
