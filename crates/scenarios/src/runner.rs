//! The suite runner: executes [`ScenarioSpec`]s deterministically from their
//! seeds, streams one JSONL record per (scenario, evaluation round), and
//! checkpoints/restores full run state so long paper-scale suites survive
//! interruption.
//!
//! Record schema (all floats finite, one object per line):
//!
//! * `round_eval` — emitted at every attack-evaluation round:
//!   `type suite scenario dataset model protocol scale seed round aac best10
//!   upper_bound upper_bound_online random_bound online participants
//!   [mean_loss] [elapsed_ms]` — `mean_loss` is omitted on all-offline
//!   rounds (no participants, nothing to average) and
//!   `upper_bound_online` is the dynamics-aware
//!   bound (observed ∧ live community members) and never exceeds
//!   `upper_bound`.
//! * `scenario_summary` — emitted once per completed scenario:
//!   `type suite scenario dataset model protocol scale seed max_aac
//!   best10_aac max_round random_bound upper_bound upper_bound_online
//!   advantage utility utility_metric rounds evals completed [elapsed_ms]`
//!
//! * `trace` — emitted once per protocol round (plus a final record for the
//!   utility evaluation), timing-gated exactly like `elapsed_ms`:
//!   `type <shared keys> round round_us span_us counters [hist]` —
//!   `span_us` maps phase names to µs with the unattributed remainder under
//!   `other`; `counters` holds the round's registry deltas; `hist` holds
//!   per-metric `{count, sum_us, p50_us, p99_us}` latency summaries.
//!
//! `elapsed_ms`, `bytes_materialized`, `peak_rss_bytes` and every `trace`
//! record are wall-clock-derived and gated behind [`RunOptions::timing`], so
//! `--no-timing` runs are byte-identical given the same spec and seed — the
//! tracing layer stays *active* (every scenario runs with a detail-enabled
//! recorder), it just never writes into the deterministic stream.

use crate::checkpoint::{AttackState, Checkpoint, ProtocolState};
use crate::dynamics::{FlDynamics, GlDynamics, ParticipantDynamics};
use crate::json::{Json, ObjBuilder};
use crate::placement::{PlacementEngine, PlacementObserver, PlacementState};
use crate::setup::{try_build_setup, RecsysSetup};
use crate::spec::{DefenseKind, ModelKind, ProtocolKind, ScenarioSpec, SuiteSpec};
use cia_core::metrics::random_bound;
use cia_core::{
    AttackOutcome, CiaConfig, FlCia, GlCiaAllPlacements, GlCiaCoalition, ItemSetEvaluator,
    Recorder, RoundPoint, TopK, TraceChunk,
};
use cia_data::presets::Scale;
use cia_data::UserId;
use cia_defenses::{DpConfig, DpMechanism};
use cia_federated::{FedAvg, FedAvgConfig};
use cia_gossip::{GossipConfig, GossipObserver, GossipProtocol, GossipRoundStats, GossipSim};
use cia_models::parallel::par_map;
use cia_models::{
    f1_at_k, hit_ratio, GmfClient, GmfHyper, GmfSpec, Participant, PrmeClient, PrmeHyper, PrmeSpec,
    RelevanceScorer, SharedModel,
};
use cia_runtime::{Checkpointable, DeliveryPolicy, LivenessEvent};
use cia_serve::{Snapshot, SnapshotHub};
use std::io::Write;
use std::path::PathBuf;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// How a suite run behaves around its JSONL stream and checkpoints.
#[derive(Debug, Clone, Default)]
pub struct RunOptions {
    /// Include wall-clock `elapsed_ms` fields (the only non-deterministic
    /// part of the stream).
    pub timing: bool,
    /// Directory for checkpoint files; `None` disables checkpointing.
    pub checkpoint_dir: Option<PathBuf>,
    /// Save a checkpoint every this many rounds (0 = only when stopping).
    pub checkpoint_every: u64,
    /// Resume from an existing checkpoint if one is present.
    pub resume: bool,
    /// Stop (checkpointing first, when enabled) once this many rounds have
    /// completed — simulates a killed run; `None` runs to completion.
    pub stop_after_rounds: Option<u64>,
    /// Publish an immutable model snapshot into this hub at every round
    /// boundary, for concurrent top-k serving (`cia-serve`). Publication
    /// only *reads* quiesced round state — no RNG draws, no sink writes —
    /// so attaching a hub leaves the JSONL transcript byte-identical.
    pub publish: Option<Arc<SnapshotHub>>,
    /// Run rounds on the legacy fused lockstep loops instead of the
    /// event-driven scheduler. The default (evented, `DeliveryPolicy::
    /// Lockstep`) replays lockstep semantics exactly — transcripts are
    /// byte-identical either way; this switch exists as the compatibility
    /// escape hatch and for A/B timing.
    pub lockstep: bool,
    /// Permute same-virtual-time message deliveries with this seed
    /// (`DeliveryPolicy::Interleaved`). The protocol ports sort every
    /// reorderable mailbox on a canonical key before touching a float, so
    /// *any* seed reproduces the lockstep transcript byte for byte — the
    /// property the suite pins with proptest. `None` (the default) delivers
    /// FIFO. Ignored under `lockstep`.
    pub delivery_seed: Option<u64>,
}

impl RunOptions {
    /// The delivery policy the evented rounds run under.
    fn delivery_policy(&self) -> DeliveryPolicy {
        match self.delivery_seed {
            Some(seed) => DeliveryPolicy::Interleaved { seed },
            None => DeliveryPolicy::Lockstep,
        }
    }
}

/// Result of one scenario run.
#[derive(Debug, Clone)]
pub struct ScenarioOutcome {
    /// Scenario name.
    pub name: String,
    /// Attack summary (Max AAC, Best-10%, bounds, history).
    pub attack: AttackOutcome,
    /// Recommendation utility (`None` when the run stopped early or was
    /// skipped).
    pub utility: Option<f64>,
    /// Name of the utility metric.
    pub utility_metric: &'static str,
    /// Rounds completed.
    pub rounds_done: u64,
    /// Whether the scenario ran to completion.
    pub completed: bool,
    /// Whether a resume skipped the scenario because a completion marker
    /// showed its records are already in the stream.
    pub skipped: bool,
    /// Wall-clock duration of this invocation.
    pub elapsed: Duration,
    /// Per-round trace chunks drained from the scenario's recorder: one
    /// `(round, chunk)` entry per protocol round this *invocation* executed,
    /// plus a final entry (at `round == total`) for the utility evaluation.
    /// Recorder state is not checkpointed (wall-clock measurements cannot be
    /// replayed — see `crate::checkpoint`), so after a resume this covers
    /// only post-resume rounds.
    pub traces: Vec<(u64, TraceChunk)>,
}

/// Compatibility shape for `cia-experiments`: the result of one completed
/// run.
#[derive(Debug, Clone)]
pub struct RunResult {
    /// Attack summary.
    pub attack: AttackOutcome,
    /// Recommendation utility: HR@20 for GMF, F1@20 for PRME.
    pub utility: f64,
    /// Name of the utility metric.
    pub utility_metric: &'static str,
    /// Wall-clock duration of the run.
    pub elapsed: Duration,
}

/// Runs one scenario to completion with no JSONL stream and no checkpoints —
/// the entry point `cia-experiments` tables use.
///
/// # Panics
///
/// Panics if the spec fails validation (experiment code builds specs
/// programmatically, so a violation is a bug).
pub fn run_quiet(spec: &ScenarioSpec) -> RunResult {
    let mut sink = std::io::sink();
    let outcome =
        run_scenario(spec, "", &RunOptions::default(), &mut sink).expect("valid scenario spec");
    RunResult {
        attack: outcome.attack,
        utility: outcome.utility.expect("uninterrupted run completes"),
        utility_metric: outcome.utility_metric,
        elapsed: outcome.elapsed,
    }
}

/// Runs every scenario of a suite in order — sweeps expanded first —
/// streaming records into `sink`.
///
/// # Errors
///
/// Returns the first expansion, spec validation, I/O or checkpoint error.
pub fn run_suite(
    suite: &SuiteSpec,
    opts: &RunOptions,
    sink: &mut dyn Write,
) -> Result<Vec<ScenarioOutcome>, String> {
    let scenarios = suite.expanded()?;
    let mut outcomes = Vec::with_capacity(scenarios.len());
    for spec in &scenarios {
        outcomes.push(run_scenario(spec, &suite.name, opts, sink)?);
    }
    Ok(outcomes)
}

/// Runs one scenario, streaming records into `sink`.
///
/// # Errors
///
/// Returns the first spec validation, I/O or checkpoint error.
pub fn run_scenario(
    spec: &ScenarioSpec,
    suite: &str,
    opts: &RunOptions,
    sink: &mut dyn Write,
) -> Result<ScenarioOutcome, String> {
    spec.validate()?;
    // cia-lint: allow(D02, feeds only the timing-gated elapsed_ms fields and the printed summary; --no-timing never reads it)
    let start = Instant::now();
    let ctx = Ctx { spec, suite, opts, start };
    if opts.resume {
        if let Some(dir) = &opts.checkpoint_dir {
            // Accept checkpoints and completion markers written under the
            // legacy truncated-hash file names.
            Checkpoint::migrate_legacy_names(dir, &spec.name);
        }
    }
    // A suite killed in scenario N leaves scenarios 1..N completed with
    // their records already in the stream; the completion marker stops a
    // resume from re-running them and appending duplicates.
    if opts.resume && ctx.completion_marker_matches() {
        return Ok(ScenarioOutcome {
            name: spec.name.clone(),
            attack: cia_core::AttackTracker::new(1, 0).outcome(),
            utility: None,
            utility_metric: "",
            rounds_done: 0,
            completed: true,
            skipped: true,
            elapsed: start.elapsed(),
            traces: Vec::new(),
        });
    }
    // The scenario path keeps every client resident (attacks observe the
    // whole population); the million profile only exists for the sharded
    // lazy round and would need terabytes here — reject it up front with a
    // pointer to the path that can run it.
    if matches!(spec.scale, Scale::Million) {
        return Err(format!(
            "{}: --scale million exceeds the dense scenario runner's supported range \
             (10\u{2076} resident clients); use scripts/bench_kernels.sh --scale million \
             for the sharded lazy round",
            spec.name
        ));
    }
    let setup = try_build_setup(spec.preset, spec.scale, spec.k_override, spec.seed)
        .map_err(|e| format!("{}: {e}", spec.name))?;
    let mut outcome = match spec.model {
        ModelKind::Gmf => run_gmf(&ctx, &setup, sink),
        ModelKind::Prme => run_prme(&ctx, &setup, sink),
    }?;
    outcome.elapsed = start.elapsed();
    Ok(outcome)
}

/// Everything constant across one scenario invocation.
struct Ctx<'a> {
    spec: &'a ScenarioSpec,
    suite: &'a str,
    opts: &'a RunOptions,
    start: Instant,
}

impl Ctx<'_> {
    fn checkpoint_path(&self) -> Option<PathBuf> {
        self.opts.checkpoint_dir.as_ref().map(|dir| Checkpoint::path_for(dir, &self.spec.name))
    }

    fn completion_marker_path(&self) -> Option<PathBuf> {
        self.checkpoint_path().map(|p| p.with_extension("done"))
    }

    /// Whether a matching completion marker exists for this spec.
    fn completion_marker_matches(&self) -> bool {
        self.completion_marker_path().is_some_and(|p| {
            std::fs::read_to_string(p)
                .is_ok_and(|text| text.trim() == format!("{:016x}", self.spec.fingerprint()))
        })
    }

    /// Whether a checkpoint should be written after `done` rounds. Rounds
    /// that emitted records always checkpoint, keeping the stream's record
    /// count in lockstep with the checkpoint's `emitted` counter — a kill
    /// can then duplicate at most the current round's records on resume.
    fn checkpoint_due(&self, done: u64, stopping: bool, emitted_now: bool) -> bool {
        self.opts.checkpoint_dir.is_some()
            && (stopping
                || emitted_now
                || (self.opts.checkpoint_every > 0
                    && done.is_multiple_of(self.opts.checkpoint_every)))
    }

    fn stopping_at(&self, done: u64) -> bool {
        self.opts.stop_after_rounds.is_some_and(|limit| done >= limit)
    }
}

/// The GMF scorer every scenario run uses, with the runner's hyper choices —
/// public so serving paths (`scenario serve`, benches, tests) score with the
/// exact spec the training run built its clients from.
#[must_use]
pub fn gmf_scorer(num_items: u32, dim: usize) -> GmfSpec {
    GmfSpec::new(num_items, dim, GmfHyper { lr: 0.1, ..GmfHyper::default() })
}

/// The PRME scorer every scenario run uses (see [`gmf_scorer`]).
#[must_use]
pub fn prme_scorer(num_items: u32, dim: usize) -> PrmeSpec {
    PrmeSpec::new(num_items, dim, PrmeHyper { lr: 0.05, ..PrmeHyper::default() })
}

fn gmf_spec(setup: &RecsysSetup) -> GmfSpec {
    gmf_scorer(setup.data.num_items(), setup.params.dim)
}

fn prme_spec(setup: &RecsysSetup) -> PrmeSpec {
    prme_scorer(setup.data.num_items(), setup.params.dim)
}

fn run_gmf(
    ctx: &Ctx,
    setup: &RecsysSetup,
    sink: &mut dyn Write,
) -> Result<ScenarioOutcome, String> {
    let model_spec = gmf_spec(setup);
    let policy = ctx.spec.defense.policy();
    let clients: Vec<GmfClient> = setup
        .split
        .train_sets()
        .iter()
        .enumerate()
        .map(|(u, items)| {
            model_spec.build_client(
                // cia-lint: allow(D05, ids and indices are bounded by the validated population/catalog size, which fits u32)
                UserId::new(u as u32),
                items.clone(),
                policy,
                ctx.spec.seed ^ (u as u64).wrapping_mul(0xD6E8_FEB8),
            )
        })
        .collect();
    let eval_instances = setup.split.eval_instances().to_vec();
    let utility = move |clients: &[GmfClient]| -> f64 {
        // Clients evaluate independently in parallel; a hit count is
        // order-insensitive, so the result is identical for every
        // CIA_THREADS setting.
        let n = clients.len().min(eval_instances.len());
        let hits = par_map(n, |u| {
            let (c, inst) = (&clients[u], &eval_instances[u]);
            let pos = c.score_candidates(&[inst.primary()])[0];
            let negs = c.score_candidates(&inst.negatives);
            hit_ratio(pos, &negs, 20)
        });
        if n == 0 {
            return 0.0;
        }
        hits.iter().filter(|&&h| h).count() as f64 / n as f64
    };
    run_protocol(ctx, setup, model_spec, clients, utility, "HR@20", sink)
}

fn run_prme(
    ctx: &Ctx,
    setup: &RecsysSetup,
    sink: &mut dyn Write,
) -> Result<ScenarioOutcome, String> {
    let model_spec = prme_spec(setup);
    let policy = ctx.spec.defense.policy();
    let clients: Vec<PrmeClient> = setup
        .split
        .train_sets()
        .iter()
        .zip(setup.split.train_sequences())
        .enumerate()
        .map(|(u, (items, seq))| {
            model_spec.build_client(
                // cia-lint: allow(D05, ids and indices are bounded by the validated population/catalog size, which fits u32)
                UserId::new(u as u32),
                items.clone(),
                seq.clone(),
                policy,
                ctx.spec.seed ^ (u as u64).wrapping_mul(0xD6E8_FEB8),
            )
        })
        .collect();
    let eval_instances = setup.split.eval_instances().to_vec();
    let train_sets = setup.split.train_sets().to_vec();
    let num_items = setup.data.num_items();
    let utility = move |clients: &[PrmeClient]| -> f64 {
        // F1@20: rank the full catalog minus train items, compare the top 20
        // against the held-out positives (logit scores; ranking is
        // sigmoid-free by monotonicity). The catalog is scored in cache-sized
        // tiles fed through the bounded [`TopK`] selector, so evaluation
        // never allocates a catalog-length score vector per user — `TopK` is
        // exactly the full-sort prefix under the same total order, so the F1
        // is unchanged. Clients evaluate independently in parallel chunks;
        // the fold over per-client F1 values runs in client index order, so
        // the mean is identical for every CIA_THREADS setting.
        let n = clients.len().min(eval_instances.len()).min(train_sets.len());
        let f1s = par_map(n, |u| {
            let (c, (inst, train)) = (&clients[u], (&eval_instances[u], &train_sets[u]));
            let mut sel = TopK::new(20);
            let mut tile: Vec<u32> = Vec::with_capacity(EVAL_TILE);
            let mut start = 0u32;
            while start < num_items {
                // cia-lint: allow(D05, ids and indices are bounded by the validated population/catalog size, which fits u32)
                let end = num_items.min(start + EVAL_TILE as u32);
                tile.clear();
                tile.extend((start..end).filter(|j| train.binary_search(j).is_err()));
                for (s, &j) in c.score_candidates(&tile).iter().zip(&tile) {
                    sel.push(*s, j);
                }
                start = end;
            }
            f1_at_k(&sel.into_ids(), &inst.positives)
        });
        // cia-lint: allow(D07, sequential left-to-right fold over a slice in index order; the reduction order is fixed)
        f1s.iter().sum::<f64>() / clients.len() as f64
    };
    run_protocol(ctx, setup, model_spec, clients, utility, "F1@20", sink)
}

/// Items scored per tile during catalog evaluation: small enough that a
/// tile's ids + scores stay cache-resident, large enough to amortize the
/// per-call setup of the vectorized scoring kernels.
const EVAL_TILE: usize = 512;

/// Ranks `(score, item)` candidates by descending score with an ascending
/// item-id tie-break and returns the top `k` item ids — the same
/// deterministic, NaN-sinking order as every other rank site
/// ([`cia_core::metrics::rank_desc`], `cia_data::jaccard`). Equal scores
/// must never leave the cut-off at the mercy of catalog iteration order,
/// and NaN scores (a DP-destroyed model) rank last instead of panicking.
/// Built on the `O(k)`-memory streaming [`TopK`] selector, which returns
/// exactly the full-sort prefix under that order.
pub fn top_k_by_score(ranked: Vec<(f32, u32)>, k: usize) -> Vec<u32> {
    let mut sel = TopK::new(k);
    for (score, item) in ranked {
        sel.push(score, item);
    }
    sel.into_ids()
}

fn build_dp(spec: &ScenarioSpec, rounds: u64) -> Option<DpMechanism> {
    match spec.defense {
        DefenseKind::Dp { epsilon } => Some(match epsilon {
            Some(eps) => DpMechanism::with_target_epsilon(eps, 1e-6, rounds, 1.0, 2.0),
            None => DpMechanism::new(DpConfig { clip: 2.0, noise_multiplier: 0.0 }),
        }),
        _ => None,
    }
}

fn run_protocol<S, P>(
    ctx: &Ctx,
    setup: &RecsysSetup,
    scorer: S,
    clients: Vec<P>,
    utility: impl Fn(&[P]) -> f64,
    utility_metric: &'static str,
    sink: &mut dyn Write,
) -> Result<ScenarioOutcome, String>
where
    S: RelevanceScorer + Clone + 'static,
    P: Participant,
{
    let spec = ctx.spec;
    let n = setup.data.num_users();
    let share_less = matches!(spec.defense, DefenseKind::ShareLess { .. });
    let targets = setup.split.train_sets().to_vec();
    let cia = CiaConfig {
        k: setup.k,
        beta: spec.beta,
        eval_every: setup.params.eval_every(spec.protocol),
        seed: spec.seed ^ 0xC1A,
    };
    let dynamics = ParticipantDynamics::new(&spec.dynamics, n, spec.seed ^ 0xD11A);
    let evaluator = ItemSetEvaluator::new(scorer, targets, share_less);
    match spec.protocol {
        ProtocolKind::Fl => {
            run_fl(ctx, setup, cia, evaluator, clients, utility, utility_metric, dynamics, sink)
        }
        ProtocolKind::RandGossip | ProtocolKind::PersGossip => {
            run_gl(ctx, setup, cia, evaluator, clients, utility, utility_metric, dynamics, sink)
        }
    }
}

#[allow(clippy::too_many_arguments)]
fn run_fl<S, P>(
    ctx: &Ctx,
    setup: &RecsysSetup,
    cia: CiaConfig,
    evaluator: ItemSetEvaluator<S>,
    clients: Vec<P>,
    utility: impl Fn(&[P]) -> f64,
    utility_metric: &'static str,
    mut dynamics: ParticipantDynamics,
    sink: &mut dyn Write,
) -> Result<ScenarioOutcome, String>
where
    S: RelevanceScorer + Clone + 'static,
    P: Participant,
{
    let spec = ctx.spec;
    let n = setup.data.num_users();
    let total = setup.params.fl_rounds;
    let mut attack = FlCia::new(cia, evaluator, n, setup.truth_table(), setup.owner_table());
    let mut sim = FedAvg::new(
        clients,
        FedAvgConfig {
            rounds: total,
            local_epochs: setup.params.local_epochs,
            seed: spec.seed,
            ..Default::default()
        },
    );
    if let Some(m) = build_dp(spec, total) {
        sim.set_update_transform(Box::new(m));
    }
    // One recorder per scenario, detail always on: `--no-timing` byte
    // identity is a property of the *emission* gate, not of tracing being
    // compiled out or disabled. Never checkpointed — see `crate::checkpoint`.
    let rec = Recorder::new();
    rec.set_detail(true);
    sim.set_recorder(rec.clone());
    attack.set_recorder(rec.clone());
    let mut traces: Vec<(u64, TraceChunk)> = Vec::new();
    if let (Some(hub), false) = (&ctx.opts.publish, ctx.opts.lockstep) {
        // Evented rounds publish from inside the scheduler: the hook runs in
        // the post-broadcast quiesced window, replacing the runner's inline
        // round-boundary publication below.
        let hub = Arc::clone(hub);
        let dim = setup.params.dim;
        let publish_rec = rec.clone();
        sim.set_publish_hook(Box::new(move |_round, clients: &[P], global: &[f32]| {
            let _publish = publish_rec.span("publish");
            hub.publish(Snapshot::shared(dim, clients.iter().map(Participant::owner_emb), global));
        }));
    }

    let mut emitted: usize = 0;
    if ctx.opts.resume {
        if let Some(path) = ctx.checkpoint_path() {
            if path.exists() {
                let ck = Checkpoint::load(&path, spec.fingerprint())?;
                let ProtocolState::Fl { global } = ck.protocol else {
                    return Err(format!("{}: checkpoint protocol family mismatch", spec.name));
                };
                let AttackState::Cia(attack_state) = ck.attack else {
                    return Err(format!("{}: checkpoint attack family mismatch", spec.name));
                };
                if ck.clients.len() != n {
                    return Err(format!("{}: checkpoint population mismatch", spec.name));
                }
                for (c, s) in sim.clients_mut().iter_mut().zip(&ck.clients) {
                    c.restore_state(s);
                }
                sim.restore(ck.round, global);
                attack.restore_state(attack_state);
                attack.evaluator_mut().restore_adversary_embeddings(ck.adversary_embs);
                dynamics.restore_state(ck.dynamics);
                emitted = ck.emitted as usize;
            }
        }
    }

    let rb = random_bound(setup.k, n.saturating_sub(1));
    while sim.round() < total {
        let round_span = rec.span("round");
        let stats = {
            let mut obs = FlDynamics { inner: &mut attack, dynamics: &mut dynamics };
            if ctx.opts.lockstep {
                sim.step(&mut obs)
            } else {
                sim.step_evented(&mut obs, ctx.opts.delivery_policy())
            }
        };
        if ctx.opts.lockstep {
            if let Some(hub) = &ctx.opts.publish {
                // Round boundary: the global model is quiesced, so this is
                // the one point a serving snapshot can be cut without readers
                // ever observing a mid-round mixture. (Evented rounds publish
                // through the post-broadcast hook installed above instead.)
                let publish_span = rec.span("publish");
                hub.publish(Snapshot::shared(
                    setup.params.dim,
                    sim.clients().iter().map(Participant::owner_emb),
                    sim.global_agg(),
                ));
                drop(publish_span);
            }
        }
        let emitted_before = emitted;
        let emit_span = rec.span("emit");
        while emitted < attack.history().len() {
            let p = attack.history()[emitted].clone();
            emit_round_eval(
                ctx,
                sink,
                &p,
                rb,
                dynamics.online_count(),
                stats.participants,
                stats.mean_loss,
                stats.bytes_materialized,
            )?;
            emitted += 1;
        }
        drop(emit_span);
        let done = sim.round();
        let stopping = ctx.stopping_at(done);
        if ctx.checkpoint_due(done, stopping, emitted > emitted_before) {
            let checkpoint_span = rec.span("checkpoint");
            let ck = Checkpoint {
                fingerprint: spec.fingerprint(),
                round: done,
                emitted: emitted as u64,
                clients: sim.clients().iter().map(Participant::state_vec).collect(),
                protocol: ProtocolState::Fl { global: sim.global_agg().to_vec() },
                attack: AttackState::Cia(attack.export_state()),
                adversary_embs: attack.evaluator().adversary_embeddings().to_vec(),
                dynamics: dynamics.export_state(),
                placement: PlacementState::default(),
            };
            save_checkpoint(ctx, &ck)?;
            drop(checkpoint_span);
        }
        drop(round_span);
        let chunk = rec.drain();
        if ctx.opts.timing {
            emit_trace(ctx, sink, done - 1, &chunk)?;
        }
        traces.push((done - 1, chunk));
        if stopping {
            return Ok(partial_outcome(spec, attack.outcome(), utility_metric, done, traces));
        }
    }

    let utility_span = rec.span("utility");
    sim.sync_clients_to_global();
    let utility_value = utility(sim.clients());
    drop(utility_span);
    let chunk = rec.drain();
    if ctx.opts.timing {
        emit_trace(ctx, sink, total, &chunk)?;
    }
    traces.push((total, chunk));
    let outcome = attack.outcome();
    emit_summary(ctx, sink, &outcome, utility_value, utility_metric, total, emitted)?;
    clear_checkpoint(ctx);
    Ok(ScenarioOutcome {
        name: spec.name.clone(),
        attack: outcome,
        utility: Some(utility_value),
        utility_metric,
        rounds_done: total,
        completed: true,
        skipped: false,
        elapsed: Duration::ZERO,
        traces,
    })
}

/// Either gossip attack engine behind one observer surface.
enum GlAttack<S: RelevanceScorer> {
    Coalition(GlCiaCoalition<ItemSetEvaluator<S>>),
    All(GlCiaAllPlacements<ItemSetEvaluator<S>>),
}

impl<S: RelevanceScorer> GlAttack<S> {
    fn history(&self) -> &[RoundPoint] {
        match self {
            GlAttack::Coalition(a) => a.history(),
            GlAttack::All(a) => a.history(),
        }
    }

    fn outcome(&self) -> AttackOutcome {
        match self {
            GlAttack::Coalition(a) => a.outcome(),
            GlAttack::All(a) => a.outcome(),
        }
    }

    fn export_state(&self) -> AttackState {
        match self {
            GlAttack::Coalition(a) => AttackState::Cia(a.export_state()),
            GlAttack::All(a) => AttackState::Placements(a.export_state()),
        }
    }

    fn restore_state(&mut self, state: AttackState, name: &str) -> Result<(), String> {
        match (self, state) {
            (GlAttack::Coalition(a), AttackState::Cia(s)) => {
                a.restore_state(s);
                Ok(())
            }
            (GlAttack::All(a), AttackState::Placements(s)) => {
                a.restore_state(s);
                Ok(())
            }
            _ => Err(format!("{name}: checkpoint attack family mismatch")),
        }
    }

    fn adversary_embeddings(&self) -> Vec<Option<Vec<f32>>> {
        match self {
            GlAttack::Coalition(a) => a.evaluator().adversary_embeddings().to_vec(),
            GlAttack::All(a) => a.evaluator().adversary_embeddings().to_vec(),
        }
    }

    fn restore_adversary_embeddings(&mut self, embs: Vec<Option<Vec<f32>>>) {
        match self {
            GlAttack::Coalition(a) => a.evaluator_mut().restore_adversary_embeddings(embs),
            GlAttack::All(a) => a.evaluator_mut().restore_adversary_embeddings(embs),
        }
    }

    fn set_recorder(&mut self, rec: Recorder) {
        match self {
            GlAttack::Coalition(a) => a.set_recorder(rec),
            GlAttack::All(a) => a.set_recorder(rec),
        }
    }
}

impl<S: RelevanceScorer> GossipObserver for GlAttack<S> {
    fn on_round_start(&mut self, round: u64) {
        match self {
            GlAttack::Coalition(a) => a.on_round_start(round),
            GlAttack::All(a) => a.on_round_start(round),
        }
    }

    fn on_liveness(&mut self, event: LivenessEvent<'_>) {
        // The dynamics-filtered wake set feeds the engines' online bound.
        match self {
            GlAttack::Coalition(a) => a.on_liveness(event),
            GlAttack::All(a) => a.on_liveness(event),
        }
    }

    fn on_delivery(&mut self, round: u64, receiver: UserId, model: &SharedModel) {
        match self {
            GlAttack::Coalition(a) => a.on_delivery(round, receiver, model),
            GlAttack::All(a) => a.on_delivery(round, receiver, model),
        }
    }

    fn on_round_end(&mut self, stats: &GossipRoundStats) {
        match self {
            GlAttack::Coalition(a) => a.on_round_end(stats),
            GlAttack::All(a) => a.on_round_end(stats),
        }
    }
}

#[allow(clippy::too_many_arguments)]
fn run_gl<S, P>(
    ctx: &Ctx,
    setup: &RecsysSetup,
    cia: CiaConfig,
    evaluator: ItemSetEvaluator<S>,
    clients: Vec<P>,
    utility: impl Fn(&[P]) -> f64,
    utility_metric: &'static str,
    mut dynamics: ParticipantDynamics,
    sink: &mut dyn Write,
) -> Result<ScenarioOutcome, String>
where
    S: RelevanceScorer + Clone + 'static,
    P: Participant,
{
    let spec = ctx.spec;
    let n = setup.data.num_users();
    let total = setup.params.gl_rounds;
    let protocol = match spec.protocol {
        ProtocolKind::PersGossip => GossipProtocol::Pers { exploration: 0.4 },
        _ => GossipProtocol::Rand,
    };
    let mut sim = GossipSim::new(
        clients,
        GossipConfig { rounds: total, protocol, seed: spec.seed, ..Default::default() },
    );
    if let Some(m) = build_dp(spec, total) {
        sim.set_update_transform(Box::new(m));
    }
    // One recorder per scenario, detail always on (see `run_fl`).
    let rec = Recorder::new();
    rec.set_detail(true);
    sim.set_recorder(rec.clone());
    if let (Some(hub), false) = (&ctx.opts.publish, ctx.opts.lockstep) {
        // Gossip has no global model: each node serves from its own local
        // mixture, so the snapshot carries per-user agg rows. Under the
        // evented runtime the coordinator publishes at the RoundEnd slot.
        let hub = Arc::clone(hub);
        let dim = setup.params.dim;
        let publish_rec = rec.clone();
        sim.set_publish_hook(Box::new(move |_round, nodes: &[P]| {
            let _publish = publish_rec.span("publish");
            let agg_len = nodes.first().map_or(0, |c| c.agg().len());
            hub.publish(Snapshot::per_user(
                dim,
                agg_len,
                nodes.iter().map(|c| (c.owner_emb(), c.agg())),
            ));
        }));
    }
    let mut traces: Vec<(u64, TraceChunk)> = Vec::new();

    // Sybil coalitions (always-online adversary nodes) and the legacy
    // `colluders` knob both run the paper-exact coalition engine; a lone
    // adversary (or none specified) runs the all-placements sweep.
    // `coalition_size` is the single source of the precedence rule.
    let coalition = spec.coalition_size();
    let members: Vec<u32> = if spec.dynamics.sybils > 0 {
        dynamics.sybil_members()
    } else {
        // cia-lint: allow(D05, ids and indices are bounded by the validated population/catalog size, which fits u32)
        (0..coalition).map(|i| (i * n / coalition.max(1)) as u32).collect()
    };
    let mut attack = if members.is_empty() {
        GlAttack::All(GlCiaAllPlacements::new(cia, evaluator, n, setup.truth_table()))
    } else {
        GlAttack::Coalition(GlCiaCoalition::new(
            cia,
            evaluator,
            n,
            &members,
            setup.truth_table(),
            setup.owner_table(),
        ))
    };
    attack.set_recorder(rec.clone());
    // Adaptive sybil placement: passive traffic observation from the static
    // positions during the warm-up window, one relocation at its end. A
    // warm-up at or beyond the horizon can never fire — run the engine as
    // static up front so the whole-run delivery log is never collected (the
    // observable behavior is identical either way).
    let strategy = if spec.dynamics.placement_warmup >= total {
        crate::spec::PlacementStrategy::Static
    } else {
        spec.dynamics.placement
    };
    let mut placement = PlacementEngine::new(strategy, spec.dynamics.placement_warmup, members, n);

    let mut emitted: usize = 0;
    if ctx.opts.resume {
        if let Some(path) = ctx.checkpoint_path() {
            if path.exists() {
                let ck = Checkpoint::load(&path, spec.fingerprint())?;
                let ProtocolState::Gl(state) = ck.protocol else {
                    return Err(format!("{}: checkpoint protocol family mismatch", spec.name));
                };
                if ck.clients.len() != n {
                    return Err(format!("{}: checkpoint population mismatch", spec.name));
                }
                for (c, s) in sim.nodes_mut().iter_mut().zip(&ck.clients) {
                    c.restore_state(s);
                }
                sim.restore_state(state);
                attack.restore_state(ck.attack, &spec.name)?;
                attack.restore_adversary_embeddings(ck.adversary_embs);
                placement.restore_state(ck.placement);
                if placement.relocated() {
                    // Re-apply the relocation to the tables rebuilt from the
                    // spec — before the dynamics state restore, whose online
                    // bitmap already reflects post-relocation churn.
                    apply_relocation(&mut attack, &mut dynamics, placement.members());
                }
                dynamics.restore_state(ck.dynamics);
                emitted = ck.emitted as usize;
            }
        }
    }

    let rb = random_bound(setup.k, n.saturating_sub(1));
    while sim.round() < total {
        let round_span = rec.span("round");
        if let Some(new_members) = placement.maybe_relocate(sim.round(), sim.traffic()) {
            let new_members = new_members.to_vec();
            apply_relocation(&mut attack, &mut dynamics, &new_members);
        }
        let stats = {
            let mut obs = PlacementObserver { inner: &mut attack, engine: &mut placement };
            let mut obs = GlDynamics { inner: &mut obs, dynamics: &mut dynamics };
            if ctx.opts.lockstep {
                sim.step(&mut obs)
            } else {
                sim.step_evented(&mut obs, ctx.opts.delivery_policy())
            }
        };
        if ctx.opts.lockstep {
            if let Some(hub) = &ctx.opts.publish {
                // Gossip has no global model: each node serves from its own
                // local mixture, so the snapshot carries per-user agg rows.
                let publish_span = rec.span("publish");
                let agg_len = sim.nodes().first().map_or(0, |c| c.agg().len());
                hub.publish(Snapshot::per_user(
                    setup.params.dim,
                    agg_len,
                    sim.nodes().iter().map(|c| (c.owner_emb(), c.agg())),
                ));
                drop(publish_span);
            }
        }
        let emitted_before = emitted;
        let emit_span = rec.span("emit");
        while emitted < attack.history().len() {
            let p = attack.history()[emitted].clone();
            emit_round_eval(
                ctx,
                sink,
                &p,
                rb,
                dynamics.online_count(),
                stats.awake,
                stats.mean_loss,
                stats.bytes_materialized,
            )?;
            emitted += 1;
        }
        drop(emit_span);
        let done = sim.round();
        let stopping = ctx.stopping_at(done);
        if ctx.checkpoint_due(done, stopping, emitted > emitted_before) {
            let checkpoint_span = rec.span("checkpoint");
            let ck = Checkpoint {
                fingerprint: spec.fingerprint(),
                round: done,
                emitted: emitted as u64,
                clients: sim.nodes().iter().map(Participant::state_vec).collect(),
                protocol: ProtocolState::Gl(sim.export_state()),
                attack: attack.export_state(),
                adversary_embs: attack.adversary_embeddings(),
                dynamics: dynamics.export_state(),
                placement: placement.export_state(),
            };
            save_checkpoint(ctx, &ck)?;
            drop(checkpoint_span);
        }
        drop(round_span);
        let chunk = rec.drain();
        if ctx.opts.timing {
            emit_trace(ctx, sink, done - 1, &chunk)?;
        }
        traces.push((done - 1, chunk));
        if stopping {
            return Ok(partial_outcome(spec, attack.outcome(), utility_metric, done, traces));
        }
    }

    let utility_span = rec.span("utility");
    let utility_value = utility(sim.nodes());
    drop(utility_span);
    let chunk = rec.drain();
    if ctx.opts.timing {
        emit_trace(ctx, sink, total, &chunk)?;
    }
    traces.push((total, chunk));
    let outcome = attack.outcome();
    emit_summary(ctx, sink, &outcome, utility_value, utility_metric, total, emitted)?;
    clear_checkpoint(ctx);
    Ok(ScenarioOutcome {
        name: spec.name.clone(),
        attack: outcome,
        utility: Some(utility_value),
        utility_metric,
        rounds_done: total,
        completed: true,
        skipped: false,
        elapsed: Duration::ZERO,
        traces,
    })
}

/// Applies a coalition relocation: the attack engine's delivery filter and
/// the dynamics layer's always-online sybil table move to the new ids
/// together (sender-keyed momentum state survives untouched).
fn apply_relocation<S: RelevanceScorer>(
    attack: &mut GlAttack<S>,
    dynamics: &mut ParticipantDynamics,
    members: &[u32],
) {
    if let GlAttack::Coalition(a) = attack {
        a.set_members(members);
    }
    dynamics.set_sybil_members(members);
}

fn partial_outcome(
    spec: &ScenarioSpec,
    attack: AttackOutcome,
    utility_metric: &'static str,
    rounds_done: u64,
    traces: Vec<(u64, TraceChunk)>,
) -> ScenarioOutcome {
    ScenarioOutcome {
        name: spec.name.clone(),
        attack,
        utility: None,
        utility_metric,
        rounds_done,
        completed: false,
        skipped: false,
        elapsed: Duration::ZERO,
        traces,
    }
}

fn save_checkpoint(ctx: &Ctx, ck: &Checkpoint) -> Result<(), String> {
    let path = ctx.checkpoint_path().expect("checkpoint_due implies a directory");
    if let Some(dir) = path.parent() {
        std::fs::create_dir_all(dir)
            .map_err(|e| format!("cannot create {}: {e}", dir.display()))?;
    }
    ck.save(&path).map_err(|e| format!("cannot write {}: {e}", path.display()))
}

/// Removes the scenario's checkpoint after successful completion and leaves
/// a fingerprinted `.done` marker in its place, so a suite resume skips the
/// scenario (its records are already in the stream) instead of re-running it
/// and appending duplicates.
fn clear_checkpoint(ctx: &Ctx) {
    if let Some(path) = ctx.checkpoint_path() {
        let _ = std::fs::remove_file(path);
    }
    if let Some(marker) = ctx.completion_marker_path() {
        if let Some(dir) = marker.parent() {
            let _ = std::fs::create_dir_all(dir);
        }
        let _ = std::fs::write(marker, format!("{:016x}\n", ctx.spec.fingerprint()));
    }
}

fn base_record(ctx: &Ctx, kind: &str) -> ObjBuilder {
    ObjBuilder::new()
        .str("type", kind)
        .str("suite", ctx.suite)
        .str("scenario", &ctx.spec.name)
        .str("dataset", ctx.spec.preset.name())
        .str("model", ctx.spec.model.name())
        .str("protocol", ctx.spec.protocol.name())
        .str("scale", &ctx.spec.scale.to_string())
        .num("seed", ctx.spec.seed as f64)
}

fn write_record(sink: &mut dyn Write, record: &Json) -> Result<(), String> {
    let mut line = record.render();
    line.push('\n');
    sink.write_all(line.as_bytes()).map_err(|e| format!("cannot write record: {e}"))
}

#[allow(clippy::too_many_arguments)]
fn emit_round_eval(
    ctx: &Ctx,
    sink: &mut dyn Write,
    p: &RoundPoint,
    random_bound: f64,
    online: usize,
    participants: usize,
    mean_loss: Option<f32>,
    bytes_materialized: u64,
) -> Result<(), String> {
    let mut b = base_record(ctx, "round_eval")
        .num("round", p.round as f64)
        .num("aac", p.aac)
        .num("best10", p.best10)
        .num("upper_bound", p.upper_bound)
        .num("upper_bound_online", p.upper_bound_online)
        .num("random_bound", random_bound)
        .num("online", online as f64)
        .num("participants", participants as f64);
    // An all-offline round has no losses to average; the field is omitted
    // rather than written as a `0.0` sentinel (which would read as perfect
    // convergence and deflate report-level loss means).
    if let Some(loss) = mean_loss {
        b = b.num("mean_loss", f64::from(loss));
    }
    if ctx.opts.timing {
        // Timing-class fields (`--no-timing` golden transcripts never see
        // them): wall clock, the protocol's own materialization meter and
        // the OS-charged peak RSS.
        b = b.num("elapsed_ms", ctx.start.elapsed().as_millis() as f64);
        b = b.num("bytes_materialized", bytes_materialized as f64);
        if let Some(rss) = crate::mem::peak_rss_bytes() {
            b = b.num("peak_rss_bytes", rss as f64);
        }
    }
    write_record(sink, &b.build())
}

/// Emits one timing-gated `trace` record from a drained [`TraceChunk`]:
/// phase µs (with the round's unattributed remainder as `other`), counter
/// deltas and histogram summaries.
fn emit_trace(
    ctx: &Ctx,
    sink: &mut dyn Write,
    round: u64,
    chunk: &TraceChunk,
) -> Result<(), String> {
    // Phases in first-completion order. Depth-0 spans other than the
    // runner's `round` envelope (e.g. the final `utility` pass) count as
    // phases too; deeper nesting rolls up into its depth-1 parent.
    let mut names: Vec<&'static str> = Vec::new();
    let mut sums: Vec<u64> = Vec::new();
    let mut attributed = 0u64;
    let mut round_us: Option<u64> = None;
    for s in &chunk.spans {
        if s.depth == 0 && s.name == "round" {
            round_us = Some(round_us.unwrap_or(0) + s.dur_us);
            continue;
        }
        if s.depth > 1 {
            continue;
        }
        if s.depth == 1 {
            attributed += s.dur_us;
        }
        match names.iter().position(|&n| n == s.name) {
            Some(i) => sums[i] += s.dur_us,
            None => {
                names.push(s.name);
                sums.push(s.dur_us);
            }
        }
    }
    let mut spans_b = ObjBuilder::new();
    for (name, us) in names.iter().zip(&sums) {
        spans_b = spans_b.num(name, *us as f64);
    }
    if let Some(total) = round_us {
        spans_b = spans_b.num("other", total.saturating_sub(attributed) as f64);
    }
    let mut counters_b = ObjBuilder::new();
    for (c, delta) in &chunk.counters {
        counters_b = counters_b.num(c.name(), *delta as f64);
    }
    let mut b = base_record(ctx, "trace").num("round", round as f64);
    if let Some(total) = round_us {
        b = b.num("round_us", total as f64);
    }
    b = b.value("span_us", spans_b.build()).value("counters", counters_b.build());
    if !chunk.hists.is_empty() {
        let mut hists_b = ObjBuilder::new();
        for (m, h) in &chunk.hists {
            let summary = ObjBuilder::new()
                .num("count", h.count() as f64)
                .num("sum_us", h.sum as f64)
                .num("p50_us", h.quantile(0.5) as f64)
                .num("p99_us", h.quantile(0.99) as f64)
                .build();
            hists_b = hists_b.value(m.name(), summary);
        }
        b = b.value("hist", hists_b.build());
    }
    write_record(sink, &b.build())
}

fn emit_summary(
    ctx: &Ctx,
    sink: &mut dyn Write,
    outcome: &AttackOutcome,
    utility: f64,
    utility_metric: &str,
    rounds: u64,
    evals: usize,
) -> Result<(), String> {
    let mut b = base_record(ctx, "scenario_summary")
        .num("max_aac", outcome.max_aac)
        .num("best10_aac", outcome.best10_aac)
        .num("max_round", outcome.max_round as f64)
        .num("random_bound", outcome.random_bound)
        .num("upper_bound", outcome.upper_bound)
        .num("upper_bound_online", outcome.upper_bound_online)
        .num("advantage", outcome.advantage_over_random())
        .num("utility", utility)
        .str("utility_metric", utility_metric)
        .num("rounds", rounds as f64)
        .num("evals", evals as f64)
        .bool("completed", true);
    if ctx.opts.timing {
        b = b.num("elapsed_ms", ctx.start.elapsed().as_millis() as f64);
        if let Some(rss) = crate::mem::peak_rss_bytes() {
            b = b.num("peak_rss_bytes", rss as f64);
        }
    }
    write_record(sink, &b.build())
}

/// Validates a JSONL result stream against the record schema. Returns the
/// number of `(round_eval, scenario_summary)` records.
///
/// # Errors
///
/// Returns the line number and reason of the first invalid record.
pub fn validate_jsonl(input: &str) -> Result<(usize, usize), String> {
    const SHARED: [&str; 7] =
        ["suite", "scenario", "dataset", "model", "protocol", "scale", "seed"];
    let mut evals = 0usize;
    let mut summaries = 0usize;
    for (lineno, line) in input.lines().enumerate() {
        let fail = |msg: String| format!("line {}: {msg}", lineno + 1);
        if line.trim().is_empty() {
            continue;
        }
        let v = Json::parse(line).map_err(&fail)?;
        let kind = v
            .get("type")
            .and_then(Json::as_str)
            .ok_or_else(|| fail("missing `type`".to_string()))?;
        for key in SHARED {
            if v.get(key).is_none() {
                return Err(fail(format!("missing `{key}`")));
            }
        }
        let unit = |key: &str| -> Result<(), String> {
            let x = v
                .get(key)
                .and_then(Json::as_f64)
                .ok_or_else(|| fail(format!("missing numeric `{key}`")))?;
            if !(0.0..=1.0).contains(&x) {
                return Err(fail(format!("`{key}` = {x} outside [0, 1]")));
            }
            Ok(())
        };
        // Timing-class fields are optional (absent under `--no-timing`) but
        // must be integral counters when present.
        let timing = |key: &str| -> Result<(), String> {
            match v.get(key) {
                None => Ok(()),
                Some(x) => x
                    .as_u64()
                    .map(drop)
                    .ok_or_else(|| fail(format!("`{key}` must be a non-negative integer"))),
            }
        };
        match kind {
            "round_eval" => {
                v.get("round")
                    .and_then(Json::as_u64)
                    .ok_or_else(|| fail("missing integral `round`".to_string()))?;
                for key in ["aac", "best10", "upper_bound", "upper_bound_online", "random_bound"] {
                    unit(key)?;
                }
                // The online bound counts a subset of the members the static
                // bound counts; a violation means a producer bug.
                let upper = v.get("upper_bound").and_then(Json::as_f64).expect("checked");
                let online = v.get("upper_bound_online").and_then(Json::as_f64).expect("checked");
                if online > upper + 1e-9 {
                    return Err(fail(format!(
                        "`upper_bound_online` {online} exceeds `upper_bound` {upper}"
                    )));
                }
                for key in ["online", "participants"] {
                    v.get(key)
                        .and_then(Json::as_u64)
                        .ok_or_else(|| fail(format!("missing integral `{key}`")))?;
                }
                // Absent on all-offline rounds (no participants, nothing to
                // average); when present it must be numeric.
                if let Some(x) = v.get("mean_loss") {
                    x.as_f64()
                        .ok_or_else(|| fail("`mean_loss` must be numeric when present".into()))?;
                }
                for key in ["elapsed_ms", "bytes_materialized", "peak_rss_bytes"] {
                    timing(key)?;
                }
                evals += 1;
            }
            "scenario_summary" => {
                for key in
                    ["max_aac", "best10_aac", "random_bound", "upper_bound", "upper_bound_online"]
                {
                    unit(key)?;
                }
                let upper = v.get("upper_bound").and_then(Json::as_f64).expect("checked");
                let online = v.get("upper_bound_online").and_then(Json::as_f64).expect("checked");
                if online > upper + 1e-9 {
                    return Err(fail(format!(
                        "`upper_bound_online` {online} exceeds `upper_bound` {upper}"
                    )));
                }
                for key in ["max_round", "rounds", "evals"] {
                    v.get(key)
                        .and_then(Json::as_u64)
                        .ok_or_else(|| fail(format!("missing integral `{key}`")))?;
                }
                v.get("utility")
                    .and_then(Json::as_f64)
                    .ok_or_else(|| fail("missing numeric `utility`".to_string()))?;
                v.get("utility_metric")
                    .and_then(Json::as_str)
                    .ok_or_else(|| fail("missing `utility_metric`".to_string()))?;
                v.get("completed")
                    .and_then(Json::as_bool)
                    .ok_or_else(|| fail("missing boolean `completed`".to_string()))?;
                for key in ["elapsed_ms", "peak_rss_bytes"] {
                    timing(key)?;
                }
                summaries += 1;
            }
            "trace" => {
                // Trace records only exist in timed streams; everything in
                // them is an integral µs/count value.
                v.get("round")
                    .and_then(Json::as_u64)
                    .ok_or_else(|| fail("missing integral `round`".to_string()))?;
                timing("round_us")?;
                for key in ["span_us", "counters"] {
                    let obj = v
                        .get(key)
                        .and_then(Json::as_obj)
                        .ok_or_else(|| fail(format!("missing object `{key}`")))?;
                    for (name, val) in obj {
                        val.as_u64().ok_or_else(|| {
                            fail(format!("`{key}.{name}` must be a non-negative integer"))
                        })?;
                    }
                }
                if let Some(h) = v.get("hist") {
                    let obj =
                        h.as_obj().ok_or_else(|| fail("`hist` must be an object".to_string()))?;
                    for (metric, summary) in obj {
                        for key in ["count", "sum_us", "p50_us", "p99_us"] {
                            summary.get(key).and_then(Json::as_u64).ok_or_else(|| {
                                fail(format!("`hist.{metric}.{key}` must be an integer"))
                            })?;
                        }
                    }
                }
            }
            other => return Err(fail(format!("unknown record type `{other}`"))),
        }
    }
    if evals == 0 && summaries == 0 {
        return Err("stream contains no records".to_string());
    }
    Ok((evals, summaries))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::builtin_suite;
    use cia_data::presets::{Preset, Scale};

    #[test]
    fn million_scale_is_a_clear_error_not_a_panic() {
        let spec =
            ScenarioSpec::new(Preset::MovieLens, ModelKind::Gmf, ProtocolKind::Fl, Scale::Million);
        let mut sink = std::io::sink();
        let err = run_scenario(&spec, "t", &RunOptions::default(), &mut sink).unwrap_err();
        assert!(err.contains("supported range"), "unhelpful error: {err}");
        assert!(err.contains("bench_kernels.sh"), "no remediation pointer: {err}");
    }

    #[test]
    fn quiet_fl_gmf_run_matches_legacy_contract() {
        let spec =
            ScenarioSpec::new(Preset::MovieLens, ModelKind::Gmf, ProtocolKind::Fl, Scale::Smoke);
        let r = run_quiet(&spec);
        assert!(r.attack.max_aac > r.attack.random_bound, "attack below random");
        assert!(r.utility > 0.0, "HR must be positive");
        assert_eq!(r.utility_metric, "HR@20");
    }

    #[test]
    fn stream_is_schema_valid_and_ordered() {
        let suite = builtin_suite(Scale::Smoke, 11);
        let mut buf = Vec::new();
        let outcomes = run_suite(&suite, &RunOptions::default(), &mut buf).unwrap();
        assert_eq!(outcomes.len(), 3);
        assert!(outcomes.iter().all(|o| o.completed));
        let text = String::from_utf8(buf).unwrap();
        let (evals, summaries) = validate_jsonl(&text).unwrap();
        assert_eq!(summaries, 3);
        assert!(evals >= 3, "at least one eval per scenario, got {evals}");
        // Rounds are non-decreasing within a scenario.
        let mut last: Option<(String, u64)> = None;
        for line in text.lines() {
            let v = Json::parse(line).unwrap();
            if v.get("type").unwrap().as_str() == Some("round_eval") {
                let name = v.get("scenario").unwrap().as_str().unwrap().to_string();
                let round = v.get("round").unwrap().as_u64().unwrap();
                if let Some((prev_name, prev_round)) = &last {
                    if *prev_name == name {
                        assert!(round > *prev_round);
                    }
                }
                last = Some((name, round));
            }
        }
    }

    #[test]
    fn churn_reduces_observed_participants() {
        let suite = builtin_suite(Scale::Smoke, 3);
        let churn = suite.expanded().unwrap()[1].clone();
        let mut buf = Vec::new();
        run_scenario(&churn, "t", &RunOptions::default(), &mut buf).unwrap();
        let text = String::from_utf8(buf).unwrap();
        let mut saw_partial = false;
        for line in text.lines() {
            let v = Json::parse(line).unwrap();
            if v.get("type").unwrap().as_str() == Some("round_eval") {
                let participants = v.get("participants").unwrap().as_u64().unwrap();
                if participants < 48 {
                    saw_partial = true;
                }
            }
        }
        assert!(saw_partial, "churn never took anyone offline");
    }

    #[test]
    fn top_k_breaks_score_ties_by_item_id() {
        // Regression: the F1@20 ranking used to sort with `partial_cmp`
        // alone, so duplicated scores left the top-k dependent on catalog
        // iteration order. Ties must break on ascending item id regardless
        // of input order.
        let scores = vec![(0.5f32, 9u32), (0.7, 4), (0.5, 2), (0.7, 1), (0.5, 7)];
        let mut reversed = scores.clone();
        reversed.reverse();
        let a = top_k_by_score(scores, 3);
        let b = top_k_by_score(reversed, 3);
        assert_eq!(a, vec![1, 4, 2], "descending score, then ascending id");
        assert_eq!(a, b, "input order leaked into the ranking");
        // NaN scores (a DP-destroyed model) sink below every finite score
        // instead of panicking the utility evaluation.
        let with_nan = vec![(f32::NAN, 0u32), (0.1, 5), (f32::NAN, 3), (0.2, 8)];
        assert_eq!(top_k_by_score(with_nan, 3), vec![8, 5, 0]);
    }

    #[test]
    fn validator_rejects_malformed_streams() {
        assert!(validate_jsonl("").is_err());
        assert!(validate_jsonl("{\"type\":\"bogus\"}").unwrap_err().contains("missing"));
        let bad_aac = r#"{"type":"round_eval","suite":"s","scenario":"x","dataset":"d","model":"m","protocol":"p","scale":"smoke","seed":1,"round":0,"aac":1.5,"best10":0,"upper_bound":0,"upper_bound_online":0,"random_bound":0,"online":1,"participants":1,"mean_loss":0}"#;
        assert!(validate_jsonl(bad_aac).unwrap_err().contains("outside"));
        // A record missing the online bound is schema drift.
        let missing = r#"{"type":"round_eval","suite":"s","scenario":"x","dataset":"d","model":"m","protocol":"p","scale":"smoke","seed":1,"round":0,"aac":0.5,"best10":0,"upper_bound":1,"random_bound":0,"online":1,"participants":1,"mean_loss":0}"#;
        assert!(validate_jsonl(missing).unwrap_err().contains("upper_bound_online"));
        // An online bound above the static bound is a producer bug — in
        // either record type.
        let inverted = r#"{"type":"round_eval","suite":"s","scenario":"x","dataset":"d","model":"m","protocol":"p","scale":"smoke","seed":1,"round":0,"aac":0.5,"best10":0,"upper_bound":0.5,"upper_bound_online":0.8,"random_bound":0,"online":1,"participants":1,"mean_loss":0}"#;
        assert!(validate_jsonl(inverted).unwrap_err().contains("exceeds"));
        let inverted_summary = r#"{"type":"scenario_summary","suite":"s","scenario":"x","dataset":"d","model":"m","protocol":"p","scale":"smoke","seed":1,"max_aac":0.5,"best10_aac":0,"max_round":0,"random_bound":0,"upper_bound":0.5,"upper_bound_online":0.8,"advantage":0,"utility":0.5,"utility_metric":"HR@20","rounds":8,"evals":4,"completed":true}"#;
        assert!(validate_jsonl(inverted_summary).unwrap_err().contains("exceeds"));
        // `mean_loss` is legitimately absent on an all-offline round, but a
        // present non-numeric value is still schema drift.
        let no_loss = r#"{"type":"round_eval","suite":"s","scenario":"x","dataset":"d","model":"m","protocol":"p","scale":"smoke","seed":1,"round":0,"aac":0.5,"best10":0,"upper_bound":1,"upper_bound_online":0.5,"random_bound":0,"online":0,"participants":0}"#;
        assert_eq!(validate_jsonl(no_loss), Ok((1, 0)));
        let bad_loss = r#"{"type":"round_eval","suite":"s","scenario":"x","dataset":"d","model":"m","protocol":"p","scale":"smoke","seed":1,"round":0,"aac":0.5,"best10":0,"upper_bound":1,"upper_bound_online":0.5,"random_bound":0,"online":1,"participants":1,"mean_loss":"nan"}"#;
        assert!(validate_jsonl(bad_loss).unwrap_err().contains("mean_loss"));
    }
}
