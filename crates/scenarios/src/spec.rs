//! The declarative scenario specification: dataset × scale × model ×
//! protocol × defense × attack, plus the `dynamics` block describing how the
//! participant population behaves over time.
//!
//! A [`ScenarioSpec`] is a plain value: build it in code, or parse it from a
//! JSON document (see `crates/scenarios/README.md` for the format). Specs
//! compose into named [`SuiteSpec`]s; [`builtin_suite`] ships the three
//! canonical workloads every deployment question starts from —
//! `baseline-static`, `churn-20pct` and `colluding-sybils`.

use crate::json::{Json, ObjBuilder};
use cia_data::presets::{Preset, Scale};
use cia_models::SharingPolicy;
use serde::{Deserialize, Serialize};

/// Which recommendation model to train.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ModelKind {
    /// Generalized matrix factorization (evaluated on all three datasets).
    Gmf,
    /// Personalized ranking metric embedding (POI datasets only).
    Prme,
}

impl ModelKind {
    /// Display name matching the paper.
    pub fn name(self) -> &'static str {
        match self {
            ModelKind::Gmf => "GMF",
            ModelKind::Prme => "PRME",
        }
    }

    /// Parses `"gmf" | "prme"` (case-insensitive).
    pub fn parse(s: &str) -> Option<ModelKind> {
        match s.to_ascii_lowercase().as_str() {
            "gmf" => Some(ModelKind::Gmf),
            "prme" => Some(ModelKind::Prme),
            _ => None,
        }
    }
}

/// Which collaborative protocol to train over.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ProtocolKind {
    /// FedAvg federated learning.
    Fl,
    /// Rand-Gossip decentralized learning.
    RandGossip,
    /// Pers-Gossip personalized decentralized learning.
    PersGossip,
}

impl ProtocolKind {
    /// Display name matching the paper.
    pub fn name(self) -> &'static str {
        match self {
            ProtocolKind::Fl => "FL",
            ProtocolKind::RandGossip => "Rand-Gossip",
            ProtocolKind::PersGossip => "Pers-Gossip",
        }
    }

    /// Parses `"fl" | "rand-gossip" | "pers-gossip"` (case-insensitive).
    pub fn parse(s: &str) -> Option<ProtocolKind> {
        match s.to_ascii_lowercase().as_str() {
            "fl" => Some(ProtocolKind::Fl),
            "rand-gossip" | "randgossip" => Some(ProtocolKind::RandGossip),
            "pers-gossip" | "persgossip" => Some(ProtocolKind::PersGossip),
            _ => None,
        }
    }

    /// Whether the protocol is decentralized.
    pub fn is_gossip(self) -> bool {
        !matches!(self, ProtocolKind::Fl)
    }
}

/// Which defense the participants deploy.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum DefenseKind {
    /// Full model sharing, no defense.
    None,
    /// The Share-less policy (§III-D) with regularization factor τ.
    ShareLess {
        /// Item-update regularization factor.
        tau: f32,
    },
    /// Local DP-SGD (§III-E) calibrated to a target ε (δ = 1e-6, clip = 2 as
    /// in Figure 5); `None` means noiseless clipping (ε = ∞).
    Dp {
        /// Target privacy budget, or `None` for ε = ∞.
        epsilon: Option<f64>,
    },
}

impl DefenseKind {
    /// The sharing policy implied by the defense.
    pub fn policy(self) -> SharingPolicy {
        match self {
            DefenseKind::ShareLess { tau } => SharingPolicy::ShareLess { tau },
            _ => SharingPolicy::Full,
        }
    }
}

/// Scale-dependent simulation parameters.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ScaleParams {
    /// FL communication rounds.
    pub fl_rounds: u64,
    /// Gossip rounds.
    pub gl_rounds: u64,
    /// FL attack-evaluation cadence.
    pub fl_eval_every: u64,
    /// Gossip attack-evaluation cadence.
    pub gl_eval_every: u64,
    /// Local epochs per FL round.
    pub local_epochs: usize,
    /// Embedding dimensionality.
    pub dim: usize,
    /// Community size `K` (the paper's default is 50).
    pub k: usize,
    /// Negatives sampled for ranking evaluation (the NCF protocol uses 100).
    pub eval_negatives: usize,
    /// Held-out items per user on POI datasets (for F1).
    pub poi_holdout: usize,
}

impl ScaleParams {
    /// The parameters for a given scale.
    pub fn of(scale: Scale) -> Self {
        match scale {
            Scale::Smoke => ScaleParams {
                fl_rounds: 8,
                gl_rounds: 40,
                fl_eval_every: 2,
                gl_eval_every: 10,
                local_epochs: 2,
                dim: 8,
                k: 5,
                eval_negatives: 20,
                poi_holdout: 3,
            },
            Scale::Small => ScaleParams {
                fl_rounds: 20,
                gl_rounds: 400,
                fl_eval_every: 2,
                gl_eval_every: 40,
                local_epochs: 2,
                dim: 8,
                k: 20,
                eval_negatives: 50,
                poi_holdout: 5,
            },
            Scale::Paper => ScaleParams {
                fl_rounds: 30,
                gl_rounds: 1500,
                fl_eval_every: 3,
                gl_eval_every: 100,
                local_epochs: 2,
                dim: 8,
                k: 50,
                eval_negatives: 100,
                poi_holdout: 5,
            },
        }
    }

    /// Rounds for a protocol.
    pub fn rounds(&self, protocol: ProtocolKind) -> u64 {
        if protocol.is_gossip() {
            self.gl_rounds
        } else {
            self.fl_rounds
        }
    }

    /// Attack-evaluation cadence for a protocol.
    pub fn eval_every(&self, protocol: ProtocolKind) -> u64 {
        if protocol.is_gossip() {
            self.gl_eval_every
        } else {
            self.fl_eval_every
        }
    }
}

/// How the participant population behaves over time. The default block is
/// fully static — every scenario is a dynamics scenario, most with the
/// identity dynamics.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DynamicsSpec {
    /// Per-round probability that an online participant goes offline
    /// (churn). The stationary offline fraction is
    /// `leave_prob / (leave_prob + join_prob)`.
    pub leave_prob: f64,
    /// Per-round probability that an offline participant rejoins.
    pub join_prob: f64,
    /// Fraction of participants online at round 0.
    pub initial_online: f64,
    /// Fraction of participants that are stragglers: after each round they
    /// act in, they sit out a random number of rounds.
    pub straggler_fraction: f64,
    /// Mean of the straggler delay distribution (rounds; exponential,
    /// rounded up — the same family as the gossip view-refresh interval).
    pub straggler_mean_delay: f64,
    /// Independent per-round participation sampling on top of churn
    /// (1.0 = everyone eligible acts).
    pub participation: f64,
    /// Size of the adversarial sybil coalition: colluding nodes that are
    /// always online, never straggle, and pool their observations
    /// (Algorithm 2 line 14). Gossip protocols only.
    pub sybils: usize,
}

impl Default for DynamicsSpec {
    fn default() -> Self {
        DynamicsSpec {
            leave_prob: 0.0,
            join_prob: 1.0,
            initial_online: 1.0,
            straggler_fraction: 0.0,
            straggler_mean_delay: 3.0,
            participation: 1.0,
            sybils: 0,
        }
    }
}

impl DynamicsSpec {
    /// Whether the block is the identity dynamics (static population).
    pub fn is_static(&self) -> bool {
        self.leave_prob == 0.0
            && self.initial_online >= 1.0
            && self.straggler_fraction == 0.0
            && self.participation >= 1.0
            && self.sybils == 0
    }
}

/// One scenario: everything needed to run a workload end to end.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ScenarioSpec {
    /// Scenario name (JSONL records and checkpoint files key on it).
    pub name: String,
    /// Dataset preset.
    pub preset: Preset,
    /// Recommendation model.
    pub model: ModelKind,
    /// Collaborative protocol.
    pub protocol: ProtocolKind,
    /// Deployed defense.
    pub defense: DefenseKind,
    /// Number of adversary-controlled gossip nodes when no sybil block is
    /// given (0 or 1 = single adversary via the all-placements sweep; ≥ 2 =
    /// a colluding coalition with parameter momentum). Ignored in FL.
    pub colluders: usize,
    /// Momentum coefficient β (Eq. 4).
    pub beta: f32,
    /// Community size override (defaults to the scale's `k` when `None`).
    pub k_override: Option<usize>,
    /// Scale profile.
    pub scale: Scale,
    /// Master seed.
    pub seed: u64,
    /// Participant dynamics.
    pub dynamics: DynamicsSpec,
}

impl ScenarioSpec {
    /// A full-sharing, no-defense, single-adversary, static-population
    /// configuration.
    pub fn new(preset: Preset, model: ModelKind, protocol: ProtocolKind, scale: Scale) -> Self {
        ScenarioSpec {
            name: format!(
                "{}-{}-{}",
                preset.name().to_ascii_lowercase(),
                model.name().to_ascii_lowercase(),
                protocol.name().to_ascii_lowercase()
            ),
            preset,
            model,
            protocol,
            defense: DefenseKind::None,
            colluders: 0,
            beta: 0.99,
            k_override: None,
            scale,
            seed: 42,
            dynamics: DynamicsSpec::default(),
        }
    }

    /// Size of the adversarial coalition the gossip runner will actually
    /// field: the sybil block wins over the legacy `colluders` knob, and 0
    /// or 1 colluder means the all-placements sweep (no coalition engine).
    pub fn coalition_size(&self) -> usize {
        if self.dynamics.sybils > 0 {
            self.dynamics.sybils
        } else if self.colluders >= 2 {
            self.colluders
        } else {
            0
        }
    }

    /// Checks the spec for internal consistency.
    ///
    /// # Errors
    ///
    /// Returns a human-readable description of the first violated rule.
    pub fn validate(&self) -> Result<(), String> {
        let d = &self.dynamics;
        if self.name.is_empty() {
            return Err("scenario name must be non-empty".to_string());
        }
        if !(0.0..=1.0).contains(&f64::from(self.beta)) {
            return Err(format!("{}: beta must be in [0, 1]", self.name));
        }
        if self.model == ModelKind::Prme && !self.preset.has_sequences() {
            return Err(format!(
                "{}: PRME needs check-in sequences; {} has none",
                self.name,
                self.preset.name()
            ));
        }
        for (label, p) in [
            ("leave_prob", d.leave_prob),
            ("join_prob", d.join_prob),
            ("straggler_fraction", d.straggler_fraction),
        ] {
            if !(0.0..=1.0).contains(&p) {
                return Err(format!("{}: {label} must be in [0, 1]", self.name));
            }
        }
        for (label, p) in [("initial_online", d.initial_online), ("participation", d.participation)]
        {
            if !(p > 0.0 && p <= 1.0) {
                return Err(format!("{}: {label} must be in (0, 1]", self.name));
            }
        }
        if d.leave_prob > 0.0 && d.join_prob == 0.0 {
            return Err(format!(
                "{}: leave_prob > 0 with join_prob = 0 drains the population",
                self.name
            ));
        }
        if d.straggler_fraction > 0.0 && d.straggler_mean_delay < 1.0 {
            return Err(format!("{}: straggler_mean_delay must be ≥ 1 round", self.name));
        }
        if d.sybils > 0 && !self.protocol.is_gossip() {
            return Err(format!(
                "{}: sybil coalitions need a gossip protocol (the FL adversary is the server)",
                self.name
            ));
        }
        if d.sybils > 0 && self.colluders > 0 {
            return Err(format!(
                "{}: set either dynamics.sybils or colluders, not both",
                self.name
            ));
        }
        Ok(())
    }

    /// Serializes into the spec JSON format.
    pub fn to_json(&self) -> Json {
        let defense = match self.defense {
            DefenseKind::None => ObjBuilder::new().str("kind", "none").build(),
            DefenseKind::ShareLess { tau } => {
                ObjBuilder::new().str("kind", "share-less").num("tau", f64::from(tau)).build()
            }
            DefenseKind::Dp { epsilon } => {
                let b = ObjBuilder::new().str("kind", "dp");
                match epsilon {
                    Some(e) => b.num("epsilon", e).build(),
                    None => b.value("epsilon", Json::Null).build(),
                }
            }
        };
        let d = &self.dynamics;
        let dynamics = ObjBuilder::new()
            .num("leave_prob", d.leave_prob)
            .num("join_prob", d.join_prob)
            .num("initial_online", d.initial_online)
            .num("straggler_fraction", d.straggler_fraction)
            .num("straggler_mean_delay", d.straggler_mean_delay)
            .num("participation", d.participation)
            .num("sybils", d.sybils as f64)
            .build();
        let mut b = ObjBuilder::new()
            .str("name", &self.name)
            .str("preset", &self.preset.name().to_ascii_lowercase())
            .str("model", &self.model.name().to_ascii_lowercase())
            .str("protocol", &self.protocol.name().to_ascii_lowercase())
            .value("defense", defense)
            .num("colluders", self.colluders as f64)
            .num("beta", f64::from(self.beta));
        if let Some(k) = self.k_override {
            b = b.num("k", k as f64);
        }
        b.str("scale", &self.scale.to_string())
            .num("seed", self.seed as f64)
            .value("dynamics", dynamics)
            .build()
    }

    /// Parses a scenario object. Missing optional fields take their
    /// defaults; `scale` and `seed` fall back to the suite-level values.
    /// Unknown keys are rejected — a typo that silently fell back to a
    /// default would run a materially different experiment.
    ///
    /// # Errors
    ///
    /// Returns a description of the first malformed or unknown field.
    pub fn from_json(v: &Json, default_scale: Scale, default_seed: u64) -> Result<Self, String> {
        let name = v
            .get("name")
            .and_then(Json::as_str)
            .ok_or("scenario needs a string `name`")?
            .to_string();
        let fail = |msg: &str| format!("scenario `{name}`: {msg}");
        check_keys(
            v,
            &[
                "name", "preset", "model", "protocol", "defense", "colluders", "beta", "k",
                "scale", "seed", "dynamics",
            ],
            &format!("scenario `{name}`"),
        )?;
        if let Some(d) = v.get("defense") {
            check_keys(d, &["kind", "tau", "epsilon"], &format!("scenario `{name}` defense"))?;
        }
        if let Some(d) = v.get("dynamics") {
            check_keys(
                d,
                &[
                    "leave_prob",
                    "join_prob",
                    "initial_online",
                    "straggler_fraction",
                    "straggler_mean_delay",
                    "participation",
                    "sybils",
                ],
                &format!("scenario `{name}` dynamics"),
            )?;
        }
        // Every reader distinguishes *absent* (take the default) from
        // *present but mistyped/unrepresentable* (error) — a spec that names
        // a field gets exactly that field or a diagnostic, never a silent
        // default.
        let str_field = |key: &str| -> Result<Option<&str>, String> {
            match v.get(key) {
                None => Ok(None),
                Some(x) => {
                    x.as_str().map(Some).ok_or_else(|| fail(&format!("`{key}` must be a string")))
                }
            }
        };
        let int_field = |obj: &Json, key: &str, label: &str| -> Result<Option<u64>, String> {
            match obj.get(key) {
                None => Ok(None),
                Some(x) => x.as_u64().map(Some).ok_or_else(|| {
                    fail(&format!("{label}`{key}` must be an integer below 2^53"))
                }),
            }
        };
        let num_field = |obj: &Json, key: &str, label: &str| -> Result<Option<f64>, String> {
            match obj.get(key) {
                None => Ok(None),
                Some(x) => x
                    .as_f64()
                    .map(Some)
                    .ok_or_else(|| fail(&format!("{label}`{key}` must be a number"))),
            }
        };
        let preset = match str_field("preset")? {
            Some(s) => parse_preset(s).ok_or_else(|| fail("unknown `preset`"))?,
            None => Preset::MovieLens,
        };
        let model = match str_field("model")? {
            Some(s) => ModelKind::parse(s).ok_or_else(|| fail("unknown `model`"))?,
            None => ModelKind::Gmf,
        };
        let protocol = match str_field("protocol")? {
            Some(s) => ProtocolKind::parse(s).ok_or_else(|| fail("unknown `protocol`"))?,
            None => ProtocolKind::Fl,
        };
        let defense = match v.get("defense") {
            None => DefenseKind::None,
            Some(d) => {
                let kind = match d.get("kind") {
                    None => "none",
                    Some(x) => {
                        x.as_str().ok_or_else(|| fail("defense `kind` must be a string"))?
                    }
                };
                match kind {
                    "none" => DefenseKind::None,
                    "share-less" | "shareless" => DefenseKind::ShareLess {
                        tau: d
                            .get("tau")
                            .and_then(Json::as_f64)
                            .ok_or_else(|| fail("share-less defense needs `tau`"))?
                            as f32,
                    },
                    "dp" => DefenseKind::Dp {
                        epsilon: match d.get("epsilon") {
                            None => None,
                            Some(e) if e.is_null() => None,
                            Some(e) => {
                                Some(e.as_f64().ok_or_else(|| fail("`epsilon` must be numeric"))?)
                            }
                        },
                    },
                    _ => return Err(fail("unknown defense `kind`")),
                }
            }
        };
        let scale = match str_field("scale")? {
            Some(s) => Scale::parse(s).ok_or_else(|| fail("unknown `scale`"))?,
            None => default_scale,
        };
        let dynamics = match v.get("dynamics") {
            None => DynamicsSpec::default(),
            Some(d) => {
                let base = DynamicsSpec::default();
                let f = |key: &str, dflt: f64| -> Result<f64, String> {
                    Ok(num_field(d, key, "dynamics ")?.unwrap_or(dflt))
                };
                DynamicsSpec {
                    leave_prob: f("leave_prob", base.leave_prob)?,
                    join_prob: f("join_prob", base.join_prob)?,
                    initial_online: f("initial_online", base.initial_online)?,
                    straggler_fraction: f("straggler_fraction", base.straggler_fraction)?,
                    straggler_mean_delay: f("straggler_mean_delay", base.straggler_mean_delay)?,
                    participation: f("participation", base.participation)?,
                    sybils: int_field(d, "sybils", "dynamics ")?.unwrap_or(0) as usize,
                }
            }
        };
        let spec = ScenarioSpec {
            preset,
            model,
            protocol,
            defense,
            colluders: int_field(v, "colluders", "")?.unwrap_or(0) as usize,
            beta: num_field(v, "beta", "")?.unwrap_or(0.99) as f32,
            k_override: int_field(v, "k", "")?.map(|k| k as usize),
            scale,
            seed: int_field(v, "seed", "")?.unwrap_or(default_seed),
            dynamics,
            name,
        };
        spec.validate()?;
        Ok(spec)
    }

    /// A stable fingerprint of the spec (FNV-1a over the canonical JSON),
    /// used to refuse resuming a checkpoint against a different spec.
    pub fn fingerprint(&self) -> u64 {
        fnv1a64(self.to_json().render().bytes())
    }
}

/// FNV-1a over a byte stream — the crate's one hash, shared by spec
/// fingerprints and checkpoint file naming.
pub(crate) fn fnv1a64(bytes: impl IntoIterator<Item = u8>) -> u64 {
    let mut h: u64 = 0xCBF2_9CE4_8422_2325;
    for b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

/// Rejects keys outside the schema — declarative configs must fail loudly
/// on typos, not silently fall back to defaults.
fn check_keys(v: &Json, allowed: &[&str], ctx: &str) -> Result<(), String> {
    if let Json::Obj(pairs) = v {
        for (k, _) in pairs {
            if !allowed.contains(&k.as_str()) {
                return Err(format!(
                    "{ctx}: unknown key `{k}` (allowed: {})",
                    allowed.join(", ")
                ));
            }
        }
    }
    Ok(())
}

fn parse_preset(s: &str) -> Option<Preset> {
    match s.to_ascii_lowercase().as_str() {
        "movielens" => Some(Preset::MovieLens),
        "foursquare" => Some(Preset::Foursquare),
        "gowalla" => Some(Preset::Gowalla),
        _ => None,
    }
}

/// A named collection of scenarios, run back to back into one JSONL stream.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SuiteSpec {
    /// Suite name (stamped on every record).
    pub name: String,
    /// The scenarios, in execution order.
    pub scenarios: Vec<ScenarioSpec>,
}

impl SuiteSpec {
    /// Parses a suite document:
    /// `{"suite": "name", "scale": "...", "seed": N, "scenarios": [...]}`.
    ///
    /// # Errors
    ///
    /// Returns a description of the first malformed scenario or field.
    pub fn parse(input: &str) -> Result<SuiteSpec, String> {
        let v = Json::parse(input)?;
        check_keys(&v, &["suite", "scale", "seed", "scenarios"], "suite")?;
        let name = match v.get("suite") {
            None => "unnamed".to_string(),
            Some(x) => {
                x.as_str().ok_or("suite: `suite` must be a string")?.to_string()
            }
        };
        let default_scale = match v.get("scale") {
            None => Scale::Smoke,
            Some(x) => {
                let s = x.as_str().ok_or("suite: `scale` must be a string")?;
                Scale::parse(s).ok_or("suite: unknown `scale`")?
            }
        };
        let default_seed = match v.get("seed") {
            None => 42,
            Some(x) => x.as_u64().ok_or("suite: `seed` must be an integer below 2^53")?,
        };
        let raw = v
            .get("scenarios")
            .and_then(Json::as_arr)
            .ok_or("suite needs a `scenarios` array")?;
        if raw.is_empty() {
            return Err("suite has no scenarios".to_string());
        }
        let mut scenarios = Vec::with_capacity(raw.len());
        for s in raw {
            scenarios.push(ScenarioSpec::from_json(s, default_scale, default_seed)?);
        }
        let mut names: Vec<&str> = scenarios.iter().map(|s| s.name.as_str()).collect();
        names.sort_unstable();
        names.dedup();
        if names.len() != scenarios.len() {
            return Err("scenario names must be unique within a suite".to_string());
        }
        Ok(SuiteSpec { name, scenarios })
    }

    /// Serializes the suite into its JSON document form.
    pub fn to_json(&self) -> Json {
        ObjBuilder::new()
            .str("suite", &self.name)
            .value("scenarios", Json::Arr(self.scenarios.iter().map(ScenarioSpec::to_json).collect()))
            .build()
    }
}

/// The built-in suite: the three canonical deployment questions.
///
/// * `baseline-static` — the paper's own setting: federated GMF on
///   MovieLens, full participation, no dynamics.
/// * `churn-20pct` — the same workload under realistic availability: 20% of
///   the population offline in steady state plus a straggler tail.
/// * `colluding-sybils` — Rand-Gossip with a 4-node always-online sybil
///   coalition pooling observations.
pub fn builtin_suite(scale: Scale, seed: u64) -> SuiteSpec {
    let mut baseline =
        ScenarioSpec::new(Preset::MovieLens, ModelKind::Gmf, ProtocolKind::Fl, scale);
    baseline.name = "baseline-static".to_string();
    baseline.seed = seed;

    let mut churn = ScenarioSpec::new(Preset::MovieLens, ModelKind::Gmf, ProtocolKind::Fl, scale);
    churn.name = "churn-20pct".to_string();
    churn.seed = seed;
    churn.dynamics = DynamicsSpec {
        // Stationary offline fraction 0.05 / (0.05 + 0.2) = 20%.
        leave_prob: 0.05,
        join_prob: 0.2,
        initial_online: 0.9,
        straggler_fraction: 0.1,
        straggler_mean_delay: 2.0,
        ..DynamicsSpec::default()
    };

    let mut sybils =
        ScenarioSpec::new(Preset::MovieLens, ModelKind::Gmf, ProtocolKind::RandGossip, scale);
    sybils.name = "colluding-sybils".to_string();
    sybils.seed = seed;
    sybils.dynamics = DynamicsSpec { sybils: 4, ..DynamicsSpec::default() };

    SuiteSpec { name: format!("builtin-{scale}"), scenarios: vec![baseline, churn, sybils] }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builtin_suite_has_three_valid_scenarios() {
        let suite = builtin_suite(Scale::Smoke, 7);
        assert_eq!(suite.scenarios.len(), 3);
        for s in &suite.scenarios {
            s.validate().unwrap();
        }
        assert_eq!(suite.scenarios[0].name, "baseline-static");
        assert!(suite.scenarios[1].dynamics.leave_prob > 0.0);
        assert_eq!(suite.scenarios[2].coalition_size(), 4);
    }

    #[test]
    fn spec_json_roundtrip() {
        let suite = builtin_suite(Scale::Smoke, 9);
        let doc = suite.to_json().render();
        let reparsed = SuiteSpec::parse(&doc).unwrap();
        assert_eq!(reparsed, suite);
    }

    #[test]
    fn suite_parsing_applies_defaults() {
        let doc = r#"{"suite": "mini", "scale": "smoke", "seed": 5,
                      "scenarios": [{"name": "a"}]}"#;
        let suite = SuiteSpec::parse(doc).unwrap();
        let s = &suite.scenarios[0];
        assert_eq!(s.seed, 5);
        assert_eq!(s.scale, Scale::Smoke);
        assert_eq!(s.model, ModelKind::Gmf);
        assert!(s.dynamics.is_static());
    }

    #[test]
    fn validation_rejects_bad_specs() {
        let mut s = ScenarioSpec::new(Preset::MovieLens, ModelKind::Prme, ProtocolKind::Fl, Scale::Smoke);
        assert!(s.validate().unwrap_err().contains("PRME"));
        s.model = ModelKind::Gmf;
        s.dynamics.sybils = 3;
        assert!(s.validate().unwrap_err().contains("gossip"));
        s.protocol = ProtocolKind::RandGossip;
        s.validate().unwrap();
        s.colluders = 2;
        assert!(s.validate().unwrap_err().contains("not both"));
        s.colluders = 0;
        s.dynamics.leave_prob = 0.5;
        s.dynamics.join_prob = 0.0;
        assert!(s.validate().unwrap_err().contains("drains"));
    }

    #[test]
    fn fingerprint_tracks_spec_changes() {
        let a = ScenarioSpec::new(Preset::MovieLens, ModelKind::Gmf, ProtocolKind::Fl, Scale::Smoke);
        let mut b = a.clone();
        assert_eq!(a.fingerprint(), b.fingerprint());
        b.seed = 43;
        assert_ne!(a.fingerprint(), b.fingerprint());
    }

    #[test]
    fn duplicate_names_are_rejected() {
        let doc = r#"{"suite": "dup", "scenarios": [{"name": "x"}, {"name": "x"}]}"#;
        assert!(SuiteSpec::parse(doc).unwrap_err().contains("unique"));
    }

    #[test]
    fn mistyped_fields_fail_loudly() {
        // Present-but-wrong-typed fields must error, not fall back to
        // defaults — a string seed would otherwise silently run seed 42.
        let doc = r#"{"suite": "t", "scenarios": [{"name": "x", "seed": "43"}]}"#;
        assert!(SuiteSpec::parse(doc).unwrap_err().contains("integer"));
        let doc = r#"{"suite": "t", "scenarios": [{"name": "x", "seed": 9007199254740993}]}"#;
        assert!(SuiteSpec::parse(doc).unwrap_err().contains("2^53"));
        let doc = r#"{"suite": "t", "scenarios": [{"name": "x", "model": 5}]}"#;
        assert!(SuiteSpec::parse(doc).unwrap_err().contains("string"));
        let doc = r#"{"suite": "t", "scenarios": [{"name": "x", "beta": "0.5"}]}"#;
        assert!(SuiteSpec::parse(doc).unwrap_err().contains("number"));
        let doc = r#"{"suite": "t", "scenarios":
            [{"name": "x", "dynamics": {"leave_prob": "lots"}}]}"#;
        assert!(SuiteSpec::parse(doc).unwrap_err().contains("number"));
        let doc = r#"{"suite": "t", "seed": "42", "scenarios": [{"name": "x"}]}"#;
        assert!(SuiteSpec::parse(doc).unwrap_err().contains("integer"));
        let doc = r#"{"suite": "t", "scenarios":
            [{"name": "x", "defense": {"kind": 3}}]}"#;
        assert!(SuiteSpec::parse(doc).unwrap_err().contains("string"));
    }

    #[test]
    fn unknown_keys_fail_loudly() {
        // A typo in a dynamics field must not silently run a static
        // population.
        let doc = r#"{"suite": "t", "scenarios":
            [{"name": "x", "dynamics": {"straggler_frac": 0.3}}]}"#;
        let err = SuiteSpec::parse(doc).unwrap_err();
        assert!(err.contains("straggler_frac"), "{err}");
        let doc = r#"{"suite": "t", "scenarios": [{"name": "x", "colluderz": 3}]}"#;
        assert!(SuiteSpec::parse(doc).unwrap_err().contains("colluderz"));
        let doc = r#"{"suite": "t", "sede": 1, "scenarios": [{"name": "x"}]}"#;
        assert!(SuiteSpec::parse(doc).unwrap_err().contains("sede"));
    }
}
