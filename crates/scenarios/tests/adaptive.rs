//! Adaptive sybil-placement guarantees: the warm-up is passive (identical
//! behavior to static placement until the relocation fires), the relocation
//! is deterministic given spec + seed, adaptive placement beats static on
//! the built-in comparison suite, and a warm-up window beyond the horizon
//! degrades to static placement instead of panicking.

use cia_data::presets::Scale;
use cia_scenarios::runner::{run_scenario, RunOptions};
use cia_scenarios::spec::PlacementStrategy;
use cia_scenarios::{adaptive_sybils_suite, ScenarioSpec};

fn suite_spec(index: usize) -> ScenarioSpec {
    adaptive_sybils_suite(Scale::Smoke, 42).expanded().unwrap()[index].clone()
}

fn run(spec: &ScenarioSpec) -> (cia_scenarios::ScenarioOutcome, Vec<u8>) {
    let mut buf = Vec::new();
    let outcome = run_scenario(spec, "t", &RunOptions::default(), &mut buf).unwrap();
    (outcome, buf)
}

#[test]
fn adaptive_placement_beats_static_at_equal_coalition_size() {
    // The deliverable headline: on the built-in suite (seed 42), both
    // adaptive strategies reach at least the static coalition's AAC, and
    // their observation coverage is strictly better.
    let (static_out, _) = run(&suite_spec(0));
    let (degree_out, _) = run(&suite_spec(1));
    let (greedy_out, _) = run(&suite_spec(2));
    assert!(
        degree_out.attack.max_aac >= static_out.attack.max_aac,
        "degree placement lost to static: {} < {}",
        degree_out.attack.max_aac,
        static_out.attack.max_aac
    );
    assert!(
        greedy_out.attack.max_aac >= static_out.attack.max_aac,
        "greedy placement lost to static: {} < {}",
        greedy_out.attack.max_aac,
        static_out.attack.max_aac
    );
    assert!(degree_out.attack.upper_bound >= static_out.attack.upper_bound);
    assert!(greedy_out.attack.upper_bound >= static_out.attack.upper_bound);
}

#[test]
fn warmup_is_passive_and_relocation_changes_the_run() {
    let static_spec = suite_spec(0);
    let degree_spec = suite_spec(1);
    let (static_out, _) = run(&static_spec);
    let (degree_out, _) = run(&degree_spec);
    let warmup = degree_spec.dynamics.placement_warmup;
    let static_history = &static_out.attack.history;
    let degree_history = &degree_out.attack.history;
    assert_eq!(static_history.len(), degree_history.len());
    // Evaluations inside the warm-up window are identical — the engine only
    // watches until the relocation fires.
    for (s, d) in static_history.iter().zip(degree_history).filter(|(s, _)| s.round < warmup) {
        assert_eq!(s, d, "warm-up round {} diverged before the relocation", s.round);
    }
    // And the post-relocation trajectories actually separate.
    assert_ne!(
        static_history, degree_history,
        "relocation never changed anything — the engine is inert"
    );
}

#[test]
fn placement_choice_is_deterministic_given_spec_and_seed() {
    let spec = suite_spec(2);
    let (_, bytes_a) = run(&spec);
    let (_, bytes_b) = run(&spec);
    assert_eq!(bytes_a, bytes_b, "same spec + seed must relocate identically");
    let mut other = spec.clone();
    other.seed = 43;
    let (_, bytes_c) = run(&other);
    assert_ne!(bytes_a, bytes_c, "the run does not actually depend on its seed");
}

#[test]
fn warmup_beyond_horizon_degrades_to_static_placement() {
    let static_spec = suite_spec(0);
    let mut late = suite_spec(1);
    late.name = static_spec.name.clone();
    late.dynamics.placement_warmup = 10_000; // far past the 40-round horizon
    late.validate().unwrap();
    let (static_out, static_bytes) = run(&static_spec);
    let (late_out, late_bytes) = run(&late);
    // The relocation never fires: the run must be byte-identical to the
    // static-placement twin, not panic or misbehave.
    assert_eq!(static_bytes, late_bytes);
    assert_eq!(static_out.attack.history, late_out.attack.history);
    assert!(late_out.completed);
}

#[test]
fn adaptive_suite_validates_and_names_strategies() {
    let scenarios = adaptive_sybils_suite(Scale::Smoke, 7).expanded().unwrap();
    assert_eq!(scenarios.len(), 3);
    let strategies: Vec<PlacementStrategy> =
        scenarios.iter().map(|s| s.dynamics.placement).collect();
    assert_eq!(
        strategies,
        vec![
            PlacementStrategy::Static,
            PlacementStrategy::Degree,
            PlacementStrategy::CoverageGreedy
        ]
    );
    for s in &scenarios {
        assert_eq!(s.dynamics.sybils, 4, "equal coalition size is the point");
        assert_eq!(s.seed, 7);
        assert!(s.dynamics.leave_prob > 0.0, "the comparison runs under churn");
    }
}
