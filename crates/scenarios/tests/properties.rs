//! Property tests for the spec JSON codec and the checkpoint binary codec:
//! arbitrary specs survive the JSON roundtrip with stable fingerprints,
//! arbitrary mid-run state round-trips byte-identically through
//! encode/decode, corrupted fingerprints are always rejected, and no
//! mangled input ever panics the decoder.

use cia_core::{CiaAttackState, MomentumState, PlacementsState, RoundPoint};
use cia_data::presets::{Preset, Scale};
use cia_data::UserId;
use cia_gossip::{GossipSimState, TrafficCounters};
use cia_models::SharedModel;
use cia_runtime::{Checkpointable, Msg, SavedEvent};
use cia_scenarios::checkpoint::{AttackState, Checkpoint, ProtocolState};
use cia_scenarios::dynamics::{DynamicsState, ParticipantDynamics};
use cia_scenarios::placement::PlacementState;
use cia_scenarios::spec::{
    DefenseKind, DynamicsSpec, ModelKind, PlacementStrategy, ProtocolKind, ScenarioSpec,
};
use cia_scenarios::{SuiteEntry, SuiteSpec};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Deterministically builds a *valid* scenario spec from scalar draws.
#[allow(clippy::too_many_arguments)]
fn build_spec(
    seed: u64,
    preset_pick: u32,
    model_pick: u32,
    proto_pick: u32,
    defense_pick: u32,
    tau: f64,
    beta: f64,
    leave: f64,
    join: f64,
    initial: f64,
    straggler: f64,
    participation: f64,
    coalition_pick: u32,
) -> ScenarioSpec {
    let preset = match preset_pick % 3 {
        0 => Preset::MovieLens,
        1 => Preset::Foursquare,
        _ => Preset::Gowalla,
    };
    let model = if model_pick % 2 == 1 && preset.has_sequences() {
        ModelKind::Prme
    } else {
        ModelKind::Gmf
    };
    let protocol = match proto_pick % 3 {
        0 => ProtocolKind::Fl,
        1 => ProtocolKind::RandGossip,
        _ => ProtocolKind::PersGossip,
    };
    let mut spec = ScenarioSpec::new(preset, model, protocol, Scale::Smoke);
    spec.name = format!("p-{seed:x}");
    spec.seed = seed;
    spec.beta = beta as f32;
    spec.defense = match defense_pick % 4 {
        0 => DefenseKind::None,
        1 => DefenseKind::ShareLess { tau: tau as f32 },
        2 => DefenseKind::Dp { epsilon: Some(tau * 20.0 + 0.1) },
        _ => DefenseKind::Dp { epsilon: None },
    };
    spec.dynamics = DynamicsSpec {
        leave_prob: leave,
        join_prob: join.max(0.01),
        initial_online: initial.clamp(0.05, 1.0),
        straggler_fraction: straggler,
        straggler_mean_delay: 1.0 + tau * 5.0,
        participation: participation.clamp(0.05, 1.0),
        sybils: 0,
        ..DynamicsSpec::default()
    };
    if protocol.is_gossip() {
        match coalition_pick % 3 {
            1 => {
                spec.dynamics.sybils = 2 + (coalition_pick / 3) as usize % 4;
                // Sybil specs may also carry an adaptive placement.
                spec.dynamics.placement = match coalition_pick % 5 {
                    0 => PlacementStrategy::Degree,
                    1 => PlacementStrategy::CoverageGreedy,
                    _ => PlacementStrategy::Static,
                };
                spec.dynamics.placement_warmup = 1 + u64::from(coalition_pick) % 40;
            }
            2 => spec.colluders = 2 + (coalition_pick / 3) as usize % 4,
            _ => {}
        }
    }
    spec.validate().expect("construction covers only valid specs");
    spec
}

fn vec_f32(rng: &mut StdRng, len: usize) -> Vec<f32> {
    (0..len).map(|_| rng.gen_range(-8.0f32..8.0)).collect()
}

fn round_points(rng: &mut StdRng, n: usize) -> Vec<RoundPoint> {
    (0..n)
        .map(|i| {
            let upper = rng.gen_range(0.0f64..1.0);
            RoundPoint {
                round: i as u64 * 2,
                aac: rng.gen_range(0.0f64..1.0),
                best10: rng.gen_range(0.0f64..1.0),
                upper_bound: upper,
                upper_bound_online: upper * rng.gen_range(0.0f64..1.0),
            }
        })
        .collect()
}

/// Deterministically builds an arbitrary mid-run checkpoint from a seed:
/// both protocol families, both attack families, ragged inboxes, optional
/// embeddings.
fn build_checkpoint(seed: u64) -> Checkpoint {
    let mut rng = StdRng::seed_from_u64(seed);
    let n = rng.gen_range(1usize..8);
    let dim = rng.gen_range(1usize..6);
    let clients: Vec<Vec<f32>> = (0..n).map(|_| vec_f32(&mut rng, dim * 3)).collect();
    let protocol = if rng.gen_bool(0.5) {
        ProtocolState::Fl { global: vec_f32(&mut rng, dim * 2) }
    } else {
        let inboxes: Vec<Vec<SharedModel>> = (0..n)
            .map(|_| {
                (0..rng.gen_range(0usize..3))
                    .map(|_| SharedModel {
                        // cia-lint: allow(D05, test/bench populations are tiny; ids fit u32 with orders of magnitude to spare)
                        owner: UserId::new(rng.gen_range(0u32..n as u32)),
                        round: rng.gen_range(0u64..100),
                        owner_emb: if rng.gen_bool(0.5) {
                            Some(vec_f32(&mut rng, dim))
                        } else {
                            None
                        },
                        agg: vec_f32(&mut rng, dim * 2),
                    })
                    .collect()
            })
            .collect();
        ProtocolState::Gl(GossipSimState {
            round: rng.gen_range(0u64..50),
            refresh_at: (0..n).map(|_| rng.gen_range(0u64..80)).collect(),
            views: (0..n)
                .map(|_| {
                    // cia-lint: allow(D05, test/bench populations are tiny; ids fit u32 with orders of magnitude to spare)
                    (0..rng.gen_range(1usize..4)).map(|_| rng.gen_range(0u32..n as u32)).collect()
                })
                .collect(),
            inboxes,
            heard: (0..n)
                .map(|_| {
                    (0..rng.gen_range(0usize..3))
                        // cia-lint: allow(D05, test/bench populations are tiny; ids fit u32 with orders of magnitude to spare)
                        .map(|_| (rng.gen_range(0u32..n as u32), rng.gen_range(-2.0f32..2.0)))
                        .collect()
                })
                .collect(),
            prev_sent: (0..n).map(|_| rng.gen_bool(0.5).then(|| vec_f32(&mut rng, dim))).collect(),
            traffic: TrafficCounters {
                received: (0..n).map(|_| rng.gen_range(0u64..200)).collect(),
                view_in_degree: (0..n).map(|_| rng.gen_range(0u64..2000)).collect(),
            },
            pending: (0..rng.gen_range(0usize..4))
                .map(|_| SavedEvent {
                    at: rng.gen_range(0u64..800),
                    // cia-lint: allow(D05, test/bench populations are tiny; ids fit u32 with orders of magnitude to spare)
                    dst: rng.gen_range(0u32..n as u32),
                    timer: rng.gen_bool(0.5),
                    msg: if rng.gen_bool(0.5) {
                        // cia-lint: allow(D05, test/bench populations are tiny; ids fit u32 with orders of magnitude to spare)
                        Msg::RefreshTimer { node: rng.gen_range(0u32..n as u32) }
                    } else {
                        Msg::WakeSend {
                            round: rng.gen_range(0u64..50),
                            // cia-lint: allow(D05, test/bench populations are tiny; ids fit u32 with orders of magnitude to spare)
                            dest: rng.gen_range(0u32..n as u32),
                            snap: None,
                        }
                    },
                })
                .collect(),
        })
    };
    let history_len = rng.gen_range(0usize..5);
    let attack = if rng.gen_bool(0.5) {
        AttackState::Cia(CiaAttackState {
            momentum: (0..n)
                .map(|_| {
                    rng.gen_bool(0.6).then(|| {
                        MomentumState::from_parts(
                            rng.gen_bool(0.5).then(|| vec_f32(&mut rng, dim)),
                            vec_f32(&mut rng, dim * 2),
                            rng.gen_range(0u64..20),
                        )
                    })
                })
                .collect(),
            history: round_points(&mut rng, history_len),
            last_global: rng.gen_bool(0.5).then(|| vec_f32(&mut rng, dim * 2)),
            prepared: rng.gen_bool(0.5),
        })
    } else {
        AttackState::Placements(PlacementsState {
            s_ema: (0..n * n)
                .map(|_| if rng.gen_bool(0.3) { f32::NAN } else { rng.gen_range(-4.0f32..4.0) })
                .collect(),
            history: round_points(&mut rng, history_len),
            prepared: rng.gen_bool(0.5),
        })
    };
    Checkpoint {
        fingerprint: rng.gen::<u64>(),
        round: rng.gen_range(0u64..100),
        emitted: rng.gen_range(0u64..40),
        clients,
        protocol,
        attack,
        adversary_embs: (0..n).map(|_| rng.gen_bool(0.5).then(|| vec_f32(&mut rng, dim))).collect(),
        dynamics: DynamicsState {
            online: (0..n).map(|_| rng.gen_bool(0.8)).collect(),
            straggler_until: (0..n).map(|_| rng.gen_range(0u64..60)).collect(),
        },
        placement: if rng.gen_bool(0.5) {
            PlacementState::default()
        } else {
            let relocated = rng.gen_bool(0.5);
            // cia-lint: allow(D05, test/bench populations are tiny; ids fit u32 with orders of magnitude to spare)
            let mut members: Vec<u32> = (0..n as u32).collect();
            for i in (1..members.len()).rev() {
                members.swap(i, rng.gen_range(0usize..=i));
            }
            members.truncate(rng.gen_range(1usize..=n.min(3)));
            members.sort_unstable();
            PlacementState {
                relocated,
                members,
                seen: if relocated {
                    Vec::new()
                } else {
                    (0..n)
                        .map(|_| {
                            let mut log: Vec<u32> = (0..rng.gen_range(0usize..4))
                                // cia-lint: allow(D05, test/bench populations are tiny; ids fit u32 with orders of magnitude to spare)
                                .map(|_| rng.gen_range(0u32..n as u32))
                                .collect();
                            log.sort_unstable();
                            log.dedup();
                            log
                        })
                        .collect()
                },
            }
        },
    }
}

proptest! {
    #[test]
    fn spec_survives_json_roundtrip_with_stable_fingerprint(
        seed in 0u64..(1 << 50),
        preset_pick in 0u32..3,
        model_pick in 0u32..2,
        proto_pick in 0u32..3,
        defense_pick in 0u32..4,
        tau in 0.05f64..1.0,
        beta in 0.0f64..1.0,
        leave in 0.0f64..1.0,
        join in 0.01f64..1.0,
        initial in 0.05f64..1.0,
        straggler in 0.0f64..1.0,
        participation in 0.05f64..1.0,
        coalition_pick in 0u32..12,
    ) {
        let spec = build_spec(
            seed, preset_pick, model_pick, proto_pick, defense_pick, tau, beta,
            leave, join, initial, straggler, participation, coalition_pick,
        );
        let suite = SuiteSpec { name: "prop".to_string(), entries: vec![SuiteEntry::One(spec.clone())] };
        let doc = suite.to_json().render();
        let reparsed = SuiteSpec::parse(&doc)
            .map_err(|e| proptest::TestCaseError::fail(format!("reparse: {e}\n{doc}")))?;
        prop_assert_eq!(&reparsed, &suite);
        // The fingerprint is a pure function of the canonical JSON.
        let respec = reparsed.expanded().expect("parsed suites expand")[0].clone();
        prop_assert_eq!(respec.fingerprint(), spec.fingerprint());
        // And it tracks content: a different seed is a different spec.
        let mut other = spec.clone();
        other.seed ^= 1;
        prop_assert!(other.fingerprint() != spec.fingerprint());
    }

    #[test]
    fn checkpoint_codec_roundtrips_byte_identically(seed in 0u64..(1 << 60)) {
        let ck = build_checkpoint(seed);
        let bytes = ck.encode();
        let back = Checkpoint::decode(&bytes, ck.fingerprint)
            .map_err(|e| proptest::TestCaseError::fail(format!("decode: {e}")))?;
        // Re-encoding the decoded checkpoint reproduces the exact bytes —
        // the codec loses nothing (f32/f64 travel as raw bits, so NaN
        // payloads survive too).
        prop_assert_eq!(back.encode(), bytes);
    }

    #[test]
    fn corrupted_fingerprint_is_always_rejected(seed in 0u64..(1 << 60), bit in 0usize..64) {
        let ck = build_checkpoint(seed);
        let mut bytes = ck.encode();
        // The fingerprint field sits at bytes 8..16 (after magic + version).
        bytes[8 + bit / 8] ^= 1 << (bit % 8);
        prop_assert!(Checkpoint::decode(&bytes, ck.fingerprint).is_err());
        // Equivalently: expecting a different fingerprint refuses the load.
        prop_assert!(Checkpoint::decode(&ck.encode(), ck.fingerprint ^ (1u64 << bit)).is_err());
    }

    #[test]
    fn mangled_checkpoints_never_panic_the_decoder(
        seed in 0u64..(1 << 60),
        cut in 0.0f64..1.0,
        flip in 0.0f64..1.0,
        flip_bit in 0usize..8,
    ) {
        let bytes = build_checkpoint(seed).encode();
        let ck = build_checkpoint(seed);
        // Truncation at any point must error, never panic.
        let cut_at = (bytes.len() as f64 * cut) as usize;
        prop_assert!(Checkpoint::decode(&bytes[..cut_at.min(bytes.len() - 1)], ck.fingerprint).is_err());
        // A single flipped bit anywhere must produce Ok or Err — decoding is
        // total. (Flips in the payload may legitimately still decode.)
        let mut mangled = bytes.clone();
        let at = (mangled.len() as f64 * flip) as usize % mangled.len();
        mangled[at] ^= 1 << flip_bit;
        let _ = Checkpoint::decode(&mangled, ck.fingerprint);
    }

    #[test]
    fn streaming_topk_equals_full_sort_prefix(
        seed in 0u64..(1 << 60),
        n in 0usize..400,
        k in 0usize..40,
        levels in 1u32..8,       // few score levels → plenty of exact ties
        nan_prob in 0.0f64..0.3, // DP-destroyed models produce NaN scores
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        // cia-lint: allow(D05, test/bench populations are tiny; ids fit u32 with orders of magnitude to spare)
        let mut pairs: Vec<(f32, u32)> = (0..n as u32).map(|id| {
            let score = if rng.gen::<f64>() < nan_prob {
                f32::NAN
            } else {
                rng.gen_range(0..levels) as f32 * 0.25 - 0.5
            };
            (score, id)
        }).collect();
        // Arrival order must not matter — shuffle before streaming.
        for i in (1..pairs.len()).rev() {
            pairs.swap(i, rng.gen_range(0..=i));
        }
        let mut full = pairs.clone();
        full.sort_by(cia_core::metrics::rank_desc);
        let expect: Vec<u32> = full.iter().take(k).map(|&(_, id)| id).collect();
        // The bounded streaming selector must return exactly the full-sort
        // prefix: same ids, same order, NaN sunk, ties broken on ascending
        // id — the property that lets the evaluator drop its catalog-length
        // score vector without changing a single metric.
        let mut sel = cia_core::TopK::new(k);
        for &(s, id) in &pairs {
            sel.push(s, id);
        }
        prop_assert_eq!(sel.into_ids(), expect.clone());
        // And the runner's historical entry point agrees (it is built on the
        // selector, but the contract is with the full sort).
        prop_assert_eq!(cia_scenarios::runner::top_k_by_score(pairs, k), expect);
    }

    #[test]
    fn dynamics_mid_run_state_resumes_identically(
        seed in 0u64..(1 << 50),
        n in 4usize..48,
        split in 1u64..12,
        leave in 0.0f64..1.0,
        join in 0.05f64..1.0,
        initial in 0.2f64..1.0,
        straggler in 0.0f64..1.0,
        participation in 0.2f64..1.0,
        sybils in 0usize..4,
    ) {
        let spec = DynamicsSpec {
            leave_prob: leave,
            join_prob: join,
            initial_online: initial,
            straggler_fraction: straggler,
            straggler_mean_delay: 2.5,
            participation,
            sybils,
            ..DynamicsSpec::default()
        };
        let total = split + 8;
        let mut straight = ParticipantDynamics::new(&spec, n, seed);
        let mut masks = Vec::new();
        for t in 0..total {
            let mut mask = vec![true; n];
            straight.apply(t, &mut mask);
            masks.push(mask);
        }
        // Run to the split point, snapshot, restore into a fresh instance.
        let mut first = ParticipantDynamics::new(&spec, n, seed);
        for t in 0..split {
            let mut mask = vec![true; n];
            first.apply(t, &mut mask);
        }
        let state = first.export_state();
        let mut resumed = ParticipantDynamics::new(&spec, n, seed);
        resumed.restore_state(state);
        for (t, expect) in masks.iter().enumerate().skip(split as usize) {
            let mut mask = vec![true; n];
            resumed.apply(t as u64, &mut mask);
            prop_assert_eq!(&mask, expect, "diverged at round {}", t);
        }
    }
}

proptest! {
    /// The report's exact rank quantile and the recorder histogram's bucket
    /// walk index by the *same* shared nearest-rank definition
    /// (`cia_obs::nearest_rank`). Pin the agreement: feed both sides values
    /// that sit exactly on bucket upper edges (where the bucket walk is
    /// lossless) and they must return the same quantile for every q.
    #[test]
    fn report_and_histogram_quantiles_share_one_convention(
        buckets in proptest::collection::vec(0usize..41, 1..60),
        q in 0.0f64..=1.0,
    ) {
        let mut hist = cia_core::Histogram::new();
        let mut values: Vec<u64> =
            buckets.iter().map(|&b| cia_core::Histogram::bucket_upper_edge(b)).collect();
        for &v in &values {
            hist.record(v);
        }
        prop_assert_eq!(hist.quantile(q), cia_scenarios::report::rank_quantile(&mut values, q));
    }
}
