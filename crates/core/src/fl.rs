//! CIA in the federated setting (Algorithm 1): the adversary controls the
//! server and attacks with the models received from sampled users each round.

use crate::evaluator::RelevanceEvaluator;
use crate::metrics::{community_accuracy, AttackOutcome, AttackTracker};
use crate::momentum::MomentumState;
use cia_data::UserId;
use cia_federated::{RoundObserver, RoundStats};
use cia_models::parallel::{par_chunks_mut, par_map};
use cia_models::SharedModel;
use cia_obs::Recorder;
use cia_runtime::{Checkpointable, LivenessEvent};
use serde::{Deserialize, Serialize};

/// CIA parameters (the paper defaults to `K = 50`, `β = 0.99`).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CiaConfig {
    /// Community size `K`.
    pub k: usize,
    /// Momentum coefficient `β` of Eq. 4 (0 disables smoothing).
    pub beta: f32,
    /// Evaluate (rank + score) every this many rounds; momentum is updated
    /// every round regardless.
    pub eval_every: u64,
    /// Seed for the adversary's own randomness (fictive embedding training).
    pub seed: u64,
}

impl Default for CiaConfig {
    fn default() -> Self {
        CiaConfig { k: 50, beta: 0.99, eval_every: 1, seed: 0 }
    }
}

/// Serializable snapshot of a momentum-based CIA attack's mutable state
/// ([`FlCia`] and [`crate::GlCiaCoalition`]), used for checkpoint/resume of
/// long suite runs. Evaluator-side state (fictive embeddings) is captured
/// separately through the evaluator accessors.
#[derive(Debug, Clone)]
pub struct CiaAttackState {
    /// Per-sender momentum table (`None` = never observed).
    pub momentum: Vec<Option<MomentumState>>,
    /// Evaluated history recorded so far.
    pub history: Vec<crate::metrics::RoundPoint>,
    /// Last observed public parameters (fictive-embedding reference).
    pub last_global: Option<Vec<f32>>,
    /// Whether the evaluator has been prepared at least once.
    pub prepared: bool,
}

/// Algorithm 1: the server-side Community Inference Attack.
///
/// Plug an instance into [`cia_federated::FedAvg::run`] as the observer; the
/// attack maintains one momentum model per user and at every evaluation round
/// ranks users by the relevance their averaged model assigns to each target.
pub struct FlCia<E: RelevanceEvaluator> {
    cfg: CiaConfig,
    evaluator: E,
    /// Truth community per target, aligned with the evaluator's targets.
    truths: Vec<Vec<UserId>>,
    /// Per-target owner to exclude from candidates (the user whose train set
    /// is the target), if any.
    owners: Vec<Option<UserId>>,
    momentum: Vec<Option<MomentumState>>,
    /// Flat `num_users × num_targets` relevance matrix, reused across
    /// evaluation rounds (rows of never-seen users stay untouched and are
    /// skipped at ranking time).
    rel: Vec<f32>,
    /// The most recent acting-set mask delivered through
    /// [`RoundObserver::on_liveness`] — the dynamics layer's live set,
    /// feeding the per-round online upper bound. All-true until a mask
    /// arrives (static populations never shrink it).
    live: Vec<bool>,
    tracker: AttackTracker,
    last_global: Option<Vec<f32>>,
    prepared: bool,
    /// Metrics sink for the attack-phase spans (prepare/score/rank/update);
    /// a detached default until the runner wires in the shared recorder.
    obs: Recorder,
}

impl<E: RelevanceEvaluator> FlCia<E> {
    /// Creates the attack for `num_users` participants.
    ///
    /// `truths[t]` is the ground-truth community of the evaluator's target
    /// `t` (Eq. 5); `owners[t]` optionally excludes the target's donor user
    /// from the candidate ranking.
    ///
    /// # Panics
    ///
    /// Panics if the truth/owner tables are not aligned with the evaluator's
    /// targets or `k == 0`.
    pub fn new(
        cfg: CiaConfig,
        evaluator: E,
        num_users: usize,
        truths: Vec<Vec<UserId>>,
        owners: Vec<Option<UserId>>,
    ) -> Self {
        assert!(cfg.k > 0, "community size must be positive");
        assert!(cfg.eval_every > 0, "eval_every must be positive");
        assert!((0.0..=1.0).contains(&cfg.beta), "beta must be in [0, 1]");
        assert_eq!(truths.len(), evaluator.num_targets(), "one truth per target");
        assert_eq!(owners.len(), evaluator.num_targets(), "one owner entry per target");
        let candidates = num_users.saturating_sub(usize::from(owners.iter().any(Option::is_some)));
        FlCia {
            tracker: AttackTracker::new(cfg.k, candidates),
            rel: vec![0.0; num_users * evaluator.num_targets()],
            live: vec![true; num_users],
            cfg,
            evaluator,
            truths,
            owners,
            momentum: (0..num_users).map(|_| None).collect(),
            last_global: None,
            prepared: false,
            obs: Recorder::new(),
        }
    }

    /// Routes the attack's spans into a shared recorder (the default sink is
    /// detached). Clones are cheap; all clones share one registry.
    pub fn set_recorder(&mut self, obs: Recorder) {
        self.obs = obs;
    }

    /// The attack summary.
    pub fn outcome(&self) -> AttackOutcome {
        self.tracker.outcome()
    }

    /// The evaluated per-round history so far (streaming access for suite
    /// runners that emit one record per evaluation).
    pub fn history(&self) -> &[crate::metrics::RoundPoint] {
        self.tracker.history()
    }

    /// The relevance evaluator (checkpoint access to evaluator-side state).
    pub fn evaluator(&self) -> &E {
        &self.evaluator
    }

    /// Mutable access to the relevance evaluator (checkpoint resume).
    pub fn evaluator_mut(&mut self) -> &mut E {
        &mut self.evaluator
    }

    /// Predicted community for target `t` at the last evaluation (requires at
    /// least one evaluation round). Exposed for the motivating example.
    pub fn predict(&mut self, target: usize) -> Vec<UserId> {
        self.refresh_relevance();
        self.rank_all()[target].clone()
    }

    /// Scores every seen user's momentum model against every target, into the
    /// reusable flat relevance matrix (one row per user, filled in parallel).
    fn refresh_relevance(&mut self) {
        let num_targets = self.evaluator.num_targets();
        if num_targets == 0 {
            return; // degenerate zero-target attack; nothing to score
        }
        let (rel, momentum, evaluator) = (&mut self.rel, &self.momentum, &self.evaluator);
        par_chunks_mut(rel, num_targets, |u, row| {
            if let Some(m) = &momentum[u] {
                evaluator.relevance_all(m.emb(), m.agg(), row);
            }
        });
    }

    /// Runs the ranking for every target against the relevance matrix
    /// ([`FlCia::refresh_relevance`] must have run since the last momentum
    /// update).
    fn rank_all(&self) -> Vec<Vec<UserId>> {
        let num_targets = self.evaluator.num_targets();
        par_map(num_targets, |t| {
            let mut scored: Vec<(f32, u32)> = self
                .momentum
                .iter()
                .enumerate()
                .filter_map(|(u, m)| {
                    // cia-lint: allow(D05, ids and indices are bounded by the validated population/catalog size, which fits u32)
                    if m.is_none() || self.owners[t] == Some(UserId::new(u as u32)) {
                        return None;
                    }
                    // cia-lint: allow(D05, ids and indices are bounded by the validated population/catalog size, which fits u32)
                    Some((self.rel[u * num_targets + t], u as u32))
                })
                .collect();
            scored.sort_by(crate::metrics::rank_desc);
            scored.into_iter().take(self.cfg.k).map(|(_, u)| UserId::new(u)).collect()
        })
    }

    fn evaluate(&mut self, round: u64) {
        let obs = self.obs.clone();
        if let Some(global) = &self.last_global {
            if !self.prepared || round.is_multiple_of((self.cfg.eval_every * 4).max(1)) {
                let _prepare = obs.span("attack_prepare");
                self.evaluator.prepare(global, self.cfg.seed ^ round);
                self.prepared = true;
            }
        }
        {
            let _score = obs.span("attack_score");
            self.refresh_relevance();
        }
        let _rank = obs.span("attack_rank");
        let predictions = self.rank_all();
        let mut accs = Vec::with_capacity(predictions.len());
        let mut uppers = Vec::with_capacity(predictions.len());
        let mut uppers_online = Vec::with_capacity(predictions.len());
        for (t, pred) in predictions.iter().enumerate() {
            let truth = &self.truths[t];
            accs.push(community_accuracy(pred, truth, self.cfg.k));
            let seen = truth.iter().filter(|u| self.momentum[u.index()].is_some()).count();
            let seen_live = truth
                .iter()
                .filter(|u| self.momentum[u.index()].is_some() && self.live[u.index()])
                .count();
            uppers.push(seen as f64 / self.cfg.k as f64);
            uppers_online.push(seen_live as f64 / self.cfg.k as f64);
        }
        self.tracker.record_with_online(round, &accs, &uppers, &uppers_online);
    }
}

/// Snapshot/restore of the attack's mutable state for checkpoint/resume.
/// Evaluator-side state (fictive embeddings) is captured separately through
/// the evaluator accessors. Restoring panics if the momentum table is not
/// aligned with the participants.
impl<E: RelevanceEvaluator> Checkpointable for FlCia<E> {
    type State = CiaAttackState;

    fn export_state(&self) -> CiaAttackState {
        CiaAttackState {
            momentum: self.momentum.clone(),
            history: self.tracker.history().to_vec(),
            last_global: self.last_global.clone(),
            prepared: self.prepared,
        }
    }

    fn restore_state(&mut self, state: CiaAttackState) {
        assert_eq!(state.momentum.len(), self.momentum.len(), "momentum table size");
        self.momentum = state.momentum;
        self.tracker.restore_history(state.history);
        self.last_global = state.last_global;
        self.prepared = state.prepared;
    }
}

impl<E: RelevanceEvaluator> RoundObserver for FlCia<E> {
    fn on_liveness(&mut self, event: LivenessEvent<'_>) {
        if let LivenessEvent::ActingSet { mask, .. } = event {
            // One entry per participant; a length mismatch is a wiring bug
            // and must fail loudly rather than leave part of the live set
            // stale.
            self.live.copy_from_slice(mask);
        }
    }

    fn on_global(&mut self, _round: u64, global_agg: &[f32]) {
        self.last_global = Some(global_agg.to_vec());
    }

    fn on_client_model(&mut self, model: &SharedModel) {
        let _update = self.obs.span("attack_update");
        let u = model.owner.index();
        match &mut self.momentum[u] {
            Some(state) => state.update(self.cfg.beta, model),
            slot @ None => *slot = Some(MomentumState::from_snapshot(model)),
        }
    }

    fn on_round_end(&mut self, stats: &RoundStats) {
        if (stats.round + 1).is_multiple_of(self.cfg.eval_every) {
            self.evaluate(stats.round);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::evaluator::ItemSetEvaluator;
    use cia_data::{GroundTruth, LeaveOneOut, SyntheticConfig};
    use cia_federated::{FedAvg, FedAvgConfig};
    use cia_models::{GmfHyper, GmfSpec, SharingPolicy};

    /// End-to-end: FL + GMF on a planted-community dataset; CIA must beat the
    /// random bound by a wide margin.
    #[test]
    fn recovers_planted_communities_in_fl() {
        let users = 36;
        let data = SyntheticConfig::builder()
            .users(users)
            .items(120)
            .communities(6)
            .interactions_per_user(14)
            .seed(7)
            .build()
            .generate();
        let split = LeaveOneOut::new(&data, 10, 3).unwrap();
        let k = 5;
        let gt = GroundTruth::from_train_sets(split.train_sets(), k);
        let spec = GmfSpec::new(120, 8, GmfHyper { lr: 0.1, ..GmfHyper::default() });
        let clients: Vec<_> = split
            .train_sets()
            .iter()
            .enumerate()
            .map(|(u, items)| {
                spec.build_client(
                    // cia-lint: allow(D05, ids and indices are bounded by the validated population/catalog size, which fits u32)
                    UserId::new(u as u32),
                    items.clone(),
                    SharingPolicy::Full,
                    u as u64,
                )
            })
            .collect();

        let evaluator = ItemSetEvaluator::new(spec.clone(), split.train_sets().to_vec(), false);
        let truths: Vec<Vec<UserId>> =
            // cia-lint: allow(D05, ids and indices are bounded by the validated population/catalog size, which fits u32)
            (0..users).map(|u| gt.community_of(UserId::new(u as u32)).to_vec()).collect();
        // cia-lint: allow(D05, ids and indices are bounded by the validated population/catalog size, which fits u32)
        let owners: Vec<Option<UserId>> = (0..users).map(|u| Some(UserId::new(u as u32))).collect();
        let mut attack = FlCia::new(
            CiaConfig { k, beta: 0.9, eval_every: 2, seed: 0 },
            evaluator,
            users,
            truths,
            owners,
        );

        let mut sim = FedAvg::new(
            clients,
            FedAvgConfig { rounds: 20, local_epochs: 2, seed: 2, ..Default::default() },
        );
        sim.run(&mut attack);

        let out = attack.outcome();
        let random = out.random_bound;
        assert!(
            out.max_aac > 3.0 * random,
            "CIA did not beat random: {} vs bound {random}",
            out.max_aac
        );
        assert!(out.best10_aac >= out.max_aac * 0.8 || out.best10_aac > out.random_bound);
        // FL adversary sees everyone: upper bound 1, and with a static
        // population the online bound agrees.
        assert!((out.upper_bound - 1.0).abs() < 1e-9);
        assert_eq!(out.upper_bound_online, out.upper_bound);
        assert_eq!(out.history.len(), 10);
    }

    #[test]
    fn online_bound_tracks_the_live_mask() {
        // Round 0 observes everyone; from round 1 on, odd users are offline.
        // The static bound stays at full coverage (their momentum persists)
        // while the online bound drops to the live half.
        let users = 12;
        let data = SyntheticConfig::builder()
            .users(users)
            .items(60)
            .communities(2)
            .interactions_per_user(8)
            .seed(4)
            .build()
            .generate();
        let split = LeaveOneOut::new(&data, 5, 0).unwrap();
        let k = 3;
        let gt = GroundTruth::from_train_sets(split.train_sets(), k);
        let spec = GmfSpec::new(60, 4, GmfHyper::default());
        let clients: Vec<_> = split
            .train_sets()
            .iter()
            .enumerate()
            .map(|(u, items)| {
                spec.build_client(
                    // cia-lint: allow(D05, ids and indices are bounded by the validated population/catalog size, which fits u32)
                    UserId::new(u as u32),
                    items.clone(),
                    SharingPolicy::Full,
                    u as u64,
                )
            })
            .collect();
        let truths: Vec<Vec<UserId>> =
            // cia-lint: allow(D05, ids and indices are bounded by the validated population/catalog size, which fits u32)
            (0..users).map(|u| gt.community_of(UserId::new(u as u32)).to_vec()).collect();
        // cia-lint: allow(D05, ids and indices are bounded by the validated population/catalog size, which fits u32)
        let owners = (0..users).map(|u| Some(UserId::new(u as u32))).collect();
        let evaluator = ItemSetEvaluator::new(spec, split.train_sets().to_vec(), false);
        let attack = FlCia::new(
            CiaConfig { k, beta: 0.99, eval_every: 1, seed: 0 },
            evaluator,
            users,
            truths,
            owners,
        );

        struct OddOffline<E: crate::evaluator::RelevanceEvaluator>(FlCia<E>);
        impl<E: crate::evaluator::RelevanceEvaluator> RoundObserver for OddOffline<E> {
            fn on_liveness(&mut self, event: LivenessEvent<'_>) {
                if let LivenessEvent::ActingSet { round, mask } = event {
                    if round >= 1 {
                        for (u, m) in mask.iter_mut().enumerate() {
                            if u % 2 == 1 {
                                *m = false;
                            }
                        }
                    }
                    self.0.on_liveness(LivenessEvent::ActingSet { round, mask });
                }
            }
            fn on_global(&mut self, round: u64, global_agg: &[f32]) {
                self.0.on_global(round, global_agg);
            }
            fn on_client_model(&mut self, model: &SharedModel) {
                self.0.on_client_model(model);
            }
            fn on_round_end(&mut self, stats: &RoundStats) {
                self.0.on_round_end(stats);
            }
        }

        let mut obs = OddOffline(attack);
        let mut sim =
            FedAvg::new(clients, FedAvgConfig { rounds: 4, seed: 8, ..Default::default() });
        sim.run(&mut obs);
        let history = obs.0.history().to_vec();
        assert_eq!(history.len(), 4);
        // Full coverage after round 0 either way.
        assert!((history[1].upper_bound - 1.0).abs() < 1e-9);
        for p in &history[1..] {
            assert!(
                p.upper_bound_online < p.upper_bound,
                "round {}: online bound {} not below static {}",
                p.round,
                p.upper_bound_online,
                p.upper_bound
            );
        }
        // Round 0 saw everyone live.
        assert_eq!(history[0].upper_bound_online, history[0].upper_bound);
    }

    #[test]
    fn momentum_states_cover_all_sampled_users() {
        let data = SyntheticConfig::builder()
            .users(10)
            .items(60)
            .communities(2)
            .interactions_per_user(8)
            .seed(1)
            .build()
            .generate();
        let split = LeaveOneOut::new(&data, 5, 0).unwrap();
        let spec = GmfSpec::new(60, 4, GmfHyper::default());
        let clients: Vec<_> = split
            .train_sets()
            .iter()
            .enumerate()
            .map(|(u, items)| {
                spec.build_client(
                    // cia-lint: allow(D05, ids and indices are bounded by the validated population/catalog size, which fits u32)
                    UserId::new(u as u32),
                    items.clone(),
                    SharingPolicy::Full,
                    u as u64,
                )
            })
            .collect();
        let gt = GroundTruth::from_train_sets(split.train_sets(), 2);
        let truths: Vec<Vec<UserId>> =
            (0..10).map(|u| gt.community_of(UserId::new(u)).to_vec()).collect();
        let owners = (0..10).map(|u| Some(UserId::new(u))).collect();
        let evaluator = ItemSetEvaluator::new(spec, split.train_sets().to_vec(), false);
        let mut attack = FlCia::new(
            CiaConfig { k: 2, beta: 0.99, eval_every: 1, seed: 0 },
            evaluator,
            10,
            truths,
            owners,
        );
        let mut sim =
            FedAvg::new(clients, FedAvgConfig { rounds: 3, seed: 5, ..Default::default() });
        sim.run(&mut attack);
        assert!(attack.momentum.iter().all(Option::is_some));
        assert!(attack.momentum.iter().flatten().all(|m| m.updates() == 3));
    }

    #[test]
    #[should_panic(expected = "one truth per target")]
    fn rejects_misaligned_truths() {
        let spec = GmfSpec::new(10, 4, GmfHyper::default());
        let evaluator = ItemSetEvaluator::new(spec, vec![vec![1]], false);
        let _ = FlCia::new(CiaConfig::default(), evaluator, 5, vec![], vec![None]);
    }
}
