//! Vendored, dependency-free stand-in for the subset of `proptest` this
//! workspace uses.
//!
//! Provides the [`Strategy`] trait (ranges, tuples, [`any`], `prop_map`),
//! [`collection::vec`] / [`collection::btree_set`], and the `proptest!` /
//! `prop_assert!` / `prop_assert_eq!` / `prop_assume!` macros. Each property
//! runs [`CASES`] deterministic cases seeded from the test name, so failures
//! reproduce exactly; there is no shrinking — the failing inputs are printed
//! instead.

#![forbid(unsafe_code)]

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::ops::{Range, RangeInclusive};

/// Number of generated cases per property.
pub const CASES: usize = 256;

/// Why a single test case did not pass.
#[derive(Debug)]
pub enum TestCaseError {
    /// The case was vacuous (`prop_assume!` failed); it is not counted.
    Reject,
    /// An assertion failed.
    Fail(String),
}

impl TestCaseError {
    /// Builds a failure with a message.
    pub fn fail(msg: String) -> Self {
        TestCaseError::Fail(msg)
    }
}

/// A generator of test values.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut StdRng) -> Self::Value;

    /// Post-processes generated values with `f`.
    fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }
}

/// The [`Strategy::prop_map`] adapter.
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;

    fn generate(&self, rng: &mut StdRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}
impl_range_strategy!(u8, u16, u32, u64, usize, i32, i64, f32, f64);

macro_rules! impl_tuple_strategy {
    ($(($($name:ident),+))*) => {$(
        #[allow(non_snake_case)]
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn generate(&self, rng: &mut StdRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    )*};
}
impl_tuple_strategy!((A, B)(A, B, C)(A, B, C, D));

/// Types with a default "anything goes" strategy.
pub trait Arbitrary: Sized {
    /// Draws an arbitrary value (for floats: raw bit patterns, so NaN and
    /// infinities occur naturally).
    fn arbitrary(rng: &mut StdRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut StdRng) -> Self {
                rng.gen::<u64>() as $t
            }
        }
    )*};
}
impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut StdRng) -> Self {
        rng.gen::<bool>()
    }
}

impl Arbitrary for f32 {
    fn arbitrary(rng: &mut StdRng) -> Self {
        f32::from_bits(rng.gen::<u32>())
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut StdRng) -> Self {
        f64::from_bits(rng.gen::<u64>())
    }
}

/// The `any::<T>()` strategy.
pub struct Any<T>(std::marker::PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn generate(&self, rng: &mut StdRng) -> T {
        T::arbitrary(rng)
    }
}

/// Generates arbitrary values of `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

/// Collection strategies.
pub mod collection {
    use super::{StdRng, Strategy};
    use std::collections::BTreeSet;
    use std::ops::{Range, RangeInclusive};

    /// A size specification for generated collections.
    #[derive(Clone, Copy)]
    pub struct SizeRange {
        lo: usize,
        hi: usize, // inclusive
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange { lo: r.start, hi: r.end - 1 }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> Self {
            SizeRange { lo: *r.start(), hi: *r.end() }
        }
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n }
        }
    }

    impl SizeRange {
        fn sample(&self, rng: &mut StdRng) -> usize {
            use rand::Rng;
            rng.gen_range(self.lo..=self.hi)
        }
    }

    /// Strategy for `Vec<T>` with element strategy `S`.
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut StdRng) -> Self::Value {
            let n = self.size.sample(rng);
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// Generates `Vec`s whose length lies in `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy { element, size: size.into() }
    }

    /// Strategy for `BTreeSet<T>`.
    pub struct BTreeSetStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for BTreeSetStrategy<S>
    where
        S::Value: Ord,
    {
        type Value = BTreeSet<S::Value>;

        fn generate(&self, rng: &mut StdRng) -> Self::Value {
            let n = self.size.sample(rng);
            // n insertion attempts; collisions may leave the set smaller,
            // matching proptest's "up to size" semantics closely enough.
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// Generates `BTreeSet`s with up to `size` elements.
    pub fn btree_set<S: Strategy>(element: S, size: impl Into<SizeRange>) -> BTreeSetStrategy<S>
    where
        S::Value: Ord,
    {
        BTreeSetStrategy { element, size: size.into() }
    }
}

/// Runs `CASES` deterministic cases of a property; used by `proptest!`.
///
/// # Panics
///
/// Panics (failing the enclosing `#[test]`) when a case fails, printing the
/// case number and seed for reproduction.
pub fn run_cases<F: FnMut(&mut StdRng) -> Result<(), TestCaseError>>(name: &str, mut f: F) {
    // Deterministic seed from the test name (FNV-1a) so failures reproduce.
    let mut seed = 0xcbf2_9ce4_8422_2325u64;
    for b in name.bytes() {
        seed ^= b as u64;
        seed = seed.wrapping_mul(0x1000_0000_01b3);
    }
    let mut rng = StdRng::seed_from_u64(seed);
    let mut passed = 0usize;
    let mut rejected = 0usize;
    while passed < CASES {
        match f(&mut rng) {
            Ok(()) => passed += 1,
            Err(TestCaseError::Reject) => {
                rejected += 1;
                assert!(
                    rejected < CASES * 16,
                    "property `{name}` rejected too many cases ({rejected})"
                );
            }
            Err(TestCaseError::Fail(msg)) => {
                panic!("property `{name}` failed at case {passed} (seed {seed:#x}): {msg}")
            }
        }
    }
}

/// Asserts a condition inside a property, failing the case (not the process)
/// on violation.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !($cond) {
            return Err($crate::TestCaseError::fail(format!(
                "assertion failed: {}", stringify!($cond)
            )));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return Err($crate::TestCaseError::fail(format!($($fmt)+)));
        }
    };
}

/// Asserts equality inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr $(,)?) => {{
        let (a, b) = (&$a, &$b);
        if !(*a == *b) {
            return Err($crate::TestCaseError::fail(format!(
                "assertion failed: `{} == {}` ({:?} != {:?})",
                stringify!($a), stringify!($b), a, b
            )));
        }
    }};
    ($a:expr, $b:expr, $($fmt:tt)+) => {{
        let (a, b) = (&$a, &$b);
        if !(*a == *b) {
            return Err($crate::TestCaseError::fail(format!(
                "{} ({:?} != {:?})", format!($($fmt)+), a, b
            )));
        }
    }};
}

/// Rejects the current case when the assumption does not hold.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return Err($crate::TestCaseError::Reject);
        }
    };
}

/// Binds `name in strategy` parameter lists; implementation detail of
/// `proptest!`.
#[macro_export]
macro_rules! __proptest_bind {
    ($rng:ident $(,)?) => {};
    ($rng:ident, mut $name:ident in $strat:expr, $($rest:tt)*) => {
        let mut $name = $crate::Strategy::generate(&($strat), $rng);
        $crate::__proptest_bind!($rng, $($rest)*);
    };
    ($rng:ident, mut $name:ident in $strat:expr) => {
        let mut $name = $crate::Strategy::generate(&($strat), $rng);
    };
    ($rng:ident, $name:ident in $strat:expr, $($rest:tt)*) => {
        let $name = $crate::Strategy::generate(&($strat), $rng);
        $crate::__proptest_bind!($rng, $($rest)*);
    };
    ($rng:ident, $name:ident in $strat:expr) => {
        let $name = $crate::Strategy::generate(&($strat), $rng);
    };
}

/// Declares property tests: each `fn name(x in strategy, ...) { body }`
/// becomes a `#[test]` running [`CASES`] generated cases.
#[macro_export]
macro_rules! proptest {
    ($($(#[$meta:meta])* fn $name:ident($($params:tt)*) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                $crate::run_cases(stringify!($name), |__proptest_rng| {
                    $crate::__proptest_bind!(__proptest_rng, $($params)*);
                    let __result: ::std::result::Result<(), $crate::TestCaseError> =
                        (move || {
                            $body
                            #[allow(unreachable_code)]
                            Ok(())
                        })();
                    __result
                });
            }
        )*
    };
}

/// One-stop imports, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::collection;
    pub use crate::{any, Arbitrary, Strategy, TestCaseError};
    pub use crate::{prop_assert, prop_assert_eq, prop_assume, proptest};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    proptest! {
        #[test]
        fn ranges_stay_in_bounds(x in 3u32..10, f in -1.0f32..1.0, k in 0usize..=4) {
            prop_assert!((3..10).contains(&x));
            prop_assert!((-1.0..1.0).contains(&f));
            prop_assert!(k <= 4);
        }

        #[test]
        fn vec_and_btree_set_respect_sizes(
            v in collection::vec(0u32..100, 2..5),
            s in collection::btree_set(0u32..10, 0..6),
        ) {
            prop_assert!(v.len() >= 2 && v.len() < 5);
            prop_assert!(s.len() < 6);
        }

        #[test]
        fn prop_map_and_tuples_compose(
            p in (any::<u64>(), 0u32..5).prop_map(|(a, b)| (a, b * 2)),
        ) {
            prop_assert!(p.1 % 2 == 0);
            prop_assert!(p.1 < 10);
        }

        #[test]
        fn assume_rejects_without_failing(x in 0u32..10) {
            prop_assume!(x % 2 == 0);
            prop_assert!(x % 2 == 0);
        }
    }

    #[test]
    fn any_f32_eventually_produces_specials() {
        use rand::SeedableRng;
        let mut rng = rand::rngs::StdRng::seed_from_u64(1);
        let mut saw_nan = false;
        for _ in 0..100_000 {
            let f = f32::arbitrary(&mut rng);
            if f.is_nan() {
                saw_nan = true;
                break;
            }
        }
        assert!(saw_nan, "bit-pattern floats should include NaN");
    }

    #[test]
    #[should_panic(expected = "failed at case")]
    fn failures_panic_with_case_info() {
        super::run_cases("always_fails", |_| Err(super::TestCaseError::fail("boom".to_string())));
    }
}
