//! Error type for dataset construction and validation.

use std::error::Error;
use std::fmt;

/// Errors produced while building or validating datasets.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum DataError {
    /// A configuration value was outside its valid range.
    InvalidConfig {
        /// Name of the offending field.
        field: &'static str,
        /// Human-readable description of the constraint that was violated.
        reason: String,
    },
    /// An item id referenced an item outside the catalog.
    ItemOutOfRange {
        /// The offending item index.
        item: u32,
        /// Number of items in the catalog.
        num_items: u32,
    },
    /// A user had too few interactions for the requested operation
    /// (e.g., leave-one-out splitting needs at least two interactions).
    NotEnoughInteractions {
        /// The offending user index.
        user: u32,
        /// Number of interactions the user has.
        have: usize,
        /// Number of interactions required.
        need: usize,
    },
}

impl fmt::Display for DataError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DataError::InvalidConfig { field, reason } => {
                write!(f, "invalid configuration for `{field}`: {reason}")
            }
            DataError::ItemOutOfRange { item, num_items } => {
                write!(f, "item {item} out of range for catalog of {num_items} items")
            }
            DataError::NotEnoughInteractions { user, have, need } => {
                write!(f, "user {user} has {have} interactions, needs at least {need}")
            }
        }
    }
}

impl Error for DataError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_lowercase_and_informative() {
        let e = DataError::InvalidConfig { field: "users", reason: "must be > 0".into() };
        assert!(e.to_string().contains("users"));
        let e = DataError::ItemOutOfRange { item: 9, num_items: 5 };
        assert!(e.to_string().contains('9'));
        let e = DataError::NotEnoughInteractions { user: 1, have: 1, need: 2 };
        assert!(e.to_string().contains("needs at least 2"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync + std::error::Error>() {}
        assert_send_sync::<DataError>();
    }
}
