#!/usr/bin/env bash
# Keeps the benchmarks from bit-rotting: every bench body runs once
# (`--test`), the full workspace test suite gates ahead of clippy (a test
# regression should fail this gate before any bench numbers are trusted),
# and clippy gates all targets (benches included) at -D warnings. Part of
# the verify flow; see ROADMAP.md.
set -euo pipefail
cd "$(dirname "$0")/.."

# ci.sh runs fmt-check, cia-lint and the workspace tests as its own
# (earlier) steps; it sets CIA_SKIP_REDUNDANT_GATES=1 so a CI run does not
# pay for them twice. Standalone invocations keep the full gate.
if [ "${CIA_SKIP_REDUNDANT_GATES:-0}" != 1 ]; then
    echo "== cargo fmt --all --check"
    cargo fmt --all --check
    # Determinism & safety pass (crates/lint/README.md) — gates ahead of
    # the benches and clippy, mirroring ci.sh's dedicated lint step.
    echo "== cia-lint --json"
    cargo run --release -q -p cia-lint --bin cia-lint -- \
        --json --out target/cia-lint.json
fi

# Every ungated bench body runs once, including the sharded
# lazy-materialization round (fedavg_round_lazy_48x160) — the smoke-sized
# twin of the `--scale million` lazy round, so the materialize/train/retire
# path cannot bit-rot between full-scale runs.
echo "== cargo bench -- --test (every benchmark body, one iteration)"
cargo bench -p cia-bench -- --test

echo "== scenario engine smoke (suites + sweeps + grid cell + schema + resume)"
scripts/scenario_smoke.sh

# Scheduler-vs-lockstep golden equality: the event-driven runtime is the
# default round executor; the legacy fused loops remain behind --lockstep.
# Both must produce byte-identical deterministic transcripts for the full
# builtin suite — the compatibility contract of the evented port.
echo "== evented vs lockstep transcript equality (builtin suite, seed 42)"
mkdir -p target/bench-smoke
cargo run --release -q -p cia-scenarios --bin scenario -- \
    run --suite builtin --scale smoke --seed 42 --no-timing \
    --out target/bench-smoke/evented.jsonl >/dev/null
cargo run --release -q -p cia-scenarios --bin scenario -- \
    run --suite builtin --scale smoke --seed 42 --no-timing --lockstep \
    --out target/bench-smoke/lockstep.jsonl >/dev/null
cmp target/bench-smoke/evented.jsonl target/bench-smoke/lockstep.jsonl || {
    echo "error: evented scheduler diverged from the lockstep transcript" >&2
    exit 1
}

# Observability smoke: a timed single-scenario run must emit trace records
# that `scenario report` can aggregate, plus a Chrome trace file that
# parses. Artifacts land in target/bench-smoke/ (CI uploads trace.json on a
# failed run).
echo "== scenario report + Chrome trace smoke"
mkdir -p target/bench-smoke
cargo run --release -q -p cia-scenarios --bin scenario -- \
    run --suite builtin --scale smoke --seed 42 --only baseline-static \
    --out target/bench-smoke/report-smoke.jsonl \
    --trace-out target/bench-smoke/trace.json
report_out=$(cargo run --release -q -p cia-scenarios --bin scenario -- \
    report --check-trace target/bench-smoke/trace.json \
    target/bench-smoke/report-smoke.jsonl)
echo "$report_out"
if echo "$report_out" | grep -q "no trace records"; then
    echo "error: timed run produced no trace records" >&2
    exit 1
fi

# Serving smoke: answer top-k queries concurrently with a training run and
# require the `serve: OK` marker (printed only after the query budget drains
# and the trainer exits cleanly). Exercises snapshot publication, the hot
# ranking cache, and the serve-side latency histogram end to end.
echo "== scenario serve smoke (concurrent queries against a training run)"
cargo run --release -q -p cia-scenarios --bin scenario -- \
    serve --suite builtin --scale smoke --seed 42 --only baseline-static \
    --no-timing --queries 200 | tee target/bench-smoke/serve-smoke.txt
grep -q "serve: OK" target/bench-smoke/serve-smoke.txt

if [ "${CIA_SKIP_REDUNDANT_GATES:-0}" != 1 ]; then
    echo "== cargo test --workspace -q"
    cargo test --workspace -q
fi

echo "== cargo clippy --workspace --all-targets -- -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "bench smoke OK"
