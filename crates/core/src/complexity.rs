//! The temporal complexity model of Table IX.
//!
//! Costs are expressed in abstract time units: `T_M`/`I_M` are the training
//! and inference times of the recommendation model, `T_C`/`I_C` those of the
//! AIA classifier. The worst case for CIA (a Share-less scenario, where the
//! adversary must also train one fictive embedding) is used throughout, as in
//! the paper:
//!
//! | Attack | Temporal complexity |
//! |---|---|
//! | CIA | `O(T_M) + O(I_M · |U| · |V_target|)` |
//! | MIA | `O(T_M) + O(I_M · |U| · D_max)` |
//! | AIA | `O(T_M · (N + M)) + O(T_C) + O(I_C · |U|)` |

use serde::{Deserialize, Serialize};

/// Parameters of the analytic cost model.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CostModel {
    /// Training time of one recommendation model (`T_M`).
    pub t_model: f64,
    /// Inference time of one recommendation-model scoring (`I_M`).
    pub i_model: f64,
    /// Training time of the AIA classifier (`T_C`), at least `T_M` given its
    /// input size (see §VIII-D).
    pub t_classifier: f64,
    /// Inference time of the AIA classifier (`I_C ≈ I_M`).
    pub i_classifier: f64,
    /// Number of users `|U|`.
    pub users: f64,
    /// Target set size `|V_target|`.
    pub target_size: f64,
    /// Largest user training-set size `D_max`.
    pub d_max: f64,
    /// Fictive member datasets `N` (AIA).
    pub n_member: f64,
    /// Fictive non-member datasets `M` (AIA).
    pub m_nonmember: f64,
}

impl CostModel {
    /// CIA cost: one fictive-embedding training plus `|U| · |V_target|`
    /// model inferences.
    pub fn cia(&self) -> f64 {
        self.t_model + self.i_model * self.users * self.target_size
    }

    /// MIA cost: one fictive-embedding training plus `|U| · D_max` model
    /// inferences (membership must be tested over candidate training sets).
    pub fn mia(&self) -> f64 {
        self.t_model + self.i_model * self.users * self.d_max
    }

    /// AIA cost: `N + M` model trainings, one classifier training and `|U|`
    /// classifier inferences.
    pub fn aia(&self) -> f64 {
        self.t_model * (self.n_member + self.m_nonmember)
            + self.t_classifier
            + self.i_classifier * self.users
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn paperish() -> CostModel {
        // A configuration mirroring the paper's qualitative assumptions:
        // I << T (inference is orders of magnitude cheaper than training),
        // T_C >= T_M, I_C ~ I_M, |V_target| <= D_max.
        CostModel {
            t_model: 1000.0,
            i_model: 0.01,
            t_classifier: 2000.0,
            i_classifier: 0.01,
            users: 943.0,
            target_size: 100.0,
            d_max: 300.0,
            n_member: 20.0,
            m_nonmember: 20.0,
        }
    }

    #[test]
    fn cia_is_cheapest_under_paper_assumptions() {
        let m = paperish();
        assert!(m.cia() < m.mia(), "cia {} !< mia {}", m.cia(), m.mia());
        assert!(m.cia() < m.aia(), "cia {} !< aia {}", m.cia(), m.aia());
    }

    #[test]
    fn cia_equals_mia_when_target_matches_dmax() {
        let mut m = paperish();
        m.target_size = m.d_max;
        assert!((m.cia() - m.mia()).abs() < 1e-9);
    }

    #[test]
    fn aia_scales_with_fictive_datasets() {
        let mut m = paperish();
        let base = m.aia();
        m.n_member *= 2.0;
        assert!(m.aia() > base);
    }
}
