//! `cia-lint` — run the determinism & safety pass over the workspace.
//!
//! ```text
//! cia-lint [--json] [--out FILE] [--root DIR] [PATHS…]
//! ```
//!
//! With no `PATHS`, lints every `.rs` file under `<root>/crates` and
//! `<root>/src` (lint fixtures and `target/` excluded). `--json` switches
//! the report to the machine-readable form CI uploads as an artifact;
//! `--out` writes the report to a file as well as stdout, so a failing CI
//! step still leaves the artifact behind.
//!
//! Exit status: `0` clean, `1` violations found, `2` usage or I/O error.

#![forbid(unsafe_code)]

use cia_lint::{lint_paths, render_human, render_json};
use std::path::PathBuf;
use std::process::ExitCode;

fn usage() {
    eprintln!("usage: cia-lint [--json] [--out FILE] [--root DIR] [PATHS...]");
    eprintln!("  --json      machine-readable report (the CI artifact format)");
    eprintln!("  --out FILE  also write the report to FILE");
    eprintln!("  --root DIR  workspace root paths are reported relative to (default: .)");
    eprintln!("  PATHS       files or directories to lint (default: <root>/crates <root>/src)");
}

struct Args {
    json: bool,
    out: Option<PathBuf>,
    root: PathBuf,
    paths: Vec<PathBuf>,
}

fn parse_args(argv: &[String]) -> Result<Args, String> {
    let mut args = Args { json: false, out: None, root: PathBuf::from("."), paths: Vec::new() };
    let mut i = 0;
    while i < argv.len() {
        match argv[i].as_str() {
            "--json" => {
                args.json = true;
                i += 1;
            }
            "--out" => {
                let v = argv.get(i + 1).ok_or("--out expects a value")?;
                args.out = Some(PathBuf::from(v));
                i += 2;
            }
            "--root" => {
                let v = argv.get(i + 1).ok_or("--root expects a value")?;
                args.root = PathBuf::from(v);
                i += 2;
            }
            "--help" | "-h" => return Err(String::new()),
            flag if flag.starts_with("--") => return Err(format!("unknown flag `{flag}`")),
            path => {
                args.paths.push(PathBuf::from(path));
                i += 1;
            }
        }
    }
    Ok(args)
}

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let args = match parse_args(&argv) {
        Ok(args) => args,
        Err(msg) => {
            if !msg.is_empty() {
                eprintln!("error: {msg}");
            }
            usage();
            return ExitCode::from(2);
        }
    };

    let paths = if args.paths.is_empty() {
        cia_lint::default_targets(&args.root)
    } else {
        args.paths.clone()
    };
    if paths.is_empty() {
        eprintln!("error: nothing to lint under {}", args.root.display());
        return ExitCode::from(2);
    }

    let report = lint_paths(&args.root, &paths);
    let rendered = if args.json { render_json(&report) } else { render_human(&report) };
    print!("{rendered}");
    if let Some(out) = &args.out {
        if let Err(e) = std::fs::write(out, &rendered) {
            eprintln!("error: cannot write {}: {e}", out.display());
            return ExitCode::from(2);
        }
    }
    if !report.unreadable.is_empty() {
        ExitCode::from(2)
    } else if report.is_clean() {
        ExitCode::SUCCESS
    } else {
        ExitCode::from(1)
    }
}
