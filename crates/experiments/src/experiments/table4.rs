//! Table IV — effect of colluders in GL (Rand-Gossip, GMF, MovieLens).

use crate::runner::{build_setup, run_recsys, DefenseKind, ModelKind, ProtocolKind, RunSpec};
use crate::tables::{pct, Table};
use cia_data::presets::{Preset, Scale};

/// The colluder fractions evaluated by the paper (0 = single adversary).
pub const COLLUDER_FRACTIONS: [f64; 4] = [0.0, 0.05, 0.10, 0.20];

/// Runs the colluder sweep with a given defense (shared by Tables IV and V)
/// and momentum coefficient (shared with Table VI).
pub fn sweep(scale: Scale, seed: u64, defense: DefenseKind, beta: f32, title: String) -> Table {
    let n = build_setup(Preset::MovieLens, scale, None, seed).data.num_users();
    let mut t = Table::new(
        title,
        &["Setting", "Colluders", "Max AAC %", "Best 10% AAC %", "Upper bound %"],
    );
    for frac in COLLUDER_FRACTIONS {
        let colluders = if frac == 0.0 { 0 } else { ((n as f64 * frac).round() as usize).max(2) };
        let mut spec =
            RunSpec::new(Preset::MovieLens, ModelKind::Gmf, ProtocolKind::RandGossip, scale);
        spec.seed = seed;
        spec.defense = defense;
        spec.beta = beta;
        spec.colluders = colluders;
        let r = run_recsys(&spec);
        let setting = if frac == 0.0 {
            "Single adversary".to_string()
        } else {
            format!("{:.0}% colluders", frac * 100.0)
        };
        t.row(vec![
            setting,
            colluders.max(1).to_string(),
            pct(r.attack.max_aac),
            pct(r.attack.best10_aac),
            pct(r.attack.upper_bound.min(1.0)),
        ]);
    }
    t
}

/// Regenerates Table IV.
pub fn run(scale: Scale, seed: u64) -> Vec<Table> {
    vec![sweep(
        scale,
        seed,
        DefenseKind::None,
        0.99,
        format!("Table IV — Collusion in GL (Rand-Gossip, GMF, MovieLens, {scale} scale)"),
    )]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_colluders_expand_coverage() {
        let tables = run(Scale::Smoke, 5);
        let rows = &tables[0].rows;
        assert_eq!(rows.len(), 4);
        let bound_single: f64 = rows[0][4].parse().unwrap();
        let bound_20pct: f64 = rows[3][4].parse().unwrap();
        assert!(
            bound_20pct >= bound_single,
            "more colluders should not shrink coverage: {bound_single} -> {bound_20pct}"
        );
    }
}
