#!/usr/bin/env bash
# Scenario engine smoke gate: runs the built-in suite (baseline-static,
# churn-20pct, colluding-sybils) at smoke scale, validates the emitted JSONL
# against the record schema, exercises a sweep-expanded suite and a
# defense × dynamics grid cell, and proves kill/resume equality on both a
# built-in gossip scenario and a sweep-expanded one. Part of the verify
# flow; see ROADMAP.md.
set -euo pipefail
cd "$(dirname "$0")/.."

out="$(mktemp -d)"
trap 'rm -rf "$out"' EXIT

scenario() {
    cargo run --release -q -p cia-scenarios --bin scenario -- "$@"
}

echo "== built-in suite at smoke scale"
scenario run --scale smoke --seed 42 --out "$out/suite.jsonl" --no-timing

echo "== JSONL schema validation"
scenario validate "$out/suite.jsonl"

echo "== sweep-expanded suite: participation-sweep (Fig. 1 as a suite)"
scenario run --suite participation-sweep --scale smoke --seed 42 \
    --out "$out/sweep.jsonl" --no-timing
scenario validate "$out/sweep.jsonl"

echo "== one defense-dynamics-grid cell: shareless-x-churn"
scenario run --suite defense-dynamics-grid --scale smoke --seed 42 \
    --only shareless-x-churn --out "$out/grid-cell.jsonl" --no-timing
scenario validate "$out/grid-cell.jsonl"

echo "== kill/resume: colluding-sybils stopped at round 20, then resumed"
scenario run --scale smoke --seed 42 --only colluding-sybils --out "$out/resumed.jsonl" \
    --no-timing --checkpoint-dir "$out/ckpt" --checkpoint-every 10 --stop-after 20
scenario run --scale smoke --seed 42 --only colluding-sybils --out "$out/resumed.jsonl" \
    --no-timing --checkpoint-dir "$out/ckpt" --resume
scenario validate "$out/resumed.jsonl"

# The resumed stream must equal the sybil slice of the uninterrupted suite.
grep '"scenario":"colluding-sybils"' "$out/suite.jsonl" > "$out/straight-sybils.jsonl"
if ! cmp -s "$out/straight-sybils.jsonl" "$out/resumed.jsonl"; then
    echo "resumed stream diverged from the uninterrupted run" >&2
    diff "$out/straight-sybils.jsonl" "$out/resumed.jsonl" >&2 || true
    exit 1
fi

echo "== kill/resume on a sweep-expanded scenario: participation-0.5"
scenario run --suite participation-sweep --scale smoke --seed 42 \
    --only participation-0.5 --out "$out/sweep-resumed.jsonl" \
    --no-timing --checkpoint-dir "$out/sweep-ckpt" --checkpoint-every 2 --stop-after 4
scenario run --suite participation-sweep --scale smoke --seed 42 \
    --only participation-0.5 --out "$out/sweep-resumed.jsonl" \
    --no-timing --checkpoint-dir "$out/sweep-ckpt" --resume
scenario validate "$out/sweep-resumed.jsonl"

grep '"scenario":"participation-0.5"' "$out/sweep.jsonl" > "$out/straight-sweep.jsonl"
if ! cmp -s "$out/straight-sweep.jsonl" "$out/sweep-resumed.jsonl"; then
    echo "sweep-expanded resume diverged from the uninterrupted run" >&2
    diff "$out/straight-sweep.jsonl" "$out/sweep-resumed.jsonl" >&2 || true
    exit 1
fi

echo "scenario smoke OK"
