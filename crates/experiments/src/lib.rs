//! Experiment harness reproducing every table and figure of the paper.
//!
//! Each experiment lives in its own module under [`experiments`], produces
//! [`tables::Table`] values, and is runnable through the `repro` binary:
//!
//! ```text
//! cargo run --release -p cia-experiments --bin repro -- table2 --scale small
//! ```
//!
//! The experiment ↔ paper mapping is indexed in `DESIGN.md` §4.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod experiments;
mod runner;
pub mod tables;

pub use cia_data::presets::{Preset, Scale};
pub use runner::{
    build_setup, run_recsys, DefenseKind, ModelKind, ProtocolKind, RecsysSetup, RunResult, RunSpec,
    ScaleParams,
};
