//! Known-bad fixture for the allow-comment meta rules: a reason-less
//! directive (L00) and one that suppresses nothing (L01).

// cia-lint: allow(D01)
fn nothing_unordered_here() {}

// cia-lint: allow(D05, this cast was removed in a refactor)
fn no_cast_left() {}

// cia-lint: allow(D99, no such rule exists)
fn unknown_rule() {}
