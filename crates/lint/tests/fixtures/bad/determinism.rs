//! Known-bad fixture: one true positive per token-pattern rule. This file
//! is excluded from the workspace walk and never compiled — it exists so
//! the golden tests can pin each diagnostic exactly.
use std::collections::HashMap;
use std::time::Instant;

fn histogram(xs: &[u64]) -> Vec<(u64, u64)> {
    let mut counts = HashMap::new();
    for &x in xs {
        *counts.entry(x).or_insert(0u64) += 1;
    }
    let mut v: Vec<(u64, u64)> = counts.into_iter().collect();
    v.sort_unstable();
    v
}

fn elapsed_micros() -> u128 {
    let t0 = Instant::now();
    t0.elapsed().as_micros()
}

fn seeded_badly() -> rand::rngs::StdRng {
    rand::rngs::StdRng::from_entropy()
}

fn truncate(x: u64) -> u32 {
    x as u32
}

fn spawn_worker() {
    std::thread::spawn(|| {});
}

fn total(xs: &[f32]) -> f32 {
    xs.iter().sum::<f32>()
}
