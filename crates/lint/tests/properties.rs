//! Property tests: no input — random noise, truncated source, or a real
//! file with bytes flipped — may ever panic the lexer or the rule engine.
//! The lexer's docs promise exactly this; here it is pinned.

use cia_lint::lexer::{tokenize, TokenKind};
use cia_lint::lint_source;
use proptest::prelude::*;

/// A source snippet exercising every tricky lexer path: raw strings with
/// hashes, byte strings, nested block comments, lifetimes next to char
/// literals, float literals with exponents, and an allow directive.
const GNARLY: &str = r####"//! doc
/* outer /* nested */ still outer */
fn f<'a>(x: &'a str) -> u32 {
    let s = r#"raw "quoted" text"#;
    let b = b"bytes\x00";
    let c = 'x';
    let r = br##"double-hash raw"##;
    let n = 1_000u64 as u32; // cia-lint: allow(D05, bounded by construction)
    let e = 1.5e-3f64;
    for i in 0..10 {}
    n
}
"####;

fn truncate_chars(src: &str, n: usize) -> String {
    src.chars().take(n).collect()
}

proptest! {
    #[test]
    fn lexer_never_panics_on_noise(bytes in proptest::collection::vec(any::<u8>(), 0..512)) {
        let src = String::from_utf8_lossy(&bytes);
        let tokens = tokenize(&src);
        for t in &tokens {
            prop_assert!(t.start <= t.end, "inverted span");
            prop_assert!(t.end <= src.len(), "span past end of input");
            prop_assert!(src.get(t.start..t.end).is_some(), "span off char boundary");
            prop_assert!(t.line >= 1 && t.col >= 1, "positions are 1-indexed");
            prop_assert!(t.line_end >= t.line, "token ends before it starts");
        }
    }

    #[test]
    fn truncated_source_never_panics(n in 0usize..400) {
        // Cutting GNARLY mid-token leaves unterminated strings/comments —
        // the lexer must run them to end-of-file, not panic.
        let src = truncate_chars(GNARLY, n);
        let tokens = tokenize(&src);
        prop_assert!(tokens.iter().all(|t| src.get(t.start..t.end).is_some()));
        // The rule engine must survive the same input.
        let _ = lint_source("crates/core/src/fixture.rs", &src);
    }

    #[test]
    fn mangled_source_never_panics(pos in 0usize..400, byte in any::<u8>()) {
        // Flip one char of GNARLY to an arbitrary (lossy-decoded) byte.
        let mut chars: Vec<char> = GNARLY.chars().collect();
        let i = pos % chars.len();
        chars[i] = String::from_utf8_lossy(&[byte]).chars().next().unwrap_or('\u{fffd}');
        let src: String = chars.into_iter().collect();
        let tokens = tokenize(&src);
        prop_assert!(tokens.iter().all(|t| src.get(t.start..t.end).is_some()));
        let _ = lint_source("crates/gossip/src/fixture.rs", &src);
    }

    #[test]
    fn tokens_are_ordered_and_disjoint(bytes in proptest::collection::vec(any::<u8>(), 0..256)) {
        let src = String::from_utf8_lossy(&bytes);
        let tokens = tokenize(&src);
        for w in tokens.windows(2) {
            prop_assert!(w[0].end <= w[1].start, "overlapping tokens");
        }
    }
}

#[test]
fn gnarly_source_lexes_cleanly() {
    // Sanity anchor for the properties above: the unmangled snippet
    // produces the expected literal/comment structure.
    let tokens = tokenize(GNARLY);
    let raws: Vec<&str> =
        tokens.iter().filter(|t| t.kind == TokenKind::Literal).map(|t| t.text(GNARLY)).collect();
    assert!(raws.contains(&r##"r#"raw "quoted" text"#"##));
    assert!(raws.contains(&"b\"bytes\\x00\""));
    assert!(raws.contains(&r###"br##"double-hash raw"##"###));
    assert_eq!(tokens.iter().filter(|t| t.kind == TokenKind::BlockComment).count(), 1);
    assert_eq!(tokens.iter().filter(|t| t.kind == TokenKind::Lifetime).count(), 2);
    // The allow directive is honored: `as u32` on that line reports nothing.
    assert!(lint_source("crates/core/src/fixture.rs", GNARLY).is_empty());
}
