//! Figure 3 — privacy/utility trade-off of the Share-less strategy on GMF:
//! Max AAC vs HR@20 for every protocol and dataset.

use crate::runner::{run_recsys, DefenseKind, ModelKind, ProtocolKind, RunSpec};
use crate::tables::{f3, pct, Table};
use cia_data::presets::{Preset, Scale};

/// Runs the trade-off sweep for one model across datasets and protocols
/// (shared by Figures 3 and 4).
pub fn tradeoff(
    model: ModelKind,
    presets: &[Preset],
    scale: Scale,
    seed: u64,
    title: String,
) -> Table {
    let mut t = Table::new(
        title,
        &["Dataset", "Protocol", "Policy", "Max AAC %", "Random bound %", "Utility"],
    );
    for &preset in presets {
        for protocol in [ProtocolKind::Fl, ProtocolKind::RandGossip, ProtocolKind::PersGossip] {
            for (label, defense) in [
                ("No defense", DefenseKind::None),
                ("Share less", DefenseKind::ShareLess { tau: 0.3 }),
            ] {
                let mut spec = RunSpec::new(preset, model, protocol, scale);
                spec.seed = seed;
                spec.defense = defense;
                let r = run_recsys(&spec);
                t.row(vec![
                    preset.name().to_string(),
                    protocol.name().to_string(),
                    label.to_string(),
                    pct(r.attack.max_aac),
                    pct(r.attack.random_bound),
                    format!("{}={}", r.utility_metric, f3(r.utility)),
                ]);
            }
        }
    }
    t
}

/// Regenerates Figure 3 (as a table of the plotted series).
pub fn run(scale: Scale, seed: u64) -> Vec<Table> {
    vec![tradeoff(
        ModelKind::Gmf,
        &[Preset::MovieLens, Preset::Foursquare, Preset::Gowalla],
        scale,
        seed,
        format!("Figure 3 — Attack accuracy and HR@20 trade-off, GMF ({scale} scale)"),
    )]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_fig3_covers_all_cells() {
        let tables = run(Scale::Smoke, 17);
        // 3 datasets x 3 protocols x 2 policies.
        assert_eq!(tables[0].rows.len(), 18);
    }
}
