//! Known-bad fixture for D04: an `unsafe` block with no `// SAFETY:`
//! comment anywhere in the run of comments above it.

fn peek(xs: &[u8]) -> u8 {
    // This comment talks about something else entirely.
    unsafe { *xs.get_unchecked(0) }
}
