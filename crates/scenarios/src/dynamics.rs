//! The participant-dynamics layer: turns a [`DynamicsSpec`] into a
//! per-round availability mask and threads it through the protocols'
//! shared observer seam ([`RoundObserver::on_liveness`] /
//! [`GossipObserver::on_liveness`], both carrying
//! [`cia_runtime::LivenessEvent`]) — the training loops never learn that
//! the population is moving.
//!
//! The process is deterministic: round `t`'s transitions are drawn from an
//! RNG seeded by `(seed, t)`, and the only cross-round state is the online
//! bitmap and the straggler timers — both tiny, both checkpointable.

use crate::spec::DynamicsSpec;
use cia_federated::RoundObserver;
use cia_gossip::GossipObserver;
use cia_models::SharedModel;
use cia_runtime::{Checkpointable, LivenessEvent};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};

/// The evolving availability state for one scenario's population.
pub struct ParticipantDynamics {
    spec: DynamicsSpec,
    seed: u64,
    /// Churn state: whether each participant is currently online.
    online: Vec<bool>,
    /// Straggler membership (fixed at construction, deterministically).
    is_straggler: Vec<bool>,
    /// First round at which each straggler may act again.
    straggler_until: Vec<u64>,
    /// Sybil membership (fixed; sybils are always available).
    sybil: Vec<bool>,
}

/// Checkpointable slice of [`ParticipantDynamics`] (membership tables are
/// reconstructed deterministically from the spec and seed).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DynamicsState {
    /// Online bitmap.
    pub online: Vec<bool>,
    /// Straggler timers.
    pub straggler_until: Vec<u64>,
}

impl ParticipantDynamics {
    /// Initializes the population state for `n` participants.
    pub fn new(spec: &DynamicsSpec, n: usize, seed: u64) -> Self {
        let mut rng = StdRng::seed_from_u64(seed ^ 0xD11A_0001);
        // Sybils: evenly spaced ids, the same placement rule the coalition
        // experiments use.
        let mut sybil = vec![false; n];
        if spec.sybils > 0 {
            for i in 0..spec.sybils.min(n) {
                sybil[i * n / spec.sybils.min(n)] = true;
            }
        }
        // Initial online set: exact fraction via a deterministic shuffle.
        let mut online = vec![true; n];
        if spec.initial_online < 1.0 {
            let offline = n - ((n as f64 * spec.initial_online).round() as usize).clamp(1, n);
            let mut idx: Vec<usize> = (0..n).collect();
            idx.shuffle(&mut rng);
            for &i in idx.iter().take(offline) {
                online[i] = false;
            }
        }
        // Stragglers: exact fraction, again by shuffle (sybils never lag).
        let mut is_straggler = vec![false; n];
        if spec.straggler_fraction > 0.0 {
            let count = ((n as f64 * spec.straggler_fraction).round() as usize).min(n);
            let mut idx: Vec<usize> = (0..n).collect();
            idx.shuffle(&mut rng);
            for &i in idx.iter().filter(|&&i| !sybil[i]).take(count) {
                is_straggler[i] = true;
            }
        }
        for (o, &s) in online.iter_mut().zip(&sybil) {
            if s {
                *o = true;
            }
        }
        ParticipantDynamics {
            spec: *spec,
            seed,
            online,
            is_straggler,
            straggler_until: vec![0; n],
            sybil,
        }
    }

    /// The sybil coalition's node ids (attack construction).
    pub fn sybil_members(&self) -> Vec<u32> {
        // cia-lint: allow(D05, ids and indices are bounded by the validated population/catalog size, which fits u32)
        self.sybil.iter().enumerate().filter_map(|(i, &s)| s.then_some(i as u32)).collect()
    }

    /// Moves the always-online sybil coalition onto new node ids (adaptive
    /// placement relocation). Former sybil nodes return to normal churn
    /// starting from an online state — they were reachable while
    /// adversary-operated — and the new positions are forced online
    /// immediately.
    ///
    /// On checkpoint resume this must be re-applied *before*
    /// [`ParticipantDynamics::restore_state`], so the restored online bitmap
    /// (which already reflects post-relocation churn) wins.
    pub fn set_sybil_members(&mut self, members: &[u32]) {
        for (i, s) in self.sybil.iter_mut().enumerate() {
            if *s {
                self.online[i] = true;
            }
            *s = false;
        }
        for &m in members {
            self.sybil[m as usize] = true;
            self.online[m as usize] = true;
        }
    }

    /// Participants currently online (reported in JSONL records).
    pub fn online_count(&self) -> usize {
        self.online.iter().filter(|&&o| o).count()
    }

    /// Whether participant `i` is currently online (sybils always are). The
    /// state reflects the last [`ParticipantDynamics::apply`] call — queried
    /// at the top of round `t`, it answers for round `t - 1`, which is what
    /// a deferred-action decision (e.g. a gossip view refresh) wants: "was
    /// this node reachable at its last opportunity".
    pub fn is_online(&self, i: usize) -> bool {
        self.sybil.get(i).copied().unwrap_or(false) || self.online.get(i).copied().unwrap_or(false)
    }

    /// Advances the population to round `round` and intersects `mask` with
    /// availability. Must be called exactly once per round — both protocol
    /// hooks fire exactly once per round.
    pub fn apply(&mut self, round: u64, mask: &mut [bool]) {
        assert_eq!(mask.len(), self.online.len(), "one mask entry per participant");
        let spec = self.spec;
        let mut rng = StdRng::seed_from_u64(self.seed ^ round.wrapping_mul(0x9E6D_52A3_B1C4_85F7));
        for (i, slot) in mask.iter_mut().enumerate() {
            if self.sybil[i] {
                // Sybils are adversary-operated: always online, never
                // straggling, always participating.
                continue;
            }
            // Churn transition for this round.
            if self.online[i] {
                if spec.leave_prob > 0.0 && rng.gen_bool(spec.leave_prob) {
                    self.online[i] = false;
                }
            } else if rng.gen_bool(spec.join_prob.clamp(0.0, 1.0)) {
                self.online[i] = true;
            }
            let mut available = self.online[i];
            // Straggler timer.
            if available && self.is_straggler[i] && round < self.straggler_until[i] {
                available = false;
            }
            // Partial-participation sampling on top.
            if available && spec.participation < 1.0 && !rng.gen_bool(spec.participation) {
                available = false;
            }
            *slot &= available;
            // A straggler that acts this round draws its next delay.
            if *slot && self.is_straggler[i] {
                let u: f64 = rng.gen::<f64>().max(f64::MIN_POSITIVE);
                let delay = (-u.ln() * spec.straggler_mean_delay).ceil().max(1.0) as u64;
                self.straggler_until[i] = round + 1 + delay;
            }
        }
    }
}

/// Snapshot/restore of the cross-round state for checkpoint/resume.
/// Restoring panics if the state is not aligned with the population size.
impl Checkpointable for ParticipantDynamics {
    type State = DynamicsState;

    fn export_state(&self) -> DynamicsState {
        DynamicsState { online: self.online.clone(), straggler_until: self.straggler_until.clone() }
    }

    fn restore_state(&mut self, state: DynamicsState) {
        assert_eq!(state.online.len(), self.online.len(), "online bitmap size");
        assert_eq!(state.straggler_until.len(), self.straggler_until.len(), "timer table size");
        self.online = state.online;
        self.straggler_until = state.straggler_until;
    }
}

/// Adapter threading [`ParticipantDynamics`] into an FL run: availability is
/// applied to the acting set delivered through
/// [`RoundObserver::on_liveness`], every other callback is forwarded to the
/// inner observer (typically the attack).
pub struct FlDynamics<'a, O: RoundObserver> {
    /// The wrapped observer.
    pub inner: &'a mut O,
    /// The population state.
    pub dynamics: &'a mut ParticipantDynamics,
}

impl<O: RoundObserver> RoundObserver for FlDynamics<'_, O> {
    fn on_round_start(&mut self, round: u64) {
        self.inner.on_round_start(round);
    }

    fn on_liveness(&mut self, event: LivenessEvent<'_>) {
        match event {
            LivenessEvent::ActingSet { round, mask } => {
                self.dynamics.apply(round, mask);
                self.inner.on_liveness(LivenessEvent::ActingSet { round, mask });
            }
            other => self.inner.on_liveness(other),
        }
    }

    fn on_global(&mut self, round: u64, global_agg: &[f32]) {
        self.inner.on_global(round, global_agg);
    }

    fn on_client_model(&mut self, model: &SharedModel) {
        self.inner.on_client_model(model);
    }

    fn observes_models(&self) -> bool {
        self.inner.observes_models()
    }

    fn on_round_end(&mut self, stats: &cia_federated::RoundStats) {
        self.inner.on_round_end(stats);
    }
}

/// Adapter threading [`ParticipantDynamics`] into a gossip run through
/// [`GossipObserver::on_liveness`]: the wake set is intersected with
/// availability, and availability probes (view-refresh deferral) answer from
/// the churn bitmap.
pub struct GlDynamics<'a, O: GossipObserver> {
    /// The wrapped observer.
    pub inner: &'a mut O,
    /// The population state.
    pub dynamics: &'a mut ParticipantDynamics,
}

impl<O: GossipObserver> GossipObserver for GlDynamics<'_, O> {
    fn on_round_start(&mut self, round: u64) {
        self.inner.on_round_start(round);
    }

    fn on_liveness(&mut self, event: LivenessEvent<'_>) {
        match event {
            LivenessEvent::ActingSet { round, mask } => {
                self.dynamics.apply(round, mask);
                self.inner.on_liveness(LivenessEvent::ActingSet { round, mask });
            }
            LivenessEvent::Probe { round, node, available } => {
                // Offline nodes defer their view refreshes (and keep their
                // Pers-Gossip `heard` evidence) until they rejoin.
                if !self.dynamics.is_online(node as usize) {
                    *available = false;
                }
                self.inner.on_liveness(LivenessEvent::Probe { round, node, available });
            }
        }
    }

    fn on_delivery(&mut self, round: u64, receiver: cia_data::UserId, model: &SharedModel) {
        self.inner.on_delivery(round, receiver, model);
    }

    fn on_round_end(&mut self, stats: &cia_gossip::GossipRoundStats) {
        self.inner.on_round_end(stats);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::DynamicsSpec;

    fn churn_spec() -> DynamicsSpec {
        DynamicsSpec {
            leave_prob: 0.05,
            join_prob: 0.2,
            initial_online: 0.9,
            ..DynamicsSpec::default()
        }
    }

    #[test]
    fn static_spec_is_identity() {
        let mut dynamics = ParticipantDynamics::new(&DynamicsSpec::default(), 30, 1);
        for t in 0..10 {
            let mut mask = vec![true; 30];
            dynamics.apply(t, &mut mask);
            assert!(mask.iter().all(|&m| m), "round {t}");
        }
    }

    #[test]
    fn churn_hovers_near_stationary_fraction() {
        let mut dynamics = ParticipantDynamics::new(&churn_spec(), 200, 3);
        let mut online_sum = 0usize;
        let rounds = 200;
        for t in 0..rounds {
            let mut mask = vec![true; 200];
            dynamics.apply(t, &mut mask);
            online_sum += mask.iter().filter(|&&m| m).count();
        }
        // Stationary offline fraction = 0.05/(0.05+0.2) = 20%.
        let mean_online = online_sum as f64 / (rounds as f64 * 200.0);
        assert!(
            (mean_online - 0.8).abs() < 0.05,
            "mean online fraction {mean_online} far from 0.8"
        );
    }

    #[test]
    fn deterministic_per_seed() {
        let run = |seed: u64| {
            let mut d = ParticipantDynamics::new(&churn_spec(), 50, seed);
            let mut all = Vec::new();
            for t in 0..20 {
                let mut mask = vec![true; 50];
                d.apply(t, &mut mask);
                all.push(mask);
            }
            all
        };
        assert_eq!(run(7), run(7));
        assert_ne!(run(7), run(8));
    }

    #[test]
    fn stragglers_sit_out_after_acting() {
        let spec = DynamicsSpec {
            straggler_fraction: 1.0,
            straggler_mean_delay: 5.0,
            ..DynamicsSpec::default()
        };
        let mut dynamics = ParticipantDynamics::new(&spec, 40, 2);
        let mut acted = vec![0usize; 40];
        for t in 0..30 {
            let mut mask = vec![true; 40];
            dynamics.apply(t, &mut mask);
            for (i, &m) in mask.iter().enumerate() {
                if m {
                    acted[i] += 1;
                }
            }
        }
        // With a mean delay of 5, every straggler acts roughly every ~6
        // rounds — far fewer than all 30, more than none.
        assert!(acted.iter().all(|&a| a > 0 && a < 15), "{acted:?}");
    }

    #[test]
    fn sybils_are_always_available() {
        let spec = DynamicsSpec {
            leave_prob: 0.9,
            join_prob: 0.05,
            initial_online: 0.5,
            sybils: 4,
            ..DynamicsSpec::default()
        };
        let mut dynamics = ParticipantDynamics::new(&spec, 20, 5);
        let members = dynamics.sybil_members();
        assert_eq!(members.len(), 4);
        for t in 0..25 {
            let mut mask = vec![true; 20];
            dynamics.apply(t, &mut mask);
            for &m in &members {
                assert!(mask[m as usize], "sybil {m} offline at round {t}");
            }
        }
    }

    #[test]
    fn state_roundtrip_resumes_identically() {
        let spec = churn_spec();
        let mut straight = ParticipantDynamics::new(&spec, 60, 11);
        let mut masks = Vec::new();
        for t in 0..16 {
            let mut mask = vec![true; 60];
            straight.apply(t, &mut mask);
            masks.push(mask);
        }

        let mut first = ParticipantDynamics::new(&spec, 60, 11);
        for t in 0..8 {
            let mut mask = vec![true; 60];
            first.apply(t, &mut mask);
        }
        let state = first.export_state();
        let mut resumed = ParticipantDynamics::new(&spec, 60, 11);
        resumed.restore_state(state);
        for (t, expect) in masks.iter().enumerate().skip(8) {
            let mut mask = vec![true; 60];
            resumed.apply(t as u64, &mut mask);
            assert_eq!(&mask, expect, "round {t}");
        }
    }
}
