//! CIA beyond recommenders (§VIII-E): communities of one-class clients in a
//! federated MNIST-style image classifier are recovered perfectly.
//!
//! ```text
//! cargo run --release --example mnist_universality
//! ```

use community_inference::data::presets::Scale;
use community_inference::experiments::experiments::mnist;

fn main() {
    println!("100 clients, each holding images of exactly one digit class;");
    println!("a community = the clients sharing a class. The FL server runs CIA");
    println!("with held-out probe images of each class as V_target.\n");

    for table in mnist::run(Scale::Paper, 42) {
        println!("{}", table.to_text());
    }

    println!("The only requirements are non-iid client data and shared");
    println!("distributions inside groups — nothing recommender-specific,");
    println!("which is the paper's universality claim.");
}
