//! Property-based tests for the attack metrics and momentum state — the
//! arithmetic every reported number flows through.

use cia_core::metrics::{best_fraction_floor, community_accuracy, random_bound, rank_desc};
use cia_core::{membership_entropy, AttackTracker, MomentumState};
use cia_data::UserId;
use cia_models::SharedModel;
use proptest::prelude::*;

proptest! {
    #[test]
    fn community_accuracy_is_bounded(
        predicted in proptest::collection::vec(0u32..50, 0..20),
        truth in proptest::collection::vec(0u32..50, 0..20),
        k in 1usize..20,
    ) {
        let acc = community_accuracy(&predicted, &truth, k);
        prop_assert!((0.0..=1.0).contains(&acc) || predicted.len() > k);
        // With predicted.len() <= k the accuracy can never exceed 1.
        if predicted.len() <= k {
            prop_assert!(acc <= 1.0);
        }
    }

    #[test]
    fn perfect_prediction_has_full_accuracy(
        mut members in proptest::collection::btree_set(0u32..100, 1..15),
    ) {
        let truth: Vec<u32> = members.iter().copied().collect();
        let predicted = truth.clone();
        let k = truth.len();
        prop_assert_eq!(community_accuracy(&predicted, &truth, k), 1.0);
        // Shifting every id out of the truth zeroes it.
        let miss: Vec<u32> = truth.iter().map(|v| v + 1000).collect();
        prop_assert_eq!(community_accuracy(&miss, &truth, k), 0.0);
        members.clear();
    }

    #[test]
    fn best_fraction_floor_is_at_most_max(
        accs in proptest::collection::vec(0.0f64..1.0, 1..60),
        frac in 0.01f64..1.0,
    ) {
        let floor = best_fraction_floor(&accs, frac);
        let max = accs.iter().copied().fold(0.0, f64::max);
        let min = accs.iter().copied().fold(1.0, f64::min);
        prop_assert!(floor <= max + 1e-12);
        prop_assert!(floor >= min - 1e-12);
    }

    #[test]
    fn best_fraction_floor_decreases_with_fraction(
        accs in proptest::collection::vec(0.0f64..1.0, 2..60),
    ) {
        // Taking a larger "best" pool can only lower (or keep) the floor.
        let tight = best_fraction_floor(&accs, 0.1);
        let loose = best_fraction_floor(&accs, 0.5);
        prop_assert!(loose <= tight + 1e-12);
    }

    #[test]
    fn random_bound_monotone_in_k(k in 1usize..100, n in 1usize..500) {
        prop_assert!(random_bound(k, n) <= random_bound(k + 1, n));
        prop_assert!((0.0..=1.0).contains(&random_bound(k, n)));
    }

    #[test]
    fn rank_desc_is_a_total_order_with_nans(
        mut pairs in proptest::collection::vec((any::<f32>(), 0u32..1000), 2..40),
    ) {
        // Sorting must not panic even with NaN/inf scores, and must place
        // non-NaN scores in descending order.
        pairs.sort_by(rank_desc);
        let clean: Vec<f32> = pairs
            .iter()
            .map(|p| if p.0.is_nan() { f32::NEG_INFINITY } else { p.0 })
            .collect();
        for w in clean.windows(2) {
            prop_assert!(w[0] >= w[1], "not descending: {} < {}", w[0], w[1]);
        }
    }

    #[test]
    fn tracker_max_is_max_of_history(
        rounds in proptest::collection::vec(
            proptest::collection::vec(0.0f64..1.0, 3..8), 1..10),
    ) {
        let mut tracker = AttackTracker::new(5, 100);
        let mut best = 0.0f64;
        for (r, accs) in rounds.iter().enumerate() {
            let uppers = vec![1.0; accs.len()];
            tracker.record(r as u64, accs, &uppers);
            // cia-lint: allow(D07, sequential left-to-right fold over a slice in index order; the reduction order is fixed)
            let aac = accs.iter().sum::<f64>() / accs.len() as f64;
            best = best.max(aac);
        }
        let out = tracker.outcome();
        prop_assert!((out.max_aac - best).abs() < 1e-9);
        prop_assert_eq!(out.history.len(), rounds.len());
    }

    #[test]
    fn entropy_is_symmetric_and_bounded(p in 0.0f32..=1.0) {
        let e = membership_entropy(p);
        prop_assert!((0.0..=std::f32::consts::LN_2 + 1e-6).contains(&e));
        prop_assert!((e - membership_entropy(1.0 - p)).abs() < 1e-5);
    }

    #[test]
    fn momentum_is_convex_combination(
        a in proptest::collection::vec(-10.0f32..10.0, 4..4usize.wrapping_add(1)),
        b in proptest::collection::vec(-10.0f32..10.0, 4..5),
        beta in 0.0f32..1.0,
    ) {
        let snap = |v: &[f32]| SharedModel {
            owner: UserId::new(0),
            round: 0,
            owner_emb: None,
            agg: v[..4.min(v.len())].to_vec(),
        };
        let sa = snap(&a);
        let sb = snap(&b);
        if sa.agg.len() != sb.agg.len() {
            return Ok(());
        }
        let mut state = MomentumState::from_snapshot(&sa);
        state.update(beta, &sb);
        for ((x, y), r) in sa.agg.iter().zip(&sb.agg).zip(state.agg()) {
            let (lo, hi) = if x < y { (x, y) } else { (y, x) };
            prop_assert!(*r >= lo - 1e-3 && *r <= hi + 1e-3);
        }
    }
}
