//! Vendored, dependency-free stand-in for the subset of `rand` 0.8 used by
//! this workspace.
//!
//! The build environment has no registry access, so the workspace ships the
//! small slice of the `rand` API it actually calls: [`rngs::StdRng`] (a
//! deterministic xoshiro256++ generator seeded via SplitMix64), the
//! [`RngCore`]/[`SeedableRng`]/[`Rng`] traits, integer/float `gen_range`, and
//! [`seq::SliceRandom::shuffle`]. Streams are deterministic per seed and
//! stable across platforms, which is all the simulations require; they do
//! **not** bit-match upstream `rand`'s StdRng (ChaCha12).

#![forbid(unsafe_code)]

use std::ops::{Range, RangeInclusive};

/// A source of random 32/64-bit words.
pub trait RngCore {
    /// Returns the next random `u32`.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Returns the next random `u64`.
    fn next_u64(&mut self) -> u64;
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }

    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// An RNG constructible from a seed.
pub trait SeedableRng: Sized {
    /// The fixed-size seed type.
    type Seed;

    /// Builds the generator from a full seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Builds the generator from a `u64` (the only constructor the
    /// workspace uses; expanded with SplitMix64).
    fn seed_from_u64(state: u64) -> Self;
}

/// Types samplable from raw random words via `Rng::gen`.
pub trait Standard: Sized {
    /// Draws one value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 24 high bits -> uniform in [0, 1).
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 high bits -> uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Ranges samplable by `Rng::gen_range`.
pub trait SampleRange<T> {
    /// Draws one value from the range.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_sample_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as u128).wrapping_sub(self.start as u128) as u64;
                // Debiased multiply-shift (Lemire); span == 0 means the full
                // u64 domain, impossible for the workspace's ranges.
                let mut x = rng.next_u64();
                let mut m = (x as u128) * (span as u128);
                let mut lo = m as u64;
                if lo < span {
                    let t = span.wrapping_neg() % span;
                    while lo < t {
                        x = rng.next_u64();
                        m = (x as u128) * (span as u128);
                        lo = m as u64;
                    }
                }
                self.start.wrapping_add((m >> 64) as $t)
            }
        }

        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                if end == <$t>::MAX && start == <$t>::MIN {
                    // Full domain: every word is uniform already.
                    return rng.next_u64() as $t;
                }
                if end == <$t>::MAX {
                    // `end + 1` would overflow; shift the range down by one.
                    return (start - 1..end).sample_single(rng) + 1;
                }
                (start..end + 1).sample_single(rng)
            }
        }
    )*};
}
impl_sample_range_int!(u8, u16, u32, u64, usize, i32, i64);

macro_rules! impl_sample_range_float {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                self.start + <$t as Standard>::sample(rng) * (self.end - self.start)
            }
        }

        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                start + <$t as Standard>::sample(rng) * (end - start)
            }
        }
    )*};
}
impl_sample_range_float!(f32, f64);

/// High-level sampling methods, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Draws a value of any [`Standard`]-samplable type.
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// Draws a value uniformly from `range`.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_single(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        <f64 as Standard>::sample(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Named generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard deterministic generator: xoshiro256++,
    /// seeded from a `u64` through SplitMix64.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0].wrapping_add(self.s[3]).rotate_left(23).wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }

    impl SeedableRng for StdRng {
        type Seed = [u8; 32];

        fn from_seed(seed: Self::Seed) -> Self {
            let mut s = [0u64; 4];
            for (i, chunk) in seed.chunks_exact(8).enumerate() {
                s[i] = u64::from_le_bytes(chunk.try_into().expect("8-byte chunk"));
            }
            if s.iter().all(|&w| w == 0) {
                // xoshiro must not start from the all-zero state.
                s[0] = 0x9E37_79B9_7F4A_7C15;
            }
            StdRng { s }
        }

        fn seed_from_u64(state: u64) -> Self {
            let mut sm = state;
            StdRng {
                s: [
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                ],
            }
        }
    }
}

/// Slice sampling helpers.
pub mod seq {
    use super::{Rng, RngCore};

    /// Shuffling for slices (the only `SliceRandom` method the workspace
    /// uses).
    pub trait SliceRandom {
        /// The element type.
        type Item;

        /// Fisher–Yates shuffle in place.
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..i + 1);
                self.swap(i, j);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
        let mut c = StdRng::seed_from_u64(8);
        assert_ne!(a.gen::<u64>(), c.gen::<u64>());
    }

    #[test]
    fn unit_floats_in_range() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let f = rng.gen::<f32>();
            assert!((0.0..1.0).contains(&f));
            let d = rng.gen::<f64>();
            assert!((0.0..1.0).contains(&d));
        }
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut seen = [false; 10];
        for _ in 0..1000 {
            let v = rng.gen_range(3u32..7);
            assert!((3..7).contains(&v));
            seen[rng.gen_range(0usize..=9)] = true;
            let f = rng.gen_range(-1.0f32..1.0);
            assert!((-1.0..1.0).contains(&f));
        }
        assert!(seen.iter().all(|&s| s), "inclusive range missed values");
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, sorted, "shuffle left the slice sorted");
    }
}
