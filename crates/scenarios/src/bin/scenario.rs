//! `scenario` — run declarative scenario suites.
//!
//! ```text
//! scenario run [--suite NAME|FILE] [--scale smoke|small|paper|million] [--seed N]
//!              [--only NAME] [--out FILE] [--checkpoint-dir DIR]
//!              [--checkpoint-every N] [--resume] [--stop-after N]
//!              [--no-timing] [--trace-out FILE] [--lockstep] [--delivery-seed N]
//! scenario serve [--suite NAME|FILE] [--scale ...] [--seed N] [--only NAME]
//!                [--out FILE] [--no-timing] [--queries N] [--zipf-s X]
//!                [--top-k K] [--cache-capacity N]
//! scenario list [--scale ...] [--seed N]
//! scenario validate FILE
//! scenario report [--check-trace FILE] FILE...
//! scenario rss-probe -- CMD [ARGS...]
//! ```
//!
//! `--suite` accepts a built-in suite name — `builtin`,
//! `participation-sweep`, `defense-dynamics-grid`, `pers-gossip-churn` — or
//! a path to a suite JSON document (which may contain `sweep` generator
//! blocks; see `crates/scenarios/README.md`).
//!
//! `run` executes a suite deterministically from its seed and streams one
//! JSONL record per (scenario, evaluation round) plus a summary per
//! scenario. With `--checkpoint-dir` the full run state (model params,
//! attack momentum, tracker, dynamics) is saved every `--checkpoint-every`
//! rounds; a killed run continues with `--resume` and lands on the same
//! final metrics as an uninterrupted one. `--trace-out` additionally writes
//! a Chrome trace-event file (phase spans + counter tracks) loadable in
//! Perfetto / `chrome://tracing`. Rounds execute on the event-driven node
//! runtime by default (typed messages under a deterministic virtual-clock
//! scheduler; transcripts are byte-identical to the fused loops);
//! `--lockstep` switches back to the legacy fused round loops for A/B
//! timing.
//!
//! `serve` runs the first selected scenario on a training thread while the
//! main thread answers Zipf-distributed top-k queries against the model
//! snapshot the runner publishes at every round boundary (`cia-serve`) —
//! proving queries and training coexist — then prints query, cache-hit and
//! latency statistics. The training transcript (written to `--out`) is
//! byte-identical to a `run` of the same scenario: publication only reads
//! quiesced round state.
//!
//! `report` aggregates one or more run JSONL streams into per-phase
//! mean/p50/p99 tables, counter totals and the RSS trajectory;
//! `--check-trace` also validates a Chrome trace file's structure.
//!
//! `rss-probe` runs a command and prints the peak RSS over its process tree
//! (the in-tree replacement for a `getrusage(RUSAGE_CHILDREN)` wrapper —
//! the CI container has no `/usr/bin/time`). While the tree runs it polls
//! `/proc` high-water marks; at reap time it folds in the kernel's own
//! `RUSAGE_CHILDREN` accounting, which also covers children too short-lived
//! for any poll to observe.

// The one binary in the workspace that cannot `#![forbid(unsafe_code)]`:
// the rss-probe subcommand reads peak RSS through a raw `getrusage` FFI
// call (the container ships no /usr/bin/time). The single unsafe block is
// SAFETY-documented and policed by cia-lint rule D04.
use cia_core::{Counter, Metric, Recorder};
use cia_data::presets::Scale;
use cia_models::RelevanceScorer;
use cia_scenarios::runner::{
    gmf_scorer, prme_scorer, run_scenario, validate_jsonl, RunOptions, ScenarioOutcome,
};
use cia_scenarios::spec::{named_suite, ModelKind, ServeWorkload, BUILTIN_SUITE_NAMES};
use cia_scenarios::{
    chrome_trace, render_report, summarize, try_build_setup, validate_chrome_trace, SuiteSpec,
};
use cia_serve::{QueryWorkload, ServeEngine, SnapshotHub};
use std::io::Write;
use std::path::PathBuf;
use std::process::ExitCode;
use std::sync::Arc;
use std::time::{Duration, Instant};

fn usage() {
    eprintln!("usage: scenario <run|serve|list|validate|report|rss-probe> [options]");
    eprintln!("  run      [--suite NAME|FILE] [--scale smoke|small|paper|million] [--seed N]");
    eprintln!("           [--only NAME] [--out FILE] [--checkpoint-dir DIR]");
    eprintln!("           [--checkpoint-every N] [--resume] [--stop-after N] [--no-timing]");
    eprintln!("           [--trace-out FILE] [--lockstep] [--delivery-seed N]");
    eprintln!("  serve    [--suite NAME|FILE] [--scale ...] [--seed N] [--only NAME]");
    eprintln!("           [--out FILE] [--no-timing] [--queries N] [--zipf-s X]");
    eprintln!("           [--top-k K] [--cache-capacity N]");
    eprintln!("  list     [--suite NAME|FILE] [--scale ...] [--seed N]");
    eprintln!("  validate FILE");
    eprintln!("  report   [--check-trace FILE] FILE...");
    eprintln!("  rss-probe -- CMD [ARGS...]");
    eprintln!("built-in suites: {}", BUILTIN_SUITE_NAMES.join(", "));
}

struct Args {
    suite: String,
    scale: Scale,
    seed: u64,
    only: Option<String>,
    out: Option<PathBuf>,
    trace_out: Option<PathBuf>,
    opts: RunOptions,
    serve: ServeWorkload,
}

fn parse_args(args: &[String]) -> Result<Args, String> {
    let mut parsed = Args {
        suite: "builtin".to_string(),
        scale: Scale::Smoke,
        seed: 42,
        only: None,
        out: None,
        trace_out: None,
        opts: RunOptions { timing: true, checkpoint_every: 5, ..RunOptions::default() },
        serve: ServeWorkload::default(),
    };
    let mut i = 0;
    let value = |args: &[String], i: usize, flag: &str| -> Result<String, String> {
        args.get(i + 1).cloned().ok_or(format!("{flag} expects a value"))
    };
    while i < args.len() {
        match args[i].as_str() {
            "--suite" => {
                parsed.suite = value(args, i, "--suite")?;
                i += 2;
            }
            "--scale" => {
                parsed.scale = Scale::parse(&value(args, i, "--scale")?)
                    .ok_or("--scale expects smoke|small|paper|million")?;
                i += 2;
            }
            "--seed" => {
                parsed.seed =
                    value(args, i, "--seed")?.parse().map_err(|_| "--seed expects an integer")?;
                i += 2;
            }
            "--only" => {
                parsed.only = Some(value(args, i, "--only")?);
                i += 2;
            }
            "--out" => {
                parsed.out = Some(PathBuf::from(value(args, i, "--out")?));
                i += 2;
            }
            "--trace-out" => {
                parsed.trace_out = Some(PathBuf::from(value(args, i, "--trace-out")?));
                i += 2;
            }
            "--checkpoint-dir" => {
                parsed.opts.checkpoint_dir =
                    Some(PathBuf::from(value(args, i, "--checkpoint-dir")?));
                i += 2;
            }
            "--checkpoint-every" => {
                parsed.opts.checkpoint_every = value(args, i, "--checkpoint-every")?
                    .parse()
                    .map_err(|_| "--checkpoint-every expects an integer")?;
                i += 2;
            }
            "--stop-after" => {
                parsed.opts.stop_after_rounds = Some(
                    value(args, i, "--stop-after")?
                        .parse()
                        .map_err(|_| "--stop-after expects an integer")?,
                );
                i += 2;
            }
            "--resume" => {
                parsed.opts.resume = true;
                i += 1;
            }
            "--no-timing" => {
                parsed.opts.timing = false;
                i += 1;
            }
            "--lockstep" => {
                parsed.opts.lockstep = true;
                i += 1;
            }
            "--delivery-seed" => {
                parsed.opts.delivery_seed = Some(
                    value(args, i, "--delivery-seed")?
                        .parse()
                        .map_err(|_| "--delivery-seed expects an integer")?,
                );
                i += 2;
            }
            "--queries" => {
                parsed.serve.queries = value(args, i, "--queries")?
                    .parse()
                    .map_err(|_| "--queries expects an integer")?;
                i += 2;
            }
            "--zipf-s" => {
                parsed.serve.zipf_s =
                    value(args, i, "--zipf-s")?.parse().map_err(|_| "--zipf-s expects a number")?;
                i += 2;
            }
            "--top-k" => {
                parsed.serve.top_k =
                    value(args, i, "--top-k")?.parse().map_err(|_| "--top-k expects an integer")?;
                i += 2;
            }
            "--cache-capacity" => {
                parsed.serve.cache_capacity = value(args, i, "--cache-capacity")?
                    .parse()
                    .map_err(|_| "--cache-capacity expects an integer")?;
                i += 2;
            }
            other => return Err(format!("unknown argument `{other}`")),
        }
    }
    Ok(parsed)
}

fn load_suite(args: &Args) -> Result<SuiteSpec, String> {
    if let Some(suite) = named_suite(&args.suite, args.scale, args.seed) {
        Ok(suite)
    } else {
        let text = std::fs::read_to_string(&args.suite)
            .map_err(|e| format!("cannot read {}: {e}", args.suite))?;
        SuiteSpec::parse(&text)
    }
}

fn cmd_run(args: &Args) -> Result<(), String> {
    let suite = load_suite(args)?;
    // Sweeps expand before filtering, so `--only` addresses the concrete
    // scenarios a sweep generates (e.g. `participation-0.5`).
    let mut scenarios = suite.expanded()?;
    if let Some(only) = &args.only {
        scenarios.retain(|s| &s.name == only);
        if scenarios.is_empty() {
            return Err(format!("no scenario named `{only}` in suite `{}`", suite.name));
        }
    }
    let stdout = std::io::stdout();
    let mut file;
    let mut lock;
    let sink: &mut dyn Write = match &args.out {
        Some(path) => {
            // Resumed runs append to the existing stream.
            file = std::fs::OpenOptions::new()
                .create(true)
                .append(args.opts.resume)
                .truncate(!args.opts.resume)
                .write(true)
                .open(path)
                .map_err(|e| format!("cannot open {}: {e}", path.display()))?;
            &mut file
        }
        None => {
            lock = stdout.lock();
            &mut lock
        }
    };
    let mut outcomes: Vec<ScenarioOutcome> = Vec::new();
    for spec in &scenarios {
        let outcome = run_scenario(spec, &suite.name, &args.opts, sink)?;
        if outcome.skipped {
            eprintln!(
                "[{}] already completed — skipping (records already in the stream)",
                outcome.name
            );
        } else if outcome.completed {
            eprintln!(
                "[{}] {} rounds, max AAC {:.1}% ({}x random), {}={:.3}, {:.1}s",
                outcome.name,
                outcome.rounds_done,
                outcome.attack.max_aac * 100.0,
                (outcome.attack.advantage_over_random() * 10.0).round() / 10.0,
                outcome.utility_metric,
                outcome.utility.unwrap_or(f64::NAN),
                outcome.elapsed.as_secs_f64(),
            );
        } else if args.opts.checkpoint_dir.is_some() {
            eprintln!(
                "[{}] stopped after round {} (checkpointed; rerun with --resume)",
                outcome.name, outcome.rounds_done
            );
        } else {
            eprintln!(
                "[{}] stopped after round {} (no --checkpoint-dir; this run cannot be resumed)",
                outcome.name, outcome.rounds_done
            );
        }
        outcomes.push(outcome);
    }
    if let Some(path) = &args.trace_out {
        let doc = chrome_trace(&outcomes);
        std::fs::write(path, doc.render())
            .map_err(|e| format!("cannot write {}: {e}", path.display()))?;
        eprintln!("trace: {} (load in Perfetto / chrome://tracing)", path.display());
    }
    Ok(())
}

fn cmd_serve(args: &Args) -> Result<(), String> {
    let suite = load_suite(args)?;
    let mut scenarios = suite.expanded()?;
    if let Some(only) = &args.only {
        scenarios.retain(|s| &s.name == only);
    }
    let Some(spec) = scenarios.into_iter().next() else {
        return Err(match &args.only {
            Some(only) => format!("no scenario named `{only}` in suite `{}`", suite.name),
            None => format!("suite `{}` is empty", suite.name),
        });
    };
    spec.validate()?;
    // The dimensions the engine scores with; the training thread rebuilds
    // its own setup from the same (preset, scale, seed), so these match the
    // published snapshots exactly.
    let setup = try_build_setup(spec.preset, spec.scale, spec.k_override, spec.seed)
        .map_err(|e| format!("{}: {e}", spec.name))?;
    let num_users = setup.data.num_users();
    let num_items = setup.data.num_items();
    let dim = setup.params.dim;
    drop(setup);

    let hub = Arc::new(SnapshotHub::new());
    let mut opts = args.opts.clone();
    opts.checkpoint_dir = None;
    opts.publish = Some(Arc::clone(&hub));
    let suite_name = suite.name.clone();
    let out = args.out.clone();
    let train_spec = spec.clone();
    // cia-lint: allow(D06, the one serve trainer thread, joined before exit; transcript byte-equality under a racing reader is pinned by tests/serve.rs)
    let trainer = std::thread::spawn(move || -> Result<ScenarioOutcome, String> {
        match &out {
            Some(path) => {
                let mut file = std::fs::File::create(path)
                    .map_err(|e| format!("cannot open {}: {e}", path.display()))?;
                run_scenario(&train_spec, &suite_name, &opts, &mut file)
            }
            None => run_scenario(&train_spec, &suite_name, &opts, &mut std::io::sink()),
        }
    });

    let outcome = match spec.model {
        ModelKind::Gmf => {
            let engine =
                ServeEngine::new(gmf_scorer(num_items, dim), hub, args.serve.cache_capacity);
            serve_queries(engine, trainer, num_users, &args.serve, spec.seed)
        }
        ModelKind::Prme => {
            let engine =
                ServeEngine::new(prme_scorer(num_items, dim), hub, args.serve.cache_capacity);
            serve_queries(engine, trainer, num_users, &args.serve, spec.seed)
        }
    }?;
    eprintln!(
        "[{}] {} rounds, max AAC {:.1}%, {}={:.3}, {:.1}s (trained while serving)",
        outcome.name,
        outcome.rounds_done,
        outcome.attack.max_aac * 100.0,
        outcome.utility_metric,
        outcome.utility.unwrap_or(f64::NAN),
        outcome.elapsed.as_secs_f64(),
    );
    Ok(())
}

/// Drives the Zipf query stream against `engine` while the training thread
/// runs, then drains the remaining query budget against the final snapshot
/// and prints serve statistics.
fn serve_queries<S: RelevanceScorer>(
    mut engine: ServeEngine<S>,
    trainer: std::thread::JoinHandle<Result<ScenarioOutcome, String>>,
    num_users: usize,
    w: &ServeWorkload,
    seed: u64,
) -> Result<ScenarioOutcome, String> {
    let rec = Recorder::new();
    rec.set_detail(true);
    engine.set_recorder(rec.clone());
    let mut workload =
        QueryWorkload::new(num_users, w.zipf_s, seed ^ 0x5E27E).map_err(|e| e.to_string())?;
    // cia-lint: allow(D02, serve-mode latency summary printed after the run; the transcript stream never sees it)
    let started = Instant::now();
    let mut answered = 0u64;
    let mut unanswerable = 0u64;
    // Phase 1: query concurrently with training. `None` with epoch 0 means
    // no snapshot exists yet (first round still running) — back off instead
    // of spinning; `None` after that is a user the model cannot serve
    // (Share-less participants publish no embedding).
    while !trainer.is_finished() {
        let user = workload.next_user();
        match engine.top_k(user, w.top_k) {
            Some(_) => answered += 1,
            None if engine.hub().epoch() == 0 => {
                std::thread::sleep(Duration::from_millis(1));
            }
            None => unanswerable += 1,
        }
    }
    let concurrent = answered;
    // Phase 2: drain the remaining budget against the final snapshot. The
    // draw bound keeps a fully unservable population (e.g. Share-less for
    // every user) from looping forever.
    let mut draws = 0u64;
    while answered < w.queries && draws < w.queries.saturating_mul(64) && engine.hub().epoch() > 0 {
        draws += 1;
        let user = workload.next_user();
        match engine.top_k(user, w.top_k) {
            Some(_) => answered += 1,
            None => unanswerable += 1,
        }
    }
    let elapsed = started.elapsed();
    let outcome = trainer.join().map_err(|_| "training thread panicked".to_string())??;

    let hits = rec.counter(Counter::ServeCacheHits);
    let misses = rec.counter(Counter::ServeCacheMisses);
    let lookups = hits + misses;
    let hist = rec.histogram(Metric::ServeMicros);
    println!(
        "serve: {answered} queries answered over {} snapshot epochs \
         ({concurrent} concurrent with training, {unanswerable} unanswerable)",
        engine.hub().epoch()
    );
    println!(
        "serve: cache {hits} hits / {misses} misses ({:.1}% hit rate), \
         p50 {}us p99 {}us, {:.0} queries/s",
        if lookups > 0 { 100.0 * hits as f64 / lookups as f64 } else { 0.0 },
        hist.quantile(0.5),
        hist.quantile(0.99),
        answered as f64 / elapsed.as_secs_f64().max(1e-9),
    );
    println!("serve: OK");
    Ok(outcome)
}

fn cmd_report(args: &[String]) -> Result<(), String> {
    let mut check_trace: Option<PathBuf> = None;
    let mut files: Vec<PathBuf> = Vec::new();
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--check-trace" => {
                let path =
                    args.get(i + 1).cloned().ok_or("--check-trace expects a file".to_string())?;
                check_trace = Some(PathBuf::from(path));
                i += 2;
            }
            other => {
                files.push(PathBuf::from(other));
                i += 1;
            }
        }
    }
    if files.is_empty() && check_trace.is_none() {
        return Err("report expects at least one JSONL file (or --check-trace FILE)".to_string());
    }
    for path in &files {
        let text = std::fs::read_to_string(path)
            .map_err(|e| format!("cannot read {}: {e}", path.display()))?;
        let reports = summarize(&text).map_err(|e| format!("{}: {e}", path.display()))?;
        println!("== {}", path.display());
        print!("{}", render_report(&reports));
    }
    if let Some(path) = &check_trace {
        let text = std::fs::read_to_string(path)
            .map_err(|e| format!("cannot read {}: {e}", path.display()))?;
        let events =
            validate_chrome_trace(&text).map_err(|e| format!("{}: {e}", path.display()))?;
        println!("{}: OK ({events} trace events)", path.display());
    }
    Ok(())
}

/// Peak RSS (KiB) over a process subtree rooted at `root`: walks
/// `/proc/*/status` PPid links and takes the max `VmHWM` across the root
/// and its live descendants — the same statistic as
/// `getrusage(RUSAGE_CHILDREN).ru_maxrss`, but available *while* the tree
/// runs instead of only after a wait.
fn subtree_peak_rss_kib(root: u32) -> u64 {
    let mut pids: Vec<(u32, u32, u64)> = Vec::new(); // (pid, ppid, vmhwm_kib)
    let Ok(entries) = std::fs::read_dir("/proc") else {
        return 0;
    };
    for entry in entries.flatten() {
        let Some(pid) = entry.file_name().to_str().and_then(|s| s.parse::<u32>().ok()) else {
            continue;
        };
        let Ok(status) = std::fs::read_to_string(entry.path().join("status")) else {
            continue;
        };
        let mut ppid = 0u32;
        let mut hwm = 0u64;
        for line in status.lines() {
            if let Some(rest) = line.strip_prefix("PPid:") {
                ppid = rest.trim().parse().unwrap_or(0);
            } else if let Some(rest) = line.strip_prefix("VmHWM:") {
                hwm = rest.trim().trim_end_matches("kB").trim().parse().unwrap_or(0);
            }
        }
        pids.push((pid, ppid, hwm));
    }
    // BFS from the root over PPid edges.
    let mut tree = vec![root];
    let mut peak = 0u64;
    let mut cursor = 0;
    while cursor < tree.len() {
        let parent = tree[cursor];
        cursor += 1;
        for &(pid, ppid, hwm) in &pids {
            if pid == parent {
                peak = peak.max(hwm);
            } else if ppid == parent && !tree.contains(&pid) {
                tree.push(pid);
            }
        }
    }
    peak
}

/// Peak RSS (KiB) the kernel accounted to reaped children via
/// `getrusage(RUSAGE_CHILDREN)`. Polling `/proc` misses a process that
/// starts and exits entirely inside one 50ms window; the kernel's counter
/// cannot — each reaped child folds its own (transitive) high-water mark
/// into the parent's tally. Only populated after a wait, so it complements
/// the live subtree walk rather than replacing it.
#[cfg(target_os = "linux")]
fn reaped_children_peak_rss_kib() -> u64 {
    // 64-bit Linux `struct rusage`: two timevals (4 longs), then 14 longs
    // of counters with `ru_maxrss` (KiB) first.
    #[repr(C)]
    struct Rusage {
        times: [i64; 4],
        ru_maxrss: i64,
        rest: [i64; 13],
    }
    extern "C" {
        fn getrusage(who: i32, usage: *mut Rusage) -> i32;
    }
    const RUSAGE_CHILDREN: i32 = -1;
    let mut ru = Rusage { times: [0; 4], ru_maxrss: 0, rest: [0; 13] };
    // SAFETY: `Rusage` matches the 64-bit Linux ABI layout of `struct
    // rusage` (it covers the full 144 bytes the kernel writes) and the
    // pointer is valid for the duration of the call.
    if unsafe { getrusage(RUSAGE_CHILDREN, &mut ru) } == 0 {
        u64::try_from(ru.ru_maxrss).unwrap_or(0)
    } else {
        0
    }
}

#[cfg(not(target_os = "linux"))]
fn reaped_children_peak_rss_kib() -> u64 {
    0
}

fn cmd_rss_probe(args: &[String]) -> Result<ExitCode, String> {
    let cmd = match args.first().map(String::as_str) {
        Some("--") => &args[1..],
        _ => args,
    };
    let Some(program) = cmd.first() else {
        return Err("rss-probe expects a command: scenario rss-probe -- CMD [ARGS...]".to_string());
    };
    let mut child = std::process::Command::new(program)
        .args(&cmd[1..])
        .spawn()
        .map_err(|e| format!("cannot spawn {program}: {e}"))?;
    let pid = child.id();
    // Poll the subtree's high-water marks until the child exits. VmHWM is
    // monotone per process, so the last poll before each process exits
    // bounds its peak from below. Short-lived processes between polls are
    // the sampling blind spot; `getrusage(RUSAGE_CHILDREN)` at reap time
    // covers them, since every child the tree waited for folds its peak
    // into the kernel's tally. Take the max of both views. The poll
    // interval is overridable (`CIA_RSS_POLL_MS`) so tests can switch the
    // sampler off and exercise the reap-time path alone.
    let poll_interval = std::time::Duration::from_millis(
        std::env::var("CIA_RSS_POLL_MS").ok().and_then(|v| v.parse().ok()).unwrap_or(50),
    );
    let mut peak_kib = 0u64;
    let mut last_poll: Option<Instant> = None;
    let status = loop {
        match child.try_wait().map_err(|e| format!("wait failed: {e}"))? {
            Some(status) => break status,
            None => {
                if last_poll.is_none_or(|t| t.elapsed() >= poll_interval) {
                    peak_kib = peak_kib.max(subtree_peak_rss_kib(pid));
                    // cia-lint: allow(D02, rss-probe poll pacing; operational tooling with no transcript output)
                    last_poll = Some(Instant::now());
                }
                std::thread::sleep(std::time::Duration::from_millis(10).min(poll_interval));
            }
        }
    };
    peak_kib = peak_kib.max(subtree_peak_rss_kib(pid)).max(reaped_children_peak_rss_kib());
    println!("   peak RSS (children): {:.2} GiB ({peak_kib} KiB)", peak_kib as f64 / 1_048_576.0);
    let code = status.code().unwrap_or(1);
    Ok(ExitCode::from(u8::try_from(code).unwrap_or(1)))
}

fn cmd_list(args: &Args) -> Result<(), String> {
    let suite = load_suite(args)?;
    let scenarios = suite.expanded()?;
    println!(
        "suite: {} ({} scenarios from {} entries)",
        suite.name,
        scenarios.len(),
        suite.entries.len()
    );
    for s in &scenarios {
        let dynamics = if s.dynamics.is_static() {
            "static".to_string()
        } else {
            let mut parts = Vec::new();
            if s.dynamics.leave_prob > 0.0 {
                parts.push(format!(
                    "churn {:.0}%",
                    100.0 * s.dynamics.leave_prob / (s.dynamics.leave_prob + s.dynamics.join_prob)
                ));
            }
            if s.dynamics.straggler_fraction > 0.0 {
                parts.push(format!("stragglers {:.0}%", 100.0 * s.dynamics.straggler_fraction));
            }
            if s.dynamics.participation < 1.0 {
                parts.push(format!("participation {:.0}%", 100.0 * s.dynamics.participation));
            }
            if s.dynamics.sybils > 0 {
                parts.push(format!("{} sybils", s.dynamics.sybils));
                if s.dynamics.placement.is_adaptive() {
                    parts.push(format!(
                        "{} placement after {} warm-up rounds",
                        s.dynamics.placement.name(),
                        s.dynamics.placement_warmup
                    ));
                }
            }
            parts.join(", ")
        };
        println!(
            "  {:<20} {} × {} × {} × {:?} @ {} seed {} [{}]",
            s.name,
            s.preset.name(),
            s.model.name(),
            s.protocol.name(),
            s.defense,
            s.scale,
            s.seed,
            dynamics
        );
    }
    Ok(())
}

fn cmd_validate(path: &str) -> Result<(), String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    let (evals, summaries) = validate_jsonl(&text)?;
    println!("{path}: OK ({evals} round_eval, {summaries} scenario_summary records)");
    Ok(())
}

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let Some(command) = argv.first().map(String::as_str) else {
        usage();
        return ExitCode::FAILURE;
    };
    let result = match command {
        "run" | "serve" | "list" => match parse_args(&argv[1..]) {
            Ok(args) if command == "run" => cmd_run(&args),
            Ok(args) if command == "serve" => cmd_serve(&args),
            Ok(args) => cmd_list(&args),
            Err(e) => Err(e),
        },
        "validate" => match argv.get(1) {
            Some(path) => cmd_validate(path),
            None => Err("validate expects a file path".to_string()),
        },
        "report" => cmd_report(&argv[1..]),
        "rss-probe" => match cmd_rss_probe(&argv[1..]) {
            Ok(code) => return code,
            Err(e) => Err(e),
        },
        _ => {
            usage();
            return ExitCode::FAILURE;
        }
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}
