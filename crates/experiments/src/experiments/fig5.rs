//! Figure 5 — utility and empirical privacy under DP-SGD on MovieLens
//! (δ = 1e-6, clip = 2), for FL and Rand-Gossip.

use crate::runner::{run_recsys, DefenseKind, ModelKind, ProtocolKind, RunSpec, ScaleParams};
use crate::tables::{f3, pct, Table};
use cia_data::presets::{Preset, Scale};
use cia_defenses::RdpAccountant;

/// The privacy budgets swept by the paper (`None` = ε = ∞).
pub const EPSILONS: [Option<f64>; 5] = [None, Some(1000.0), Some(100.0), Some(10.0), Some(1.0)];

/// Regenerates Figure 5 (as a table of the plotted series).
pub fn run(scale: Scale, seed: u64) -> Vec<Table> {
    let params = ScaleParams::of(scale);
    let mut t = Table::new(
        format!("Figure 5 — DP-SGD trade-off on MovieLens+GMF (delta=1e-6, clip=2, {scale} scale)"),
        &["Protocol", "epsilon", "noise multiplier", "Max AAC %", "Random bound %", "HR@20"],
    );
    for protocol in [ProtocolKind::Fl, ProtocolKind::RandGossip] {
        let rounds = match protocol {
            ProtocolKind::Fl => params.fl_rounds,
            _ => params.gl_rounds,
        };
        for eps in EPSILONS {
            let mut spec = RunSpec::new(Preset::MovieLens, ModelKind::Gmf, protocol, scale);
            spec.seed = seed;
            spec.defense = DefenseKind::Dp { epsilon: eps };
            let r = run_recsys(&spec);
            let sigma = match eps {
                Some(e) => RdpAccountant::calibrate_noise(e, 1e-6, rounds, 1.0),
                None => 0.0,
            };
            t.row(vec![
                protocol.name().to_string(),
                eps.map_or("inf".to_string(), |e| format!("{e}")),
                format!("{sigma:.4}"),
                pct(r.attack.max_aac),
                pct(r.attack.random_bound),
                f3(r.utility),
            ]);
        }
    }
    vec![t]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_dp_sweep_degrades_utility_with_budget() {
        let tables = run(Scale::Smoke, 23);
        let rows = &tables[0].rows;
        assert_eq!(rows.len(), 10);
        // FL: utility with eps = 1 is not above utility with eps = inf.
        let hr_inf: f64 = rows[0][5].parse().unwrap();
        let hr_eps1: f64 = rows[4][5].parse().unwrap();
        assert!(
            hr_eps1 <= hr_inf + 0.05,
            "eps=1 utility {hr_eps1} unexpectedly above eps=inf {hr_inf}"
        );
    }
}
