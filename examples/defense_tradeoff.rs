//! Privacy/utility trade-off of the two defenses the paper evaluates:
//! the Share-less policy vs DP-SGD, on a federated GMF recommender.
//!
//! ```text
//! cargo run --release --example defense_tradeoff
//! ```

use community_inference::experiments::{
    run_recsys, DefenseKind, ModelKind, Preset, ProtocolKind, RunSpec, Scale,
};

fn main() {
    println!("MovieLens-like, FL + GMF ({} scale).\n", Scale::Small);
    println!("{:<28} {:>9} {:>9} {:>12}", "defense", "Max AAC", "HR@20", "vs random");
    let cases: Vec<(String, DefenseKind)> = vec![
        ("no defense".into(), DefenseKind::None),
        ("Share-less (tau=0.3)".into(), DefenseKind::ShareLess { tau: 0.3 }),
        ("DP-SGD eps=inf (clip only)".into(), DefenseKind::Dp { epsilon: None }),
        ("DP-SGD eps=1000".into(), DefenseKind::Dp { epsilon: Some(1000.0) }),
        ("DP-SGD eps=100".into(), DefenseKind::Dp { epsilon: Some(100.0) }),
        ("DP-SGD eps=10".into(), DefenseKind::Dp { epsilon: Some(10.0) }),
        ("DP-SGD eps=1".into(), DefenseKind::Dp { epsilon: Some(1.0) }),
    ];
    for (label, defense) in cases {
        let mut spec =
            RunSpec::new(Preset::MovieLens, ModelKind::Gmf, ProtocolKind::Fl, Scale::Small);
        spec.defense = defense;
        let r = run_recsys(&spec);
        println!(
            "{:<28} {:>8.1}% {:>9.3} {:>11.1}x",
            label,
            r.attack.max_aac * 100.0,
            r.utility,
            r.attack.advantage_over_random()
        );
    }
    println!("\nThe paper's conclusion (RQ6/RQ7): Share-less removes much of the");
    println!("leakage at almost no utility cost, while DP-SGD needs so much noise");
    println!("to blunt CIA that the recommender becomes useless first.");
}
