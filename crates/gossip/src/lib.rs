//! Gossip learning simulation: Rand-Gossip and Pers-Gossip over dynamic
//! P-out-regular communication graphs.
//!
//! Reproduces the paper's decentralized setting (§III-C): each user keeps a
//! local model; at every round awake nodes *cast* their model to one randomly
//! sampled out-neighbor, aggregate whatever arrived in their inbox since the
//! last wake, and take local training steps. Views are refreshed by a random
//! peer-sampling service at intervals drawn from Exp(0.1) [19]; Pers-Gossip
//! [5] additionally retains neighbors whose models performed well locally,
//! exploring randomly with a configurable ratio (0.4 in the paper, §V-B).
//!
//! The [`GossipObserver`] hook exposes every model delivery — the vantage
//! point of a gossip adversary, who sees exactly the models delivered to the
//! node(s) she controls (§IV-A).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod graph;
mod sim;

pub use graph::{sample_exp_interval, ViewTable};
pub use sim::{
    GossipConfig, GossipObserver, GossipProtocol, GossipPublishHook, GossipRoundStats, GossipSim,
    GossipSimState, NullGossipObserver, TrafficCounters,
};

// The runtime abstractions this crate's API surfaces (observer liveness
// events, the export/restore trait, evented delivery policies).
pub use cia_runtime::{Checkpointable, DeliveryPolicy, LivenessEvent};
