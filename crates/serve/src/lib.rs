//! `cia-serve` — concurrent top-k recommendation serving over
//! snapshot-swapped models.
//!
//! Training (FedAvg or gossip rounds) and query serving have opposite
//! needs: training mutates parameters continuously, serving wants an
//! immutable, *round-consistent* view it can score against without taking
//! any lock the trainer contends on. This crate resolves the tension with a
//! double-buffered read-mostly design:
//!
//! * [`Snapshot`] — an immutable, flat-array copy of everything a query
//!   needs (user embeddings plus the aggregatable item parameters), stamped
//!   with a monotonically increasing *epoch*. Snapshots are built once per
//!   round boundary from a quiesced model (under the event-driven runtime,
//!   the trainer's publish hook fires on the scheduler's `RoundEnd` event);
//!   readers can never observe a mid-round mixture.
//! * [`SnapshotHub`] — the swap point. The trainer [`publishes`]
//!   (`SnapshotHub::publish`) a fresh snapshot at each round boundary; the
//!   hub wraps it in an [`Arc`] and atomically replaces the previous one.
//!   Readers [`load`](SnapshotHub::load) the current `Arc` (a brief
//!   read-lock on a pointer, never held across scoring) and keep scoring
//!   against it even while the next swap happens — the old snapshot stays
//!   alive until its last reader drops it, so readers never block training
//!   and training never blocks readers.
//! * [`ServeEngine`] — answers top-k queries against whatever snapshot is
//!   current: tiled scoring through the model's vectorized
//!   [`score_item_range`](cia_models::RelevanceScorer::score_item_range)
//!   kernel path into a streaming [`TopK`] selector (O(k) memory — no
//!   catalog-length score vector), fronted by a per-epoch ranking cache
//!   keyed on `(user, k)` that a snapshot swap invalidates wholesale.
//!   Hit/miss counters and a `serve_us` latency histogram report into a
//!   [`cia_obs::Recorder`].
//! * [`QueryWorkload`] — a deterministic synthetic query stream: Zipf-skewed
//!   user popularity (hot users dominate, as in real request logs) from a
//!   seeded RNG, so benchmarks and tests replay exactly.
//!
//! Determinism note: serving is read-only. Publishing a snapshot copies
//! parameters out of the simulation and touches no RNG, so attaching a
//! serving thread to a scenario run leaves its JSONL transcript
//! byte-identical.

#![forbid(unsafe_code)]

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, RwLock};

use cia_core::TopK;
use cia_data::{DataError, Zipf};
use cia_models::RelevanceScorer;
use cia_obs::{Counter, Metric, Recorder};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Catalog tile width for streaming top-k scoring. Matches the evaluator's
/// tiling: large enough to amortize the kernel call, small enough to stay in
/// L1/L2 alongside the model rows.
pub const SERVE_TILE: usize = 512;

/// An immutable, round-consistent copy of the model state queries score
/// against.
///
/// User embeddings are stored as one flat row-major `num_users × user_dim`
/// array (plus a presence mask — Share-less participants publish no user
/// embedding). Item-side aggregatable parameters are either one shared
/// vector (federated: the server's global model) or per-user rows (gossip:
/// each node serves from its own local mixture).
pub struct Snapshot {
    epoch: u64,
    user_dim: usize,
    agg_len: usize,
    users: Vec<f32>,
    present: Vec<bool>,
    aggs: Vec<f32>,
    shared_agg: bool,
}

impl std::fmt::Debug for Snapshot {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Snapshot")
            .field("epoch", &self.epoch)
            .field("num_users", &self.num_users())
            .field("user_dim", &self.user_dim)
            .field("agg_len", &self.agg_len)
            .field("shared_agg", &self.shared_agg)
            .finish()
    }
}

impl Snapshot {
    /// Builds a snapshot with one shared aggregatable vector (the federated
    /// global model). `users` yields each participant's embedding in user-id
    /// order; `None` marks a participant that shares no embedding.
    ///
    /// # Panics
    ///
    /// Panics if an embedding's length differs from `user_dim`.
    pub fn shared<'a, I>(user_dim: usize, users: I, agg: &[f32]) -> Snapshot
    where
        I: IntoIterator<Item = Option<&'a [f32]>>,
    {
        let (users, present) = pack_users(user_dim, users);
        Snapshot {
            epoch: 0,
            user_dim,
            agg_len: agg.len(),
            users,
            present,
            aggs: agg.to_vec(),
            shared_agg: true,
        }
    }

    /// Builds a snapshot with per-user aggregatable rows (gossip: each node
    /// serves from its own local model). `nodes` yields
    /// `(user_embedding, agg)` in node order.
    ///
    /// # Panics
    ///
    /// Panics if any embedding or agg row has an inconsistent length.
    pub fn per_user<'a, I>(user_dim: usize, agg_len: usize, nodes: I) -> Snapshot
    where
        I: IntoIterator<Item = (Option<&'a [f32]>, &'a [f32])>,
    {
        let mut users = Vec::new();
        let mut present = Vec::new();
        let mut aggs = Vec::new();
        for (emb, agg) in nodes {
            assert_eq!(agg.len(), agg_len, "agg row length mismatch");
            aggs.extend_from_slice(agg);
            push_user(user_dim, emb, &mut users, &mut present);
        }
        Snapshot { epoch: 0, user_dim, agg_len, users, present, aggs, shared_agg: false }
    }

    /// The swap epoch stamped by [`SnapshotHub::publish`] (0 before
    /// publication).
    #[must_use]
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Number of users the snapshot covers.
    #[must_use]
    pub fn num_users(&self) -> usize {
        self.present.len()
    }

    /// The user's embedding, or `None` if the user published none
    /// (Share-less) or the model has no user factors.
    #[must_use]
    pub fn user_emb(&self, user: u32) -> Option<&[f32]> {
        let u = user as usize;
        (self.user_dim > 0 && *self.present.get(u)?)
            .then(|| &self.users[u * self.user_dim..(u + 1) * self.user_dim])
    }

    /// The aggregatable parameters queries for `user` score against: the
    /// shared global vector, or the user's own row under per-user mode.
    ///
    /// # Panics
    ///
    /// Panics if `user` is out of range in per-user mode.
    #[must_use]
    pub fn agg_of(&self, user: u32) -> &[f32] {
        if self.shared_agg {
            &self.aggs
        } else {
            let u = user as usize;
            assert!(u < self.num_users(), "user {user} out of snapshot range");
            &self.aggs[u * self.agg_len..(u + 1) * self.agg_len]
        }
    }
}

fn pack_users<'a, I>(user_dim: usize, users: I) -> (Vec<f32>, Vec<bool>)
where
    I: IntoIterator<Item = Option<&'a [f32]>>,
{
    let mut flat = Vec::new();
    let mut present = Vec::new();
    for emb in users {
        push_user(user_dim, emb, &mut flat, &mut present);
    }
    (flat, present)
}

fn push_user(user_dim: usize, emb: Option<&[f32]>, flat: &mut Vec<f32>, present: &mut Vec<bool>) {
    match emb {
        Some(e) => {
            assert_eq!(e.len(), user_dim, "user embedding length mismatch");
            flat.extend_from_slice(e);
            present.push(true);
        }
        None => {
            flat.extend(std::iter::repeat_n(0.0, user_dim));
            present.push(false);
        }
    }
}

/// The swap point between one writer (the training loop) and any number of
/// readers (serving threads).
///
/// `publish` stamps the snapshot with the next epoch and swaps it in behind
/// an [`Arc`]; `load` hands a reader the current `Arc`. The lock guards only
/// the pointer swap — scoring always happens against an owned `Arc`, outside
/// any lock — so readers never block the trainer for longer than a pointer
/// copy, and a reader mid-query keeps a consistent (possibly one-epoch-old)
/// view until it finishes.
#[derive(Debug, Default)]
pub struct SnapshotHub {
    current: RwLock<Option<Arc<Snapshot>>>,
    epoch: AtomicU64,
}

impl SnapshotHub {
    /// An empty hub: `load` returns `None` until the first `publish`.
    #[must_use]
    pub fn new() -> Self {
        SnapshotHub::default()
    }

    /// Stamps `snap` with the next epoch and makes it the current snapshot.
    /// Returns the epoch assigned.
    pub fn publish(&self, mut snap: Snapshot) -> u64 {
        let epoch = self.epoch.fetch_add(1, Ordering::Relaxed) + 1;
        snap.epoch = epoch;
        *self.current.write().expect("snapshot lock poisoned") = Some(Arc::new(snap));
        epoch
    }

    /// The current snapshot, or `None` before the first `publish`.
    #[must_use]
    pub fn load(&self) -> Option<Arc<Snapshot>> {
        self.current.read().expect("snapshot lock poisoned").clone()
    }

    /// Epoch of the most recently published snapshot (0 if none yet).
    #[must_use]
    pub fn epoch(&self) -> u64 {
        self.epoch.load(Ordering::Relaxed)
    }
}

/// One answered query: the ranked `(score, item)` list and the snapshot
/// epoch it was computed against.
#[derive(Debug, Clone)]
pub struct ServeReply {
    /// Epoch of the snapshot the ranking was computed against.
    pub epoch: u64,
    ranked: Arc<Vec<(f32, u32)>>,
}

impl ServeReply {
    /// Ranked `(score, item)` pairs, best first.
    #[must_use]
    pub fn ranked(&self) -> &[(f32, u32)] {
        &self.ranked
    }

    /// Ranked item ids, best first.
    #[must_use]
    pub fn ids(&self) -> Vec<u32> {
        self.ranked.iter().map(|&(_, id)| id).collect()
    }
}

/// Cache key: `(user, k)` — one entry per distinct query shape.
type QueryKey = (u32, usize);

struct RankingCache {
    epoch: u64,
    // cia-lint: allow(D01, lookup-only ranking cache: keyed gets and inserts, never iterated, flushed wholesale on epoch swap)
    map: HashMap<QueryKey, Arc<Vec<(f32, u32)>>>,
}

/// Answers top-k queries against whatever snapshot the hub currently holds.
///
/// Scoring streams the catalog in [`SERVE_TILE`]-item tiles through the
/// scorer's [`score_item_range`](RelevanceScorer::score_item_range) kernel
/// path into a [`TopK`] selector, so a query allocates O(tile + k), never
/// O(catalog). Results are cached per `(user, k)` until the next snapshot
/// swap; the cache is capacity-bounded (new entries are dropped when full —
/// the bound is a memory guarantee, not an eviction policy) and flushed
/// wholesale when the observed epoch changes.
pub struct ServeEngine<S> {
    scorer: S,
    hub: Arc<SnapshotHub>,
    rec: Recorder,
    cache: Mutex<RankingCache>,
    cache_capacity: usize,
}

impl<S: std::fmt::Debug> std::fmt::Debug for ServeEngine<S> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ServeEngine")
            .field("scorer", &self.scorer)
            .field("cache_capacity", &self.cache_capacity)
            .finish_non_exhaustive()
    }
}

impl<S: RelevanceScorer> ServeEngine<S> {
    /// An engine over `hub` scoring with `scorer`, caching at most
    /// `cache_capacity` rankings per snapshot epoch.
    #[must_use]
    pub fn new(scorer: S, hub: Arc<SnapshotHub>, cache_capacity: usize) -> Self {
        ServeEngine {
            scorer,
            hub,
            rec: Recorder::new(),
            // cia-lint: allow(D01, constructed empty; the RankingCache order-safety invariant is documented on the field above)
            cache: Mutex::new(RankingCache { epoch: 0, map: HashMap::new() }),
            cache_capacity,
        }
    }

    /// Installs the recorder serve counters and the `serve_us` histogram
    /// report into. Serving keeps its own recorder (distinct from the
    /// training scenario's) so attaching a server never perturbs the
    /// training transcript.
    pub fn set_recorder(&mut self, rec: Recorder) {
        self.rec = rec;
    }

    /// The recorder serve metrics report into.
    #[must_use]
    pub fn recorder(&self) -> &Recorder {
        &self.rec
    }

    /// The hub this engine reads snapshots from.
    #[must_use]
    pub fn hub(&self) -> &Arc<SnapshotHub> {
        &self.hub
    }

    /// Answers a top-`k` query for `user` against the current snapshot.
    ///
    /// Returns `None` when no snapshot has been published yet, when `user`
    /// is outside the snapshot, or when the model needs a user embedding the
    /// snapshot doesn't hold for this user (Share-less participants).
    ///
    /// Ranking order matches the offline evaluator exactly: descending
    /// score with ascending item id breaking ties (the [`TopK`] total
    /// order), so a served ranking equals the full-sort prefix bit for bit.
    pub fn top_k(&self, user: u32, k: usize) -> Option<ServeReply> {
        let snap = self.hub.load()?;
        if user as usize >= snap.num_users() {
            return None;
        }
        let user_emb = snap.user_emb(user);
        if self.scorer.user_emb_len() > 0 && user_emb.is_none() {
            return None;
        }
        let t0 = self.rec.clock();

        if let Some(ranked) = self.cache_lookup(snap.epoch, user, k) {
            self.rec.inc(Counter::ServeCacheHits);
            self.rec.observe_since(Metric::ServeMicros, t0);
            return Some(ServeReply { epoch: snap.epoch, ranked });
        }
        self.rec.inc(Counter::ServeCacheMisses);

        let agg = snap.agg_of(user);
        let n = self.scorer.num_items() as usize;
        let mut sel = TopK::new(k);
        let mut tile = vec![0.0f32; SERVE_TILE.min(n.max(1))];
        let mut start = 0usize;
        while start < n {
            let len = SERVE_TILE.min(n - start);
            let out = &mut tile[..len];
            // cia-lint: allow(D05, ids and indices are bounded by the validated population/catalog size, which fits u32)
            self.scorer.score_item_range(user_emb, agg, start as u32, out);
            for (i, &score) in out.iter().enumerate() {
                // cia-lint: allow(D05, ids and indices are bounded by the validated population/catalog size, which fits u32)
                sel.push(score, (start + i) as u32);
            }
            start += len;
        }
        let ranked = Arc::new(sel.into_sorted());

        self.cache_insert(snap.epoch, user, k, Arc::clone(&ranked));
        self.rec.observe_since(Metric::ServeMicros, t0);
        Some(ServeReply { epoch: snap.epoch, ranked })
    }

    fn cache_lookup(&self, epoch: u64, user: u32, k: usize) -> Option<Arc<Vec<(f32, u32)>>> {
        let mut cache = self.cache.lock().expect("ranking cache poisoned");
        if cache.epoch != epoch {
            // A swap happened since this cache was filled: every cached
            // ranking is stale at once, so flush rather than compare epochs
            // per entry.
            cache.map.clear();
            cache.epoch = epoch;
            return None;
        }
        cache.map.get(&(user, k)).cloned()
    }

    fn cache_insert(&self, epoch: u64, user: u32, k: usize, ranked: Arc<Vec<(f32, u32)>>) {
        let mut cache = self.cache.lock().expect("ranking cache poisoned");
        if cache.epoch == epoch && cache.map.len() < self.cache_capacity {
            cache.map.insert((user, k), ranked);
        }
    }
}

/// A deterministic synthetic query stream: Zipf-skewed user popularity from
/// a seeded RNG. Rank 0 (the hottest user) is user 0 — the skew is over
/// user *ids*, which is all a cache-hit-rate benchmark needs.
#[derive(Debug, Clone)]
pub struct QueryWorkload {
    zipf: Zipf,
    rng: StdRng,
}

impl QueryWorkload {
    /// A workload over `num_users` users with Zipf exponent `s`, seeded for
    /// exact replay.
    ///
    /// # Errors
    ///
    /// Returns an error if `num_users == 0` or `s` is negative or
    /// non-finite.
    pub fn new(num_users: usize, s: f64, seed: u64) -> Result<Self, DataError> {
        Ok(QueryWorkload { zipf: Zipf::new(num_users, s)?, rng: StdRng::seed_from_u64(seed) })
    }

    /// The next querying user.
    pub fn next_user(&mut self) -> u32 {
        // cia-lint: allow(D05, Zipf support is 1..=num_users and num_users is validated to fit u32)
        self.zipf.sample(&mut self.rng) as u32
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cia_models::{GmfHyper, GmfSpec};

    fn scorer(items: u32, dim: usize) -> GmfSpec {
        GmfSpec::new(items, dim, GmfHyper { lr: 0.1, ..GmfHyper::default() })
    }

    /// A snapshot whose every parameter equals its (intended) epoch, so a
    /// reader can detect any torn or mid-publish view.
    fn stamped_snapshot(epoch: u64, users: usize, dim: usize, agg_len: usize) -> Snapshot {
        let v = epoch as f32;
        let emb = vec![v; dim];
        let rows: Vec<Option<&[f32]>> = (0..users).map(|_| Some(emb.as_slice())).collect();
        let agg = vec![v; agg_len];
        Snapshot::shared(dim, rows, &agg)
    }

    #[test]
    fn racing_reader_only_sees_fully_published_snapshots() {
        let hub = Arc::new(SnapshotHub::new());
        let reader = {
            let hub = Arc::clone(&hub);
            std::thread::spawn(move || {
                let mut seen = 0u64;
                let mut last_epoch = 0u64;
                while last_epoch < 200 {
                    let Some(snap) = hub.load() else { continue };
                    let want = snap.epoch() as f32;
                    // cia-lint: allow(D05, ids and indices are bounded by the validated population/catalog size, which fits u32)
                    for u in 0..snap.num_users() as u32 {
                        let emb = snap.user_emb(u).expect("published embedding");
                        assert!(emb.iter().all(|&x| x == want), "torn user row");
                    }
                    assert!(snap.agg_of(0).iter().all(|&x| x == want), "torn agg");
                    assert!(snap.epoch() >= last_epoch, "epoch went backwards");
                    last_epoch = snap.epoch();
                    seen += 1;
                }
                seen
            })
        };
        for e in 1..=200 {
            let published = hub.publish(stamped_snapshot(e, 8, 4, 16));
            assert_eq!(published, e);
        }
        let seen = reader.join().expect("reader panicked");
        assert!(seen > 0);
        assert_eq!(hub.epoch(), 200);
    }

    #[test]
    fn cache_hits_within_epoch_and_invalidates_on_swap() {
        let s = scorer(40, 4);
        let hub = Arc::new(SnapshotHub::new());
        let engine = ServeEngine::new(s, Arc::clone(&hub), 64);

        assert!(engine.top_k(0, 5).is_none(), "no snapshot yet");

        hub.publish(stamped_snapshot(1, 6, 4, 40 * 4 + 4));
        let a = engine.top_k(3, 5).expect("served");
        let b = engine.top_k(3, 5).expect("served");
        assert_eq!(a.epoch, 1);
        assert_eq!(a.ids(), b.ids());
        let rec = engine.recorder();
        assert_eq!(rec.counter(Counter::ServeCacheMisses), 1);
        assert_eq!(rec.counter(Counter::ServeCacheHits), 1);

        // Swap: the cached ranking must not be reused.
        hub.publish(stamped_snapshot(2, 6, 4, 40 * 4 + 4));
        let c = engine.top_k(3, 5).expect("served");
        assert_eq!(c.epoch, 2);
        assert_eq!(rec.counter(Counter::ServeCacheMisses), 2);
        assert_eq!(rec.counter(Counter::ServeCacheHits), 1);
    }

    #[test]
    fn cache_capacity_bounds_entries() {
        let s = scorer(16, 4);
        let hub = Arc::new(SnapshotHub::new());
        let engine = ServeEngine::new(s, Arc::clone(&hub), 2);
        hub.publish(stamped_snapshot(1, 8, 4, 16 * 4 + 4));
        for u in 0..6 {
            engine.top_k(u, 3).expect("served");
        }
        // Re-query: only the first two rankings were retained.
        for u in 0..6 {
            engine.top_k(u, 3).expect("served");
        }
        let rec = engine.recorder();
        assert_eq!(rec.counter(Counter::ServeCacheMisses), 10);
        assert_eq!(rec.counter(Counter::ServeCacheHits), 2);
    }

    #[test]
    fn absent_user_embedding_yields_none() {
        let s = scorer(16, 4);
        let hub = Arc::new(SnapshotHub::new());
        let engine = ServeEngine::new(s, Arc::clone(&hub), 8);
        let emb = vec![0.5f32; 4];
        let users: Vec<Option<&[f32]>> = vec![Some(&emb), None];
        let agg = vec![0.1f32; 16 * 4 + 4];
        hub.publish(Snapshot::shared(4, users, &agg));
        assert!(engine.top_k(0, 3).is_some());
        assert!(engine.top_k(1, 3).is_none(), "Share-less user has no embedding");
        assert!(engine.top_k(7, 3).is_none(), "user outside snapshot");
    }

    #[test]
    fn per_user_snapshot_routes_each_user_to_own_agg() {
        let dim = 4;
        let agg_len = 16 * dim + dim;
        let emb = vec![0.3f32; dim];
        let a0 = vec![1.0f32; agg_len];
        let a1 = vec![2.0f32; agg_len];
        let snap = Snapshot::per_user(
            dim,
            agg_len,
            vec![(Some(emb.as_slice()), a0.as_slice()), (Some(emb.as_slice()), a1.as_slice())],
        );
        assert!(snap.agg_of(0).iter().all(|&x| x == 1.0));
        assert!(snap.agg_of(1).iter().all(|&x| x == 2.0));
    }

    #[test]
    fn workload_is_deterministic_and_zipf_skewed() {
        let mut w1 = QueryWorkload::new(100, 1.1, 7).expect("workload");
        let mut w2 = QueryWorkload::new(100, 1.1, 7).expect("workload");
        let draws: Vec<u32> = (0..500).map(|_| w1.next_user()).collect();
        assert!(draws.iter().all(|&u| u < 100));
        assert!((0..500).all(|i| w2.next_user() == draws[i]), "same seed, same stream");
        let hot = draws.iter().filter(|&&u| u < 10).count();
        assert!(hot > 250, "Zipf skew should concentrate on hot users, got {hot}/500");
    }
}
