//! §VIII-E — the universality experiment: CIA on MNIST-style image
//! classification.
//!
//! 100 clients hold samples of exactly one digit class each (strongly
//! non-iid); a community is the set of clients holding the same class. The
//! server-side adversary targets each class with a probe set of held-out
//! images and ranks clients by the mean log-probability their momentum model
//! assigns to the class. The paper reports 100% community recovery against a
//! 10% random bound.

use crate::tables::{pct, Table};
use cia_core::{CiaConfig, FlCia, RelevanceEvaluator};
use cia_data::presets::Scale;
use cia_data::{ImageDataset, ImageGenConfig, UserId, IMAGE_DIM, NUM_CLASSES};
use cia_federated::{FedAvg, FedAvgConfig};
use cia_models::{MlpClient, MlpHyper, MlpScratch, MlpSpec};
use std::sync::Arc;

/// Relevance of an MLP for a class-probe target: the mean log-softmax
/// probability of the class over the probe images.
struct MnistEvaluator {
    spec: MlpSpec,
    data: Arc<ImageDataset>,
    /// `targets[c]` = held-out probe sample indices of class `c`.
    targets: Vec<Vec<usize>>,
}

impl MnistEvaluator {
    /// Shared inner loop: forwards every probe through `scratch` (no per-probe
    /// allocation) and folds the class log-probability inline.
    fn relevance_with(&self, scratch: &mut MlpScratch, agg: &[f32], target: usize) -> f32 {
        let probes = &self.targets[target];
        if probes.is_empty() {
            return f32::NEG_INFINITY;
        }
        let mut acc = 0.0f32;
        for &s in probes {
            let logits = self.spec.forward_into(agg, self.data.image(s), scratch);
            // logp[target] = z[target] − lse, without materializing the full
            // log-softmax vector.
            acc += logits[target] - MlpSpec::log_sum_exp(logits);
        }
        acc / probes.len() as f32
    }
}

impl RelevanceEvaluator for MnistEvaluator {
    fn num_targets(&self) -> usize {
        self.targets.len()
    }

    fn prepare(&mut self, _agg: &[f32], _seed: u64) {}

    fn relevance_one(&self, _owner_emb: Option<&[f32]>, agg: &[f32], target: usize) -> f32 {
        let mut scratch = MlpScratch::default();
        self.relevance_with(&mut scratch, agg, target)
    }

    fn relevance_all(&self, _owner_emb: Option<&[f32]>, agg: &[f32], out: &mut [f32]) {
        assert_eq!(out.len(), self.targets.len(), "one output per target");
        // One scratch for the whole model: reused across targets and probes.
        let mut scratch = MlpScratch::default();
        for (t, o) in out.iter_mut().enumerate() {
            *o = self.relevance_with(&mut scratch, agg, t);
        }
    }
}

/// Regenerates the MNIST universality experiment.
pub fn run(scale: Scale, seed: u64) -> Vec<Table> {
    let (clients_per_class, train_per_class, probe_per_class, rounds, hidden) = match scale {
        Scale::Smoke => (3, 12, 4, 5, 32),
        Scale::Small => (6, 30, 8, 10, 64),
        // The paper's setting: 100 clients, one hidden layer of 100 units.
        // (`Scale::Million` is a bench-only recsys profile; cap at paper.)
        Scale::Paper | Scale::Million => (10, 60, 10, 15, 100),
    };
    let data = Arc::new(ImageDataset::generate(&ImageGenConfig {
        samples_per_class: train_per_class + probe_per_class,
        noise_std: 0.35,
        seed,
    }));

    // Split: the first `train_per_class` of each class feed the clients, the
    // rest form the adversary's probe sets.
    let mut client_samples: Vec<Vec<usize>> = vec![Vec::new(); clients_per_class * NUM_CLASSES];
    let mut probes: Vec<Vec<usize>> = vec![Vec::new(); NUM_CLASSES];
    for c in 0..NUM_CLASSES {
        // cia-lint: allow(D05, MNIST class labels are 0..=9)
        let idx = data.indices_of_class(c as u8);
        for (pos, &sample) in idx.iter().enumerate() {
            if pos < train_per_class {
                client_samples[c * clients_per_class + pos % clients_per_class].push(sample);
            } else {
                probes[c].push(sample);
            }
        }
    }

    let spec = MlpSpec::new(vec![IMAGE_DIM, hidden, NUM_CLASSES]);
    let num_clients = clients_per_class * NUM_CLASSES;
    let clients: Vec<MlpClient> = client_samples
        .iter()
        .enumerate()
        .map(|(u, samples)| {
            MlpClient::new(
                spec.clone(),
                MlpHyper::default(),
                // cia-lint: allow(D05, ids and indices are bounded by the validated population/catalog size, which fits u32)
                UserId::new(u as u32),
                Arc::clone(&data),
                samples.clone(),
                seed ^ (u as u64).wrapping_mul(0xD6E8_FEB8),
            )
        })
        .collect();

    // Truth: the community of class c is exactly the clients holding class c.
    let truths: Vec<Vec<UserId>> = (0..NUM_CLASSES)
        .map(|c| {
            (0..clients_per_class)
                // cia-lint: allow(D05, ids and indices are bounded by the validated population/catalog size, which fits u32)
                .map(|i| UserId::new((c * clients_per_class + i) as u32))
                .collect()
        })
        .collect();
    let evaluator = MnistEvaluator { spec: spec.clone(), data: Arc::clone(&data), targets: probes };
    let mut attack = FlCia::new(
        CiaConfig { k: clients_per_class, beta: 0.99, eval_every: 1, seed },
        evaluator,
        num_clients,
        truths,
        vec![None; NUM_CLASSES],
    );
    let mut sim = FedAvg::new(clients, FedAvgConfig { rounds, seed, ..Default::default() });
    sim.run(&mut attack);

    // Global model accuracy over all training samples (the paper reports
    // 87% on MNIST proper).
    sim.sync_clients_to_global();
    let all: Vec<usize> = (0..data.len()).collect();
    let accuracy = sim.clients()[0].accuracy_on(&all);

    let out = attack.outcome();
    let mut t = Table::new(
        format!("CIA universality on MNIST-style classification ({scale} scale)"),
        &["Quantity", "Value"],
    );
    t.row(vec!["Clients".into(), num_clients.to_string()]);
    t.row(vec!["Communities (classes)".into(), NUM_CLASSES.to_string()]);
    t.row(vec!["Global model accuracy %".into(), pct(accuracy)]);
    t.row(vec!["CIA Max AAC %".into(), pct(out.max_aac)]);
    t.row(vec!["Random bound %".into(), pct(clients_per_class as f64 / num_clients as f64)]);
    vec![t]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_mnist_cia_recovers_class_communities() {
        let tables = run(Scale::Smoke, 41);
        let rows = &tables[0].rows;
        let acc: f64 = rows[3][1].parse().unwrap();
        let random: f64 = rows[4][1].parse().unwrap();
        assert!(acc >= 5.0 * random, "MNIST CIA should be far above random: {acc} vs {random}");
    }
}
