//! Local DP-SGD applied to shared model updates (§III-E).
//!
//! As in the paper, noise is added at user level (local DP): before a
//! participant's update leaves the device it is clipped to L2 norm `C` and
//! perturbed with Gaussian noise `N(0, (ι·C)² I)`.

use crate::RdpAccountant;
use cia_models::params::{add_gaussian_noise, clip_l2};
use rand::rngs::StdRng;
use serde::{Deserialize, Serialize};

pub use cia_models::UpdateTransform;

/// DP-SGD parameters. The paper's Figure 5 uses `clip = 2`, `δ = 1e-6` and
/// sweeps ε over `{∞, 1000, 100, 10, 1}`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DpConfig {
    /// L2 clipping threshold `C`.
    pub clip: f32,
    /// Noise multiplier ι (noise std = ι·C).
    pub noise_multiplier: f32,
}

/// The Gaussian mechanism over clipped updates.
///
/// ```
/// use cia_defenses::{DpConfig, DpMechanism, UpdateTransform};
/// use rand::SeedableRng;
///
/// let dp = DpMechanism::new(DpConfig { clip: 2.0, noise_multiplier: 1.0 });
/// let mut update = vec![3.0f32, 4.0];
/// let mut rng = rand::rngs::StdRng::seed_from_u64(0);
/// dp.transform(&mut update, &mut rng);
/// // The deterministic part of the transform bounds the norm at clip;
/// // noise is then added on top.
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DpMechanism {
    cfg: DpConfig,
}

impl DpMechanism {
    /// Creates the mechanism.
    ///
    /// # Panics
    ///
    /// Panics if `clip <= 0` or `noise_multiplier < 0`.
    pub fn new(cfg: DpConfig) -> Self {
        assert!(cfg.clip > 0.0, "clipping threshold must be positive");
        assert!(cfg.noise_multiplier >= 0.0, "noise multiplier must be non-negative");
        DpMechanism { cfg }
    }

    /// Builds a mechanism calibrated so that `rounds` releases at
    /// `sampling_rate` satisfy (`target_epsilon`, `delta`)-DP.
    pub fn with_target_epsilon(
        target_epsilon: f64,
        delta: f64,
        rounds: u64,
        sampling_rate: f64,
        clip: f32,
    ) -> Self {
        let sigma = RdpAccountant::calibrate_noise(target_epsilon, delta, rounds, sampling_rate);
        // Round the multiplier up slightly so the f64→f32 conversion cannot
        // land below the calibrated value and overshoot the budget.
        DpMechanism::new(DpConfig { clip, noise_multiplier: (sigma * 1.0005) as f32 })
    }

    /// The mechanism's configuration.
    pub fn config(&self) -> DpConfig {
        self.cfg
    }

    /// The ε spent by `rounds` releases of this mechanism at `delta`.
    pub fn epsilon(&self, rounds: u64, sampling_rate: f64, delta: f64) -> f64 {
        if self.cfg.noise_multiplier == 0.0 {
            return f64::INFINITY;
        }
        RdpAccountant::new(self.cfg.noise_multiplier as f64, rounds, sampling_rate).epsilon(delta)
    }
}

impl UpdateTransform for DpMechanism {
    fn transform(&self, update: &mut [f32], rng: &mut StdRng) {
        clip_l2(update, self.cfg.clip);
        add_gaussian_noise(update, self.cfg.noise_multiplier * self.cfg.clip, rng);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cia_models::params::l2_norm;
    use rand::SeedableRng;

    #[test]
    fn clips_before_noising() {
        // With zero noise, the transform is pure clipping.
        let dp = DpMechanism::new(DpConfig { clip: 1.0, noise_multiplier: 0.0 });
        let mut u = vec![3.0f32, 4.0];
        let mut rng = StdRng::seed_from_u64(1);
        dp.transform(&mut u, &mut rng);
        assert!((l2_norm(&u) - 1.0).abs() < 1e-5);
        // Direction preserved.
        assert!((u[0] / u[1] - 0.75).abs() < 1e-5);
    }

    #[test]
    fn noise_has_configured_magnitude() {
        let dp = DpMechanism::new(DpConfig { clip: 2.0, noise_multiplier: 1.5 });
        let mut u = vec![0.0f32; 20_000];
        let mut rng = StdRng::seed_from_u64(2);
        dp.transform(&mut u, &mut rng);
        let emp_std = (u.iter().map(|v| (*v as f64).powi(2)).sum::<f64>() / 20_000.0).sqrt();
        assert!((emp_std - 3.0).abs() < 0.1, "std {emp_std}, expected 3.0");
    }

    #[test]
    fn epsilon_matches_accountant() {
        let dp = DpMechanism::new(DpConfig { clip: 2.0, noise_multiplier: 2.0 });
        let direct = RdpAccountant::new(2.0, 40, 1.0).epsilon(1e-6);
        assert!((dp.epsilon(40, 1.0, 1e-6) - direct).abs() < 1e-9);
        let noiseless = DpMechanism::new(DpConfig { clip: 2.0, noise_multiplier: 0.0 });
        assert!(noiseless.epsilon(40, 1.0, 1e-6).is_infinite());
    }

    #[test]
    fn target_epsilon_constructor_meets_budget() {
        let dp = DpMechanism::with_target_epsilon(10.0, 1e-6, 30, 1.0, 2.0);
        let eps = dp.epsilon(30, 1.0, 1e-6);
        assert!(eps <= 10.0 && eps > 8.0, "eps {eps}");
    }

    #[test]
    #[should_panic(expected = "clipping threshold")]
    fn rejects_non_positive_clip() {
        let _ = DpMechanism::new(DpConfig { clip: 0.0, noise_multiplier: 1.0 });
    }
}
