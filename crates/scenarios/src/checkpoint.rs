//! Checkpoint encoding for resumable suite runs.
//!
//! A checkpoint captures everything a scenario run needs to continue after
//! the process is killed: the round counter, every participant's private
//! state, the protocol-side state (global model in FL; views, refresh
//! schedule and mailboxes in gossip), the attack's momentum/tracker state,
//! the adversary's fictive embeddings, and the dynamics layer's
//! online/straggler state. Per-round RNG streams are derived from
//! `(seed, round)` throughout the workspace, so no generator state is saved
//! — resuming replays the exact rounds an uninterrupted run would have run.
//!
//! The format is a private little-endian binary encoding (`f32`/`f64` as raw
//! bits, so restores are bit-exact), guarded by a magic, a version and the
//! scenario spec's fingerprint.
//!
//! **Recorder state is deliberately *not* checkpointed.** The observability
//! layer (`cia_obs::Recorder`) holds wall-clock span logs, latency
//! histograms and event counters — measurements of *this process's*
//! execution, not of the simulated protocol. A resumed process cannot
//! meaningfully continue another process's clock readings, and counters
//! replayed from a checkpoint would double-count the pre-kill rounds'
//! events against the post-resume rounds' wall time. A resume therefore
//! starts a fresh recorder: `trace` records and Chrome trace output after a
//! resume cover only post-resume rounds (the deterministic `round_eval`
//! stream is unaffected — per-round stats are derived from within-round
//! counter deltas, which do not depend on the counter's absolute value).

use cia_core::{CiaAttackState, MomentumState, PlacementsState, RoundPoint};
use cia_data::UserId;
use cia_gossip::{GossipSimState, TrafficCounters};
use cia_models::SharedModel;
use cia_runtime::{Msg, SavedEvent};
use std::path::{Path, PathBuf};
use std::sync::Arc;

// The magic spells "CIAS".
const MAGIC: u32 = 0x4349_4153;
// v5: gossip state gained the evented runtime's pending event queue — the
// in-flight [`cia_runtime::SavedEvent`]s (view-refresh timers scheduled for
// future rounds, plus any undelivered protocol messages) drained from the
// scheduler at the round boundary. The codec covers the full [`Msg`] surface
// so a kill between any two rounds restores the queue verbatim; a lockstep
// run writes an empty section.
// v4: undelivered gossip inbox models are delta-encoded against the sender's
// `prev_sent` reference (its momentum of clean outgoing state) — sparse
// training touches a handful of item rows per round, so the last undelivered
// snapshot from a sender differs from the reference in only those slots; the
// sender's reference section now precedes the inboxes so decoding can expand
// deltas in one pass. Models without a usable reference (no DP/clip
// transform installed, length mismatch, or a dense diff) fall back to the
// dense encoding, so the roundtrip is bit-exact either way. v3: gossip state
// gained per-node traffic counters and the checkpoint an adaptive
// sybil-placement section (relocation phase, membership, warm-up delivery
// log). v2 added `upper_bound_online` to `RoundPoint`. Checkpoints from
// older versions are refused with a version error rather than silently
// misread.
const VERSION: u32 = 5;

/// Protocol-side state, by protocol family.
#[derive(Debug, Clone)]
pub enum ProtocolState {
    /// FedAvg: the current global model.
    Fl {
        /// Aggregated global parameters.
        global: Vec<f32>,
    },
    /// Gossip: views, refresh schedule, mailboxes.
    Gl(GossipSimState),
}

/// Attack-side state, by engine.
#[derive(Debug, Clone)]
pub enum AttackState {
    /// [`cia_core::FlCia`] / [`cia_core::GlCiaCoalition`] momentum state.
    Cia(CiaAttackState),
    /// [`cia_core::GlCiaAllPlacements`] score-EMA state.
    Placements(PlacementsState),
}

/// A full mid-run snapshot of one scenario.
#[derive(Debug, Clone)]
pub struct Checkpoint {
    /// Fingerprint of the owning [`crate::spec::ScenarioSpec`]; loading
    /// refuses a mismatch.
    pub fingerprint: u64,
    /// Rounds completed when the snapshot was taken.
    pub round: u64,
    /// Evaluation records already emitted to the JSONL stream.
    pub emitted: u64,
    /// Per-participant private state ([`cia_models::Participant::state_vec`]).
    pub clients: Vec<Vec<f32>>,
    /// Protocol-side state.
    pub protocol: ProtocolState,
    /// Attack-side state.
    pub attack: AttackState,
    /// Fictive adversary embeddings (Share-less; empty slots otherwise).
    pub adversary_embs: Vec<Option<Vec<f32>>>,
    /// Dynamics-layer state.
    pub dynamics: crate::dynamics::DynamicsState,
    /// Adaptive sybil-placement state (inert/default for FL runs and static
    /// placements).
    pub placement: crate::placement::PlacementState,
}

impl Checkpoint {
    /// The checkpoint file path for a scenario inside `dir`. The sanitized
    /// name is suffixed with the full 64-bit hash of the *exact* name so two
    /// scenarios whose names sanitize identically (`a.b` vs `a_b`) never
    /// share a file. (An earlier format truncated the hash to 32 bits, which
    /// let two suite cells collide in one checkpoint directory and silently
    /// resume from the wrong state — see
    /// [`Checkpoint::migrate_legacy_names`].)
    pub fn path_for(dir: &Path, scenario: &str) -> PathBuf {
        let (safe, h) = Self::name_parts(scenario);
        dir.join(format!("{safe}-{h:016x}.ckpt"))
    }

    /// Sanitized file stem and full name hash for `scenario` (names come
    /// from specs; keep the file name tame).
    fn name_parts(scenario: &str) -> (String, u64) {
        let safe: String = scenario
            .chars()
            .map(|c| if c.is_ascii_alphanumeric() || c == '-' || c == '_' { c } else { '_' })
            .collect();
        (safe, crate::spec::fnv1a64(scenario.bytes()))
    }

    /// Renames checkpoint/completion-marker files written under the legacy
    /// truncated-hash naming (`{name}-{hash as u32:08x}`) to the current
    /// full-hash names, so resumes accept checkpoints from older runs. Does
    /// nothing when no legacy file exists or the new name is already taken
    /// (a current-format file always wins over a legacy one).
    pub fn migrate_legacy_names(dir: &Path, scenario: &str) {
        let (safe, h) = Self::name_parts(scenario);
        for ext in ["ckpt", "done"] {
            // cia-lint: allow(D05, deliberate truncation: the legacy checkpoint-name format was 32-bit by definition, this shim reconstructs it)
            let legacy = dir.join(format!("{safe}-{:08x}.{ext}", h as u32));
            let current = dir.join(format!("{safe}-{h:016x}.{ext}"));
            if legacy.exists() && !current.exists() {
                let _ = std::fs::rename(&legacy, &current);
            }
        }
    }

    /// Serializes the checkpoint.
    pub fn encode(&self) -> Vec<u8> {
        let mut w = Writer::default();
        w.u32(MAGIC);
        w.u32(VERSION);
        w.u64(self.fingerprint);
        w.u64(self.round);
        w.u64(self.emitted);
        w.u64(self.clients.len() as u64);
        for c in &self.clients {
            w.f32s(c);
        }
        match &self.protocol {
            ProtocolState::Fl { global } => {
                w.u8(0);
                w.f32s(global);
            }
            ProtocolState::Gl(state) => {
                w.u8(1);
                w.u64(state.round);
                w.u64(state.refresh_at.len() as u64);
                for &r in &state.refresh_at {
                    w.u64(r);
                }
                w.u64(state.views.len() as u64);
                for view in &state.views {
                    w.u32s(view);
                }
                // v4: sender references first, then the inboxes that delta
                // against them.
                w.u64(state.prev_sent.len() as u64);
                for prev in &state.prev_sent {
                    w.opt_f32s(prev.as_deref());
                }
                w.u64(state.inboxes.len() as u64);
                for inbox in &state.inboxes {
                    w.u64(inbox.len() as u64);
                    for m in inbox {
                        let reference =
                            state.prev_sent.get(m.owner.raw() as usize).and_then(|p| p.as_deref());
                        w.delta_model(m, reference);
                    }
                }
                w.u64(state.heard.len() as u64);
                for heard in &state.heard {
                    w.u64(heard.len() as u64);
                    for &(peer, score) in heard {
                        w.u32(peer);
                        w.f32(score);
                    }
                }
                w.u64s(&state.traffic.received);
                w.u64s(&state.traffic.view_in_degree);
                w.u64(state.pending.len() as u64);
                for e in &state.pending {
                    w.saved_event(e);
                }
            }
        }
        match &self.attack {
            AttackState::Cia(state) => {
                w.u8(0);
                w.u64(state.momentum.len() as u64);
                for m in &state.momentum {
                    match m {
                        None => w.u8(0),
                        Some(m) => {
                            w.u8(1);
                            w.opt_f32s(m.emb());
                            w.f32s(m.agg());
                            w.u64(m.updates());
                        }
                    }
                }
                w.round_points(&state.history);
                w.opt_f32s(state.last_global.as_deref());
                w.u8(u8::from(state.prepared));
            }
            AttackState::Placements(state) => {
                w.u8(1);
                w.f32s(&state.s_ema);
                w.round_points(&state.history);
                w.u8(u8::from(state.prepared));
            }
        }
        w.u64(self.adversary_embs.len() as u64);
        for e in &self.adversary_embs {
            w.opt_f32s(e.as_deref());
        }
        w.u64(self.dynamics.online.len() as u64);
        for &b in &self.dynamics.online {
            w.u8(u8::from(b));
        }
        w.u64(self.dynamics.straggler_until.len() as u64);
        for &t in &self.dynamics.straggler_until {
            w.u64(t);
        }
        w.u8(u8::from(self.placement.relocated));
        w.u32s(&self.placement.members);
        w.u64(self.placement.seen.len() as u64);
        for log in &self.placement.seen {
            w.u32s(log);
        }
        w.buf
    }

    /// Deserializes a checkpoint, verifying magic, version and fingerprint.
    ///
    /// # Errors
    ///
    /// Returns a description of the first structural problem — including a
    /// fingerprint mismatch, which means the checkpoint belongs to a
    /// different spec.
    pub fn decode(bytes: &[u8], expect_fingerprint: u64) -> Result<Checkpoint, String> {
        let mut r = Reader { bytes, pos: 0 };
        if r.u32()? != MAGIC {
            return Err("not a scenario checkpoint (bad magic)".to_string());
        }
        let version = r.u32()?;
        if version != VERSION {
            return Err(format!("unsupported checkpoint version {version}"));
        }
        let fingerprint = r.u64()?;
        if fingerprint != expect_fingerprint {
            return Err("checkpoint belongs to a different scenario spec (fingerprint mismatch)"
                .to_string());
        }
        let round = r.u64()?;
        let emitted = r.u64()?;
        let n_clients = r.len()?;
        let mut clients = Vec::with_capacity(n_clients);
        for _ in 0..n_clients {
            clients.push(r.f32s()?);
        }
        let protocol = match r.u8()? {
            0 => ProtocolState::Fl { global: r.f32s()? },
            1 => {
                let round = r.u64()?;
                let n = r.len()?;
                let mut refresh_at = Vec::with_capacity(n);
                for _ in 0..n {
                    refresh_at.push(r.u64()?);
                }
                let n = r.len()?;
                let mut views = Vec::with_capacity(n);
                for _ in 0..n {
                    views.push(r.u32s()?);
                }
                let n = r.len()?;
                let mut prev_sent = Vec::with_capacity(n);
                for _ in 0..n {
                    prev_sent.push(r.opt_f32s()?);
                }
                let n = r.len()?;
                let mut inboxes = Vec::with_capacity(n);
                for _ in 0..n {
                    let len = r.len()?;
                    let mut inbox = Vec::with_capacity(len);
                    for _ in 0..len {
                        inbox.push(r.delta_model(&prev_sent)?);
                    }
                    inboxes.push(inbox);
                }
                let n = r.len()?;
                let mut heard = Vec::with_capacity(n);
                for _ in 0..n {
                    let len = r.len()?;
                    let mut h = Vec::with_capacity(len);
                    for _ in 0..len {
                        let peer = r.u32()?;
                        let score = r.f32()?;
                        h.push((peer, score));
                    }
                    heard.push(h);
                }
                let traffic = TrafficCounters { received: r.u64s()?, view_in_degree: r.u64s()? };
                let n = r.len()?;
                let mut pending = Vec::with_capacity(n);
                for _ in 0..n {
                    pending.push(r.saved_event()?);
                }
                ProtocolState::Gl(GossipSimState {
                    round,
                    refresh_at,
                    views,
                    inboxes,
                    heard,
                    prev_sent,
                    traffic,
                    pending,
                })
            }
            tag => return Err(format!("unknown protocol state tag {tag}")),
        };
        let attack = match r.u8()? {
            0 => {
                let n = r.len()?;
                let mut momentum = Vec::with_capacity(n);
                for _ in 0..n {
                    momentum.push(match r.u8()? {
                        0 => None,
                        1 => {
                            let emb = r.opt_f32s()?;
                            let agg = r.f32s()?;
                            let updates = r.u64()?;
                            Some(MomentumState::from_parts(emb, agg, updates))
                        }
                        tag => return Err(format!("unknown momentum tag {tag}")),
                    });
                }
                let history = r.round_points()?;
                let last_global = r.opt_f32s()?;
                let prepared = r.u8()? == 1;
                AttackState::Cia(CiaAttackState { momentum, history, last_global, prepared })
            }
            1 => {
                let s_ema = r.f32s()?;
                let history = r.round_points()?;
                let prepared = r.u8()? == 1;
                AttackState::Placements(PlacementsState { s_ema, history, prepared })
            }
            tag => return Err(format!("unknown attack state tag {tag}")),
        };
        let n = r.len()?;
        let mut adversary_embs = Vec::with_capacity(n);
        for _ in 0..n {
            adversary_embs.push(r.opt_f32s()?);
        }
        let n = r.len()?;
        let mut online = Vec::with_capacity(n);
        for _ in 0..n {
            online.push(r.u8()? == 1);
        }
        let n = r.len()?;
        let mut straggler_until = Vec::with_capacity(n);
        for _ in 0..n {
            straggler_until.push(r.u64()?);
        }
        let relocated = r.u8()? == 1;
        let members = r.u32s()?;
        let n = r.len()?;
        let mut seen = Vec::with_capacity(n);
        for _ in 0..n {
            seen.push(r.u32s()?);
        }
        if r.pos != bytes.len() {
            return Err("trailing bytes in checkpoint".to_string());
        }
        // The placement section feeds indexing (sybil tables, delivery
        // logs); a corrupted id must be refused here, not panic at resume.
        let population = clients.len();
        if members.len() > population || members.iter().any(|&m| m as usize >= population) {
            return Err("placement members out of range".to_string());
        }
        if (!seen.is_empty() && seen.len() != population)
            || seen.iter().flatten().any(|&s| s as usize >= population)
        {
            return Err("placement delivery log malformed".to_string());
        }
        Ok(Checkpoint {
            fingerprint,
            round,
            emitted,
            clients,
            protocol,
            attack,
            adversary_embs,
            dynamics: crate::dynamics::DynamicsState { online, straggler_until },
            placement: crate::placement::PlacementState { relocated, members, seen },
        })
    }

    /// Writes the checkpoint atomically (temp file + rename).
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors.
    pub fn save(&self, path: &Path) -> std::io::Result<()> {
        let tmp = path.with_extension("ckpt.tmp");
        std::fs::write(&tmp, self.encode())?;
        std::fs::rename(&tmp, path)
    }

    /// Loads and verifies a checkpoint file.
    ///
    /// # Errors
    ///
    /// Returns a message for I/O, structural or fingerprint failures.
    pub fn load(path: &Path, expect_fingerprint: u64) -> Result<Checkpoint, String> {
        let bytes =
            std::fs::read(path).map_err(|e| format!("cannot read {}: {e}", path.display()))?;
        Checkpoint::decode(&bytes, expect_fingerprint)
    }
}

#[derive(Default)]
struct Writer {
    buf: Vec<u8>,
}

impl Writer {
    fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }
    fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }
    fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }
    fn f32(&mut self, v: f32) {
        self.u32(v.to_bits());
    }
    fn f64(&mut self, v: f64) {
        self.u64(v.to_bits());
    }
    fn f32s(&mut self, v: &[f32]) {
        self.u64(v.len() as u64);
        for &x in v {
            self.f32(x);
        }
    }
    fn u32s(&mut self, v: &[u32]) {
        self.u64(v.len() as u64);
        for &x in v {
            self.u32(x);
        }
    }
    fn u64s(&mut self, v: &[u64]) {
        self.u64(v.len() as u64);
        for &x in v {
            self.u64(x);
        }
    }
    fn opt_f32s(&mut self, v: Option<&[f32]>) {
        match v {
            None => self.u8(0),
            Some(v) => {
                self.u8(1);
                self.f32s(v);
            }
        }
    }
    fn shared_model(&mut self, m: &SharedModel) {
        self.u32(m.owner.raw());
        self.u64(m.round);
        self.opt_f32s(m.owner_emb.as_deref());
        self.f32s(&m.agg);
    }
    /// v4 inbox-model encoding: a sparse bit-exact delta against the
    /// sender's `prev_sent` reference (tag 1) when one exists and the diff
    /// is genuinely sparse — sparse local training leaves most of the `agg`
    /// slots untouched between sends — or the dense [`Writer::shared_model`]
    /// layout (tag 0) otherwise.
    fn delta_model(&mut self, m: &SharedModel, reference: Option<&[f32]>) {
        let emb_len = m.owner_emb.as_ref().map_or(0, Vec::len);
        let total = emb_len + m.agg.len();
        // `[emb | agg]` concatenation, matching the reference's layout.
        let concat = || m.owner_emb.as_deref().unwrap_or(&[]).iter().chain(&m.agg);
        let diffs: Option<Vec<(u32, u32)>> = reference
            .filter(|r| r.len() == total)
            .map(|r| {
                concat()
                    .zip(r)
                    .enumerate()
                    // Raw-bit comparison: bit-exact restores, NaN included.
                    .filter(|(_, (have, want))| have.to_bits() != want.to_bits())
                    // cia-lint: allow(D05, parameter index into one model vector; model lengths are catalog-bounded and fit u32)
                    .map(|(k, (have, _))| (k as u32, have.to_bits()))
                    .collect()
            })
            // A diff entry costs 8 bytes vs 4 for a dense slot — only
            // encode sparsely when it actually shrinks the model.
            .filter(|d: &Vec<_>| d.len() * 2 < total);
        match diffs {
            Some(diffs) => {
                self.u8(1);
                self.u32(m.owner.raw());
                self.u64(m.round);
                self.u8(u8::from(m.owner_emb.is_some()));
                self.u64(emb_len as u64);
                self.u64(diffs.len() as u64);
                for (k, bits) in diffs {
                    self.u32(k);
                    self.u32(bits);
                }
            }
            None => {
                self.u8(0);
                self.shared_model(m);
            }
        }
    }
    fn round_points(&mut self, points: &[RoundPoint]) {
        self.u64(points.len() as u64);
        for p in points {
            self.u64(p.round);
            self.f64(p.aac);
            self.f64(p.best10);
            self.f64(p.upper_bound);
            self.f64(p.upper_bound_online);
        }
    }
    fn opt_model(&mut self, m: Option<&SharedModel>) {
        match m {
            None => self.u8(0),
            Some(m) => {
                self.u8(1);
                self.shared_model(m);
            }
        }
    }
    /// v5: one scheduler event drained at the round boundary.
    fn saved_event(&mut self, e: &SavedEvent) {
        self.u64(e.at);
        self.u32(e.dst);
        self.u8(u8::from(e.timer));
        self.msg(&e.msg);
    }
    /// v5: the full typed-message surface, so any in-flight event — not just
    /// the refresh timers that cross rounds in practice — survives a kill.
    fn msg(&mut self, m: &Msg) {
        match m {
            Msg::TrainRequest { round, epochs, global, weight, acc, snap } => {
                self.u8(0);
                self.u64(*round);
                self.u64(*epochs as u64);
                self.f32s(global);
                self.f32(*weight);
                self.opt_f32s(acc.as_deref());
                self.opt_model(snap.as_ref());
            }
            Msg::ModelUpdate { round, client, loss, acc, snap } => {
                self.u8(1);
                self.u64(*round);
                self.u32(*client);
                self.f32(*loss);
                self.opt_f32s(acc.as_deref());
                self.opt_model(snap.as_ref());
            }
            Msg::GlobalBroadcast { round } => {
                self.u8(2);
                self.u64(*round);
            }
            Msg::ViewPush { round, view } => {
                self.u8(3);
                self.u64(*round);
                self.u32s(view);
            }
            Msg::ModelPush { round, sender, dest, model } => {
                self.u8(4);
                self.u64(*round);
                self.u32(*sender);
                self.u32(*dest);
                self.shared_model(model);
            }
            Msg::RefreshTimer { node } => {
                self.u8(5);
                self.u32(*node);
            }
            Msg::WakeSend { round, dest, snap } => {
                self.u8(6);
                self.u64(*round);
                self.u32(*dest);
                self.opt_model(snap.as_ref());
            }
            Msg::MixTrain { round, epochs } => {
                self.u8(7);
                self.u64(*round);
                self.u64(*epochs as u64);
            }
            Msg::TrainReport { round, node, loss, heard } => {
                self.u8(8);
                self.u64(*round);
                self.u32(*node);
                self.f32(*loss);
                self.u64(heard.len() as u64);
                for &(peer, score) in heard {
                    self.u32(peer);
                    self.f32(score);
                }
            }
            Msg::RouteFlush { round } => {
                self.u8(9);
                self.u64(*round);
            }
            Msg::RoundStart { round } => {
                self.u8(10);
                self.u64(*round);
            }
            Msg::RoundEnd { round } => {
                self.u8(11);
                self.u64(*round);
            }
        }
    }
}

struct Reader<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Reader<'_> {
    fn take(&mut self, n: usize) -> Result<&[u8], String> {
        let end = self.pos.checked_add(n).ok_or("checkpoint length overflow")?;
        let slice = self.bytes.get(self.pos..end).ok_or("checkpoint truncated")?;
        self.pos = end;
        Ok(slice)
    }
    fn u8(&mut self) -> Result<u8, String> {
        Ok(self.take(1)?[0])
    }
    fn u32(&mut self) -> Result<u32, String> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().expect("4 bytes")))
    }
    fn u64(&mut self) -> Result<u64, String> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().expect("8 bytes")))
    }
    fn f32(&mut self) -> Result<f32, String> {
        Ok(f32::from_bits(self.u32()?))
    }
    fn f64(&mut self) -> Result<f64, String> {
        Ok(f64::from_bits(self.u64()?))
    }
    fn len(&mut self) -> Result<usize, String> {
        let n = self.u64()?;
        // A length can never exceed the remaining bytes (every element is at
        // least one byte) — reject early instead of over-allocating.
        if n as usize > self.bytes.len().saturating_sub(self.pos) {
            return Err("checkpoint length field exceeds remaining data".to_string());
        }
        Ok(n as usize)
    }
    fn f32s(&mut self) -> Result<Vec<f32>, String> {
        let n = self.len()?;
        let mut v = Vec::with_capacity(n);
        for _ in 0..n {
            v.push(self.f32()?);
        }
        Ok(v)
    }
    fn u32s(&mut self) -> Result<Vec<u32>, String> {
        let n = self.len()?;
        let mut v = Vec::with_capacity(n);
        for _ in 0..n {
            v.push(self.u32()?);
        }
        Ok(v)
    }
    fn u64s(&mut self) -> Result<Vec<u64>, String> {
        let n = self.len()?;
        let mut v = Vec::with_capacity(n);
        for _ in 0..n {
            v.push(self.u64()?);
        }
        Ok(v)
    }
    fn opt_f32s(&mut self) -> Result<Option<Vec<f32>>, String> {
        match self.u8()? {
            0 => Ok(None),
            1 => Ok(Some(self.f32s()?)),
            tag => Err(format!("unknown option tag {tag}")),
        }
    }
    fn shared_model(&mut self) -> Result<SharedModel, String> {
        let owner = UserId::new(self.u32()?);
        let round = self.u64()?;
        let owner_emb = self.opt_f32s()?;
        let agg = self.f32s()?;
        Ok(SharedModel { owner, round, owner_emb, agg })
    }
    /// Inverse of [`Writer::delta_model`]: expands a sparse delta against
    /// the sender's `prev_sent` reference, or reads the dense layout.
    fn delta_model(&mut self, prev_sent: &[Option<Vec<f32>>]) -> Result<SharedModel, String> {
        match self.u8()? {
            0 => self.shared_model(),
            1 => {
                let owner = UserId::new(self.u32()?);
                let round = self.u64()?;
                let has_emb = match self.u8()? {
                    0 => false,
                    1 => true,
                    tag => return Err(format!("unknown embedding tag {tag}")),
                };
                let emb_len = self.u64()? as usize;
                if !has_emb && emb_len != 0 {
                    return Err("delta model claims embedding slots without one".to_string());
                }
                let mut full = prev_sent
                    .get(owner.raw() as usize)
                    .and_then(std::clone::Clone::clone)
                    .ok_or("delta-encoded inbox model without a sender reference")?;
                if emb_len > full.len() {
                    return Err("delta model embedding exceeds the reference".to_string());
                }
                let n = self.len()?;
                for _ in 0..n {
                    let k = self.u32()? as usize;
                    let bits = self.u32()?;
                    *full.get_mut(k).ok_or("delta index outside the reference")? =
                        f32::from_bits(bits);
                }
                let agg = full.split_off(emb_len);
                let owner_emb = has_emb.then_some(full);
                Ok(SharedModel { owner, round, owner_emb, agg })
            }
            tag => Err(format!("unknown inbox model tag {tag}")),
        }
    }
    fn round_points(&mut self) -> Result<Vec<RoundPoint>, String> {
        let n = self.len()?;
        let mut v = Vec::with_capacity(n);
        for _ in 0..n {
            let round = self.u64()?;
            let aac = self.f64()?;
            let best10 = self.f64()?;
            let upper_bound = self.f64()?;
            let upper_bound_online = self.f64()?;
            v.push(RoundPoint { round, aac, best10, upper_bound, upper_bound_online });
        }
        Ok(v)
    }
    fn opt_model(&mut self) -> Result<Option<SharedModel>, String> {
        match self.u8()? {
            0 => Ok(None),
            1 => Ok(Some(self.shared_model()?)),
            tag => Err(format!("unknown snapshot tag {tag}")),
        }
    }
    /// Inverse of [`Writer::saved_event`].
    fn saved_event(&mut self) -> Result<SavedEvent, String> {
        let at = self.u64()?;
        let dst = self.u32()?;
        let timer = match self.u8()? {
            0 => false,
            1 => true,
            tag => return Err(format!("unknown event lane tag {tag}")),
        };
        let msg = self.msg()?;
        Ok(SavedEvent { at, dst, timer, msg })
    }
    /// Inverse of [`Writer::msg`].
    fn msg(&mut self) -> Result<Msg, String> {
        Ok(match self.u8()? {
            0 => Msg::TrainRequest {
                round: self.u64()?,
                epochs: self.u64()? as usize,
                global: Arc::new(self.f32s()?),
                weight: self.f32()?,
                acc: self.opt_f32s()?,
                snap: self.opt_model()?,
            },
            1 => Msg::ModelUpdate {
                round: self.u64()?,
                client: self.u32()?,
                loss: self.f32()?,
                acc: self.opt_f32s()?,
                snap: self.opt_model()?,
            },
            2 => Msg::GlobalBroadcast { round: self.u64()? },
            3 => Msg::ViewPush { round: self.u64()?, view: self.u32s()? },
            4 => Msg::ModelPush {
                round: self.u64()?,
                sender: self.u32()?,
                dest: self.u32()?,
                model: self.shared_model()?,
            },
            5 => Msg::RefreshTimer { node: self.u32()? },
            6 => Msg::WakeSend { round: self.u64()?, dest: self.u32()?, snap: self.opt_model()? },
            7 => Msg::MixTrain { round: self.u64()?, epochs: self.u64()? as usize },
            8 => {
                let round = self.u64()?;
                let node = self.u32()?;
                let loss = self.f32()?;
                let n = self.len()?;
                let mut heard = Vec::with_capacity(n);
                for _ in 0..n {
                    let peer = self.u32()?;
                    let score = self.f32()?;
                    heard.push((peer, score));
                }
                Msg::TrainReport { round, node, loss, heard }
            }
            9 => Msg::RouteFlush { round: self.u64()? },
            10 => Msg::RoundStart { round: self.u64()? },
            11 => Msg::RoundEnd { round: self.u64()? },
            tag => return Err(format!("unknown message tag {tag}")),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dynamics::DynamicsState;

    fn sample() -> Checkpoint {
        Checkpoint {
            fingerprint: 0xFEED,
            round: 12,
            emitted: 3,
            clients: vec![vec![1.0, -2.5], vec![0.0; 4]],
            protocol: ProtocolState::Gl(GossipSimState {
                round: 12,
                refresh_at: vec![13, 20],
                views: vec![vec![1], vec![0]],
                inboxes: vec![
                    vec![SharedModel {
                        owner: UserId::new(1),
                        round: 11,
                        owner_emb: Some(vec![0.5]),
                        agg: vec![1.0, 2.0],
                    }],
                    vec![],
                ],
                heard: vec![vec![(1, 0.25)], vec![]],
                prev_sent: vec![None, Some(vec![3.0])],
                traffic: TrafficCounters { received: vec![4, 0], view_in_degree: vec![12, 11] },
                pending: vec![
                    SavedEvent { at: 104, dst: 0, timer: true, msg: Msg::RefreshTimer { node: 1 } },
                    SavedEvent {
                        at: 99,
                        dst: 0,
                        timer: false,
                        msg: Msg::ModelPush {
                            round: 12,
                            sender: 1,
                            dest: 0,
                            model: SharedModel {
                                owner: UserId::new(1),
                                round: 12,
                                owner_emb: None,
                                agg: vec![1.0e-40, 0.5],
                            },
                        },
                    },
                ],
            }),
            attack: AttackState::Cia(CiaAttackState {
                momentum: vec![
                    None,
                    Some(MomentumState::from_parts(Some(vec![0.1]), vec![0.2, 0.3], 4)),
                ],
                history: vec![RoundPoint {
                    round: 5,
                    aac: 0.5,
                    best10: 0.75,
                    upper_bound: 1.0,
                    upper_bound_online: 0.5,
                }],
                last_global: Some(vec![9.0]),
                prepared: true,
            }),
            adversary_embs: vec![None, Some(vec![1.25, -0.5])],
            dynamics: DynamicsState { online: vec![true, false], straggler_until: vec![0, 17] },
            placement: crate::placement::PlacementState {
                relocated: false,
                members: vec![0],
                seen: vec![vec![1], vec![]],
            },
        }
    }

    #[test]
    fn roundtrips_bit_exactly() {
        let ck = sample();
        let bytes = ck.encode();
        let back = Checkpoint::decode(&bytes, 0xFEED).unwrap();
        assert_eq!(back.round, ck.round);
        assert_eq!(back.emitted, ck.emitted);
        assert_eq!(back.clients, ck.clients);
        assert_eq!(back.adversary_embs, ck.adversary_embs);
        assert_eq!(back.dynamics, ck.dynamics);
        assert_eq!(back.placement, ck.placement);
        match (&back.protocol, &ck.protocol) {
            (ProtocolState::Gl(a), ProtocolState::Gl(b)) => {
                assert_eq!(a.refresh_at, b.refresh_at);
                assert_eq!(a.views, b.views);
                assert_eq!(a.inboxes, b.inboxes);
                assert_eq!(a.heard, b.heard);
                assert_eq!(a.prev_sent, b.prev_sent);
                assert_eq!(a.traffic, b.traffic);
                assert_eq!(a.pending, b.pending);
            }
            _ => panic!("protocol family changed"),
        }
        match (&back.attack, &ck.attack) {
            (AttackState::Cia(a), AttackState::Cia(b)) => {
                assert_eq!(a.momentum, b.momentum);
                assert_eq!(a.history, b.history);
                assert_eq!(a.last_global, b.last_global);
                assert_eq!(a.prepared, b.prepared);
            }
            _ => panic!("attack family changed"),
        }
    }

    #[test]
    fn distinct_names_never_share_a_path() {
        let dir = Path::new("ckpt");
        // `a.b` and `a_b` sanitize to the same stem; the name hash keeps
        // their files apart.
        assert_ne!(Checkpoint::path_for(dir, "a.b"), Checkpoint::path_for(dir, "a_b"));
        assert_eq!(Checkpoint::path_for(dir, "x-1"), Checkpoint::path_for(dir, "x-1"));
        // Regression: the hash is no longer truncated to 32 bits (two suite
        // cells whose full hashes agreed in the low half used to collide and
        // silently resume from the wrong state). The name must carry all 16
        // hex digits.
        let name = Checkpoint::path_for(dir, "cell");
        let stem = name.file_stem().unwrap().to_string_lossy().into_owned();
        let (_, hash) = stem.rsplit_once('-').unwrap();
        assert_eq!(hash.len(), 16, "full 64-bit hash in {stem}");
    }

    #[test]
    fn legacy_names_migrate_ckpt_and_done_files() {
        let tmp = std::env::temp_dir().join(format!("cia-ckpt-migrate-{}", std::process::id()));
        std::fs::create_dir_all(&tmp).unwrap();
        let current = Checkpoint::path_for(&tmp, "scenario.x");
        let stem = current.file_stem().unwrap().to_string_lossy().into_owned();
        let (prefix, hash16) = stem.rsplit_once('-').unwrap();
        let legacy = tmp.join(format!("{prefix}-{}.ckpt", &hash16[8..]));
        let legacy_done = legacy.with_extension("done");
        std::fs::write(&legacy, b"ckpt").unwrap();
        std::fs::write(&legacy_done, b"done").unwrap();

        Checkpoint::migrate_legacy_names(&tmp, "scenario.x");
        assert!(!legacy.exists() && !legacy_done.exists(), "legacy files left behind");
        assert_eq!(std::fs::read(&current).unwrap(), b"ckpt");
        assert_eq!(std::fs::read(current.with_extension("done")).unwrap(), b"done");

        // A current-format file always wins: a second migration with a new
        // legacy file must not clobber it.
        std::fs::write(&legacy, b"stale").unwrap();
        Checkpoint::migrate_legacy_names(&tmp, "scenario.x");
        assert_eq!(std::fs::read(&current).unwrap(), b"ckpt", "migration clobbered");
        let _ = std::fs::remove_dir_all(&tmp);
    }

    /// A checkpoint whose one undelivered inbox model differs from the
    /// sender's `prev_sent` reference only at `touched` slots of a 64-slot
    /// `[emb(4) | agg(60)]` layout.
    fn sparse_inbox_sample(touched: &[(usize, f32)]) -> Checkpoint {
        let mut ck = sample();
        let reference: Vec<f32> = (0..64).map(|k| k as f32 * 0.5).collect();
        let mut model = reference.clone();
        for &(k, v) in touched {
            model[k] = v;
        }
        let ProtocolState::Gl(state) = &mut ck.protocol else { unreachable!() };
        state.prev_sent = vec![None, Some(reference)];
        state.inboxes = vec![
            vec![SharedModel {
                owner: UserId::new(1),
                round: 11,
                owner_emb: Some(model[..4].to_vec()),
                agg: model[4..].to_vec(),
            }],
            vec![],
        ];
        ck
    }

    #[test]
    fn sparse_inbox_delta_roundtrips_bit_exactly() {
        // Three touched slots, one of them NaN and one a subnormal — the
        // delta must restore raw bits, not values.
        let touched = [(0, f32::NAN), (17, -9.0), (63, 1.0e-40)];
        let ck = sparse_inbox_sample(&touched);
        let back = Checkpoint::decode(&ck.encode(), 0xFEED).unwrap();
        let (ProtocolState::Gl(a), ProtocolState::Gl(b)) = (&back.protocol, &ck.protocol) else {
            panic!("protocol family changed");
        };
        let bits = |m: &SharedModel| -> Vec<u32> {
            let emb = m.owner_emb.as_deref().unwrap_or(&[]);
            emb.iter().chain(&m.agg).map(|x| x.to_bits()).collect()
        };
        assert_eq!(a.inboxes[0][0].owner, b.inboxes[0][0].owner);
        assert_eq!(a.inboxes[0][0].round, b.inboxes[0][0].round);
        assert_eq!(bits(&a.inboxes[0][0]), bits(&b.inboxes[0][0]));
        assert_eq!(a.prev_sent, b.prev_sent);
    }

    #[test]
    fn sparse_inbox_delta_shrinks_the_checkpoint() {
        let sparse = sparse_inbox_sample(&[(17, -9.0)]).encode();
        // Every slot perturbed: the diff is dense, the codec must fall back
        // to the dense layout — and the sparse encoding must be materially
        // smaller than it.
        let all: Vec<(usize, f32)> = (0..64).map(|k| (k, -1.0 - k as f32)).collect();
        let dense = sparse_inbox_sample(&all).encode();
        assert!(
            sparse.len() + 150 < dense.len(),
            "sparse {} vs dense {}",
            sparse.len(),
            dense.len()
        );
    }

    #[test]
    fn rejects_wrong_fingerprint_and_garbage() {
        let bytes = sample().encode();
        assert!(Checkpoint::decode(&bytes, 0xBAD).unwrap_err().contains("fingerprint"));
        assert!(Checkpoint::decode(&bytes[..10], 0xFEED).is_err());
        assert!(Checkpoint::decode(b"not a checkpoint", 0xFEED).is_err());
    }

    #[test]
    fn rejects_out_of_range_placement_members() {
        // A corrupted member id must be refused at decode time — it feeds
        // sybil-table and delivery-log indexing at resume.
        let mut ck = sample();
        ck.placement.members = vec![7]; // population is 2
        assert!(Checkpoint::decode(&ck.encode(), 0xFEED)
            .unwrap_err()
            .contains("placement members"));
        let mut ck = sample();
        ck.placement.seen = vec![vec![9], vec![]]; // sender 9 of 2
        assert!(Checkpoint::decode(&ck.encode(), 0xFEED).unwrap_err().contains("delivery log"));
        let mut ck = sample();
        ck.placement.seen = vec![vec![1]]; // log length 1 for 2 nodes
        assert!(Checkpoint::decode(&ck.encode(), 0xFEED).unwrap_err().contains("delivery log"));
    }
}
