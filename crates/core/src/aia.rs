//! The attribute-inference proxy (§VIII-C2).
//!
//! Treating community membership as a binary attribute, the adversary samples
//! `N` fictive member datasets from `V_target` and `M` non-member datasets
//! from the rest of the catalog, trains a GMF model locally on each, and
//! feeds the resulting model *updates* to a fully-connected binary classifier
//! (ReLU hidden layers, sigmoid output). The classifier is then applied to
//! real client updates in FL to rank users by membership probability. The
//! paper finds this both costlier and weaker than CIA — largely because
//! locally trained gradients do not match FL-round gradients.

use crate::fl::CiaConfig;
use crate::metrics::{community_accuracy, AttackOutcome, AttackTracker};
use cia_data::UserId;
use cia_federated::{RoundObserver, RoundStats};
use cia_models::params::l2_norm;
use cia_models::{
    GmfSpec, Mlp, MlpHyper, MlpSpec, Participant, RelevanceScorer, SharedModel, SharingPolicy,
};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// AIA proxy configuration.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AiaConfig {
    /// The CIA-compatible parameters (community size, cadence; momentum is
    /// unused — the classifier sees per-round updates).
    pub cia: CiaConfig,
    /// Number of fictive member datasets `N`.
    pub n_member: usize,
    /// Number of fictive non-member datasets `M`.
    pub m_nonmember: usize,
    /// Items per fictive dataset.
    pub subset_size: usize,
    /// Local epochs used to train each fictive model.
    pub fictive_epochs: usize,
    /// Training epochs of the binary classifier.
    pub classifier_epochs: usize,
    /// Hidden layer sizes of the classifier (the paper uses five
    /// fully-connected layers).
    pub hidden: Vec<usize>,
}

impl Default for AiaConfig {
    fn default() -> Self {
        AiaConfig {
            cia: CiaConfig::default(),
            n_member: 20,
            m_nonmember: 20,
            subset_size: 12,
            fictive_epochs: 3,
            classifier_epochs: 60,
            hidden: vec![64, 32, 16, 8],
        }
    }
}

/// Community inference via a gradient classifier, as a federated-server
/// observer attacking a single target item set.
pub struct AiaCommunityAttack {
    cfg: AiaConfig,
    spec: GmfSpec,
    target: Vec<u32>,
    truth: Vec<UserId>,
    owner: Option<UserId>,
    classifier: Option<Mlp>,
    global: Option<Vec<f32>>,
    /// This round's update per user (`agg_after − global_before`).
    updates: Vec<Option<Vec<f32>>>,
    tracker: AttackTracker,
}

impl AiaCommunityAttack {
    /// Creates the proxy attack against one target community.
    ///
    /// # Panics
    ///
    /// Panics if the target is empty or `k == 0`.
    pub fn new(
        cfg: AiaConfig,
        spec: GmfSpec,
        target: Vec<u32>,
        num_users: usize,
        truth: Vec<UserId>,
        owner: Option<UserId>,
    ) -> Self {
        assert!(!target.is_empty(), "target set must be non-empty");
        assert!(cfg.cia.k > 0, "community size must be positive");
        assert!(cfg.cia.eval_every > 0, "eval_every must be positive");
        let candidates = num_users - usize::from(owner.is_some());
        AiaCommunityAttack {
            tracker: AttackTracker::new(cfg.cia.k, candidates),
            cfg,
            spec,
            target,
            truth,
            owner,
            classifier: None,
            global: None,
            updates: (0..num_users).map(|_| None).collect(),
        }
    }

    /// The attack summary.
    pub fn outcome(&self) -> AttackOutcome {
        self.tracker.outcome()
    }

    /// Trains the gradient classifier on fictive member/non-member updates
    /// starting from `global` (done once, at the first evaluation — the
    /// `O(T_M · (N + M)) + O(T_C)` cost of Table IX).
    fn train_classifier(&mut self, global: &[f32]) -> Mlp {
        let mut rng = StdRng::seed_from_u64(self.cfg.cia.seed ^ 0xA1A);
        let num_items = self.spec.num_items();
        let mut inputs: Vec<Vec<f32>> = Vec::new();
        let mut labels: Vec<f32> = Vec::new();

        let fictive_update = |items: Vec<u32>, rng: &mut StdRng| -> Vec<f32> {
            let mut items = items;
            items.sort_unstable();
            items.dedup();
            let mut client = self.spec.build_client(
                UserId::new(u32::MAX - 1),
                items,
                SharingPolicy::Full,
                rng.gen(),
            );
            client.absorb_agg(global);
            for _ in 0..self.cfg.fictive_epochs.max(1) {
                client.train_local(rng);
            }
            let mut update: Vec<f32> =
                client.agg().iter().zip(global).map(|(a, g)| a - g).collect();
            normalize(&mut update);
            update
        };

        for _ in 0..self.cfg.n_member {
            let items: Vec<u32> = (0..self.cfg.subset_size)
                .map(|_| self.target[rng.gen_range(0..self.target.len())])
                .collect();
            inputs.push(fictive_update(items, &mut rng));
            labels.push(1.0);
        }
        for _ in 0..self.cfg.m_nonmember {
            let items: Vec<u32> = (0..self.cfg.subset_size)
                .map(|_| loop {
                    let cand = rng.gen_range(0..num_items);
                    if self.target.binary_search(&cand).is_err() {
                        break cand;
                    }
                })
                .collect();
            inputs.push(fictive_update(items, &mut rng));
            labels.push(0.0);
        }

        let mut layers = vec![self.spec.agg_len()];
        layers.extend_from_slice(&self.cfg.hidden);
        layers.push(1);
        let mut mlp = Mlp::new(
            MlpSpec::new(layers),
            MlpHyper { lr: 0.05, weight_decay: 1e-5, batch_size: 8 },
            self.cfg.cia.seed ^ 0xC1A55,
        );
        let mut order: Vec<usize> = (0..inputs.len()).collect();
        for _ in 0..self.cfg.classifier_epochs {
            // Simple deterministic shuffle per epoch.
            for i in (1..order.len()).rev() {
                let j = rng.gen_range(0..=i);
                order.swap(i, j);
            }
            for chunk in order.chunks(8) {
                let xs: Vec<&[f32]> = chunk.iter().map(|&i| inputs[i].as_slice()).collect();
                let ys: Vec<f32> = chunk.iter().map(|&i| labels[i]).collect();
                mlp.train_binary(&xs, &ys);
            }
        }
        mlp
    }

    fn evaluate(&mut self, round: u64) {
        let Some(global) = self.global.clone() else {
            return;
        };
        if self.classifier.is_none() {
            let clf = self.train_classifier(&global);
            self.classifier = Some(clf);
        }
        let clf = self.classifier.as_ref().expect("trained above");
        let mut scored: Vec<(f32, u32)> = self
            .updates
            .iter()
            .enumerate()
            .filter_map(|(u, upd)| {
                // cia-lint: allow(D05, ids and indices are bounded by the validated population/catalog size, which fits u32)
                if self.owner == Some(UserId::new(u as u32)) {
                    return None;
                }
                // cia-lint: allow(D05, ids and indices are bounded by the validated population/catalog size, which fits u32)
                upd.as_ref().map(|v| (clf.prob_binary(v), u as u32))
            })
            .collect();
        if scored.is_empty() {
            return;
        }
        scored.sort_by(crate::metrics::rank_desc);
        let predicted: Vec<UserId> =
            scored.into_iter().take(self.cfg.cia.k).map(|(_, u)| UserId::new(u)).collect();
        let acc = community_accuracy(&predicted, &self.truth, self.cfg.cia.k);
        self.tracker.record(round, &[acc], &[1.0]);
    }
}

fn normalize(v: &mut [f32]) {
    let n = l2_norm(v);
    if n > 0.0 {
        for x in v.iter_mut() {
            *x /= n;
        }
    }
}

impl RoundObserver for AiaCommunityAttack {
    fn on_global(&mut self, _round: u64, global_agg: &[f32]) {
        self.global = Some(global_agg.to_vec());
    }

    fn on_client_model(&mut self, model: &SharedModel) {
        let Some(global) = &self.global else {
            return;
        };
        let mut update: Vec<f32> =
            model.agg.iter().zip(global.iter()).map(|(a, g)| a - g).collect();
        normalize(&mut update);
        self.updates[model.owner.index()] = Some(update);
    }

    fn on_round_end(&mut self, stats: &RoundStats) {
        if (stats.round + 1).is_multiple_of(self.cfg.cia.eval_every) {
            self.evaluate(stats.round);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cia_data::{GroundTruth, LeaveOneOut, SyntheticConfig};
    use cia_federated::{FedAvg, FedAvgConfig};
    use cia_models::GmfHyper;

    #[test]
    fn aia_proxy_runs_end_to_end() {
        let users = 18;
        let data = SyntheticConfig::builder()
            .users(users)
            .items(90)
            .communities(3)
            .interactions_per_user(12)
            .seed(5)
            .build()
            .generate();
        let split = LeaveOneOut::new(&data, 10, 1).unwrap();
        let k = 4;
        let target_user = 0usize;
        let target = split.train_sets()[target_user].clone();
        let truth = GroundTruth::from_train_sets(split.train_sets(), k)
            .community_of(UserId::new(0))
            .to_vec();
        let spec = GmfSpec::new(90, 8, GmfHyper::default());
        let clients: Vec<_> = split
            .train_sets()
            .iter()
            .enumerate()
            .map(|(u, items)| {
                spec.build_client(
                    // cia-lint: allow(D05, ids and indices are bounded by the validated population/catalog size, which fits u32)
                    UserId::new(u as u32),
                    items.clone(),
                    SharingPolicy::Full,
                    u as u64,
                )
            })
            .collect();
        let mut attack = AiaCommunityAttack::new(
            AiaConfig {
                cia: CiaConfig { k, beta: 0.99, eval_every: 3, seed: 1 },
                n_member: 8,
                m_nonmember: 8,
                subset_size: 8,
                fictive_epochs: 2,
                classifier_epochs: 20,
                hidden: vec![16, 8],
            },
            spec,
            target,
            users,
            truth,
            Some(UserId::new(0)),
        );
        let mut sim =
            FedAvg::new(clients, FedAvgConfig { rounds: 7, seed: 6, ..Default::default() });
        sim.run(&mut attack);
        let out = attack.outcome();
        assert!(!out.history.is_empty());
        assert!((0.0..=1.0).contains(&out.max_aac));
    }

    #[test]
    #[should_panic(expected = "target set must be non-empty")]
    fn rejects_empty_target() {
        let spec = GmfSpec::new(10, 4, GmfHyper::default());
        let _ = AiaCommunityAttack::new(AiaConfig::default(), spec, vec![], 5, vec![], None);
    }
}
