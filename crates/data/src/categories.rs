//! Semantic item categories, used by the Figure 1 motivating example.
//!
//! Foursquare points of interest carry a public semantic categorization
//! (*Health and Medicine*, *Retail*, ...). The paper's motivating example
//! (§II) plants a small community of "health-vulnerable" users whose visits
//! are ≥68% health-categorized, against a 6.7% base rate, and shows that CIA
//! recovers them from models alone. [`CategoryPlan`] reproduces that setup on
//! the synthetic catalog.

use serde::{Deserialize, Serialize};

/// The synthetic semantic taxonomy (10 categories, mirroring the coarse
/// Foursquare categorization used in the paper's motivating example).
pub const CATEGORY_NAMES: [&str; 10] = [
    "Health and Medicine",
    "Retail",
    "Dining",
    "Nightlife",
    "Arts and Entertainment",
    "Outdoors",
    "Travel and Transport",
    "Education",
    "Sports",
    "Residence",
];

/// Index of the *Health and Medicine* category in [`CATEGORY_NAMES`].
pub const HEALTH_CATEGORY: u8 = 0;

/// Maps every item to one of the semantic categories.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct CategoryMap {
    labels: Vec<u8>,
}

impl CategoryMap {
    /// Creates a map from per-item labels.
    ///
    /// # Panics
    ///
    /// Panics if any label is outside `0..CATEGORY_NAMES.len()`.
    pub fn new(labels: Vec<u8>) -> Self {
        assert!(
            labels.iter().all(|&l| (l as usize) < CATEGORY_NAMES.len()),
            "category label out of range"
        );
        CategoryMap { labels }
    }

    /// Number of items covered.
    pub fn num_items(&self) -> usize {
        self.labels.len()
    }

    /// Category of `item`.
    ///
    /// # Panics
    ///
    /// Panics if `item` is out of range.
    pub fn category_of(&self, item: u32) -> u8 {
        self.labels[item as usize]
    }

    /// Human-readable name of the category of `item`.
    pub fn category_name_of(&self, item: u32) -> &'static str {
        CATEGORY_NAMES[self.category_of(item) as usize]
    }

    /// All items belonging to `category`.
    pub fn items_in(&self, category: u8) -> Vec<u32> {
        self.labels
            .iter()
            .enumerate()
            .filter(|(_, &l)| l == category)
            // cia-lint: allow(D05, ids and indices are bounded by the validated population/catalog size, which fits u32)
            .map(|(i, _)| i as u32)
            .collect()
    }

    /// Fraction of `items` that belong to `category`.
    pub fn fraction_in(&self, items: &[u32], category: u8) -> f64 {
        if items.is_empty() {
            return 0.0;
        }
        let hits = items.iter().filter(|&&i| self.category_of(i) == category).count();
        hits as f64 / items.len() as f64
    }
}

/// How to assign categories to the catalog when generating a dataset.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CategoryPlan {
    /// Fraction of the catalog assigned to the health category. The paper's
    /// base rate of health visits is 6.7%, so the default is `0.067`.
    pub health_item_fraction: f64,
    /// Optional planting of a health-vulnerable user community.
    pub health_planting: Option<HealthPlanting>,
}

impl Default for CategoryPlan {
    fn default() -> Self {
        CategoryPlan { health_item_fraction: 0.067, health_planting: None }
    }
}

/// Plants a "health-vulnerable" community as in the paper's Figure 1.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct HealthPlanting {
    /// Number of health-vulnerable users (the paper's example finds 3).
    pub num_users: usize,
    /// Fraction of each planted user's interactions drawn from health items
    /// (the paper reports at least 68%).
    pub health_fraction: f64,
}

impl Default for HealthPlanting {
    fn default() -> Self {
        HealthPlanting { num_users: 3, health_fraction: 0.68 }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn category_lookup_and_listing() {
        let m = CategoryMap::new(vec![0, 1, 0, 2]);
        assert_eq!(m.num_items(), 4);
        assert_eq!(m.category_of(2), 0);
        assert_eq!(m.category_name_of(0), "Health and Medicine");
        assert_eq!(m.items_in(0), vec![0, 2]);
        assert_eq!(m.items_in(1), vec![1]);
    }

    #[test]
    fn fraction_in_counts_correctly() {
        let m = CategoryMap::new(vec![0, 1, 0, 2]);
        assert!((m.fraction_in(&[0, 1, 2, 3], HEALTH_CATEGORY) - 0.5).abs() < 1e-12);
        assert_eq!(m.fraction_in(&[], HEALTH_CATEGORY), 0.0);
    }

    #[test]
    #[should_panic(expected = "category label out of range")]
    fn rejects_bad_labels() {
        let _ = CategoryMap::new(vec![99]);
    }

    #[test]
    fn defaults_match_paper_numbers() {
        let plan = CategoryPlan::default();
        assert!((plan.health_item_fraction - 0.067).abs() < 1e-9);
        let planting = HealthPlanting::default();
        assert_eq!(planting.num_users, 3);
        assert!((planting.health_fraction - 0.68).abs() < 1e-9);
    }
}
