//! Shared dataset/ground-truth setup for one (preset, scale, seed) — the
//! common substrate every scenario run (and every `cia-experiments` table)
//! builds on.

use crate::spec::ScaleParams;
use cia_data::presets::{Preset, Scale};
use cia_data::{Dataset, GroundTruth, LeaveOneOut, UserId};

/// Dataset, split, ground truth and scale parameters for one scenario.
pub struct RecsysSetup {
    /// The generated dataset.
    pub data: Dataset,
    /// The train/test split.
    pub split: LeaveOneOut,
    /// Community size used for ground truth.
    pub k: usize,
    /// Ground-truth communities for per-user targets.
    pub truth: GroundTruth,
    /// Scale parameters in effect.
    pub params: ScaleParams,
}

impl RecsysSetup {
    /// Truth table aligned with per-user targets.
    pub fn truth_table(&self) -> Vec<Vec<UserId>> {
        (0..self.data.num_users())
            // cia-lint: allow(D05, ids and indices are bounded by the validated population/catalog size, which fits u32)
            .map(|u| self.truth.community_of(UserId::new(u as u32)).to_vec())
            .collect()
    }

    /// Owner table (each per-user target excludes its donor).
    pub fn owner_table(&self) -> Vec<Option<UserId>> {
        // cia-lint: allow(D05, ids and indices are bounded by the validated population/catalog size, which fits u32)
        (0..self.data.num_users()).map(|u| Some(UserId::new(u as u32))).collect()
    }
}

/// Checks that `params` fit inside the shape the synthetic generator will
/// produce — the split needs `eval_negatives` items outside each user's
/// interactions and `poi_holdout + 1` spare interactions per user to hold
/// out, so parameters beyond the generated catalog can only fail deep inside
/// the splitter. Surfacing the mismatch here turns that panic into a
/// caller-printable error.
pub fn validate_scale_params(
    params: &ScaleParams,
    num_users: usize,
    num_items: usize,
    per_user: usize,
) -> Result<(), String> {
    if num_users < 3 {
        return Err(format!("generator produced {num_users} users; need at least 3"));
    }
    if params.eval_negatives + per_user >= num_items {
        return Err(format!(
            "eval_negatives = {} exceeds the generator's supported range: the catalog has \
             {num_items} items and up to {per_user} per-user interactions, leaving too few \
             negatives to sample",
            params.eval_negatives
        ));
    }
    if params.poi_holdout + 1 > per_user {
        return Err(format!(
            "poi_holdout = {} exceeds the generator's supported range: only {per_user} \
             interactions per user are generated and at least one must stay in train",
            params.poi_holdout
        ));
    }
    Ok(())
}

/// Builds the dataset, split and ground truth for a preset at a scale,
/// reporting unsatisfiable scale parameters as an error instead of
/// panicking inside the splitter.
///
/// # Errors
///
/// Returns a description of the first scale-parameter/generator mismatch.
pub fn try_build_setup(
    preset: Preset,
    scale: Scale,
    k_override: Option<usize>,
    seed: u64,
) -> Result<RecsysSetup, String> {
    let params = ScaleParams::of(scale);
    let (users, items, per_user) = preset.dims(scale);
    validate_scale_params(&params, users, items as usize, per_user)?;
    let data = preset.generate(scale, seed);
    let holdout = if preset.has_sequences() { params.poi_holdout } else { 1 };
    let split = LeaveOneOut::with_holdout(&data, holdout, params.eval_negatives, seed ^ 0x5EED)
        .map_err(|e| format!("{} at scale {scale} cannot be split: {e}", preset.name()))?;
    let k = k_override.unwrap_or(params.k).min(data.num_users().saturating_sub(2)).max(1);
    let truth = GroundTruth::from_train_sets(split.train_sets(), k);
    Ok(RecsysSetup { data, split, k, truth, params })
}

/// Builds the dataset, split and ground truth for a preset at a scale.
///
/// # Panics
///
/// Panics if the scale parameters don't fit the generated dataset — the
/// built-in presets always do; use [`try_build_setup`] for inputs that
/// aren't known-good.
pub fn build_setup(
    preset: Preset,
    scale: Scale,
    k_override: Option<usize>,
    seed: u64,
) -> RecsysSetup {
    try_build_setup(preset, scale, k_override, seed).expect("presets generate splittable data")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn setup_tables_are_aligned() {
        let s = build_setup(Preset::MovieLens, Scale::Smoke, None, 1);
        assert_eq!(s.truth_table().len(), s.data.num_users());
        assert_eq!(s.owner_table().len(), s.data.num_users());
        assert_eq!(s.k, 5);
    }

    #[test]
    fn every_builtin_shape_passes_validation() {
        for preset in Preset::ALL {
            for scale in [Scale::Smoke, Scale::Small, Scale::Paper, Scale::Million] {
                let params = ScaleParams::of(scale);
                let (users, items, per_user) = preset.dims(scale);
                validate_scale_params(&params, users, items as usize, per_user)
                    .unwrap_or_else(|e| panic!("{} at {scale}: {e}", preset.name()));
            }
        }
    }

    #[test]
    fn out_of_range_params_are_reported_not_panicked() {
        let mut params = ScaleParams::of(Scale::Smoke);
        params.eval_negatives = 10_000;
        let err = validate_scale_params(&params, 48, 160, 12).unwrap_err();
        assert!(err.contains("eval_negatives"), "unhelpful error: {err}");
        assert!(err.contains("supported range"), "unhelpful error: {err}");

        let mut params = ScaleParams::of(Scale::Smoke);
        params.poi_holdout = 12;
        let err = validate_scale_params(&params, 48, 160, 12).unwrap_err();
        assert!(err.contains("poi_holdout"), "unhelpful error: {err}");

        let params = ScaleParams::of(Scale::Smoke);
        assert!(validate_scale_params(&params, 2, 160, 12).is_err());
    }
}
