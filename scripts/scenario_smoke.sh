#!/usr/bin/env bash
# Scenario engine smoke gate: runs the built-in suite (baseline-static,
# churn-20pct, colluding-sybils) at smoke scale, validates the emitted JSONL
# against the record schema, and exercises the checkpoint/resume path by
# killing the gossip scenario mid-run and resuming it. Part of the verify
# flow; see ROADMAP.md.
set -euo pipefail
cd "$(dirname "$0")/.."

out="$(mktemp -d)"
trap 'rm -rf "$out"' EXIT

echo "== built-in suite at smoke scale"
cargo run --release -q -p cia-scenarios --bin scenario -- \
    run --scale smoke --seed 42 --out "$out/suite.jsonl" --no-timing

echo "== JSONL schema validation"
cargo run --release -q -p cia-scenarios --bin scenario -- validate "$out/suite.jsonl"

echo "== kill/resume: colluding-sybils stopped at round 20, then resumed"
cargo run --release -q -p cia-scenarios --bin scenario -- \
    run --scale smoke --seed 42 --only colluding-sybils --out "$out/resumed.jsonl" \
    --no-timing --checkpoint-dir "$out/ckpt" --checkpoint-every 10 --stop-after 20
cargo run --release -q -p cia-scenarios --bin scenario -- \
    run --scale smoke --seed 42 --only colluding-sybils --out "$out/resumed.jsonl" \
    --no-timing --checkpoint-dir "$out/ckpt" --resume
cargo run --release -q -p cia-scenarios --bin scenario -- validate "$out/resumed.jsonl"

# The resumed stream must equal the sybil slice of the uninterrupted suite.
grep '"scenario":"colluding-sybils"' "$out/suite.jsonl" > "$out/straight-sybils.jsonl"
if ! cmp -s "$out/straight-sybils.jsonl" "$out/resumed.jsonl"; then
    echo "resumed stream diverged from the uninterrupted run" >&2
    diff "$out/straight-sybils.jsonl" "$out/resumed.jsonl" >&2 || true
    exit 1
fi

echo "scenario smoke OK"
