//! The round-synchronous gossip learning engine.

use crate::graph::{sample_exp_interval, ViewTable};
use cia_data::UserId;
use cia_models::parallel::par_zip_mut;
use cia_models::{ClientStore, Participant, SharedModel, UpdateTransform};
use cia_obs::{Counter, Metric, Recorder};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// Which gossip protocol to simulate.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum GossipProtocol {
    /// Rand-Gossip [12]: uniform random peer sampling.
    Rand,
    /// Pers-Gossip [5]: performance-aware peer retention with uniform
    /// exploration.
    Pers {
        /// Fraction of the view refilled uniformly at random on refresh
        /// (the paper uses 0.4).
        exploration: f64,
    },
}

/// Gossip simulation configuration (paper defaults: `P = 3`, view refresh
/// `~ Exp(0.1)`, exploration 0.4).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct GossipConfig {
    /// Number of rounds.
    pub rounds: u64,
    /// Out-degree `P` of the communication graph.
    pub out_degree: usize,
    /// Rate of the exponential view-refresh interval distribution.
    pub view_refresh_rate: f64,
    /// The protocol variant.
    pub protocol: GossipProtocol,
    /// Probability that a node wakes (sends + aggregates + trains) in a
    /// round.
    pub wake_fraction: f64,
    /// Local training epochs per wake.
    pub local_epochs: usize,
    /// Simulation seed.
    pub seed: u64,
}

impl Default for GossipConfig {
    fn default() -> Self {
        GossipConfig {
            rounds: 50,
            out_degree: 3,
            view_refresh_rate: 0.1,
            protocol: GossipProtocol::Rand,
            wake_fraction: 1.0,
            local_epochs: 1,
            seed: 0,
        }
    }
}

/// Per-round statistics handed to observers.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GossipRoundStats {
    /// The completed round index.
    pub round: u64,
    /// Number of nodes that woke up.
    pub awake: usize,
    /// Number of model deliveries routed this round.
    pub deliveries: usize,
    /// Mean local training loss across awake nodes; `None` when every node
    /// slept (an all-offline round has no losses to average — a `0.0`
    /// sentinel would be indistinguishable from perfect convergence and
    /// silently deflate downstream loss averages).
    pub mean_loss: Option<f32>,
    /// Bytes of model state materialized for this round: the outgoing
    /// snapshot copies routed into inboxes (node state itself is permanently
    /// resident in gossip — every round mixes neighbors in place).
    pub bytes_materialized: u64,
}

/// Observes gossip model deliveries — the vantage point of a gossip
/// adversary, who sees the models delivered to nodes she controls.
pub trait GossipObserver {
    /// Called when a round begins.
    fn on_round_start(&mut self, round: u64) {
        let _ = round;
    }

    /// Called after the protocol's own wake sampling with the round's
    /// tentative wake mask. Observers may clear entries to model availability
    /// — churn, stragglers, node failures — without the gossip loop knowing
    /// about participant dynamics (the `cia-scenarios` dynamics layer plugs
    /// in here). Asleep nodes keep accumulating their inbox, exactly like a
    /// natural sleep round.
    fn on_wake_set(&mut self, round: u64, mask: &mut [bool]) {
        let _ = (round, mask);
    }

    /// Availability query consulted before a node acts on its scheduled view
    /// refresh: an offline device cannot re-sample peers, so returning
    /// `false` defers the refresh (and, under Pers-Gossip, preserves the
    /// `heard` personalization evidence the refresh would consume) until the
    /// node's next available round. Defaults to always-available, which
    /// reproduces the pre-dynamics behavior exactly; the `cia-scenarios`
    /// dynamics layer answers from its churn state.
    fn node_available(&self, round: u64, node: u32) -> bool {
        let _ = (round, node);
        true
    }

    /// Called for every routed model delivery.
    fn on_delivery(&mut self, round: u64, receiver: UserId, model: &SharedModel) {
        let _ = (round, receiver, model);
    }

    /// Called when a round completes.
    fn on_round_end(&mut self, stats: &GossipRoundStats) {
        let _ = stats;
    }
}

/// A no-op observer for runs without an adversary.
#[derive(Debug, Clone, Copy, Default)]
pub struct NullGossipObserver;

impl GossipObserver for NullGossipObserver {}

/// Serializable snapshot of a [`GossipSim`]'s protocol-side state
/// (checkpoint/resume of long runs; node parameters travel separately).
#[derive(Debug, Clone)]
pub struct GossipSimState {
    /// Rounds completed.
    pub round: u64,
    /// Next scheduled view-refresh round per node.
    pub refresh_at: Vec<u64>,
    /// Current out-views.
    pub views: Vec<Vec<u32>>,
    /// Undelivered inbox contents per node (asleep nodes accumulate).
    pub inboxes: Vec<Vec<SharedModel>>,
    /// Pers-Gossip `(sender, score)` candidates heard since the last refresh.
    pub heard: Vec<Vec<(u32, f32)>>,
    /// DP reference vectors (last sent `[emb | agg]` per node).
    pub prev_sent: Vec<Option<Vec<f32>>>,
    /// Accumulated per-node traffic counters.
    pub traffic: TrafficCounters,
}

/// Passive per-node traffic counters the simulation accumulates every round.
/// They never influence the protocol — they exist so observers with a
/// network vantage point (e.g. the adaptive sybil-placement engine in
/// `cia-scenarios`) can rank positions by observed traffic instead of
/// guessing.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct TrafficCounters {
    /// Models delivered to each node since round 0.
    pub received: Vec<u64>,
    /// Accumulated in-degree of the communication graph: each round, every
    /// out-view containing the node adds one (view-membership frequency).
    pub view_in_degree: Vec<u64>,
}

impl TrafficCounters {
    fn zeroed(n: usize) -> Self {
        TrafficCounters { received: vec![0; n], view_in_degree: vec![0; n] }
    }
}

/// Per-node bookkeeping.
struct NodeCtl {
    inbox: Vec<SharedModel>,
    /// `(sender, personalization score)` heard since the last view refresh
    /// (Pers-Gossip candidates).
    heard: Vec<(u32, f32)>,
    /// Reference shared vector for DP updates (last sent `[emb | agg]`).
    prev_sent: Option<Vec<f32>>,
    awake: bool,
    loss: f32,
}

/// The gossip learning simulation.
pub struct GossipSim<P: Participant> {
    /// Node storage. Gossip requires a dense (fully resident) store: every
    /// round each awake node mixes its neighbors' models into its *own*
    /// persistent parameters, so there is no global aggregate to rebuild a
    /// lazy client from — unlike FedAvg, where untouched clients are exactly
    /// reconstructible from seed + global (see `cia_federated::FedAvg::sharded`).
    store: ClientStore<P>,
    ctl: Vec<NodeCtl>,
    views: ViewTable,
    refresh_at: Vec<u64>,
    cfg: GossipConfig,
    transform: Option<Box<dyn UpdateTransform>>,
    traffic: TrafficCounters,
    round: u64,
    /// Recycled model carcasses: aggregated inbox snapshots return here and
    /// the next round's outgoing snapshots reuse their buffers, so a steady
    /// round allocates no catalog-sized vectors.
    pool: Vec<SharedModel>,
    /// Reused per-round outgoing-slot table.
    outgoing: Vec<Option<SharedModel>>,
    /// The observability sink: phase spans, wire/delivery counters and the
    /// per-node mix/train latency histograms.
    obs: Recorder,
}

impl<P: Participant> GossipSim<P> {
    /// Creates a simulation over `nodes`.
    ///
    /// # Panics
    ///
    /// Panics if fewer than `out_degree + 1` nodes are given, configuration
    /// values are out of range, or nodes disagree on parameter sizes.
    pub fn new(nodes: Vec<P>, cfg: GossipConfig) -> Self {
        assert!(nodes.len() > cfg.out_degree, "need more nodes than the out-degree");
        let len = nodes[0].agg_len();
        assert!(nodes.iter().all(|n| n.agg_len() == len), "nodes must share a parameter layout");
        assert!(
            cfg.wake_fraction > 0.0 && cfg.wake_fraction <= 1.0,
            "wake fraction must be in (0, 1]"
        );
        if let GossipProtocol::Pers { exploration } = cfg.protocol {
            assert!((0.0..=1.0).contains(&exploration), "exploration must be in [0, 1]");
        }
        let mut rng = StdRng::seed_from_u64(cfg.seed);
        let views = ViewTable::new(nodes.len(), cfg.out_degree, &mut rng);
        let refresh_at = (0..nodes.len())
            .map(|_| sample_exp_interval(cfg.view_refresh_rate, &mut rng))
            .collect();
        let ctl = (0..nodes.len())
            .map(|_| NodeCtl {
                inbox: Vec::new(),
                heard: Vec::new(),
                prev_sent: None,
                awake: false,
                loss: 0.0,
            })
            .collect();
        let traffic = TrafficCounters::zeroed(nodes.len());
        let outgoing = (0..nodes.len()).map(|_| None).collect();
        GossipSim {
            store: ClientStore::dense(nodes),
            ctl,
            views,
            refresh_at,
            cfg,
            transform: None,
            traffic,
            round: 0,
            pool: Vec::new(),
            outgoing,
            obs: Recorder::new(),
        }
    }

    /// Installs the metrics/trace sink this simulation reports into. The
    /// scenario runner installs one recorder per scenario; standalone
    /// simulations keep their own default recorder.
    pub fn set_recorder(&mut self, recorder: Recorder) {
        self.obs = recorder;
    }

    /// The metrics/trace sink this simulation reports into.
    pub fn recorder(&self) -> &Recorder {
        &self.obs
    }

    /// Installs a local update transform (DP-SGD) applied to every outgoing
    /// model.
    pub fn set_update_transform(&mut self, transform: Box<dyn UpdateTransform>) {
        self.transform = Some(transform);
    }

    /// The configuration.
    pub fn config(&self) -> &GossipConfig {
        &self.cfg
    }

    /// Creates a simulation from a [`ClientStore`].
    ///
    /// # Panics
    ///
    /// Panics if the store is sharded — gossip has no global aggregate to
    /// lazily rebuild clients from (see the `store` field docs) — plus
    /// everything [`GossipSim::new`] panics on.
    pub fn from_store(mut store: ClientStore<P>, cfg: GossipConfig) -> Self {
        let nodes = store.as_dense_mut().map(std::mem::take).expect(
            "gossip requires a dense client store: nodes mix neighbors into resident state",
        );
        Self::new(nodes, cfg)
    }

    /// The nodes (evaluation access).
    pub fn nodes(&self) -> &[P] {
        self.store.as_dense().expect("gossip stores are dense")
    }

    /// Rounds completed so far.
    pub fn round(&self) -> u64 {
        self.round
    }

    /// The current out-view of node `u` (testing/diagnostics).
    pub fn view_of(&self, u: u32) -> &[u32] {
        self.views.view_of(u)
    }

    /// The accumulated per-node traffic counters (observed-traffic vantage
    /// point for placement decisions; purely passive).
    pub fn traffic(&self) -> &TrafficCounters {
        &self.traffic
    }

    /// Mutable access to the nodes (checkpoint resume restores each
    /// participant's private state in place).
    pub fn nodes_mut(&mut self) -> &mut [P] {
        self.store.as_dense_mut().expect("gossip stores are dense")
    }

    /// Snapshot of the protocol-side state — round counter, views, refresh
    /// schedule and per-node mailboxes. Per-round RNG streams are derived
    /// from `(seed, round)`, so no generator state needs saving; node
    /// parameters are captured separately via
    /// [`cia_models::Participant::state_vec`].
    pub fn export_state(&self) -> GossipSimState {
        GossipSimState {
            round: self.round,
            refresh_at: self.refresh_at.clone(),
            views: self.views.views().to_vec(),
            inboxes: self.ctl.iter().map(|c| c.inbox.clone()).collect(),
            traffic: self.traffic.clone(),
            heard: self.ctl.iter().map(|c| c.heard.clone()).collect(),
            prev_sent: self.ctl.iter().map(|c| c.prev_sent.clone()).collect(),
        }
    }

    /// Restores a state captured by [`GossipSim::export_state`] on a
    /// simulation constructed with the same nodes and configuration.
    ///
    /// # Panics
    ///
    /// Panics if any table is not aligned with the node count or the views
    /// are malformed.
    pub fn restore_state(&mut self, state: GossipSimState) {
        let n = self.store.len();
        assert_eq!(state.refresh_at.len(), n, "one refresh time per node");
        assert_eq!(state.inboxes.len(), n, "one inbox per node");
        assert_eq!(state.heard.len(), n, "one heard list per node");
        assert_eq!(state.prev_sent.len(), n, "one DP reference per node");
        self.views.restore_views(state.views);
        self.round = state.round;
        self.refresh_at = state.refresh_at;
        for (((c, inbox), heard), prev) in
            self.ctl.iter_mut().zip(state.inboxes).zip(state.heard).zip(state.prev_sent)
        {
            c.inbox = inbox;
            c.heard = heard;
            c.prev_sent = prev;
        }
        assert_eq!(state.traffic.received.len(), n, "one received counter per node");
        assert_eq!(state.traffic.view_in_degree.len(), n, "one in-degree counter per node");
        self.traffic = state.traffic;
    }

    /// Runs one gossip round: refresh views, send, route, aggregate, train.
    pub fn step(&mut self, observer: &mut dyn GossipObserver) -> GossipRoundStats {
        let t = self.round;
        let obs = self.obs.clone();
        let bytes0 = obs.counter(Counter::BytesOnWire);
        let n = self.store.len();
        let mut rng = StdRng::seed_from_u64(self.cfg.seed ^ t.wrapping_mul(0xA076_1D64_78BD_642F));
        observer.on_round_start(t);

        // 1. View refreshes due this round. Offline nodes (per the
        // observer's availability query) defer theirs: `refresh_at` stays in
        // the past and fires on the node's first available round.
        let refresh_span = obs.span("refresh");
        let keep = match self.cfg.protocol {
            GossipProtocol::Rand => 0,
            GossipProtocol::Pers { exploration } => {
                ((1.0 - exploration) * self.cfg.out_degree as f64).ceil() as usize
            }
        };
        for u in 0..n as u32 {
            if self.refresh_at[u as usize] <= t && observer.node_available(t, u) {
                match self.cfg.protocol {
                    GossipProtocol::Rand => self.views.refresh_random(u, &mut rng),
                    GossipProtocol::Pers { .. } => {
                        let mut scored = std::mem::take(&mut self.ctl[u as usize].heard);
                        self.views.refresh_personalized(u, &mut scored, keep, &mut rng);
                    }
                }
                self.refresh_at[u as usize] =
                    t + sample_exp_interval(self.cfg.view_refresh_rate, &mut rng);
            }
        }

        // Traffic accounting: the in-degree of the graph the round's sends
        // will be routed over (after refreshes, before sending).
        for u in 0..n as u32 {
            for &v in self.views.view_of(u) {
                self.traffic.view_in_degree[v as usize] += 1;
            }
        }
        drop(refresh_span);

        // 2. Wake set (drawn first to keep the RNG stream stable, then
        // filtered through the observer's availability hook).
        let sample_span = obs.span("sample");
        let mut wake: Vec<bool> = (0..n)
            .map(|_| self.cfg.wake_fraction >= 1.0 || rng.gen::<f64>() < self.cfg.wake_fraction)
            .collect();
        observer.on_wake_set(t, &mut wake);
        for (c, &w) in self.ctl.iter_mut().zip(&wake) {
            c.awake = w;
        }
        drop(sample_span);

        // 3. Send phase: snapshot (+ DP transform) in parallel. Outgoing
        // slots are seeded with recycled carcasses from the pool so
        // `snapshot_into` reuses their buffers.
        let cfg = self.cfg;
        let transform = self.transform.as_deref();
        let awake: Vec<bool> = self.ctl.iter().map(|c| c.awake).collect();
        let destinations: Vec<u32> =
            (0..n).map(|u| self.views.random_neighbor(u as u32, &mut rng)).collect();
        let send_span = obs.span("send");
        for (slot, &w) in self.outgoing.iter_mut().zip(&awake) {
            if w && slot.is_none() {
                *slot = self.pool.pop();
            }
        }
        {
            let nodes = self.store.as_dense().expect("gossip stores are dense");
            let ctl = &mut self.ctl;
            // Parallel over (ctl, outgoing) pairs; nodes are read-only here.
            par_zip_mut(ctl, &mut self.outgoing, |i, c, slot| {
                if !c.awake {
                    *slot = None;
                    return;
                }
                match slot {
                    Some(snap) => nodes[i].snapshot_into(t, snap),
                    None => *slot = Some(nodes[i].snapshot(t)),
                }
                let snap = slot.as_mut().expect("just filled");
                if let Some(tr) = transform {
                    let mut crng = StdRng::seed_from_u64(
                        cfg.seed ^ (t << 22) ^ (i as u64).wrapping_mul(0x2545_F491_4F6C_DD1D),
                    );
                    apply_gossip_transform(tr, snap, &mut c.prev_sent, &mut crng);
                }
            });
        }
        drop(send_span);

        // 4. Routing (serial: observer callbacks + inbox pushes). Each
        // delivered snapshot is a fresh materialization of model state for
        // this round — the pool only recycles allocations, not contents.
        let route_span = obs.span("route");
        let mut deliveries = 0usize;
        for (u, slot) in self.outgoing.iter_mut().enumerate() {
            if let Some(snap) = slot.take() {
                let dest = destinations[u];
                obs.add(Counter::BytesOnWire, 4 * snap.len() as u64);
                obs.inc(Counter::InboxDeliveries);
                observer.on_delivery(t, UserId::new(dest), &snap);
                self.ctl[dest as usize].inbox.push(snap);
                self.traffic.received[dest as usize] += 1;
                deliveries += 1;
            }
        }
        drop(route_span);

        // 5. Neighbor mixing + local training on awake nodes, in one fused
        // parallel pass under the `train` span. The in-place `mix_agg`
        // replaces materializing the neighborhood mean. Mix and train stay
        // fused deliberately: a node's aggregate is catalog-sized (~54 KB
        // at paper scale), so training right after mixing reuses it while
        // cache-hot — separate passes stream the whole population's state
        // through memory twice (~13% slower on the paper-scale round). The
        // per-node mix/train cost split is still observable through the
        // `mix_us` / `train_us` histograms, which bracket the two halves
        // with detail-gated clock reads.
        let is_pers = matches!(self.cfg.protocol, GossipProtocol::Pers { .. });
        let train_span = obs.span("train");
        {
            let nodes = self.store.as_dense_mut().expect("gossip stores are dense");
            par_zip_mut(nodes, &mut self.ctl, |i, node, c| {
                if !c.awake {
                    return;
                }
                if !c.inbox.is_empty() {
                    let t0 = obs.clock();
                    if is_pers {
                        for m in &c.inbox {
                            c.heard.push((m.owner.raw(), node.evaluate_model(m)));
                        }
                    }
                    let rows: Vec<&[f32]> = c.inbox.iter().map(|m| m.agg.as_slice()).collect();
                    node.mix_agg(&rows);
                    obs.observe_since(Metric::MixMicros, t0);
                }
                let t0 = obs.clock();
                let mut crng = StdRng::seed_from_u64(
                    cfg.seed ^ (t << 24) ^ (i as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15),
                );
                let mut loss = 0.0;
                for _ in 0..cfg.local_epochs.max(1) {
                    loss = node.train_local(&mut crng);
                }
                c.loss = loss;
                obs.observe_since(Metric::TrainMicros, t0);
            });
        }
        drop(train_span);

        // Consumed inboxes drain into the pool afterwards (serially — the
        // pool is shared).
        for c in &mut self.ctl {
            if c.awake {
                self.pool.append(&mut c.inbox);
            }
        }
        self.pool.truncate(n);

        let awake_count = awake.iter().filter(|&&a| a).count();
        obs.add(Counter::ClientsTrained, awake_count as u64);
        let loss_sum: f32 = self.ctl.iter().filter(|c| c.awake).map(|c| c.loss).sum();
        let stats = GossipRoundStats {
            round: t,
            awake: awake_count,
            deliveries,
            mean_loss: (awake_count > 0).then(|| loss_sum / awake_count as f32),
            bytes_materialized: obs.counter(Counter::BytesOnWire) - bytes0,
        };
        let evaluate_span = obs.span("evaluate");
        observer.on_round_end(&stats);
        drop(evaluate_span);
        self.round += 1;
        stats
    }

    /// Runs all configured rounds.
    pub fn run(&mut self, observer: &mut dyn GossipObserver) {
        for _ in 0..self.cfg.rounds {
            self.step(observer);
        }
    }
}

/// DP in gossip: the outgoing `[emb | agg]` vector is treated as an update
/// relative to the previously sent vector (zero for the first send), clipped
/// and noised, then rewritten. `prev_sent` is updated to the new clean value.
fn apply_gossip_transform(
    transform: &dyn UpdateTransform,
    snap: &mut SharedModel,
    prev_sent: &mut Option<Vec<f32>>,
    rng: &mut StdRng,
) {
    let emb_len = snap.owner_emb.as_ref().map_or(0, Vec::len);
    let mut current = vec![0.0f32; emb_len + snap.agg.len()];
    if let Some(emb) = &snap.owner_emb {
        current[..emb_len].copy_from_slice(emb);
    }
    current[emb_len..].copy_from_slice(&snap.agg);

    let reference = prev_sent.get_or_insert_with(|| current.clone());
    let mut update: Vec<f32> = current.iter().zip(reference.iter()).map(|(c, r)| c - r).collect();
    transform.transform(&mut update, rng);

    if let Some(emb) = &mut snap.owner_emb {
        for k in 0..emb_len {
            emb[k] = reference[k] + update[k];
        }
    }
    for (k, a) in snap.agg.iter_mut().enumerate() {
        *a = reference[emb_len + k] + update[emb_len + k];
    }
    *prev_sent = Some(current);
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A deterministic toy participant: params drift towards a per-community
    /// fixed point during "training", and `evaluate_model` prefers models
    /// close to the node's own fixed point — enough to exercise the protocol
    /// without real ML.
    struct TestNode {
        user: UserId,
        params: Vec<f32>,
        target: Vec<f32>,
    }

    impl TestNode {
        fn new(user: u32, community: usize) -> Self {
            let mut target = vec![0.0f32; 8];
            target[community % 8] = 1.0;
            TestNode { user: UserId::new(user), params: vec![0.0; 8], target }
        }
    }

    impl Participant for TestNode {
        fn user(&self) -> UserId {
            self.user
        }
        fn agg_len(&self) -> usize {
            8
        }
        fn agg(&self) -> &[f32] {
            &self.params
        }
        fn absorb_agg(&mut self, agg: &[f32]) {
            self.params.copy_from_slice(agg);
        }
        fn train_local(&mut self, _rng: &mut StdRng) -> f32 {
            let mut dist = 0.0f32;
            for (p, t) in self.params.iter_mut().zip(&self.target) {
                *p += 0.5 * (t - *p);
                dist += (t - *p) * (t - *p);
            }
            dist
        }
        fn snapshot(&self, round: u64) -> SharedModel {
            SharedModel { owner: self.user, round, owner_emb: None, agg: self.params.clone() }
        }
        fn num_examples(&self) -> usize {
            1
        }
        fn evaluate_model(&self, model: &SharedModel) -> f32 {
            -model.agg.iter().zip(&self.target).map(|(a, t)| (a - t) * (a - t)).sum::<f32>()
        }
    }

    fn sim(n: usize, cfg: GossipConfig) -> GossipSim<TestNode> {
        let nodes = (0..n).map(|u| TestNode::new(u as u32, u % 4)).collect();
        GossipSim::new(nodes, cfg)
    }

    #[derive(Default)]
    struct Recorder {
        deliveries: Vec<(u64, u32, u32)>,
        stats: Vec<GossipRoundStats>,
    }

    impl GossipObserver for Recorder {
        fn on_delivery(&mut self, round: u64, receiver: UserId, model: &SharedModel) {
            self.deliveries.push((round, receiver.raw(), model.owner.raw()));
        }
        fn on_round_end(&mut self, stats: &GossipRoundStats) {
            self.stats.push(stats.clone());
        }
    }

    #[test]
    fn every_awake_node_sends_exactly_one_model() {
        let mut s = sim(20, GossipConfig { rounds: 5, seed: 3, ..Default::default() });
        let mut rec = Recorder::default();
        s.run(&mut rec);
        for st in &rec.stats {
            assert_eq!(st.awake, 20);
            assert_eq!(st.deliveries, 20);
        }
        // Nobody delivers to itself.
        assert!(rec.deliveries.iter().all(|&(_, recv, sender)| recv != sender));
    }

    #[test]
    fn deliveries_follow_views() {
        let mut s = sim(15, GossipConfig { rounds: 1, seed: 7, ..Default::default() });
        // Record views before the round; deliveries of round 0 must respect
        // them (views refresh only at their scheduled time > 0).
        let views: Vec<Vec<u32>> = (0..15).map(|u| s.view_of(u).to_vec()).collect();
        let mut rec = Recorder::default();
        s.run(&mut rec);
        for &(_, recv, sender) in &rec.deliveries {
            assert!(
                views[sender as usize].contains(&recv),
                "delivery {sender}->{recv} not in view {:?}",
                views[sender as usize]
            );
        }
    }

    #[test]
    fn partial_wake_fraction_accumulates_inboxes() {
        let mut s =
            sim(30, GossipConfig { rounds: 10, wake_fraction: 0.5, seed: 1, ..Default::default() });
        let mut rec = Recorder::default();
        s.run(&mut rec);
        for st in &rec.stats {
            assert!(st.awake < 30, "round {}: awake {}", st.round, st.awake);
            assert_eq!(st.deliveries, st.awake);
        }
    }

    #[test]
    fn training_converges_towards_targets() {
        let mut s = sim(16, GossipConfig { rounds: 30, seed: 5, ..Default::default() });
        let mut rec = Recorder::default();
        s.run(&mut rec);
        let first = rec.stats.first().unwrap().mean_loss.expect("nodes awake");
        let last = rec.stats.last().unwrap().mean_loss.expect("nodes awake");
        assert!(last < first, "loss {first} -> {last}");
    }

    #[test]
    fn deterministic_given_seed() {
        let run = || {
            let mut s = sim(12, GossipConfig { rounds: 6, seed: 11, ..Default::default() });
            let mut rec = Recorder::default();
            s.run(&mut rec);
            (rec.deliveries, s.nodes()[3].params.clone())
        };
        let (d1, p1) = run();
        let (d2, p2) = run();
        assert_eq!(d1, d2);
        assert_eq!(p1, p2);
    }

    #[test]
    fn pers_gossip_biases_views_towards_own_community() {
        // 4 communities of 10; after plenty of rounds, Pers-Gossip views
        // should contain more same-community peers than the ~23% a uniform
        // view would give.
        let cfg = GossipConfig {
            rounds: 120,
            protocol: GossipProtocol::Pers { exploration: 0.4 },
            seed: 2,
            ..Default::default()
        };
        let mut s = sim(40, cfg);
        s.run(&mut NullGossipObserver);
        let mut same = 0usize;
        let mut total = 0usize;
        for u in 0..40u32 {
            for &v in s.view_of(u) {
                total += 1;
                if v % 4 == u % 4 {
                    same += 1;
                }
            }
        }
        let frac = same as f64 / total as f64;
        assert!(frac > 0.35, "same-community view fraction only {frac}");
    }

    #[test]
    fn rand_gossip_views_stay_uniform() {
        let mut s = sim(40, GossipConfig { rounds: 120, seed: 2, ..Default::default() });
        s.run(&mut NullGossipObserver);
        let mut same = 0usize;
        let mut total = 0usize;
        for u in 0..40u32 {
            for &v in s.view_of(u) {
                total += 1;
                if v % 4 == u % 4 {
                    same += 1;
                }
            }
        }
        let frac = same as f64 / total as f64;
        assert!(frac < 0.4, "rand-gossip views unexpectedly clustered: {frac}");
    }

    #[test]
    fn dp_transform_perturbs_deliveries() {
        use cia_defenses::{DpConfig, DpMechanism};
        let run = |noisy: bool| {
            let mut s = sim(10, GossipConfig { rounds: 2, seed: 4, ..Default::default() });
            if noisy {
                s.set_update_transform(Box::new(DpMechanism::new(DpConfig {
                    clip: 0.5,
                    noise_multiplier: 1.0,
                })));
            }
            let mut rec = Recorder::default();
            s.run(&mut rec);
            s.nodes()[0].params.clone()
        };
        assert_ne!(run(false), run(true));
    }

    #[test]
    #[should_panic(expected = "need more nodes")]
    fn rejects_too_few_nodes() {
        let _ = sim(3, GossipConfig::default());
    }

    /// Clears every odd node from the wake set via the availability hook.
    #[derive(Default)]
    struct OddSleeper {
        stats: Vec<GossipRoundStats>,
        deliveries: Vec<u32>,
    }

    impl GossipObserver for OddSleeper {
        fn on_wake_set(&mut self, _round: u64, mask: &mut [bool]) {
            for (u, m) in mask.iter_mut().enumerate() {
                if u % 2 == 1 {
                    *m = false;
                }
            }
        }
        fn on_delivery(&mut self, _round: u64, _receiver: UserId, model: &SharedModel) {
            self.deliveries.push(model.owner.raw());
        }
        fn on_round_end(&mut self, stats: &GossipRoundStats) {
            self.stats.push(stats.clone());
        }
    }

    #[test]
    fn wake_hook_filters_senders() {
        let mut s = sim(20, GossipConfig { rounds: 4, seed: 6, ..Default::default() });
        let mut obs = OddSleeper::default();
        s.run(&mut obs);
        for st in &obs.stats {
            assert_eq!(st.awake, 10, "only even nodes wake");
            assert_eq!(st.deliveries, 10);
        }
        assert!(obs.deliveries.iter().all(|u| u % 2 == 0), "only awake nodes send");
    }

    /// Declares node 5 permanently unavailable (refresh deferral only; the
    /// wake set is left alone so the rest of the round is unchanged).
    struct FiveOffline;

    impl GossipObserver for FiveOffline {
        fn node_available(&self, _round: u64, node: u32) -> bool {
            node != 5
        }
    }

    #[test]
    fn offline_nodes_defer_view_refreshes() {
        // A refresh rate of 1.0 schedules refreshes nearly every round, so
        // over 12 rounds every available node re-samples its view at least
        // once with overwhelming probability — while node 5's view must
        // stay exactly its initial one.
        let cfg =
            GossipConfig { rounds: 12, view_refresh_rate: 1.0, seed: 9, ..Default::default() };
        let mut s = sim(16, cfg);
        let initial: Vec<Vec<u32>> = (0..16).map(|u| s.view_of(u).to_vec()).collect();
        s.run(&mut FiveOffline);
        assert_eq!(s.view_of(5), initial[5].as_slice(), "offline node refreshed its view");
        let changed = (0..16u32)
            .filter(|&u| u != 5 && s.view_of(u) != initial[u as usize].as_slice())
            .count();
        assert!(changed > 10, "only {changed} available nodes refreshed");
    }

    #[test]
    fn traffic_counters_account_for_every_delivery_and_view_slot() {
        let rounds = 6;
        let mut s = sim(20, GossipConfig { rounds, seed: 3, ..Default::default() });
        let mut rec = Recorder::default();
        s.run(&mut rec);
        let traffic = s.traffic();
        // Every routed delivery is counted exactly once.
        let received: u64 = traffic.received.iter().sum();
        assert_eq!(received as usize, rec.deliveries.len());
        for (u, &count) in traffic.received.iter().enumerate() {
            let delivered = rec.deliveries.iter().filter(|&&(_, recv, _)| recv == u as u32).count();
            assert_eq!(count as usize, delivered, "node {u}");
        }
        // Each round accumulates exactly out_degree view slots per node.
        let in_degree: u64 = traffic.view_in_degree.iter().sum();
        assert_eq!(in_degree, rounds * 20 * s.config().out_degree as u64);
        // And the counters survive a checkpoint roundtrip.
        let state = s.export_state();
        assert_eq!(&state.traffic, traffic);
        let mut fresh = sim(20, GossipConfig { rounds, seed: 3, ..Default::default() });
        let traffic = traffic.clone();
        fresh.restore_state(state);
        assert_eq!(fresh.traffic(), &traffic);
    }

    #[test]
    fn recorder_counts_wire_bytes_and_spans_phases() {
        let rounds = 5u64;
        let mut s = sim(20, GossipConfig { rounds, seed: 3, ..Default::default() });
        let rec = cia_obs::Recorder::new();
        rec.set_detail(true);
        s.set_recorder(rec.clone());
        let mut tape = Recorder::default();
        s.run(&mut tape);
        assert_eq!(rec.counter(Counter::InboxDeliveries) as usize, tape.deliveries.len());
        assert_eq!(rec.counter(Counter::ClientsTrained), rounds * 20);
        // Every delivery carries the 8-float test model: 32 bytes, and the
        // stats field mirrors the counter delta exactly.
        assert_eq!(rec.counter(Counter::BytesOnWire), 32 * rec.counter(Counter::InboxDeliveries));
        let stat_bytes: u64 = tape.stats.iter().map(|s| s.bytes_materialized).sum();
        assert_eq!(stat_bytes, rec.counter(Counter::BytesOnWire));
        assert_eq!(rec.histogram(Metric::TrainMicros).count(), rounds * 20);
        // The fused mix+train pass still splits per-node cost into the two
        // histograms: one mix observation per (round, node-with-mail), so
        // the count is positive and bounded by the delivery count.
        let mixes = rec.histogram(Metric::MixMicros).count();
        assert!(mixes > 0, "mix cost was never observed");
        assert!(mixes <= rec.counter(Counter::InboxDeliveries));
        let chunk = rec.drain();
        for phase in ["refresh", "sample", "send", "route", "train", "evaluate"] {
            assert_eq!(
                chunk.spans.iter().filter(|s| s.name == phase).count(),
                rounds as usize,
                "one {phase} span per round"
            );
        }
    }

    #[test]
    fn tracing_does_not_change_the_simulation() {
        // A detail-enabled recorder (spans, histograms, per-node mix/train
        // clock reads) must leave the protocol bit-identical to an
        // untraced run.
        let cfg = GossipConfig {
            rounds: 8,
            wake_fraction: 0.6,
            protocol: GossipProtocol::Pers { exploration: 0.4 },
            seed: 17,
            ..Default::default()
        };
        let run = |traced: bool| {
            let mut s = sim(16, cfg);
            if traced {
                let rec = cia_obs::Recorder::new();
                rec.set_detail(true);
                s.set_recorder(rec);
            }
            let mut tape = Recorder::default();
            s.run(&mut tape);
            let params: Vec<Vec<f32>> = s.nodes().iter().map(|n| n.params.clone()).collect();
            (tape.deliveries, params)
        };
        assert_eq!(run(false), run(true));
    }

    #[test]
    fn restore_replays_identically() {
        let cfg = GossipConfig { rounds: 8, wake_fraction: 0.7, seed: 21, ..Default::default() };
        let mut straight = sim(14, cfg);
        straight.run(&mut NullGossipObserver);

        let mut first = sim(14, cfg);
        for _ in 0..3 {
            first.step(&mut NullGossipObserver);
        }
        let proto = first.export_state();
        let params: Vec<Vec<f32>> = first.nodes().iter().map(Participant::state_vec).collect();

        let mut resumed = sim(14, cfg);
        resumed.restore_state(proto);
        for (node, p) in resumed.nodes_mut().iter_mut().zip(&params) {
            node.restore_state(p);
        }
        for _ in 3..8 {
            resumed.step(&mut NullGossipObserver);
        }
        for (a, b) in straight.nodes().iter().zip(resumed.nodes()) {
            assert_eq!(a.params, b.params);
        }
        assert_eq!(straight.round(), resumed.round());
    }
}
