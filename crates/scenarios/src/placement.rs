//! Adaptive traffic-aware sybil placement.
//!
//! The paper's gossip coalition sits on evenly spaced node ids. The
//! [`PlacementEngine`] models a strictly stronger adversary: during a
//! warm-up window it passively observes traffic — per-node delivery counts
//! and view-membership frequency from [`cia_gossip::TrafficCounters`], plus
//! its own log of which distinct senders each position heard — and then
//! relocates the coalition's sybil identities onto the top-scoring
//! positions before the attack proper begins:
//!
//! * [`PlacementStrategy::Degree`] ranks positions by accumulated view
//!   in-degree (the expected-delivery rate of a position), ties broken by
//!   delivered-message count, then by id.
//! * [`PlacementStrategy::CoverageGreedy`] greedily picks positions
//!   maximizing the number of *distinct* senders the coalition would have
//!   observed — max-coverage over the warm-up delivery log, the observation
//!   analogue of the per-community `upper_bound_online` bound. Once no
//!   candidate adds new senders, the remaining seats fall back to degree
//!   order.
//!
//! Everything is deterministic given the spec and seed: scores come from
//! the (deterministic) simulation, and every tie-break ends at the node id.
//! The engine's cross-round state ([`PlacementState`]) is part of every
//! checkpoint, so a run killed on either side of the relocation boundary
//! resumes onto the identical decision.

use crate::spec::PlacementStrategy;
use cia_gossip::{GossipObserver, GossipRoundStats, TrafficCounters};
use cia_models::SharedModel;

/// Checkpointable slice of a [`PlacementEngine`] (strategy, warm-up window
/// and coalition size are reconstructed from the spec).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct PlacementState {
    /// Whether the relocation has fired.
    pub relocated: bool,
    /// The coalition's current node ids, ascending.
    pub members: Vec<u32>,
    /// Warm-up delivery log: per receiver, the distinct senders observed so
    /// far (sorted). Cleared after relocation.
    pub seen: Vec<Vec<u32>>,
}

/// The placement decision process for one scenario run.
pub struct PlacementEngine {
    strategy: PlacementStrategy,
    warmup: u64,
    coalition: usize,
    members: Vec<u32>,
    relocated: bool,
    /// Per receiver: sorted distinct senders observed during warm-up. Empty
    /// when the engine is inert (static strategy or no coalition).
    seen: Vec<Vec<u32>>,
}

impl PlacementEngine {
    /// Creates the engine. `members` is the initial (static) placement; an
    /// engine with a static strategy or an empty coalition is inert.
    pub fn new(
        strategy: PlacementStrategy,
        warmup: u64,
        members: Vec<u32>,
        num_nodes: usize,
    ) -> Self {
        let active = strategy.is_adaptive() && !members.is_empty();
        PlacementEngine {
            strategy,
            warmup,
            coalition: members.len(),
            members,
            relocated: false,
            seen: if active { vec![Vec::new(); num_nodes] } else { Vec::new() },
        }
    }

    /// Whether the relocation has fired.
    pub fn relocated(&self) -> bool {
        self.relocated
    }

    /// The coalition's current node ids.
    pub fn members(&self) -> &[u32] {
        &self.members
    }

    /// Whether the engine is still collecting the warm-up delivery log.
    fn tracking(&self) -> bool {
        !self.seen.is_empty() && !self.relocated
    }

    /// Records one routed delivery into the warm-up log (no-op once the
    /// warm-up is over or the engine is inert).
    pub fn observe_delivery(&mut self, receiver: u32, sender: u32) {
        if !self.tracking() {
            return;
        }
        let log = &mut self.seen[receiver as usize];
        if let Err(at) = log.binary_search(&sender) {
            log.insert(at, sender);
        }
    }

    /// Fires the relocation when the warm-up window has elapsed. Returns the
    /// new membership exactly once; a warm-up at or beyond the horizon never
    /// fires (the run degrades to static placement).
    pub fn maybe_relocate(&mut self, round: u64, traffic: &TrafficCounters) -> Option<&[u32]> {
        if self.seen.is_empty() || self.relocated || round < self.warmup {
            return None;
        }
        self.members = match self.strategy {
            PlacementStrategy::Static => unreachable!("inert engines have no log"),
            PlacementStrategy::Degree => {
                let mut ranked = degree_order(traffic);
                ranked.truncate(self.coalition);
                ranked.sort_unstable();
                ranked
            }
            PlacementStrategy::CoverageGreedy => greedy_cover(&self.seen, traffic, self.coalition),
        };
        self.relocated = true;
        self.seen = Vec::new();
        Some(&self.members)
    }

    /// Snapshot of the cross-round state for checkpoint/resume.
    pub fn export_state(&self) -> PlacementState {
        PlacementState {
            relocated: self.relocated,
            members: self.members.clone(),
            seen: self.seen.clone(),
        }
    }

    /// Restores a state captured by [`PlacementEngine::export_state`].
    ///
    /// # Panics
    ///
    /// Panics if the membership size changed (the spec fixes the coalition
    /// size, so a mismatch means the state belongs to a different run).
    pub fn restore_state(&mut self, state: PlacementState) {
        if !state.members.is_empty() || self.coalition > 0 {
            assert_eq!(state.members.len(), self.coalition, "coalition size mismatch");
        }
        if self.seen.is_empty() {
            assert!(state.seen.is_empty(), "inert engines carry no delivery log");
        }
        self.relocated = state.relocated;
        self.members = state.members;
        if state.relocated {
            self.seen = Vec::new();
        } else if !self.seen.is_empty() {
            assert_eq!(state.seen.len(), self.seen.len(), "delivery log size mismatch");
            self.seen = state.seen;
        }
    }
}

/// All node ids in descending traffic order: accumulated view in-degree,
/// ties by delivered-message count, then ascending id.
fn degree_order(traffic: &TrafficCounters) -> Vec<u32> {
    // cia-lint: allow(D05, ids and indices are bounded by the validated population/catalog size, which fits u32)
    let mut ids: Vec<u32> = (0..traffic.view_in_degree.len() as u32).collect();
    ids.sort_by_key(|&v| {
        (
            std::cmp::Reverse(traffic.view_in_degree[v as usize]),
            std::cmp::Reverse(traffic.received[v as usize]),
            v,
        )
    });
    ids
}

/// Greedy max-coverage over the warm-up delivery log: each seat takes the
/// position adding the most unseen senders (ties by degree order); once no
/// position adds anything, the rest follow degree order.
fn greedy_cover(seen: &[Vec<u32>], traffic: &TrafficCounters, coalition: usize) -> Vec<u32> {
    let order = degree_order(traffic);
    let mut covered = vec![false; seen.len()];
    let mut chosen = vec![false; seen.len()];
    let mut members = Vec::with_capacity(coalition);
    for _ in 0..coalition.min(seen.len()) {
        let mut best: Option<(usize, u32)> = None;
        for &v in &order {
            if chosen[v as usize] {
                continue;
            }
            let gain = seen[v as usize].iter().filter(|&&s| !covered[s as usize]).count();
            // `order` is the tie-break: the first candidate at a given gain
            // wins, so strictly-greater keeps degree order on ties.
            if best.is_none_or(|(g, _)| gain > g) {
                best = Some((gain, v));
            }
        }
        let Some((gain, v)) = best else { break };
        if gain == 0 {
            // Coverage is exhausted; fill the remaining seats by degree.
            break;
        }
        chosen[v as usize] = true;
        members.push(v);
        for &s in &seen[v as usize] {
            covered[s as usize] = true;
        }
    }
    for &v in &order {
        if members.len() >= coalition {
            break;
        }
        if !chosen[v as usize] {
            chosen[v as usize] = true;
            members.push(v);
        }
    }
    members.sort_unstable();
    members
}

/// Observer adapter feeding routed deliveries into the engine's warm-up log
/// before forwarding them to the attack.
pub struct PlacementObserver<'a, O: GossipObserver> {
    /// The wrapped observer (the attack engine).
    pub inner: &'a mut O,
    /// The placement decision process.
    pub engine: &'a mut PlacementEngine,
}

impl<O: GossipObserver> GossipObserver for PlacementObserver<'_, O> {
    fn on_round_start(&mut self, round: u64) {
        self.inner.on_round_start(round);
    }

    fn on_liveness(&mut self, event: cia_runtime::LivenessEvent<'_>) {
        self.inner.on_liveness(event);
    }

    fn on_delivery(&mut self, round: u64, receiver: cia_data::UserId, model: &SharedModel) {
        self.engine.observe_delivery(receiver.raw(), model.owner.raw());
        self.inner.on_delivery(round, receiver, model);
    }

    fn on_round_end(&mut self, stats: &GossipRoundStats) {
        self.inner.on_round_end(stats);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn traffic(view_in_degree: &[u64], received: &[u64]) -> TrafficCounters {
        TrafficCounters { received: received.to_vec(), view_in_degree: view_in_degree.to_vec() }
    }

    #[test]
    fn degree_ranking_is_deterministic_under_ties() {
        let t = traffic(&[3, 7, 7, 1, 7], &[0, 2, 2, 0, 9]);
        // 1, 2 and 4 tie on in-degree; 4 wins on received, then id order.
        assert_eq!(degree_order(&t), vec![4, 1, 2, 0, 3]);
    }

    #[test]
    fn degree_strategy_takes_top_positions() {
        let mut engine = PlacementEngine::new(PlacementStrategy::Degree, 5, vec![0, 2], 6);
        let t = traffic(&[1, 9, 0, 4, 2, 0], &[0; 6]);
        assert!(engine.maybe_relocate(4, &t).is_none(), "warm-up still running");
        let members = engine.maybe_relocate(5, &t).unwrap().to_vec();
        assert_eq!(members, vec![1, 3]);
        assert!(engine.relocated());
        // The relocation fires exactly once.
        assert!(engine.maybe_relocate(6, &t).is_none());
    }

    #[test]
    fn greedy_prefers_complementary_coverage_over_raw_degree() {
        // Positions 0 and 1 lead on degree but hear the same three senders;
        // position 4 hears two senders nobody else does. Degree would pick
        // {0, 1}; greedy must pick 0 (best cover) then 4 (complementary).
        let mut engine = PlacementEngine::new(PlacementStrategy::CoverageGreedy, 1, vec![0, 1], 6);
        for (receiver, senders) in [(0u32, vec![2u32, 3, 5]), (1, vec![2, 3, 5]), (4, vec![0, 1])] {
            for s in senders {
                engine.observe_delivery(receiver, s);
            }
        }
        let t = traffic(&[9, 8, 0, 0, 1, 0], &[0; 6]);
        let members = engine.maybe_relocate(1, &t).unwrap().to_vec();
        assert_eq!(members, vec![0, 4]);
    }

    #[test]
    fn greedy_falls_back_to_degree_when_coverage_dries_up() {
        // Only position 2 heard anything; the second seat goes to the top
        // remaining degree node.
        let mut engine = PlacementEngine::new(PlacementStrategy::CoverageGreedy, 1, vec![0, 1], 5);
        engine.observe_delivery(2, 4);
        let t = traffic(&[5, 1, 0, 7, 2], &[0; 5]);
        assert_eq!(engine.maybe_relocate(1, &t).unwrap(), &[2, 3]);
    }

    #[test]
    fn static_engine_is_inert() {
        let mut engine = PlacementEngine::new(PlacementStrategy::Static, 1, vec![0, 3], 6);
        engine.observe_delivery(1, 2); // no-op
        let t = traffic(&[9; 6], &[9; 6]);
        assert!(engine.maybe_relocate(100, &t).is_none());
        assert_eq!(engine.members(), &[0, 3]);
        assert!(engine.export_state().seen.is_empty());
    }

    #[test]
    fn delivery_log_stays_sorted_and_distinct() {
        let mut engine = PlacementEngine::new(PlacementStrategy::CoverageGreedy, 9, vec![0], 4);
        for s in [3u32, 1, 3, 2, 1] {
            engine.observe_delivery(0, s);
        }
        assert_eq!(engine.export_state().seen[0], vec![1, 2, 3]);
    }

    #[test]
    fn state_roundtrips_across_the_relocation_boundary() {
        let t = traffic(&[1, 9, 0, 4], &[0; 4]);
        // Before the boundary: the log travels with the state.
        let mut a = PlacementEngine::new(PlacementStrategy::Degree, 3, vec![0, 2], 4);
        a.observe_delivery(1, 0);
        let mut b = PlacementEngine::new(PlacementStrategy::Degree, 3, vec![0, 2], 4);
        b.restore_state(a.export_state());
        assert_eq!(b.export_state(), a.export_state());
        // Both fire the same relocation.
        assert_eq!(
            a.maybe_relocate(3, &t).unwrap().to_vec(),
            b.maybe_relocate(3, &t).unwrap().to_vec()
        );
        // After the boundary: restoring a relocated state re-applies the
        // membership and drops the log.
        let mut c = PlacementEngine::new(PlacementStrategy::Degree, 3, vec![0, 2], 4);
        c.restore_state(a.export_state());
        assert!(c.relocated());
        assert_eq!(c.members(), a.members());
        assert!(c.maybe_relocate(9, &t).is_none());
    }
}
