//! `bench_report` — fold the criterion JSON-lines stream into
//! `BENCH_kernels.json`.
//!
//! ```text
//! bench_report <criterion.jsonl> [out.json]
//! ```
//!
//! Normally invoked through `scripts/bench_kernels.sh`, which runs the micro
//! benches with `CRITERION_JSON` pointed at a scratch file first.

#![forbid(unsafe_code)]

use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(input_path) = args.first() else {
        eprintln!("usage: bench_report <criterion.jsonl> [out.json]");
        return ExitCode::FAILURE;
    };
    let out_path = args.get(1).map_or("BENCH_kernels.json", String::as_str);
    let input = match std::fs::read_to_string(input_path) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("bench_report: cannot read {input_path}: {e}");
            return ExitCode::FAILURE;
        }
    };
    let measurements = cia_bench::report::parse_jsonl(&input);
    if measurements.is_empty() {
        eprintln!("bench_report: no measurements found in {input_path}");
        return ExitCode::FAILURE;
    }
    let rendered = cia_bench::report::render_report(&measurements);
    if let Err(e) = std::fs::write(out_path, &rendered) {
        eprintln!("bench_report: cannot write {out_path}: {e}");
        return ExitCode::FAILURE;
    }
    println!("wrote {out_path} ({} benchmarks)", measurements.len());
    ExitCode::SUCCESS
}
