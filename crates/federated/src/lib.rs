//! Federated learning (FedAvg) simulation with adversary observer hooks.
//!
//! Reproduces the paper's federated recommender setting (§III-B): at each
//! round the server broadcasts the global model, (a subset of) clients train
//! locally and send back their models, and the server aggregates them into
//! the next global model. The [`RoundObserver`] hook exposes exactly what the
//! server receives — the vantage point of the paper's FL adversary, who *is*
//! the server (§IV-A).
//!
//! # Example
//!
//! ```
//! use cia_data::{LeaveOneOut, SyntheticConfig, UserId};
//! use cia_federated::{FedAvg, FedAvgConfig, RoundObserver};
//! use cia_models::{GmfHyper, GmfSpec, SharedModel, SharingPolicy};
//!
//! let data = SyntheticConfig::builder()
//!     .users(12).items(60).communities(3).interactions_per_user(8)
//!     .seed(1).build().generate();
//! let split = LeaveOneOut::new(&data, 10, 0).unwrap();
//! let spec = GmfSpec::new(60, 8, GmfHyper::default());
//! let clients: Vec<_> = split
//!     .train_sets()
//!     .iter()
//!     .enumerate()
//!     .map(|(u, items)| {
//!         spec.build_client(UserId::new(u as u32), items.clone(), SharingPolicy::Full, u as u64)
//!     })
//!     .collect();
//!
//! struct Counter(usize);
//! impl RoundObserver for Counter {
//!     fn on_client_model(&mut self, _m: &SharedModel) { self.0 += 1; }
//! }
//!
//! let mut sim = FedAvg::new(clients, FedAvgConfig { rounds: 2, ..Default::default() });
//! let mut counter = Counter(0);
//! sim.run(&mut counter);
//! assert_eq!(counter.0, 2 * 12);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use cia_models::parallel::par_zip_mut;
use cia_models::params::weighted_mean;
use cia_models::{Participant, SharedModel, UpdateTransform};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};

/// How client updates are weighted during aggregation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum Weighting {
    /// Every participating client weighs the same.
    Uniform,
    /// FedAvg's default: weigh by local example count.
    #[default]
    ByExamples,
}

/// FedAvg configuration.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FedAvgConfig {
    /// Number of communication rounds `T`.
    pub rounds: u64,
    /// Fraction of clients sampled each round (1.0 = full participation, the
    /// paper's FL adversary "may contact all or part of the users").
    pub participation: f64,
    /// Local training epochs per round.
    pub local_epochs: usize,
    /// Aggregation weighting.
    pub weighting: Weighting,
    /// Simulation seed (client sampling, training order, DP noise).
    pub seed: u64,
}

impl Default for FedAvgConfig {
    fn default() -> Self {
        FedAvgConfig {
            rounds: 20,
            participation: 1.0,
            local_epochs: 1,
            weighting: Weighting::ByExamples,
            seed: 0,
        }
    }
}

/// Per-round statistics handed to observers.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RoundStats {
    /// The completed round index.
    pub round: u64,
    /// Number of clients that participated.
    pub participants: usize,
    /// Mean local training loss across participants.
    pub mean_loss: f32,
}

/// Observes what the FL server sees — the adversary's vantage point.
///
/// All methods have empty default bodies so observers implement only what
/// they need.
pub trait RoundObserver {
    /// Called when a round begins.
    fn on_round_start(&mut self, round: u64) {
        let _ = round;
    }

    /// Called after the protocol's own participation sampling with the
    /// round's tentative participant mask. Observers may clear entries to
    /// model availability — churn, stragglers, device dropout — without the
    /// training loop knowing about participant dynamics (the
    /// `cia-scenarios` dynamics layer plugs in here). Setting entries to
    /// `true` is ignored-at-your-own-risk: the protocol honors the final
    /// mask as-is.
    fn on_participants(&mut self, round: u64, mask: &mut [bool]) {
        let _ = (round, mask);
    }

    /// Called at the start of every round with the broadcast global model —
    /// public knowledge for a server-side adversary (reference for update
    /// reconstruction and for training fictive embeddings).
    fn on_global(&mut self, round: u64, global_agg: &[f32]) {
        let _ = (round, global_agg);
    }

    /// Called once per received client model, in user-id order.
    fn on_client_model(&mut self, model: &SharedModel) {
        let _ = model;
    }

    /// Whether this observer consumes [`RoundObserver::on_client_model`].
    /// Observers that don't (e.g. [`NullObserver`] in utility-only runs and
    /// round benchmarks) should return `false`: the protocol then skips
    /// materializing per-client snapshots entirely — aggregation works
    /// directly from client state — which removes a full copy of every
    /// client's model from each round. Aggregation math is identical either
    /// way.
    fn observes_models(&self) -> bool {
        true
    }

    /// Called when a round's aggregation completes.
    fn on_round_end(&mut self, stats: &RoundStats) {
        let _ = stats;
    }
}

/// A no-op observer for runs without an adversary.
#[derive(Debug, Clone, Copy, Default)]
pub struct NullObserver;

impl RoundObserver for NullObserver {
    fn observes_models(&self) -> bool {
        false
    }
}

/// The FedAvg simulation.
pub struct FedAvg<P: Participant> {
    clients: Vec<P>,
    global_agg: Vec<f32>,
    cfg: FedAvgConfig,
    transform: Option<Box<dyn UpdateTransform>>,
    round: u64,
    /// Per-client round slots, persistent across rounds so snapshots reuse
    /// their buffers instead of re-allocating a full model per client per
    /// round.
    slots: Vec<RoundSlot>,
    /// Reused aggregation accumulator.
    acc: Vec<f32>,
}

/// Per-client per-round bookkeeping; `model` keeps its buffers across rounds.
struct RoundSlot {
    model: SharedModel,
    loss: f32,
    sampled: bool,
}

impl<P: Participant> FedAvg<P> {
    /// Creates a simulation over `clients`. The initial global model is the
    /// first client's public parameters (all clients sync to it in round 0).
    ///
    /// # Panics
    ///
    /// Panics if `clients` is empty or clients disagree on parameter sizes.
    pub fn new(clients: Vec<P>, cfg: FedAvgConfig) -> Self {
        assert!(!clients.is_empty(), "need at least one client");
        let len = clients[0].agg_len();
        assert!(
            clients.iter().all(|c| c.agg_len() == len),
            "clients must share a parameter layout"
        );
        assert!(
            cfg.participation > 0.0 && cfg.participation <= 1.0,
            "participation must be in (0, 1]"
        );
        let global_agg = clients[0].agg().to_vec();
        let slots = clients
            .iter()
            .map(|c| RoundSlot {
                model: SharedModel { owner: c.user(), round: 0, owner_emb: None, agg: Vec::new() },
                loss: 0.0,
                sampled: false,
            })
            .collect();
        FedAvg { clients, global_agg, cfg, transform: None, round: 0, slots, acc: Vec::new() }
    }

    /// Installs a local update transform (DP-SGD) applied to every outgoing
    /// client update.
    pub fn set_update_transform(&mut self, transform: Box<dyn UpdateTransform>) {
        self.transform = Some(transform);
    }

    /// The configuration.
    pub fn config(&self) -> &FedAvgConfig {
        &self.cfg
    }

    /// The clients (evaluation access).
    pub fn clients(&self) -> &[P] {
        &self.clients
    }

    /// The current global public parameters.
    pub fn global_agg(&self) -> &[f32] {
        &self.global_agg
    }

    /// Rounds completed so far.
    pub fn round(&self) -> u64 {
        self.round
    }

    /// Mutable access to the clients (checkpoint resume restores each
    /// participant's private state in place).
    pub fn clients_mut(&mut self) -> &mut [P] {
        &mut self.clients
    }

    /// Restores the protocol-side state — the round counter and the current
    /// global model — captured from [`FedAvg::round`] and
    /// [`FedAvg::global_agg`]. Per-round RNG streams are derived from
    /// `(seed, round)`, so no generator state needs saving: stepping after a
    /// restore replays exactly the rounds an uninterrupted run would have
    /// executed.
    ///
    /// # Panics
    ///
    /// Panics if `global_agg` does not match the clients' parameter layout.
    pub fn restore(&mut self, round: u64, global_agg: Vec<f32>) {
        assert_eq!(global_agg.len(), self.global_agg.len(), "global layout mismatch");
        self.round = round;
        self.global_agg = global_agg;
    }

    /// Loads the current global model into every client (used before utility
    /// evaluation, mirroring the broadcast deployment of the final model).
    pub fn sync_clients_to_global(&mut self) {
        let global = self.global_agg.clone();
        for c in &mut self.clients {
            c.absorb_agg(&global);
        }
    }

    /// Runs one round: sample, broadcast, local training, transform,
    /// observe, aggregate.
    pub fn step(&mut self, observer: &mut dyn RoundObserver) -> RoundStats {
        let t = self.round;
        let n = self.clients.len();
        let mut rng = StdRng::seed_from_u64(self.cfg.seed ^ t.wrapping_mul(0x9E37_79B9_7F4A_7C15));

        // Sample participants.
        let mut sampled: Vec<bool> = if self.cfg.participation >= 1.0 {
            vec![true; n]
        } else {
            let k = ((n as f64 * self.cfg.participation).round() as usize).clamp(1, n);
            let mut idx: Vec<usize> = (0..n).collect();
            idx.shuffle(&mut rng);
            let mut mask = vec![false; n];
            for &i in idx.iter().take(k) {
                mask[i] = true;
            }
            mask
        };

        observer.on_round_start(t);
        observer.on_participants(t, &mut sampled);
        observer.on_global(t, &self.global_agg);

        // Snapshots are materialized only when something consumes them: the
        // observer, or the DP transform (which aggregates transformed
        // parameters instead of the clients' own).
        let materialize = self.transform.is_some() || observer.observes_models();

        // Per-client work deposited into aligned, buffer-reusing slots.
        let global = &self.global_agg;
        let cfg = self.cfg;
        let transform = self.transform.as_deref();
        for (slot, &s) in self.slots.iter_mut().zip(&sampled) {
            slot.sampled = s;
            slot.loss = 0.0;
        }
        let per_client =
            |i: usize, client: &mut P, slot: &mut RoundSlot, acc: Option<(f32, &mut [f32])>| {
                if !slot.sampled {
                    return;
                }
                let mut crng = StdRng::seed_from_u64(
                    cfg.seed ^ (t << 20) ^ (i as u64).wrapping_mul(0x5851_F42D),
                );
                if let Some(tr) = transform {
                    // DP path: the transform needs the pre-round embedding
                    // and rewrites the materialized snapshot.
                    client.absorb_agg(global);
                    let emb_before: Option<Vec<f32>> = client.owner_emb().map(<[f32]>::to_vec);
                    let mut loss = 0.0;
                    for _ in 0..cfg.local_epochs.max(1) {
                        loss = client.train_local(&mut crng);
                    }
                    slot.loss = loss;
                    client.snapshot_into(t, &mut slot.model);
                    apply_update_transform(
                        tr,
                        &mut slot.model,
                        global,
                        emb_before.as_deref(),
                        &mut crng,
                    );
                } else {
                    slot.loss = client.fed_round(global, cfg.local_epochs, &mut crng, acc);
                    if materialize {
                        client.snapshot_into(t, &mut slot.model);
                    }
                }
            };
        // Pre-compute the sparse-aggregation weights so the single-thread
        // path can fold each client's contribution while its parameters are
        // still cache-hot. The parallel path runs the same accumulation as a
        // separate pass; both visit clients in index order over identical
        // inputs, so the result is bit-identical for every thread count.
        let weight_of = |client: &P| match cfg.weighting {
            Weighting::Uniform => 1.0,
            Weighting::ByExamples => client.num_examples().max(1) as f32,
        };
        let sparse_agg = self.transform.is_none();
        let total: f32 = self
            .clients
            .iter()
            .zip(&self.slots)
            .filter(|(_, slot)| slot.sampled)
            .map(|(client, _)| weight_of(client))
            .sum();
        self.acc.resize(self.global_agg.len(), 0.0);
        self.acc.fill(0.0);
        if cia_models::parallel::num_threads() <= 1 {
            let acc = &mut self.acc;
            for (i, (client, slot)) in self.clients.iter_mut().zip(&mut self.slots).enumerate() {
                let sink = if sparse_agg && total > 0.0 {
                    Some((weight_of(client) / total, acc.as_mut_slice()))
                } else {
                    None
                };
                per_client(i, client, slot, sink);
            }
        } else {
            par_zip_mut(&mut self.clients, &mut self.slots, |i, client, slot| {
                per_client(i, client, slot, None);
            });
            if sparse_agg && total > 0.0 {
                let acc = &mut self.acc;
                for (client, slot) in self.clients.iter().zip(&self.slots) {
                    if slot.sampled {
                        client.accumulate_update(global, weight_of(client) / total, acc);
                    }
                }
            }
        }

        // Observe in deterministic (user-id) order.
        let mut loss_sum = 0.0f32;
        let mut participants = 0usize;
        for slot in &self.slots {
            if slot.sampled {
                if materialize {
                    observer.on_client_model(&slot.model);
                }
                loss_sum += slot.loss;
                participants += 1;
            }
        }
        // Aggregate. An all-offline round (dynamics can empty the mask)
        // keeps the previous global — nothing arrived to aggregate.
        if participants > 0 {
            if sparse_agg {
                // Sparse path: every client contributed
                // `w̃ᵢ · (aggᵢ − global)` over only the parameters its local
                // training touched (Σ w̃ᵢ = 1, so
                // `global + Σ w̃ᵢ·(aggᵢ − global) = Σ w̃ᵢ·aggᵢ`) — already
                // folded into `acc` above, in client index order.
                for (g, a) in self.global_agg.iter_mut().zip(&self.acc) {
                    *g += a;
                }
            } else {
                // Transformed parameters live only in the snapshots: dense
                // weighted mean over the materialized models.
                let mut rows: Vec<&[f32]> = Vec::with_capacity(participants);
                let mut weights: Vec<f32> = Vec::with_capacity(participants);
                for (client, slot) in self.clients.iter().zip(&self.slots) {
                    if slot.sampled {
                        rows.push(&slot.model.agg);
                        weights.push(weight_of(client));
                    }
                }
                let mut new_global = vec![0.0f32; self.global_agg.len()];
                weighted_mean(&mut new_global, &rows, &weights);
                self.global_agg = new_global;
            }
        }

        let stats = RoundStats {
            round: t,
            participants,
            mean_loss: if participants == 0 { 0.0 } else { loss_sum / participants as f32 },
        };
        observer.on_round_end(&stats);
        self.round += 1;
        stats
    }

    /// Runs all configured rounds.
    pub fn run(&mut self, observer: &mut dyn RoundObserver) {
        for _ in 0..self.cfg.rounds {
            self.step(observer);
        }
    }
}

/// Applies a DP-style transform to the *update* encoded by `snap` relative to
/// the round-start reference, then rewrites `snap` as `reference + update`.
fn apply_update_transform(
    transform: &dyn UpdateTransform,
    snap: &mut SharedModel,
    global_before: &[f32],
    emb_before: Option<&[f32]>,
    rng: &mut StdRng,
) {
    // Concatenate [emb_update | agg_update] so the clipping bound covers the
    // whole shared vector, as user-level LDP requires.
    let emb_len = snap.owner_emb.as_ref().map_or(0, Vec::len);
    let mut update = vec![0.0f32; emb_len + snap.agg.len()];
    if let (Some(emb), Some(before)) = (&snap.owner_emb, emb_before) {
        for k in 0..emb_len {
            update[k] = emb[k] - before[k];
        }
    }
    for (k, u) in update[emb_len..].iter_mut().enumerate() {
        *u = snap.agg[k] - global_before[k];
    }

    transform.transform(&mut update, rng);

    if let (Some(emb), Some(before)) = (&mut snap.owner_emb, emb_before) {
        for k in 0..emb_len {
            emb[k] = before[k] + update[k];
        }
    }
    for (k, a) in snap.agg.iter_mut().enumerate() {
        *a = global_before[k] + update[emb_len + k];
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cia_data::{LeaveOneOut, SyntheticConfig, UserId};
    use cia_models::{GmfHyper, GmfSpec, SharingPolicy};

    fn make_sim(users: usize, rounds: u64, policy: SharingPolicy) -> FedAvg<cia_models::GmfClient> {
        let data = SyntheticConfig::builder()
            .users(users)
            .items(80)
            .communities(4)
            .interactions_per_user(10)
            .seed(3)
            .build()
            .generate();
        let split = LeaveOneOut::new(&data, 10, 1).unwrap();
        let spec = GmfSpec::new(80, 8, GmfHyper::default());
        let clients: Vec<_> = split
            .train_sets()
            .iter()
            .enumerate()
            .map(|(u, items)| {
                spec.build_client(UserId::new(u as u32), items.clone(), policy, u as u64)
            })
            .collect();
        FedAvg::new(clients, FedAvgConfig { rounds, seed: 9, ..Default::default() })
    }

    #[derive(Default)]
    struct Recorder {
        started: Vec<u64>,
        models: Vec<(u64, u32, bool)>,
        stats: Vec<RoundStats>,
    }

    impl RoundObserver for Recorder {
        fn on_round_start(&mut self, round: u64) {
            self.started.push(round);
        }
        fn on_client_model(&mut self, model: &SharedModel) {
            self.models.push((model.round, model.owner.raw(), model.owner_emb.is_some()));
        }
        fn on_round_end(&mut self, stats: &RoundStats) {
            self.stats.push(stats.clone());
        }
    }

    #[test]
    fn observer_sees_every_model_every_round() {
        let mut sim = make_sim(10, 3, SharingPolicy::Full);
        let mut rec = Recorder::default();
        sim.run(&mut rec);
        assert_eq!(rec.started, vec![0, 1, 2]);
        assert_eq!(rec.models.len(), 30);
        assert!(rec.models.iter().all(|&(_, _, has_emb)| has_emb));
        // User-id order within each round.
        for r in 0..3 {
            let round_models: Vec<u32> =
                rec.models.iter().filter(|&&(t, _, _)| t == r).map(|&(_, u, _)| u).collect();
            assert_eq!(round_models, (0..10).collect::<Vec<u32>>());
        }
        assert_eq!(sim.round(), 3);
    }

    #[test]
    fn share_less_hides_embeddings_from_server() {
        let mut sim = make_sim(6, 2, SharingPolicy::ShareLess { tau: 0.5 });
        let mut rec = Recorder::default();
        sim.run(&mut rec);
        assert!(rec.models.iter().all(|&(_, _, has_emb)| !has_emb));
    }

    #[test]
    fn training_loss_decreases_over_rounds() {
        let mut sim = make_sim(12, 15, SharingPolicy::Full);
        let mut rec = Recorder::default();
        sim.run(&mut rec);
        let first = rec.stats.first().unwrap().mean_loss;
        let last = rec.stats.last().unwrap().mean_loss;
        assert!(last < first, "loss {first} -> {last}");
    }

    #[test]
    fn partial_participation_samples_subset() {
        let data = SyntheticConfig::builder()
            .users(20)
            .items(80)
            .communities(4)
            .interactions_per_user(8)
            .seed(5)
            .build()
            .generate();
        let split = LeaveOneOut::new(&data, 10, 1).unwrap();
        let spec = GmfSpec::new(80, 8, GmfHyper::default());
        let clients: Vec<_> = split
            .train_sets()
            .iter()
            .enumerate()
            .map(|(u, items)| {
                spec.build_client(
                    UserId::new(u as u32),
                    items.clone(),
                    SharingPolicy::Full,
                    u as u64,
                )
            })
            .collect();
        let mut sim = FedAvg::new(
            clients,
            FedAvgConfig { rounds: 4, participation: 0.5, seed: 2, ..Default::default() },
        );
        let mut rec = Recorder::default();
        sim.run(&mut rec);
        for s in &rec.stats {
            assert_eq!(s.participants, 10);
        }
        // Different rounds sample different subsets (overwhelmingly likely).
        let r0: Vec<u32> = rec.models.iter().filter(|m| m.0 == 0).map(|m| m.1).collect();
        let r1: Vec<u32> = rec.models.iter().filter(|m| m.0 == 1).map(|m| m.1).collect();
        assert_ne!(r0, r1);
    }

    #[test]
    fn deterministic_given_seed() {
        let run = || {
            let mut sim = make_sim(8, 3, SharingPolicy::Full);
            let mut rec = Recorder::default();
            sim.run(&mut rec);
            (sim.global_agg().to_vec(), rec.stats.last().unwrap().mean_loss)
        };
        let (g1, l1) = run();
        let (g2, l2) = run();
        assert_eq!(g1, g2);
        assert_eq!(l1, l2);
    }

    #[test]
    fn dp_transform_perturbs_observed_models() {
        use cia_defenses::{DpConfig, DpMechanism};
        // Two runs from identical state: with strong noise the observed agg
        // differs from the noiseless run; global stays finite.
        let mut clean = make_sim(6, 1, SharingPolicy::Full);
        let mut noisy = make_sim(6, 1, SharingPolicy::Full);
        noisy.set_update_transform(Box::new(DpMechanism::new(DpConfig {
            clip: 1.0,
            noise_multiplier: 1.0,
        })));
        let mut rec_clean = Recorder::default();
        let mut rec_noisy = Recorder::default();
        clean.run(&mut rec_clean);
        noisy.run(&mut rec_noisy);
        assert_ne!(clean.global_agg(), noisy.global_agg());
        assert!(noisy.global_agg().iter().all(|v| v.is_finite()));
    }

    #[test]
    fn sync_clients_loads_global() {
        let mut sim = make_sim(5, 2, SharingPolicy::Full);
        sim.run(&mut NullObserver);
        sim.sync_clients_to_global();
        let g = sim.global_agg().to_vec();
        for c in sim.clients() {
            assert_eq!(c.agg(), g.as_slice());
        }
    }

    #[test]
    #[should_panic(expected = "need at least one client")]
    fn rejects_empty_clients() {
        let _: FedAvg<cia_models::GmfClient> = FedAvg::new(vec![], FedAvgConfig::default());
    }

    /// Masks odd users via the availability hook and records what arrives.
    #[derive(Default)]
    struct OddMasker {
        models: Vec<u32>,
    }

    impl RoundObserver for OddMasker {
        fn on_participants(&mut self, _round: u64, mask: &mut [bool]) {
            for (u, m) in mask.iter_mut().enumerate() {
                if u % 2 == 1 {
                    *m = false;
                }
            }
        }
        fn on_client_model(&mut self, model: &SharedModel) {
            self.models.push(model.owner.raw());
        }
    }

    #[test]
    fn participants_hook_filters_the_round() {
        let mut sim = make_sim(10, 2, SharingPolicy::Full);
        let mut masker = OddMasker::default();
        sim.run(&mut masker);
        assert_eq!(masker.models.len(), 10, "5 even users over 2 rounds");
        assert!(masker.models.iter().all(|u| u % 2 == 0));
    }

    struct Blackout;

    impl RoundObserver for Blackout {
        fn on_participants(&mut self, _round: u64, mask: &mut [bool]) {
            mask.fill(false);
        }
    }

    #[test]
    fn all_offline_round_keeps_global_and_reports_zero() {
        let mut sim = make_sim(6, 1, SharingPolicy::Full);
        let before = sim.global_agg().to_vec();
        let stats = sim.step(&mut Blackout);
        assert_eq!(stats.participants, 0);
        assert_eq!(stats.mean_loss, 0.0);
        assert_eq!(sim.global_agg(), before.as_slice());
    }

    #[test]
    fn restore_replays_identically() {
        // Run 4 rounds straight; then run 2, export, rebuild, restore, run 2
        // more — the global models must agree exactly.
        let mut straight = make_sim(8, 4, SharingPolicy::Full);
        straight.run(&mut NullObserver);

        let mut first = make_sim(8, 4, SharingPolicy::Full);
        first.step(&mut NullObserver);
        first.step(&mut NullObserver);
        let round = first.round();
        let global = first.global_agg().to_vec();
        let states: Vec<Vec<f32>> = first.clients().iter().map(Participant::state_vec).collect();

        let mut resumed = make_sim(8, 4, SharingPolicy::Full);
        resumed.restore(round, global);
        for (c, s) in resumed.clients_mut().iter_mut().zip(&states) {
            c.restore_state(s);
        }
        resumed.step(&mut NullObserver);
        resumed.step(&mut NullObserver);
        assert_eq!(resumed.global_agg(), straight.global_agg());
    }
}
