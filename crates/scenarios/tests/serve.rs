//! End-to-end serving tests: a racing query reader must never perturb a
//! training transcript, and a served ranking must equal the offline
//! evaluator's bit for bit — at paper scale (943 users x 1682 items), on
//! the snapshots a real scenario run publishes.

use cia_data::presets::Scale;
use cia_models::RelevanceScorer;
use cia_scenarios::runner::{gmf_scorer, run_scenario, run_suite, top_k_by_score, RunOptions};
use cia_scenarios::spec::named_suite;
use cia_scenarios::try_build_setup;
use cia_serve::{QueryWorkload, ServeEngine, SnapshotHub};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

fn run_builtin_smoke(opts: &RunOptions) -> String {
    let suite = named_suite("builtin", Scale::Smoke, 42).expect("builtin suite");
    let mut buf = Vec::new();
    run_suite(&suite, opts, &mut buf).expect("suite runs");
    String::from_utf8(buf).expect("utf8 stream")
}

/// Attaching a snapshot hub *and* a reader thread hammering it with queries
/// must leave the deterministic JSONL transcript byte-identical: publication
/// reads quiesced round state only, and serving reports into its own
/// recorder.
#[test]
fn transcript_byte_identical_with_racing_server_attached() {
    let plain = run_builtin_smoke(&RunOptions::default());

    let suite = named_suite("builtin", Scale::Smoke, 42).expect("builtin suite");
    let spec = &suite.expanded().expect("expands")[0];
    let setup =
        try_build_setup(spec.preset, spec.scale, spec.k_override, spec.seed).expect("smoke setup");
    let hub = Arc::new(SnapshotHub::new());
    let engine = ServeEngine::new(
        gmf_scorer(setup.data.num_items(), setup.params.dim),
        Arc::clone(&hub),
        64,
    );
    let num_users = setup.data.num_users();
    let stop = Arc::new(AtomicBool::new(false));
    let reader = {
        let stop = Arc::clone(&stop);
        // cia-lint: allow(D06, this test deliberately races a reader thread against training to pin transcript byte-equality)
        std::thread::spawn(move || {
            let mut workload = QueryWorkload::new(num_users, 1.1, 7).expect("workload");
            let mut answered = 0u64;
            while !stop.load(Ordering::Relaxed) {
                if engine.top_k(workload.next_user(), 10).is_some() {
                    answered += 1;
                }
            }
            answered
        })
    };
    let opts = RunOptions { publish: Some(Arc::clone(&hub)), ..RunOptions::default() };
    let with_server = run_builtin_smoke(&opts);
    stop.store(true, Ordering::Relaxed);
    let answered = reader.join().expect("reader thread");

    assert!(hub.epoch() > 0, "runner never published a snapshot");
    assert!(answered > 0, "reader never got a query answered while training ran");
    assert_eq!(plain, with_server, "server attachment changed the transcript");
}

/// A served top-k must equal the offline evaluator path — full-catalog
/// `score_items` plus the shared rank order — exactly, scores included, on
/// a paper-scale (943 x 1682) snapshot published by a real FL run.
#[test]
fn serve_matches_offline_topk_at_paper_scale() {
    let suite = named_suite("builtin", Scale::Paper, 42).expect("builtin suite");
    let spec = suite.expanded().expect("expands")[0].clone();
    let setup =
        try_build_setup(spec.preset, spec.scale, spec.k_override, spec.seed).expect("paper setup");
    let (num_users, num_items, dim) =
        (setup.data.num_users(), setup.data.num_items(), setup.params.dim);
    assert_eq!((num_users, num_items), (943, 1682), "paper-scale dimensions");

    let hub = Arc::new(SnapshotHub::new());
    let opts = RunOptions {
        publish: Some(Arc::clone(&hub)),
        stop_after_rounds: Some(2),
        ..RunOptions::default()
    };
    run_scenario(&spec, "serve-test", &opts, &mut std::io::sink()).expect("scenario runs");
    let snap = hub.load().expect("snapshot published");
    assert_eq!(snap.epoch(), 2);
    assert_eq!(snap.num_users(), num_users);

    let scorer = gmf_scorer(num_items, dim);
    let engine = ServeEngine::new(scorer.clone(), Arc::clone(&hub), 8);
    for user in [0u32, 1, 42, 500, 942] {
        let reply = engine.top_k(user, 20).expect("servable user");
        let mut all = vec![0.0f32; num_items as usize];
        scorer.score_items(snap.user_emb(user), snap.agg_of(user), &mut all);
        let offline =
            // cia-lint: allow(D05, test/bench populations are tiny; ids fit u32 with orders of magnitude to spare)
            top_k_by_score(all.iter().enumerate().map(|(i, &s)| (s, i as u32)).collect(), 20);
        assert_eq!(reply.ids(), offline, "user {user}: served ids diverge from offline");
        for &(score, id) in reply.ranked() {
            assert_eq!(
                score.to_bits(),
                all[id as usize].to_bits(),
                "user {user}, item {id}: served score not bit-identical"
            );
        }
    }
}

/// The probe must count a child that allocates and exits faster than any
/// RSS poll could observe: with sampling effectively disabled, only the
/// `getrusage(RUSAGE_CHILDREN)` fold at reap time can report the peak.
#[test]
fn rss_probe_counts_short_lived_children() {
    let hog_mib = 150;
    let candidates: [(&str, String); 2] = [
        ("python3", format!("x=bytearray({hog_mib}*1024*1024)")),
        ("perl", format!("$x = \"a\" x ({hog_mib}*1024*1024);")),
    ];
    for (interp, body) in &candidates {
        let flag = if *interp == "python3" { "-c" } else { "-e" };
        let out = std::process::Command::new(env!("CARGO_BIN_EXE_scenario"))
            .env("CIA_RSS_POLL_MS", "600000")
            .args(["rss-probe", "--", interp, flag, body])
            .output()
            .expect("probe binary runs");
        if !out.status.success() {
            continue; // interpreter missing here; try the next one
        }
        let stdout = String::from_utf8_lossy(&out.stdout);
        let kib: u64 = stdout
            .rsplit('(')
            .next()
            .and_then(|s| s.split(' ').next())
            .and_then(|s| s.parse().ok())
            .unwrap_or_else(|| panic!("unparseable probe output: {stdout}"));
        assert!(
            kib >= (hog_mib - 30) * 1024,
            "probe reported {kib} KiB; the short-lived {hog_mib} MiB child was missed"
        );
        return;
    }
    panic!("no interpreter available to spawn a memory-hungry child");
}
