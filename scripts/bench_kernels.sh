#!/usr/bin/env bash
# Regenerates BENCH_kernels.json: runs the micro benchmark suite with the
# harness's JSON-lines output enabled, then folds the stream into a report
# that pairs each kernel-backed benchmark with its scalar baseline.
#
# The JSON-lines stream accumulates in target/criterion-results.jsonl across
# invocations and later lines win, so a filtered re-run (e.g.
# `scripts/bench_kernels.sh kernel`) updates only the filtered entries and
# keeps the rest of the report intact. Delete that file for a fresh slate.
#
# `--scale paper` additionally unlocks the paper-scale (943×1682) end-to-end
# round-cost benchmarks (fedavg_round_paper_943x1682,
# gossip_round_paper_943x1682). They are env-gated rather than always-on so
# the `cargo bench -- --test` smoke gate and CI stay fast; run
# `scripts/bench_kernels.sh --scale paper paper` to refresh only those rows.
# With CIA_THREADS=N (N>1) the paper rows record under a `_tN` suffix, so a
# thread-scaling sweep accumulates rows instead of overwriting the
# single-thread baseline.
#
# `--scale paper` also refreshes the serving rows: serve_query_paper_943x1682
# (cold per-query cost against a paper-scale snapshot) and
# serve_qps_paper_943x1682 (sustained Zipf-workload throughput; the row
# carries a `qps` field alongside the per-query median). The small serving
# rows (serve_query_cold_1682 / serve_query_hot_1682) run at every scale.
#
# `--scale million` unlocks the million-user (10⁶×10⁵) sharded lazy FedAvg
# round (fedavg_round_million_1000000x100000, 1% participation). The bench
# asserts the 8 GiB peak-RSS budget itself; dataset generation costs minutes,
# so run `scripts/bench_kernels.sh --scale million million` to refresh only
# that row.
# The default (smoke) run always includes the small-scale trend rows
# (fedavg_round_small_200x400, gossip_round_small_200x400) — the same round
# hot path at ~1% of the work — so round-cost drift shows up without paying
# for paper-scale rounds.
set -euo pipefail
cd "$(dirname "$0")/.."

# Round benches are timed single-threaded by default so the recorded numbers
# are stable per-core costs; override CIA_THREADS explicitly to measure
# scaling.
export CIA_THREADS="${CIA_THREADS:-1}"

args=()
while [ $# -gt 0 ]; do
    case "$1" in
    --scale)
        case "${2:-}" in
        paper) export CIA_BENCH_PAPER_SCALE=1 ;;
        million) export CIA_BENCH_MILLION_SCALE=1 ;;
        smoke) unset CIA_BENCH_PAPER_SCALE CIA_BENCH_MILLION_SCALE ;;
        *)
            echo "--scale expects smoke|paper|million, got \`${2:-}\`" >&2
            exit 1
            ;;
        esac
        shift 2
        ;;
    *)
        args+=("$1")
        shift
        ;;
    esac
done

# Absolute path: cargo runs bench binaries with the package dir as cwd.
jsonl="$PWD/target/criterion-results.jsonl"
mkdir -p target

echo "== timing run (micro suite), streaming to $jsonl"
CRITERION_JSON="$jsonl" cargo bench -p cia-bench --bench micro ${args[@]+"${args[@]}"}

echo "== folding into BENCH_kernels.json"
cargo run --release -p cia-bench --bin bench_report -- "$jsonl" BENCH_kernels.json
cat BENCH_kernels.json
