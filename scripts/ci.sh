#!/usr/bin/env bash
# The exact CI pipeline — .github/workflows/ci.yml runs this script verbatim,
# so a green local run means a green CI run. Fail-fast: the first failing
# step aborts the pipeline; a step timing summary is printed either way.
#
# Everything runs offline against the vendored crates (vendor/): the
# workspace never touches a registry, and CARGO_NET_OFFLINE defends against
# accidental fetches.
#
# On a test or bench-smoke failure the suspected golden-JSONL drift is
# collected into target/golden-diff/ (actual transcripts + unified diffs
# against crates/scenarios/tests/golden/), which CI uploads as an artifact.
set -euo pipefail
cd "$(dirname "$0")/.."

export CARGO_NET_OFFLINE="${CARGO_NET_OFFLINE:-true}"
# Pinned worker count: results are byte-identical for any CIA_THREADS value
# (that invariance is itself under test), so CI pins a small count for
# reproducible timing on shared runners.
export CIA_THREADS="${CIA_THREADS:-2}"

step_names=()
step_secs=()
fail_step=""
total_start=$SECONDS

summary() {
    echo
    echo "== step timing summary"
    local i
    for i in "${!step_names[@]}"; do
        printf '   %-14s %5ss\n' "${step_names[$i]}" "${step_secs[$i]}"
    done
    printf '   %-14s %5ss\n' "total" "$((SECONDS - total_start))"
    if [ -n "$fail_step" ]; then
        echo "FAILED at step: $fail_step"
    fi
}
trap summary EXIT

# Regenerates each built-in suite transcript and diffs it against the
# committed golden, so a red CI run ships the drift as an artifact instead
# of a bare assertion failure. Best-effort: only meaningful once the
# workspace builds.
collect_golden_diffs() {
    echo "== collecting golden JSONL diffs into target/golden-diff"
    local outdir=target/golden-diff
    rm -rf "$outdir"
    mkdir -p "$outdir"
    local s
    for s in builtin participation-sweep defense-dynamics-grid pers-gossip-churn adaptive-sybils; do
        cargo run --release -q -p cia-scenarios --bin scenario -- \
            run --suite "$s" --scale smoke --seed 42 --no-timing \
            --out "$outdir/$s-smoke.actual.jsonl" || continue
        if diff -u "crates/scenarios/tests/golden/$s-smoke.jsonl" \
            "$outdir/$s-smoke.actual.jsonl" > "$outdir/$s-smoke.diff"; then
            # No drift in this suite; keep the artifact directory small.
            rm -f "$outdir/$s-smoke.diff" "$outdir/$s-smoke.actual.jsonl"
        else
            echo "   golden drift: $s (see $outdir/$s-smoke.diff)"
        fi
    done
}

# Runs a command and prints the peak RSS of its process tree afterwards —
# the memory companion to the timing summary, so a resident-set regression
# in the test suite is visible in every CI log. The container has no
# /usr/bin/time, so the in-tree probe (`scenario rss-probe`, produced by the
# build step) samples /proc VmHWM over the subtree; without the binary the
# command just runs bare.
run_with_peak_rss() {
    if [ -x target/release/scenario ]; then
        target/release/scenario rss-probe -- "$@"
    else
        "$@"
    fi
}

step() {
    local name="$1"
    shift
    echo
    echo "== $name: $*"
    local t0=$SECONDS
    if "$@"; then
        step_names+=("$name")
        step_secs+=($((SECONDS - t0)))
    else
        fail_step="$name"
        step_names+=("$name (failed)")
        step_secs+=($((SECONDS - t0)))
        case "$name" in
        test | bench-smoke) collect_golden_diffs || true ;;
        esac
        exit 1
    fi
}

run_cia_lint() {
    # --json --out leaves target/cia-lint.json behind for the CI artifact
    # upload on a red run; stdout carries the same report for the log.
    cargo run --release -q -p cia-lint --bin cia-lint -- \
        --json --out target/cia-lint.json
}

step fmt-check cargo fmt --all --check
# The determinism & safety pass gates ahead of everything expensive: it
# compiles only the dependency-free cia-lint crate, so a rule violation
# fails the pipeline in seconds.
step lint run_cia_lint
step build cargo build --release --workspace
step test run_with_peak_rss cargo test --workspace -q
# fmt-check, cia-lint and the workspace tests already ran above; tell
# bench_smoke.sh not to repeat them.
CIA_SKIP_REDUNDANT_GATES=1 step bench-smoke scripts/bench_smoke.sh

echo
echo "ci OK"
