//! Hot-path micro-benchmarks: the primitives every experiment is built from.

use cia_core::{CiaConfig, FlCia, ItemSetEvaluator};
use cia_data::presets::{Preset, Scale};
use cia_data::{jaccard_index, GroundTruth, LeaveOneOut, UserId};
use cia_defenses::{DpConfig, DpMechanism, UpdateTransform};
use cia_federated::{FedAvg, FedAvgConfig, NullObserver};
use cia_gossip::{GossipConfig, GossipSim, NullGossipObserver};
use cia_models::params::{clip_l2, ema};
use cia_models::{GmfHyper, GmfSpec, RelevanceScorer, SharingPolicy};
use criterion::{criterion_group, criterion_main, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::time::Duration;

const ITEMS: u32 = 1682; // MovieLens catalog size
const DIM: usize = 16;

fn bench_scoring(c: &mut Criterion) {
    let spec = GmfSpec::new(ITEMS, DIM, GmfHyper::default());
    let mut rng = StdRng::seed_from_u64(1);
    let agg = spec.init_agg(&mut rng);
    let emb = vec![0.05f32; DIM];
    let mut out = vec![0.0f32; ITEMS as usize];
    c.bench_function("gmf_score_full_catalog_1682x16", |b| {
        b.iter(|| spec.score_items(Some(&emb), &agg, std::hint::black_box(&mut out)));
    });
    let target: Vec<u32> = (0..100).collect();
    c.bench_function("gmf_mean_relevance_100_items", |b| {
        b.iter(|| std::hint::black_box(spec.mean_relevance(Some(&emb), &agg, &target)));
    });
}

fn bench_momentum_and_dp(c: &mut Criterion) {
    let spec = GmfSpec::new(ITEMS, DIM, GmfHyper::default());
    let mut rng = StdRng::seed_from_u64(2);
    let theta = spec.init_agg(&mut rng);
    let mut v = theta.clone();
    c.bench_function("momentum_ema_27k_params", |b| {
        b.iter(|| ema(std::hint::black_box(&mut v), 0.99, &theta));
    });

    let dp = DpMechanism::new(DpConfig { clip: 2.0, noise_multiplier: 1.0 });
    c.bench_function("dp_clip_noise_27k_params", |b| {
        b.iter(|| {
            let mut upd = theta.clone();
            dp.transform(&mut upd, &mut rng);
            std::hint::black_box(upd)
        });
    });
    let mut upd = theta.clone();
    c.bench_function("clip_l2_27k_params", |b| {
        b.iter(|| clip_l2(std::hint::black_box(&mut upd), 2.0));
    });
}

fn bench_protocol_rounds(c: &mut Criterion) {
    let data = Preset::MovieLens.generate(Scale::Smoke, 3);
    let split = LeaveOneOut::new(&data, 20, 3).unwrap();
    let spec = GmfSpec::new(data.num_items(), 8, GmfHyper::default());
    let clients = || -> Vec<_> {
        split
            .train_sets()
            .iter()
            .enumerate()
            .map(|(u, items)| {
                spec.build_client(UserId::new(u as u32), items.clone(), SharingPolicy::Full, u as u64)
            })
            .collect()
    };
    c.bench_function("fedavg_round_48_clients", |b| {
        let mut sim = FedAvg::new(clients(), FedAvgConfig { rounds: u64::MAX, ..Default::default() });
        b.iter(|| sim.step(&mut NullObserver));
    });
    c.bench_function("gossip_round_48_nodes", |b| {
        let mut sim =
            GossipSim::new(clients(), GossipConfig { rounds: u64::MAX, ..Default::default() });
        b.iter(|| sim.step(&mut NullGossipObserver));
    });
}

fn bench_attack_eval(c: &mut Criterion) {
    let data = Preset::MovieLens.generate(Scale::Smoke, 5);
    let split = LeaveOneOut::new(&data, 20, 5).unwrap();
    let users = data.num_users();
    let k = 5;
    let gt = GroundTruth::from_train_sets(split.train_sets(), k);
    let spec = GmfSpec::new(data.num_items(), 8, GmfHyper::default());
    let clients: Vec<_> = split
        .train_sets()
        .iter()
        .enumerate()
        .map(|(u, items)| {
            spec.build_client(UserId::new(u as u32), items.clone(), SharingPolicy::Full, u as u64)
        })
        .collect();
    c.bench_function("cia_fl_round_with_eval_48_users", |b| {
        let evaluator = ItemSetEvaluator::new(spec.clone(), split.train_sets().to_vec(), false);
        let truths: Vec<_> =
            (0..users as u32).map(|u| gt.community_of(UserId::new(u)).to_vec()).collect();
        let owners: Vec<_> = (0..users as u32).map(|u| Some(UserId::new(u))).collect();
        let mut attack = FlCia::new(
            CiaConfig { k, beta: 0.99, eval_every: 1, seed: 0 },
            evaluator,
            users,
            truths,
            owners,
        );
        let mut sim =
            FedAvg::new(clients.clone(), FedAvgConfig { rounds: u64::MAX, ..Default::default() });
        b.iter(|| sim.step(&mut attack));
    });
}

fn bench_ground_truth(c: &mut Criterion) {
    let data = Preset::MovieLens.generate(Scale::Smoke, 7);
    let split = LeaveOneOut::new(&data, 20, 7).unwrap();
    c.bench_function("ground_truth_jaccard_topk_48_users", |b| {
        b.iter(|| std::hint::black_box(GroundTruth::from_train_sets(split.train_sets(), 5)));
    });
    let a = &split.train_sets()[0];
    let bset = &split.train_sets()[1];
    c.bench_function("jaccard_index_pair", |b| {
        b.iter(|| std::hint::black_box(jaccard_index(a, bset)));
    });
}

fn config() -> Criterion {
    Criterion::default()
        .sample_size(20)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(2))
}

criterion_group! {
    name = benches;
    config = config();
    targets = bench_scoring, bench_momentum_and_dp, bench_protocol_rounds,
              bench_attack_eval, bench_ground_truth
}
criterion_main!(benches);
