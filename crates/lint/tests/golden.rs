//! Golden fixture tests: each known-bad fixture pins its exact diagnostics
//! (rule + line), and each allowlisted fixture must come back clean. The
//! fixtures live under `tests/fixtures/` — a directory the workspace walk
//! explicitly skips, because they violate the rules by design.

use cia_lint::lint_source;

fn fixture(name: &str) -> String {
    let path = format!("{}/tests/fixtures/{name}", env!("CARGO_MANIFEST_DIR"));
    std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("cannot read {path}: {e}"))
}

/// (rule, line) pairs of the diagnostics, in report order.
fn fired(path: &str, src: &str) -> Vec<(String, usize)> {
    lint_source(path, src).into_iter().map(|d| (d.rule.to_string(), d.line)).collect()
}

#[test]
fn bad_determinism_fires_every_token_rule_exactly_once() {
    let src = fixture("bad/determinism.rs");
    // Linted as if it lived in a deterministic-path crate, where all of
    // D01/D02/D03/D05/D06/D07 apply.
    let got = fired("crates/core/src/fixture.rs", &src);
    let want = vec![
        ("D01".to_string(), 8),  // `HashMap::new()` (the `use` line is exempt)
        ("D02".to_string(), 18), // `Instant::now()`
        ("D03".to_string(), 23), // `StdRng::from_entropy()`
        ("D05".to_string(), 27), // `x as u32`
        ("D06".to_string(), 31), // `std::thread::spawn`
        ("D07".to_string(), 35), // `.sum::<f32>()`
    ];
    assert_eq!(got, want);
}

#[test]
fn diagnostics_carry_span_accurate_columns() {
    let src = fixture("bad/determinism.rs");
    let diags = lint_source("crates/core/src/fixture.rs", &src);
    let d05 = diags.iter().find(|d| d.rule == "D05").expect("D05 fires");
    // `    x as u32` — the `as` keyword starts at column 7.
    assert_eq!((d05.line, d05.col), (27, 7));
    assert_eq!(d05.snippet, "x as u32");
}

#[test]
fn relaxed_crates_skip_the_det_path_rules_but_not_the_global_ones() {
    let src = fixture("bad/determinism.rs");
    // cia-bench is not on the deterministic path: D01/D07 must not fire,
    // while the globally-scoped rules still do.
    let got = fired("crates/bench/src/fixture.rs", &src);
    let want = vec![
        ("D02".to_string(), 18),
        ("D03".to_string(), 23),
        ("D05".to_string(), 27),
        ("D06".to_string(), 31),
    ];
    assert_eq!(got, want);
}

#[test]
fn bad_unsafe_block_without_safety_comment_fires_d04() {
    let src = fixture("bad/unsafe_block.rs");
    // D04 applies everywhere, deterministic path or not.
    let got = fired("crates/data/src/fixture.rs", &src);
    assert_eq!(got, vec![("D04".to_string(), 6)]);
}

#[test]
fn bad_allow_comments_fire_the_meta_rules() {
    let src = fixture("bad/stale_allow.rs");
    let got = fired("crates/core/src/fixture.rs", &src);
    let want = vec![
        ("L00".to_string(), 4),  // reason missing
        ("L01".to_string(), 7),  // suppresses nothing
        ("L00".to_string(), 10), // unknown rule ID
    ];
    assert_eq!(got, want);
}

#[test]
fn clean_allowed_fixture_lints_clean_on_the_deterministic_path() {
    let src = fixture("clean/allowed.rs");
    let diags = lint_source("crates/gossip/src/fixture.rs", &src);
    assert!(diags.is_empty(), "expected clean, got: {diags:?}");
}

#[test]
fn clean_safety_fixture_accepts_both_safety_comment_shapes() {
    let src = fixture("clean/safety.rs");
    let diags = lint_source("crates/data/src/fixture.rs", &src);
    assert!(diags.is_empty(), "expected clean, got: {diags:?}");
}

#[test]
fn every_d_rule_has_a_pinned_true_positive() {
    // Union of the fixture expectations above must cover D01–D07 — the
    // acceptance bar for this suite. Recomputed here so a fixture edit
    // that silently drops a rule fails loudly.
    let mut seen: Vec<String> = Vec::new();
    for (path, name) in [
        ("crates/core/src/fixture.rs", "bad/determinism.rs"),
        ("crates/data/src/fixture.rs", "bad/unsafe_block.rs"),
    ] {
        for d in lint_source(path, &fixture(name)) {
            seen.push(d.rule.to_string());
        }
    }
    for rule in ["D01", "D02", "D03", "D04", "D05", "D06", "D07"] {
        assert!(seen.iter().any(|r| r == rule), "no fixture true-positive for {rule}");
    }
}
