//! Personalized Ranking Metric Embedding (PRME) [14].
//!
//! PRME models next-POI recommendation with two metric embedding spaces: a
//! *preference* space (user ↔ item distance) and a *sequential* space
//! (previous item ↔ candidate distance). The score of candidate `i` given
//! user `u` at previous location `l` is the negative weighted distance
//!
//! `D(u, l, i) = α·‖p_u − x_i‖² + (1−α)·‖s_l − s_i‖²`
//!
//! trained with a pairwise ranking (BPR-style) loss over check-in successor
//! pairs. As in the paper, PRME is evaluated only on the POI datasets.
//!
//! Flat parameter layout: `[ p_u (d) | X (|V|·d) | S (|V|·d) ]`; the
//! aggregatable slice holds both item tables.
//!
//! For the attack, relevance is the negative *preference* distance: the
//! adversary has no knowledge of a victim's current location, and preference
//! distance is exactly the personal-taste component CIA exploits.

use crate::params::init_uniform;
use crate::participant::{Participant, RelevanceScorer, SharedModel, SharingPolicy};
use cia_data::UserId;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// PRME hyper-parameters.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PrmeHyper {
    /// SGD learning rate.
    pub lr: f32,
    /// Weight α of the preference component (the original work uses 0.2 for
    /// next-new-POI; we default to a balanced 0.5 for general relevance).
    pub alpha: f32,
    /// Negative samples per successor pair.
    pub negatives: usize,
    /// L2 weight decay.
    pub weight_decay: f32,
    /// Uniform initialization half-range.
    pub init_scale: f32,
    /// Epochs used when fitting the adversary's fictive embedding (§IV-C)
    /// from scratch.
    pub adversary_epochs: usize,
    /// Epochs used when the fictive embedding is warm-started from the
    /// previous refresh's solution.
    pub adversary_warm_epochs: usize,
}

impl Default for PrmeHyper {
    fn default() -> Self {
        PrmeHyper {
            lr: 0.02,
            alpha: 0.5,
            negatives: 2,
            weight_decay: 1e-5,
            init_scale: 0.1,
            adversary_epochs: 5,
            adversary_warm_epochs: 2,
        }
    }
}

/// Immutable description of a PRME model family.
///
/// ```
/// use cia_models::{PrmeSpec, PrmeHyper};
/// let spec = PrmeSpec::new(50, 8, PrmeHyper::default());
/// assert_eq!(spec.agg_len(), 2 * 50 * 8);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PrmeSpec {
    num_items: u32,
    dim: usize,
    hyper: PrmeHyper,
}

impl PrmeSpec {
    /// Creates a spec.
    ///
    /// # Panics
    ///
    /// Panics if `num_items == 0` or `dim == 0`.
    pub fn new(num_items: u32, dim: usize, hyper: PrmeHyper) -> Self {
        assert!(num_items > 0, "catalog must be non-empty");
        assert!(dim > 0, "embedding dimension must be positive");
        PrmeSpec { num_items, dim, hyper }
    }

    /// Embedding dimensionality.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Hyper-parameters.
    pub fn hyper(&self) -> &PrmeHyper {
        &self.hyper
    }

    /// Length of the aggregatable slice: `2·|V|·d`.
    pub fn agg_len(&self) -> usize {
        2 * self.num_items as usize * self.dim
    }

    /// Initializes a fresh aggregatable parameter vector.
    pub fn init_agg(&self, rng: &mut StdRng) -> Vec<f32> {
        let mut agg = vec![0.0f32; self.agg_len()];
        init_uniform(&mut agg, self.hyper.init_scale, rng);
        agg
    }

    /// Builds a client for `user` from its training item set and check-in
    /// sequence.
    pub fn build_client(
        &self,
        user: UserId,
        train_items: Vec<u32>,
        train_sequence: Vec<u32>,
        policy: SharingPolicy,
        seed: u64,
    ) -> PrmeClient {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut user_emb = vec![0.0f32; self.dim];
        init_uniform(&mut user_emb, self.hyper.init_scale, &mut rng);
        let agg = self.init_agg(&mut rng);
        let mut train_mask = vec![0u8; self.num_items as usize];
        for &j in &train_items {
            train_mask[j as usize] = 1;
        }
        PrmeClient {
            spec: self.clone(),
            user,
            user_emb,
            agg,
            train_items,
            train_sequence,
            policy,
            ref_items: None,
            train_mask,
            touched: Vec::new(),
            touched_mask: vec![0u8; 2 * self.num_items as usize],
        }
    }

    #[inline]
    fn pref<'a>(&self, agg: &'a [f32], j: u32) -> &'a [f32] {
        let d = self.dim;
        &agg[j as usize * d..(j as usize + 1) * d]
    }

    #[inline]
    fn seq<'a>(&self, agg: &'a [f32], j: u32) -> &'a [f32] {
        let d = self.dim;
        let base = self.num_items as usize * d;
        &agg[base + j as usize * d..base + (j as usize + 1) * d]
    }

    fn sq_dist(a: &[f32], b: &[f32]) -> f32 {
        a.iter().zip(b).map(|(x, y)| (x - y) * (x - y)).sum()
    }
}

impl RelevanceScorer for PrmeSpec {
    fn num_items(&self) -> u32 {
        self.num_items
    }

    fn agg_len(&self) -> usize {
        PrmeSpec::agg_len(self)
    }

    fn user_emb_len(&self) -> usize {
        self.dim
    }

    fn score_items(&self, user_emb: Option<&[f32]>, agg: &[f32], out: &mut [f32]) {
        let user = user_emb.expect("PRME scoring needs a user embedding");
        assert_eq!(out.len(), self.num_items as usize, "output buffer size");
        assert_eq!(agg.len(), PrmeSpec::agg_len(self), "agg size");
        for (j, o) in out.iter_mut().enumerate() {
            // cia-lint: allow(D05, ids and indices are bounded by the validated population/catalog size, which fits u32)
            let x = self.pref(agg, j as u32);
            *o = -Self::sq_dist(user, x);
        }
    }

    fn score_item_range(&self, user_emb: Option<&[f32]>, agg: &[f32], start: u32, out: &mut [f32]) {
        let user = user_emb.expect("PRME scoring needs a user embedding");
        let end = start as usize + out.len();
        assert!(end <= self.num_items as usize, "item range exceeds catalog");
        assert_eq!(agg.len(), PrmeSpec::agg_len(self), "agg size");
        let d = self.dim;
        // Preference vectors are row-major by id: walk the tile's dense
        // sub-matrix with the same per-item distance as `score_items`.
        for (x, o) in agg[start as usize * d..end * d].chunks_exact(d).zip(out.iter_mut()) {
            *o = -Self::sq_dist(user, x);
        }
    }

    fn mean_relevance(&self, user_emb: Option<&[f32]>, agg: &[f32], items: &[u32]) -> f32 {
        let user = user_emb.expect("PRME scoring needs a user embedding");
        if items.is_empty() {
            return 0.0;
        }
        let mut acc = 0.0f32;
        for &j in items {
            acc -= Self::sq_dist(user, self.pref(agg, j));
        }
        acc / items.len() as f32
    }

    fn train_adversary_embedding(
        &self,
        agg: &[f32],
        target_items: &[u32],
        warm_start: Option<&[f32]>,
        rng: &mut StdRng,
    ) -> Option<Vec<f32>> {
        let d = self.dim;
        let mut emb = vec![0.0f32; d];
        let epochs = match warm_start {
            Some(prev) => {
                emb.copy_from_slice(prev);
                self.hyper.adversary_warm_epochs
            }
            None => {
                init_uniform(&mut emb, self.hyper.init_scale, rng);
                self.hyper.adversary_epochs
            }
        };
        let lr = self.hyper.lr;
        // Pull the embedding towards target preference vectors, push away
        // from random negatives (pairwise, mirroring the training loss).
        for _ in 0..epochs {
            for &pos in target_items {
                let neg = rng.gen_range(0..self.num_items);
                if target_items.binary_search(&neg).is_ok() {
                    continue;
                }
                let xp = self.pref(agg, pos);
                let xn = self.pref(agg, neg);
                let z = Self::sq_dist(&emb, xn) - Self::sq_dist(&emb, xp);
                let g = crate::params::sigmoid(z) - 1.0; // d(-ln σ(z))/dz
                for k in 0..d {
                    // dz/de = 2 (x_pos − x_neg)
                    emb[k] -= lr * g * 2.0 * (xp[k] - xn[k]);
                }
            }
        }
        Some(emb)
    }
}

/// A PRME participant: one user's local model and check-in history.
#[derive(Debug, Clone)]
pub struct PrmeClient {
    spec: PrmeSpec,
    user: UserId,
    user_emb: Vec<f32>,
    agg: Vec<f32>,
    train_items: Vec<u32>,
    train_sequence: Vec<u32>,
    policy: SharingPolicy,
    ref_items: Option<Vec<f32>>,
    /// O(1) membership test for negative sampling (`1` = training item).
    train_mask: Vec<u8>,
    /// Embedding rows (preference row `j`, sequential row `|V| + j`)
    /// modified since the last absorb/mix.
    touched: Vec<u32>,
    /// Dedup mask for `touched`.
    touched_mask: Vec<u8>,
}

impl PrmeClient {
    /// The model spec this client was built from.
    pub fn spec(&self) -> &PrmeSpec {
        &self.spec
    }

    /// The client's own (private) user embedding.
    pub fn user_emb(&self) -> &[f32] {
        &self.user_emb
    }

    /// Scores candidates with the full model (preference + sequential from
    /// the last training check-in), for utility evaluation. Higher is better.
    pub fn score_candidates(&self, items: &[u32]) -> Vec<f32> {
        let alpha = self.spec.hyper.alpha;
        let last = self.train_sequence.last().or_else(|| self.train_items.last()).copied();
        items
            .iter()
            .map(|&j| {
                let dp = PrmeSpec::sq_dist(&self.user_emb, self.spec.pref(&self.agg, j));
                let ds = match last {
                    Some(l) => {
                        PrmeSpec::sq_dist(self.spec.seq(&self.agg, l), self.spec.seq(&self.agg, j))
                    }
                    None => 0.0,
                };
                -(alpha * dp + (1.0 - alpha) * ds)
            })
            .collect()
    }

    /// Resets the touched-row tracking (the absorbed parameters become the
    /// new sparse-update reference).
    fn clear_touched(&mut self) {
        for &r in &self.touched {
            self.touched_mask[r as usize] = 0;
        }
        self.touched.clear();
    }

    /// Marks an embedding row (`pref` row `j` or `seq` row `|V| + j`) dirty.
    fn touch_row(&mut self, row: u32) {
        if self.touched_mask[row as usize] == 0 {
            self.touched_mask[row as usize] = 1;
            self.touched.push(row);
        }
    }

    /// One pairwise step on successor pair `(l → pos)` against negative `neg`.
    fn pair_step(&mut self, l: u32, pos: u32, neg: u32, lr: f32) -> f32 {
        let n = self.spec.num_items;
        self.touch_row(pos);
        self.touch_row(neg);
        self.touch_row(n + l);
        self.touch_row(n + pos);
        self.touch_row(n + neg);
        let d = self.spec.dim;
        let alpha = self.spec.hyper.alpha;
        let wd = self.spec.hyper.weight_decay;
        let tau = self.policy.tau();

        // D = α‖p_u − x_i‖² + (1−α)‖s_l − s_i‖², z = D_neg − D_pos.
        let dp_pos = PrmeSpec::sq_dist(&self.user_emb, self.spec.pref(&self.agg, pos));
        let dp_neg = PrmeSpec::sq_dist(&self.user_emb, self.spec.pref(&self.agg, neg));
        let ds_pos = PrmeSpec::sq_dist(self.spec.seq(&self.agg, l), self.spec.seq(&self.agg, pos));
        let ds_neg = PrmeSpec::sq_dist(self.spec.seq(&self.agg, l), self.spec.seq(&self.agg, neg));
        let z = alpha * dp_neg + (1.0 - alpha) * ds_neg - (alpha * dp_pos + (1.0 - alpha) * ds_pos);
        let g = crate::params::sigmoid(z) - 1.0; // ≤ 0

        let base = self.spec.num_items as usize * d;
        let idx_p = |j: u32, k: usize| j as usize * d + k;
        let idx_s = |j: u32, k: usize| base + j as usize * d + k;

        for k in 0..d {
            let u = self.user_emb[k];
            let xp = self.agg[idx_p(pos, k)];
            let xn = self.agg[idx_p(neg, k)];
            let sl = self.agg[idx_s(l, k)];
            let sp = self.agg[idx_s(pos, k)];
            let sn = self.agg[idx_s(neg, k)];

            // dz/dp_u = 2α(x_pos − x_neg)
            self.user_emb[k] -= lr * (g * 2.0 * alpha * (xp - xn) + wd * u);
            // dz/dx_pos = 2α(p_u − x_pos); dz/dx_neg = −2α(p_u − x_neg)
            let mut dxp = g * 2.0 * alpha * (u - xp) + wd * xp;
            let mut dxn = -g * 2.0 * alpha * (u - xn) + wd * xn;
            // dz/ds_l = 2(1−α)(s_pos − s_neg)
            let mut dsl = g * 2.0 * (1.0 - alpha) * (sp - sn) + wd * sl;
            // dz/ds_pos = 2(1−α)(s_l − s_pos); dz/ds_neg = −2(1−α)(s_l − s_neg)
            let mut dsp = g * 2.0 * (1.0 - alpha) * (sl - sp) + wd * sp;
            let mut dsn = -g * 2.0 * (1.0 - alpha) * (sl - sn) + wd * sn;

            if tau > 0.0 {
                if let Some(r) = &self.ref_items {
                    dxp += 2.0 * tau * (xp - r[idx_p(pos, k)]);
                    dxn += 2.0 * tau * (xn - r[idx_p(neg, k)]);
                    dsl += 2.0 * tau * (sl - r[idx_s(l, k)]);
                    dsp += 2.0 * tau * (sp - r[idx_s(pos, k)]);
                    dsn += 2.0 * tau * (sn - r[idx_s(neg, k)]);
                }
            }

            // `-=` keeps aliased updates additive (l may equal pos for
            // revisit pairs); the clamp keeps SGD finite when a heavily
            // DP-noised model was absorbed (mirrors the GMF step guard).
            const CLAMP: f32 = 20.0;
            self.user_emb[k] = self.user_emb[k].clamp(-CLAMP, CLAMP);
            self.agg[idx_p(pos, k)] -= lr * dxp;
            self.agg[idx_p(neg, k)] -= lr * dxn;
            self.agg[idx_s(l, k)] -= lr * dsl;
            self.agg[idx_s(pos, k)] -= lr * dsp;
            self.agg[idx_s(neg, k)] -= lr * dsn;
            for idx in [idx_p(pos, k), idx_p(neg, k), idx_s(l, k), idx_s(pos, k), idx_s(neg, k)] {
                self.agg[idx] = self.agg[idx].clamp(-CLAMP, CLAMP);
            }
        }
        // -ln σ(z): the pairwise ranking loss.
        -crate::kernel::fast_ln(crate::params::sigmoid(z).max(1e-7))
    }
}

impl Participant for PrmeClient {
    fn user(&self) -> UserId {
        self.user
    }

    fn agg_len(&self) -> usize {
        self.spec.agg_len()
    }

    fn agg(&self) -> &[f32] {
        &self.agg
    }

    fn owner_emb(&self) -> Option<&[f32]> {
        self.policy.shares_user_embedding().then_some(self.user_emb.as_slice())
    }

    fn absorb_agg(&mut self, agg: &[f32]) {
        assert_eq!(agg.len(), self.agg.len(), "agg size mismatch");
        self.agg.copy_from_slice(agg);
        self.clear_touched();
        if self.policy.tau() > 0.0 {
            match &mut self.ref_items {
                Some(r) => r.copy_from_slice(agg),
                slot @ None => *slot = Some(agg.to_vec()),
            }
        }
    }

    fn mix_agg(&mut self, others: &[&[f32]]) {
        // In-place uniform mean (see the GMF counterpart; bit-identical to
        // the default path).
        crate::kernel::uniform_mix(&mut self.agg, others);
        self.clear_touched();
        if self.policy.tau() > 0.0 {
            match &mut self.ref_items {
                Some(r) => r.copy_from_slice(&self.agg),
                slot @ None => *slot = Some(self.agg.clone()),
            }
        }
    }

    fn train_local(&mut self, rng: &mut StdRng) -> f32 {
        if self.policy.tau() > 0.0 && self.ref_items.is_none() {
            self.ref_items = Some(self.agg.clone());
        }
        let lr = self.spec.hyper.lr;
        let negatives = self.spec.hyper.negatives;
        let num_items = self.spec.num_items;
        let mut loss = 0.0f32;
        let mut steps = 0usize;
        // Successor pairs from the check-in sequence; fall back to item-set
        // self-pairs when no sequence exists. Indexed access keeps the pair
        // iteration allocation-free.
        let seq_pairs = self.train_sequence.len().saturating_sub(1);
        let pair_count = if seq_pairs > 0 { seq_pairs } else { self.train_items.len() };
        for i in 0..pair_count {
            let (l, pos) = if seq_pairs > 0 {
                (self.train_sequence[i], self.train_sequence[i + 1])
            } else {
                (self.train_items[i], self.train_items[i])
            };
            for _ in 0..negatives {
                let neg = rng.gen_range(0..num_items);
                if self.train_mask[neg as usize] == 0 {
                    loss += self.pair_step(l, pos, neg, lr);
                    steps += 1;
                }
            }
        }
        if steps == 0 {
            0.0
        } else {
            loss / steps as f32
        }
    }

    fn snapshot(&self, round: u64) -> SharedModel {
        SharedModel {
            owner: self.user,
            round,
            owner_emb: self.policy.shares_user_embedding().then(|| self.user_emb.clone()),
            agg: self.agg.clone(),
        }
    }

    fn snapshot_into(&self, round: u64, slot: &mut SharedModel) {
        slot.owner = self.user;
        slot.round = round;
        slot.agg.resize(self.agg.len(), 0.0);
        slot.agg.copy_from_slice(&self.agg);
        if self.policy.shares_user_embedding() {
            match &mut slot.owner_emb {
                Some(e) => {
                    e.resize(self.user_emb.len(), 0.0);
                    e.copy_from_slice(&self.user_emb);
                }
                emb @ None => *emb = Some(self.user_emb.clone()),
            }
        } else {
            slot.owner_emb = None;
        }
    }

    fn accumulate_update(&self, reference: &[f32], weight: f32, out: &mut [f32]) {
        let d = self.spec.dim;
        assert_eq!(self.agg.len(), reference.len(), "reference length mismatch");
        assert_eq!(self.agg.len(), out.len(), "output length mismatch");
        // Training modifies only the visited preference/sequential rows;
        // untouched rows still equal the absorbed reference.
        for &r in &self.touched {
            let s = r as usize * d;
            for k in s..s + d {
                out[k] += weight * (self.agg[k] - reference[k]);
            }
        }
    }

    fn num_examples(&self) -> usize {
        self.train_items.len()
    }

    fn evaluate_model(&self, model: &SharedModel) -> f32 {
        // Contrast the received public parameters against this node's taste:
        // mean relevance of own train items minus a deterministic probe of
        // the catalog, both scored with the node's own embedding.
        let spec = &self.spec;
        let on = RelevanceScorer::mean_relevance(
            spec,
            Some(&self.user_emb),
            &model.agg,
            &self.train_items,
        );
        let stride = (spec.num_items() / 64).max(1);
        let probe: Vec<u32> = (0..spec.num_items()).step_by(stride as usize).collect();
        let off = RelevanceScorer::mean_relevance(spec, Some(&self.user_emb), &model.agg, &probe);
        on - off
    }

    fn state_vec(&self) -> Vec<f32> {
        // [ user_emb | agg | ref_flag | ref_items? ] — decoded only by
        // `restore_state` below (PRME references span the full agg slice).
        let d = self.spec.dim;
        let mut state = Vec::with_capacity(
            d + self.agg.len() + 1 + self.ref_items.as_ref().map_or(0, Vec::len),
        );
        state.extend_from_slice(&self.user_emb);
        state.extend_from_slice(&self.agg);
        match &self.ref_items {
            Some(r) => {
                state.push(1.0);
                state.extend_from_slice(r);
            }
            None => state.push(0.0),
        }
        state
    }

    fn restore_state(&mut self, state: &[f32]) {
        self.clear_touched();
        let d = self.spec.dim;
        let agg_len = self.agg.len();
        assert!(state.len() > d + agg_len, "PRME state too short");
        self.user_emb.copy_from_slice(&state[..d]);
        self.agg.copy_from_slice(&state[d..d + agg_len]);
        let flag = state[d + agg_len];
        self.ref_items = if flag == 1.0 {
            let r = &state[d + agg_len + 1..];
            assert_eq!(r.len(), agg_len, "PRME reference state size");
            Some(r.to_vec())
        } else {
            assert_eq!(state.len(), d + agg_len + 1, "PRME state size");
            None
        };
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec() -> PrmeSpec {
        PrmeSpec::new(30, 4, PrmeHyper { lr: 0.05, ..PrmeHyper::default() })
    }

    fn client(seed: u64) -> PrmeClient {
        let items = vec![1, 2, 3, 4, 5];
        let seq = vec![1, 2, 3, 4, 5, 1, 3, 5, 2, 4];
        spec().build_client(UserId::new(0), items, seq, SharingPolicy::Full, seed)
    }

    #[test]
    fn training_reduces_loss() {
        let mut c = client(3);
        let mut rng = StdRng::seed_from_u64(1);
        let first = c.train_local(&mut rng);
        let mut last = first;
        for _ in 0..40 {
            last = c.train_local(&mut rng);
        }
        assert!(last < first, "loss did not decrease: {first} -> {last}");
    }

    #[test]
    fn trained_model_prefers_own_items() {
        let mut c = client(5);
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..60 {
            c.train_local(&mut rng);
        }
        let pos = c.score_candidates(&[1, 2, 3, 4, 5]);
        let neg = c.score_candidates(&[20, 21, 22, 23, 24]);
        // cia-lint: allow(D07, sequential left-to-right fold over a slice in index order; the reduction order is fixed)
        let mean = |v: &[f32]| v.iter().sum::<f32>() / v.len() as f32;
        assert!(mean(&pos) > mean(&neg), "pos {} !> neg {}", mean(&pos), mean(&neg));
    }

    #[test]
    fn pairwise_gradient_check() {
        // Finite-difference check of dz/dp_u for the ranking loss.
        let s = PrmeSpec::new(10, 3, PrmeHyper { weight_decay: 0.0, ..PrmeHyper::default() });
        let c = s.build_client(UserId::new(0), vec![1, 2], vec![1, 2], SharingPolicy::Full, 7);
        let (l, pos, neg) = (1u32, 2u32, 7u32);
        let alpha = s.hyper.alpha;

        let loss_of = |user: &[f32]| -> f64 {
            let dp_pos = PrmeSpec::sq_dist(user, s.pref(&c.agg, pos));
            let dp_neg = PrmeSpec::sq_dist(user, s.pref(&c.agg, neg));
            let ds_pos = PrmeSpec::sq_dist(s.seq(&c.agg, l), s.seq(&c.agg, pos));
            let ds_neg = PrmeSpec::sq_dist(s.seq(&c.agg, l), s.seq(&c.agg, neg));
            let z =
                alpha * dp_neg + (1.0 - alpha) * ds_neg - (alpha * dp_pos + (1.0 - alpha) * ds_pos);
            -(crate::params::sigmoid(z) as f64).ln()
        };

        let dp_pos = PrmeSpec::sq_dist(&c.user_emb, s.pref(&c.agg, pos));
        let dp_neg = PrmeSpec::sq_dist(&c.user_emb, s.pref(&c.agg, neg));
        let ds_pos = PrmeSpec::sq_dist(s.seq(&c.agg, l), s.seq(&c.agg, pos));
        let ds_neg = PrmeSpec::sq_dist(s.seq(&c.agg, l), s.seq(&c.agg, neg));
        let z = alpha * dp_neg + (1.0 - alpha) * ds_neg - (alpha * dp_pos + (1.0 - alpha) * ds_pos);
        let g = crate::params::sigmoid(z) - 1.0;

        let eps = 1e-3f32;
        for k in 0..3 {
            let xp = s.pref(&c.agg, pos)[k];
            let xn = s.pref(&c.agg, neg)[k];
            let ana = (g * 2.0 * alpha * (xp - xn)) as f64;
            let mut up = c.user_emb.clone();
            up[k] += eps;
            let mut um = c.user_emb.clone();
            um[k] -= eps;
            let num = (loss_of(&up) - loss_of(&um)) / (2.0 * eps as f64);
            assert!((num - ana).abs() < 1e-3, "dp_u[{k}]: numeric {num} vs analytic {ana}");
        }
    }

    #[test]
    fn relevance_is_negative_distance() {
        let s = spec();
        let c = client(9);
        let snap = c.snapshot(0);
        let mut out = vec![0.0f32; 30];
        s.score_items(snap.owner_emb.as_deref(), &snap.agg, &mut out);
        assert!(out.iter().all(|&v| v <= 0.0));
        let m = s.mean_relevance(snap.owner_emb.as_deref(), &snap.agg, &[0, 1]);
        assert!(((out[0] + out[1]) / 2.0 - m).abs() < 1e-6);
    }

    #[test]
    fn score_item_range_matches_score_items_bitwise() {
        let s = spec();
        let c = client(17);
        let snap = c.snapshot(0);
        let mut all = vec![0.0f32; 30];
        s.score_items(snap.owner_emb.as_deref(), &snap.agg, &mut all);
        for (start, len) in [(0usize, 30usize), (0, 7), (4, 13), (29, 1), (11, 0)] {
            let mut tile = vec![f32::NAN; len];
            // cia-lint: allow(D05, ids and indices are bounded by the validated population/catalog size, which fits u32)
            s.score_item_range(snap.owner_emb.as_deref(), &snap.agg, start as u32, &mut tile);
            assert_eq!(
                tile.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                all[start..start + len].iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                "tile {start}+{len} diverged from full scoring"
            );
        }
    }

    #[test]
    fn adversary_embedding_prefers_target_items() {
        let s = spec();
        let mut c = client(13);
        let mut rng = StdRng::seed_from_u64(4);
        for _ in 0..60 {
            c.train_local(&mut rng);
        }
        let agg = c.agg().to_vec();
        let target = vec![1u32, 2, 3];
        let emb = s.train_adversary_embedding(&agg, &target, None, &mut rng).unwrap();
        let on = s.mean_relevance(Some(&emb), &agg, &target);
        let off = s.mean_relevance(Some(&emb), &agg, &[20, 21, 22]);
        assert!(on > off, "on {on} !> off {off}");
    }

    #[test]
    fn share_less_hides_user_embedding_and_regularizes() {
        let s = spec();
        let c = s.build_client(
            UserId::new(1),
            vec![1, 2],
            vec![1, 2],
            SharingPolicy::ShareLess { tau: 0.5 },
            3,
        );
        assert!(c.snapshot(0).owner_emb.is_none());
    }
}
