//! The paper's motivating example (Figure 1): an honest-but-curious federated
//! server identifies "health vulnerable" users purely from the models they
//! send, using the public semantic categorization of points of interest.
//!
//! ```text
//! cargo run --release --example health_community
//! ```

use community_inference::data::presets::Scale;
use community_inference::data::{CATEGORY_NAMES, HEALTH_CATEGORY};
use community_inference::experiments::experiments::fig1;

fn main() {
    println!("Semantic taxonomy: {}", CATEGORY_NAMES.join(", "));
    println!(
        "The adversary targets category #{HEALTH_CATEGORY}: \"{}\"\n",
        CATEGORY_NAMES[HEALTH_CATEGORY as usize]
    );
    println!("Planting a 3-user health-vulnerable community (~68% health visits)");
    println!("against a 6.7% base rate, then training a federated GMF recommender");
    println!("and running CIA on the server with V_target = all health items...\n");

    for table in fig1::run(Scale::Small, 42) {
        println!("{}", table.to_text());
    }

    println!("Interpretation: the adversary recovered the community using only");
    println!("(1) received models and (2) the public item categorization —");
    println!("exactly the privacy risk the paper's Figure 1 illustrates.");
}
